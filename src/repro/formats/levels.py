"""Per-dimension (level) formats of the Chou et al. format language.

A tensor format is a list of *mode formats*, one per dimension, each
describing how the coordinates of that dimension are stored. Stardust (and
this reproduction) supports the two formats used throughout the paper —
``dense`` (uncompressed) and ``compressed`` — plus the ``bit_vector``
format that Capstan's declarative-sparse hardware consumes (Section 7.1),
and two level formats from the wider format-abstraction vocabulary of
Chou et al.:

* ``singleton`` stores exactly one coordinate per parent position (a bare
  ``crd`` array with no ``pos`` array). Pairing a non-unique compressed
  root with singleton tails yields the COO family of whole-tensor formats.
* ``block`` is an uncompressed level whose extent is fixed at format
  definition time. Trailing block levels under a compressed level yield
  the blocked formats (BCSR): each stored position expands to a statically
  sized dense tile, so inner loops have compile-time trip counts.

Every level format carries the capability properties of the Chou et al.
level-function interface — *full*, *ordered*, *unique*, *branchless*, and
*compact* — which the co-iteration machinery consults instead of matching
on concrete kinds wherever a capability suffices.

In the co-iteration rewrite system of Figure 10, mode formats map onto
iterator symbols: dense and block levels are the universe ``U``,
compressed levels are ``C``, bit-vector levels are ``B``, and singleton
levels are ``S`` (positionally derived from their parent, never
co-iterated).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class LevelKind(enum.Enum):
    """The storage discipline of one tensor dimension."""

    DENSE = "uncompressed"
    COMPRESSED = "compressed"
    BIT_VECTOR = "bitvector"
    SINGLETON = "singleton"
    BLOCK = "block"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Default capability properties per level kind (Chou et al., Table 1):
#: ``full``       — every coordinate in [0, N) is represented;
#: ``branchless`` — child positions derive from the parent position without
#:                  a data-dependent search (dense arithmetic or 1:1 maps);
#: ``compact``    — stored positions are contiguous with no padding.
#: ``ordered``/``unique`` defaults live on :class:`ModeFormat` (they are
#: per-instance: COO's root is a *non-unique* compressed level).
_KIND_CAPABILITIES: dict[LevelKind, dict[str, bool]] = {
    LevelKind.DENSE: {"full": True, "branchless": True, "compact": False},
    LevelKind.COMPRESSED: {"full": False, "branchless": False, "compact": True},
    LevelKind.BIT_VECTOR: {"full": True, "branchless": False, "compact": False},
    LevelKind.SINGLETON: {"full": False, "branchless": True, "compact": True},
    LevelKind.BLOCK: {"full": True, "branchless": True, "compact": False},
}


@dataclasses.dataclass(frozen=True)
class ModeFormat:
    """The format of a single tensor mode (dimension).

    Attributes:
        kind: storage discipline for this level.
        ordered: coordinates within a position segment appear in sorted
            order. All formats in the paper are ordered.
        unique: no coordinate repeats within a segment. COO's root level
            is compressed but *non-unique* (one entry per stored value).
        size: static extent for ``block`` levels (must be None otherwise).
    """

    kind: LevelKind
    ordered: bool = True
    unique: bool = True
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is LevelKind.BLOCK:
            if self.size is None or int(self.size) < 1:
                raise ValueError(
                    f"block levels need a positive static size, got {self.size!r}"
                )
        elif self.size is not None:
            raise ValueError(
                f"{self.kind.value} levels take no static size (got {self.size!r})"
            )

    @property
    def is_dense(self) -> bool:
        """Uncompressed (positional) level: plain dense or fixed-size block."""
        return self.kind in (LevelKind.DENSE, LevelKind.BLOCK)

    @property
    def is_compressed(self) -> bool:
        return self.kind is LevelKind.COMPRESSED

    @property
    def is_bit_vector(self) -> bool:
        return self.kind is LevelKind.BIT_VECTOR

    @property
    def is_singleton(self) -> bool:
        return self.kind is LevelKind.SINGLETON

    @property
    def is_block(self) -> bool:
        return self.kind is LevelKind.BLOCK

    # -- capability protocol (Chou et al.) ---------------------------------

    @property
    def full(self) -> bool:
        return _KIND_CAPABILITIES[self.kind]["full"]

    @property
    def branchless(self) -> bool:
        return _KIND_CAPABILITIES[self.kind]["branchless"]

    @property
    def compact(self) -> bool:
        return _KIND_CAPABILITIES[self.kind]["compact"]

    def properties(self) -> dict[str, bool]:
        """The full capability record (level-function interface)."""
        return {
            "full": self.full,
            "ordered": self.ordered,
            "unique": self.unique,
            "branchless": self.branchless,
            "compact": self.compact,
        }

    @property
    def iterator_symbol(self) -> str:
        """Iterator-format symbol used by the Figure 10 rewrite system."""
        if self.is_dense:
            return "U"
        if self.is_compressed:
            return "C"
        if self.is_singleton:
            return "S"
        return "B"

    def arrays(self) -> tuple[str, ...]:
        """Names of the sub-arrays this level format owns.

        Dense and block levels store no explicit arrays (only the dimension
        size); compressed levels store ``pos`` and ``crd`` arrays;
        singleton levels store only a ``crd`` array (one coordinate per
        parent position); bit-vector levels store a packed occupancy word
        stream.
        """
        if self.is_dense:
            return ()
        if self.is_compressed:
            return ("pos", "crd")
        if self.is_singleton:
            return ("crd",)
        return ("bv",)

    def __str__(self) -> str:
        flags = []
        if not self.ordered:
            flags.append("unordered")
        if not self.unique:
            flags.append("non-unique")
        suffix = f"({', '.join(flags)})" if flags else ""
        if self.is_block:
            return f"block[{self.size}]{suffix}"
        return f"{self.kind.value}{suffix}"


#: The uncompressed (dense) mode format: coordinates are implicit in [0, N).
dense = ModeFormat(LevelKind.DENSE)

#: Alias used by the paper's input language (Figure 5 uses "uncompressed").
uncompressed = dense

#: The compressed mode format: explicit ``pos``/``crd`` arrays (CSR-style).
compressed = ModeFormat(LevelKind.COMPRESSED)

#: Compressed with one entry per stored value (the COO root level).
compressed_nonunique = ModeFormat(LevelKind.COMPRESSED, unique=False)

#: The singleton mode format: one coordinate per parent position.
singleton = ModeFormat(LevelKind.SINGLETON)

#: The packed bit-vector mode format consumed by Capstan's scanners.
bit_vector = ModeFormat(LevelKind.BIT_VECTOR)


def block(size: int) -> ModeFormat:
    """A fixed-size uncompressed inner level (BCSR-style tile dimension)."""
    return ModeFormat(LevelKind.BLOCK, size=int(size))
