"""Per-dimension (level) formats of the Chou et al. format language.

A tensor format is a list of *mode formats*, one per dimension, each
describing how the coordinates of that dimension are stored. Stardust (and
this reproduction) supports the two formats used throughout the paper —
``dense`` (uncompressed) and ``compressed`` — plus the ``bit_vector``
format that Capstan's declarative-sparse hardware consumes (Section 7.1).

In the co-iteration rewrite system of Figure 10, mode formats map onto
iterator symbols: dense levels are the universe ``U``, compressed levels are
``C`` and bit-vector levels are ``B``.
"""

from __future__ import annotations

import dataclasses
import enum


class LevelKind(enum.Enum):
    """The storage discipline of one tensor dimension."""

    DENSE = "uncompressed"
    COMPRESSED = "compressed"
    BIT_VECTOR = "bitvector"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class ModeFormat:
    """The format of a single tensor mode (dimension).

    Attributes:
        kind: storage discipline for this level.
        ordered: coordinates within a position segment appear in sorted
            order. All formats in the paper are ordered.
        unique: no coordinate repeats within a segment.
    """

    kind: LevelKind
    ordered: bool = True
    unique: bool = True

    @property
    def is_dense(self) -> bool:
        return self.kind is LevelKind.DENSE

    @property
    def is_compressed(self) -> bool:
        return self.kind is LevelKind.COMPRESSED

    @property
    def is_bit_vector(self) -> bool:
        return self.kind is LevelKind.BIT_VECTOR

    @property
    def iterator_symbol(self) -> str:
        """Iterator-format symbol used by the Figure 10 rewrite system."""
        if self.is_dense:
            return "U"
        if self.is_compressed:
            return "C"
        return "B"

    def arrays(self) -> tuple[str, ...]:
        """Names of the sub-arrays this level format owns.

        Dense levels store no explicit arrays (only the dimension size);
        compressed levels store ``pos`` and ``crd`` arrays; bit-vector
        levels store a packed occupancy word stream.
        """
        if self.is_dense:
            return ()
        if self.is_compressed:
            return ("pos", "crd")
        return ("bv",)

    def __str__(self) -> str:
        flags = []
        if not self.ordered:
            flags.append("unordered")
        if not self.unique:
            flags.append("non-unique")
        suffix = f"({', '.join(flags)})" if flags else ""
        return f"{self.kind.value}{suffix}"


#: The uncompressed (dense) mode format: coordinates are implicit in [0, N).
dense = ModeFormat(LevelKind.DENSE)

#: Alias used by the paper's input language (Figure 5 uses "uncompressed").
uncompressed = dense

#: The compressed mode format: explicit ``pos``/``crd`` arrays (CSR-style).
compressed = ModeFormat(LevelKind.COMPRESSED)

#: The packed bit-vector mode format consumed by Capstan's scanners.
bit_vector = ModeFormat(LevelKind.BIT_VECTOR)
