"""The Stardust data-representation (format) language.

Combines the per-dimension level formats of Chou et al. with the Stardust
memory-region annotation of Section 5.1.
"""

from repro.formats.format import (
    CSC,
    CSF,
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    format_of,
)
from repro.formats.levels import (
    LevelKind,
    ModeFormat,
    bit_vector,
    compressed,
    dense,
    uncompressed,
)
from repro.formats.memory import MemoryRegion, MemoryType

#: Paper-style aliases for memory regions (Figure 5 spells them this way).
offChip = MemoryRegion.OFF_CHIP
onChip = MemoryRegion.ON_CHIP

__all__ = [
    "CSC",
    "CSF",
    "CSR",
    "DENSE_MATRIX",
    "DENSE_MATRIX_CM",
    "DENSE_VECTOR",
    "SPARSE_VECTOR",
    "UCC",
    "Format",
    "LevelKind",
    "MemoryRegion",
    "MemoryType",
    "ModeFormat",
    "bit_vector",
    "compressed",
    "dense",
    "format_of",
    "offChip",
    "onChip",
    "uncompressed",
]
