"""The Stardust data-representation (format) language.

Combines the per-dimension level formats of Chou et al. with the Stardust
memory-region annotation of Section 5.1.
"""

from repro.formats.format import (
    BCSR,
    CCD,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DEFAULT_BLOCK,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    FormatSpec,
    format_of,
    register_format,
    registered_formats,
)
from repro.formats.levels import (
    LevelKind,
    ModeFormat,
    bit_vector,
    block,
    compressed,
    compressed_nonunique,
    dense,
    singleton,
    uncompressed,
)
from repro.formats.memory import MemoryRegion, MemoryType

#: Paper-style aliases for memory regions (Figure 5 spells them this way).
offChip = MemoryRegion.OFF_CHIP
onChip = MemoryRegion.ON_CHIP

__all__ = [
    "BCSR",
    "CCD",
    "COO",
    "COO3",
    "CSC",
    "CSF",
    "CSR",
    "DCSR",
    "DEFAULT_BLOCK",
    "DENSE_MATRIX",
    "DENSE_MATRIX_CM",
    "DENSE_VECTOR",
    "SPARSE_VECTOR",
    "UCC",
    "Format",
    "FormatSpec",
    "LevelKind",
    "MemoryRegion",
    "MemoryType",
    "ModeFormat",
    "bit_vector",
    "block",
    "compressed",
    "compressed_nonunique",
    "dense",
    "format_of",
    "offChip",
    "onChip",
    "register_format",
    "registered_formats",
    "singleton",
    "uncompressed",
]
