"""Memory regions and physical memory types for the Stardust format language.

The paper (Section 5.1) extends the format language of Chou et al. with a
*memory location* property: a tensor is either globally visible off-chip
(host DRAM) or local to the accelerator (on-chip). This coarse-grained
placement is the only memory decision an end user makes; the fine-grained
binding of each format sub-array (positions, coordinates, values) to a
*physical* memory type is performed automatically by the memory analysis of
Section 6 (see :mod:`repro.core.memory_analysis`).
"""

from __future__ import annotations

import enum


class MemoryRegion(enum.Enum):
    """Coarse-grained memory pinning: where a tensor lives in the hierarchy.

    ``OFF_CHIP`` tensors are allocated in host-visible DRAM and are globally
    accessible to every backend participating in a computation. ``ON_CHIP``
    tensors are local to a single accelerator and must be filled by explicit
    transfers before use.
    """

    OFF_CHIP = "offChip"
    ON_CHIP = "onChip"

    @property
    def is_on_chip(self) -> bool:
        return self is MemoryRegion.ON_CHIP

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class MemoryType(enum.Enum):
    """Fine-grained physical memory types available on the Capstan RDA.

    These mirror the six binding targets enumerated in Section 6.1 of the
    paper, plus the host-side staging region. The memory analysis binds each
    tensor sub-array to exactly one of these.

    * ``DRAM_DENSE`` — off-chip arrays with affine/bulk access, host
      initialised.
    * ``DRAM_SPARSE`` — off-chip arrays accessed with random single-element
      requests (no identifiable working set to stage on chip).
    * ``SRAM_DENSE`` — on-chip scratchpad for affine access patterns
      (position arrays, dense values arrays).
    * ``SRAM_SPARSE`` — on-chip scratchpad for small fixed-size arrays with
      reuse but random access (supports atomics).
    * ``BIT_VECTOR`` — packed on-chip integer streams holding compressed
      coordinate occupancy, generated for compressed-compressed co-iteration.
    * ``FIFO`` — streaming buffers for strictly in-order, use-once traversal
      (coordinate arrays and in-order values arrays).
    * ``REGISTER`` — on-chip scalars (reduction accumulators, loop-carried
      values).
    """

    DRAM_DENSE = "DenseDRAM"
    DRAM_SPARSE = "SparseDRAM"
    SRAM_DENSE = "DenseSRAM"
    SRAM_SPARSE = "SparseSRAM"
    BIT_VECTOR = "BitVector"
    FIFO = "FIFO"
    REGISTER = "Register"

    @property
    def is_off_chip(self) -> bool:
        return self in (MemoryType.DRAM_DENSE, MemoryType.DRAM_SPARSE)

    @property
    def is_on_chip(self) -> bool:
        return not self.is_off_chip

    @property
    def supports_random_access(self) -> bool:
        """Whether single elements may be read at arbitrary addresses."""
        return self in (
            MemoryType.DRAM_DENSE,
            MemoryType.DRAM_SPARSE,
            MemoryType.SRAM_DENSE,
            MemoryType.SRAM_SPARSE,
        )

    @property
    def is_streaming(self) -> bool:
        """Whether the memory imposes strictly in-order, use-once access."""
        return self in (MemoryType.FIFO, MemoryType.BIT_VECTOR)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
