"""Whole-tensor formats: mode formats + mode ordering + memory region.

A :class:`Format` mirrors the Stardust input language of Figure 5::

    Format csr_off({uncompressed, compressed}, offChip);
    Format cm_off({uncompressed, uncompressed}, {1, 0}, offChip);

i.e. an ordered list of per-level formats, an optional mode ordering
(permutation mapping storage levels to tensor modes; ``{1, 0}`` stores a
matrix column-major), and the Stardust memory-region annotation.

Beyond the paper's CSR/CSF/dense vocabulary, this module registers the
COO, DCSR, and blocked (BCSR) whole-tensor formats enabled by the
``singleton`` and ``block`` level formats, and exposes the registry that
``repro formats``, ``repro convert``, and the format-sweep artefact
enumerate.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.formats.levels import (
    ModeFormat,
    block,
    compressed,
    compressed_nonunique,
    dense,
    singleton,
)
from repro.formats.memory import MemoryRegion


@dataclasses.dataclass(frozen=True)
class Format:
    """A tensor format in the Stardust data-representation language.

    Attributes:
        mode_formats: per-storage-level formats, outermost first.
        mode_ordering: permutation of mode indices; ``mode_ordering[L]`` is
            the tensor mode stored at level ``L``. Defaults to the identity
            (row-major for matrices).
        memory: coarse-grained memory pinning (Section 5.1).
    """

    mode_formats: tuple[ModeFormat, ...]
    mode_ordering: tuple[int, ...] = ()
    memory: MemoryRegion = MemoryRegion.OFF_CHIP

    def __init__(
        self,
        mode_formats: Sequence[ModeFormat] = (),
        mode_ordering: Sequence[int] | MemoryRegion | None = None,
        memory: MemoryRegion | None = None,
    ) -> None:
        # Allow Format([...], offChip) without an explicit ordering, matching
        # the paper's two- and three-argument constructor forms.
        if isinstance(mode_ordering, MemoryRegion):
            if memory is not None:
                raise TypeError("memory region given twice")
            memory = mode_ordering
            mode_ordering = None
        mode_formats = tuple(mode_formats)
        for mf in mode_formats:
            if not isinstance(mf, ModeFormat):
                raise TypeError(
                    f"mode formats must be ModeFormat instances, got {mf!r}"
                )
        mode_ordering = _validated_ordering(mode_ordering, len(mode_formats))
        _validate_level_structure(mode_formats)
        object.__setattr__(self, "mode_formats", mode_formats)
        object.__setattr__(self, "mode_ordering", mode_ordering)
        object.__setattr__(self, "memory", memory or MemoryRegion.OFF_CHIP)

    @property
    def order(self) -> int:
        """Number of tensor modes (dimensions)."""
        return len(self.mode_formats)

    @property
    def is_on_chip(self) -> bool:
        return self.memory.is_on_chip

    @property
    def is_all_dense(self) -> bool:
        return all(mf.is_dense for mf in self.mode_formats)

    @property
    def has_compressed_level(self) -> bool:
        return any(mf.is_compressed for mf in self.mode_formats)

    @property
    def has_singleton_level(self) -> bool:
        return any(mf.is_singleton for mf in self.mode_formats)

    @property
    def has_block_level(self) -> bool:
        return any(mf.is_block for mf in self.mode_formats)

    def level_of_mode(self, mode: int) -> int:
        """Storage level at which tensor mode ``mode`` is stored."""
        return self.mode_ordering.index(mode)

    def mode_of_level(self, level: int) -> int:
        """Tensor mode stored at storage level ``level``."""
        return self.mode_ordering[level]

    def level_format(self, level: int) -> ModeFormat:
        return self.mode_formats[level]

    def streams_vals_at(self, level: int) -> bool:
        """Values stream 1:1 with this level's positions.

        True when ``level`` is the innermost level, or every deeper level
        is singleton (positions pass through unchanged, so one value
        arrives per position here — the COO layout). The lowerer and the
        traffic model both consult this, so they stay in agreement.
        """
        return all(
            self.level_format(L).is_singleton
            for L in range(level + 1, self.order)
        )

    def with_memory(self, memory: MemoryRegion) -> "Format":
        """The same format pinned to a different memory region."""
        return Format(self.mode_formats, self.mode_ordering, memory)

    def __str__(self) -> str:
        levels = ", ".join(str(mf) for mf in self.mode_formats)
        parts = ["{" + levels + "}"]
        if self.mode_ordering != tuple(range(self.order)):
            parts.append("{" + ", ".join(map(str, self.mode_ordering)) + "}")
        parts.append(str(self.memory))
        return f"Format({', '.join(parts)})"


def _validated_ordering(
    mode_ordering: Sequence[int] | None, order: int
) -> tuple[int, ...]:
    """Check that the ordering is a true permutation of ``range(order)``.

    A bad ordering used to surface only deep inside lowering (as a
    ``ValueError: x is not in tuple`` from ``level_of_mode``); validating
    here turns it into an immediate, self-explanatory error.
    """
    if mode_ordering is None:
        return tuple(range(order))
    try:
        ordering = tuple(int(m) for m in mode_ordering)
    except (TypeError, ValueError):
        raise ValueError(
            f"mode_ordering must be a sequence of integers, got "
            f"{mode_ordering!r}"
        ) from None
    if len(ordering) != order:
        raise ValueError(
            f"mode_ordering {ordering} has {len(ordering)} entries for "
            f"{order} mode format(s); it must be a permutation of "
            f"0..{order - 1}"
        )
    if sorted(ordering) != list(range(order)):
        raise ValueError(
            f"mode_ordering {ordering} is not a permutation of "
            f"0..{order - 1} (each storage level must name a distinct "
            f"tensor mode)"
        )
    return ordering


def _validate_level_structure(mode_formats: tuple[ModeFormat, ...]) -> None:
    """Structural constraints on level sequences.

    * singleton levels derive their positions from a parent, so the root
      (outermost) level cannot be singleton;
    * block levels are trailing tiles: once a block level appears, every
      deeper level must also be a block level (BCSR-style layouts).
    """
    if mode_formats and mode_formats[0].is_singleton:
        raise ValueError(
            "the outermost storage level cannot be singleton: singleton "
            "levels store one coordinate per parent position"
        )
    seen_block = False
    for lvl, mf in enumerate(mode_formats):
        if mf.is_block:
            seen_block = True
        elif seen_block:
            raise ValueError(
                f"level {lvl} ({mf}) follows a block level; block levels "
                f"must form the trailing (innermost) tile dimensions"
            )


# ---------------------------------------------------------------------------
# Named whole-tensor formats + registry
# ---------------------------------------------------------------------------

#: Default tile extent for the registered BCSR format.
DEFAULT_BLOCK = 4


def _fmt(levels: Sequence[ModeFormat], ordering: Sequence[int] | None = None):
    def make(memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Format:
        return Format(levels, ordering, memory)

    return make


#: Compressed sparse row: dense rows, compressed columns.
CSR = _fmt([dense, compressed])

#: Compressed sparse column: column-major CSR.
CSC = _fmt([dense, compressed], [1, 0])

#: Fully dense row-major matrix.
DENSE_MATRIX = _fmt([dense, dense])

#: Fully dense column-major matrix (the paper's ``cm_off``).
DENSE_MATRIX_CM = _fmt([dense, dense], [1, 0])

#: Dense vector.
DENSE_VECTOR = _fmt([dense])

#: Compressed (sparse) vector.
SPARSE_VECTOR = _fmt([compressed])

#: Compressed sparse fiber for 3-tensors.
CSF = _fmt([compressed, compressed, compressed])

#: The CSR-like uncompressed-compressed-compressed 3-tensor format used for
#: InnerProd and Plus2 in the evaluation (Section 8.1).
UCC = _fmt([dense, compressed, compressed])

#: Doubly compressed sparse row: both matrix levels compressed.
DCSR = _fmt([compressed, compressed])

#: Compressed-compressed-dense 3-tensor (TTM output: dense k level).
CCD = _fmt([compressed, compressed, dense])

#: Coordinate (COO) matrix: a non-unique compressed root (pos = [0, nnz])
#: over a singleton column level — one (row, col, val) triple per entry.
COO = _fmt([compressed_nonunique, singleton])

#: Coordinate (COO) 3-tensor: non-unique root, singleton tails.
COO3 = _fmt([compressed_nonunique, singleton, singleton])


def BCSR(
    memory: MemoryRegion = MemoryRegion.OFF_CHIP, size: int = DEFAULT_BLOCK
) -> Format:
    """Blocked CSR over a blocked 4-D tensor (I/b, J/b, b, b).

    Level 0 indexes block rows densely, level 1 compresses block columns,
    and two trailing ``block`` levels hold the statically-sized b×b tile.
    """
    return Format([dense, compressed, block(size), block(size)], None, memory)


@dataclasses.dataclass(frozen=True)
class FormatSpec:
    """One registry entry: a named whole-tensor format constructor."""

    name: str
    make: Callable[..., Format]
    description: str

    def instantiate(self, memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Format:
        return self.make(memory)


FORMAT_REGISTRY: dict[str, FormatSpec] = {}


def register_format(name: str, make: Callable[..., Format],
                    description: str) -> FormatSpec:
    """Register a named whole-tensor format (idempotent per name)."""
    spec = FormatSpec(name.lower(), make, description)
    FORMAT_REGISTRY[spec.name] = spec
    return spec


for _name, _make, _desc in (
    ("csr", CSR, "compressed sparse row (dense rows, compressed columns)"),
    ("csc", CSC, "compressed sparse column (column-major CSR)"),
    ("dense2", DENSE_MATRIX, "fully dense row-major matrix"),
    ("dense2_cm", DENSE_MATRIX_CM, "fully dense column-major matrix"),
    ("dense1", DENSE_VECTOR, "dense vector"),
    ("sparse1", SPARSE_VECTOR, "compressed (sparse) vector"),
    ("csf", CSF, "compressed sparse fiber (3-tensor)"),
    ("ucc", UCC, "uncompressed-compressed-compressed 3-tensor"),
    ("dcsr", DCSR, "doubly compressed sparse row"),
    ("ccd", CCD, "compressed-compressed-dense 3-tensor"),
    ("coo", COO, "coordinate matrix (non-unique root + singleton column)"),
    ("coo3", COO3, "coordinate 3-tensor (non-unique root + singleton tails)"),
    ("bcsr", BCSR,
     f"blocked CSR with {DEFAULT_BLOCK}x{DEFAULT_BLOCK} tiles "
     f"(dense, compressed, block, block)"),
):
    register_format(_name, _make, _desc)


def registered_formats() -> dict[str, FormatSpec]:
    """The registry of named whole-tensor formats (name -> spec)."""
    return dict(FORMAT_REGISTRY)


def format_of(name: str, memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Format:
    """Look up a named format constructor (used by the kernel suite)."""
    try:
        return FORMAT_REGISTRY[name.lower()].instantiate(memory)
    except KeyError:
        raise KeyError(
            f"unknown format name {name!r}; choose from "
            f"{sorted(FORMAT_REGISTRY)}"
        )
