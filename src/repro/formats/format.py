"""Whole-tensor formats: mode formats + mode ordering + memory region.

A :class:`Format` mirrors the Stardust input language of Figure 5::

    Format csr_off({uncompressed, compressed}, offChip);
    Format cm_off({uncompressed, uncompressed}, {1, 0}, offChip);

i.e. an ordered list of per-level formats, an optional mode ordering
(permutation mapping storage levels to tensor modes; ``{1, 0}`` stores a
matrix column-major), and the Stardust memory-region annotation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.formats.levels import ModeFormat, compressed, dense
from repro.formats.memory import MemoryRegion


@dataclasses.dataclass(frozen=True)
class Format:
    """A tensor format in the Stardust data-representation language.

    Attributes:
        mode_formats: per-storage-level formats, outermost first.
        mode_ordering: permutation of mode indices; ``mode_ordering[L]`` is
            the tensor mode stored at level ``L``. Defaults to the identity
            (row-major for matrices).
        memory: coarse-grained memory pinning (Section 5.1).
    """

    mode_formats: tuple[ModeFormat, ...]
    mode_ordering: tuple[int, ...] = ()
    memory: MemoryRegion = MemoryRegion.OFF_CHIP

    def __init__(
        self,
        mode_formats: Sequence[ModeFormat] = (),
        mode_ordering: Sequence[int] | MemoryRegion | None = None,
        memory: MemoryRegion | None = None,
    ) -> None:
        # Allow Format([...], offChip) without an explicit ordering, matching
        # the paper's two- and three-argument constructor forms.
        if isinstance(mode_ordering, MemoryRegion):
            if memory is not None:
                raise TypeError("memory region given twice")
            memory = mode_ordering
            mode_ordering = None
        mode_formats = tuple(mode_formats)
        if mode_ordering is None:
            mode_ordering = tuple(range(len(mode_formats)))
        else:
            mode_ordering = tuple(int(m) for m in mode_ordering)
        if sorted(mode_ordering) != list(range(len(mode_formats))):
            raise ValueError(
                f"mode_ordering {mode_ordering} is not a permutation of "
                f"0..{len(mode_formats) - 1}"
            )
        object.__setattr__(self, "mode_formats", mode_formats)
        object.__setattr__(self, "mode_ordering", mode_ordering)
        object.__setattr__(self, "memory", memory or MemoryRegion.OFF_CHIP)

    @property
    def order(self) -> int:
        """Number of tensor modes (dimensions)."""
        return len(self.mode_formats)

    @property
    def is_on_chip(self) -> bool:
        return self.memory.is_on_chip

    @property
    def is_all_dense(self) -> bool:
        return all(mf.is_dense for mf in self.mode_formats)

    @property
    def has_compressed_level(self) -> bool:
        return any(mf.is_compressed for mf in self.mode_formats)

    def level_of_mode(self, mode: int) -> int:
        """Storage level at which tensor mode ``mode`` is stored."""
        return self.mode_ordering.index(mode)

    def mode_of_level(self, level: int) -> int:
        """Tensor mode stored at storage level ``level``."""
        return self.mode_ordering[level]

    def level_format(self, level: int) -> ModeFormat:
        return self.mode_formats[level]

    def with_memory(self, memory: MemoryRegion) -> "Format":
        """The same format pinned to a different memory region."""
        return Format(self.mode_formats, self.mode_ordering, memory)

    def __str__(self) -> str:
        levels = ", ".join(str(mf) for mf in self.mode_formats)
        parts = ["{" + levels + "}"]
        if self.mode_ordering != tuple(range(self.order)):
            parts.append("{" + ", ".join(map(str, self.mode_ordering)) + "}")
        parts.append(str(self.memory))
        return f"Format({', '.join(parts)})"


def _fmt(levels: Sequence[ModeFormat], ordering: Sequence[int] | None = None):
    def make(memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Format:
        return Format(levels, ordering, memory)

    return make


#: Compressed sparse row: dense rows, compressed columns.
CSR = _fmt([dense, compressed])

#: Compressed sparse column: column-major CSR.
CSC = _fmt([dense, compressed], [1, 0])

#: Fully dense row-major matrix.
DENSE_MATRIX = _fmt([dense, dense])

#: Fully dense column-major matrix (the paper's ``cm_off``).
DENSE_MATRIX_CM = _fmt([dense, dense], [1, 0])

#: Dense vector.
DENSE_VECTOR = _fmt([dense])

#: Compressed (sparse) vector.
SPARSE_VECTOR = _fmt([compressed])

#: Compressed sparse fiber for 3-tensors.
CSF = _fmt([compressed, compressed, compressed])

#: The CSR-like uncompressed-compressed-compressed 3-tensor format used for
#: InnerProd and Plus2 in the evaluation (Section 8.1).
UCC = _fmt([dense, compressed, compressed])


def format_of(name: str, memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Format:
    """Look up a named format constructor (used by the kernel suite)."""
    table = {
        "csr": CSR,
        "csc": CSC,
        "dense2": DENSE_MATRIX,
        "dense2_cm": DENSE_MATRIX_CM,
        "dense1": DENSE_VECTOR,
        "sparse1": SPARSE_VECTOR,
        "csf": CSF,
        "ucc": UCC,
    }
    try:
        return table[name.lower()](memory)
    except KeyError:
        raise KeyError(f"unknown format name {name!r}; choose from {sorted(table)}")
