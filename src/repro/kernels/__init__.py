"""The evaluation kernel suite (Table 3)."""

from repro.kernels.suite import CCD, DCSR, KERNEL_ORDER, KERNELS, KernelSpec, TensorSpec, get_kernel

__all__ = [
    "CCD",
    "DCSR",
    "KERNEL_ORDER",
    "KERNELS",
    "KernelSpec",
    "TensorSpec",
    "get_kernel",
]
