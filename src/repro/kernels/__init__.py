"""The evaluation kernel suite (Table 3 + format-sweep kernels)."""

from repro.kernels.suite import (
    CCD,
    DCSR,
    FORMAT_KERNEL_ORDER,
    KERNEL_ORDER,
    KERNELS,
    KernelSpec,
    TensorSpec,
    get_kernel,
)

__all__ = [
    "CCD",
    "DCSR",
    "FORMAT_KERNEL_ORDER",
    "KERNEL_ORDER",
    "KERNELS",
    "KernelSpec",
    "TensorSpec",
    "get_kernel",
]
