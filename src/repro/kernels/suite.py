"""The evaluation kernel suite: the ten expressions of Table 3.

Each :class:`KernelSpec` bundles the tensor-algebra expression, the formats
(including Stardust memory regions), and the schedule used to map the
kernel to Capstan, mirroring how the paper's evaluation drives Stardust.
Builders take pre-packed tensors so the same definitions serve tiny
correctness tests and full-size Table 4 datasets.

Scheduling notes (Section 8.1):

* reductions are precomputed into an on-chip scalar workspace and
  accelerated onto Spatial's ``Reduce`` pattern (Figure 5);
* Plus3 is mapped as an *iterated two-input addition* via an on-chip
  sparse-vector workspace, because mapping it natively would co-iterate
  three compressed operands (beyond Capstan's two-input scanners);
* TTM and MTTKRP reorder their loops so the innermost (vectorised) loop is
  dense, which keeps their dense-factor accesses affine (no shuffle
  network), matching Table 5's resource profile.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.formats import (
    BCSR,
    CCD,
    COO,
    CSC,
    CSF,
    CSR,
    DCSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    offChip,
    onChip,
)
from repro.ir import index_vars
from repro.schedule.stmt import INNER_PAR, OUTER_PAR, REDUCTION, SPATIAL, IndexStmt
from repro.tensor import Tensor, scalar


@dataclasses.dataclass(frozen=True)
class TensorSpec:
    """Shape/format requirements of one kernel operand."""

    name: str
    role: str  # 'output' | 'sparse' | 'dense' | 'scalar'
    order: int
    format_of: Callable[..., Format] | None

    def make(self, shape: tuple[int, ...]) -> Tensor:
        if self.order == 0:
            return scalar(self.name, offChip)
        assert self.format_of is not None
        return Tensor(self.name, shape, self.format_of(offChip))


@dataclasses.dataclass(frozen=True)
class KernelSpec:
    """One Table 3 kernel: expression, formats, schedule, and metadata."""

    name: str
    expression: str  # Table 3 index-notation string
    tensor_specs: tuple[TensorSpec, ...]
    build_stmt: Callable[[dict[str, Tensor], int, int], tuple[IndexStmt, Tensor]]
    input_program: str  # canonical Stardust input (for the LoC comparison)
    paper_input_loc: int  # Table 3 "Input" column
    paper_spatial_loc: int  # Table 3 "Spatial" column
    paper_par: int  # Table 5 "Par" column (outer parallelization)
    uses_reduction: bool = True

    def build(
        self,
        tensors: dict[str, Tensor],
        inner_par: int = 16,
        outer_par: int | None = None,
    ):
        """Construct the scheduled statement for the given operand tensors."""
        op = self.paper_par if outer_par is None else outer_par
        return self.build_stmt(tensors, inner_par, op)

    def input_loc(self) -> int:
        """Lines of Stardust input a user writes (Table 3 metric)."""
        return sum(
            1
            for line in self.input_program.splitlines()
            if line.strip() and not line.strip().startswith("//")
        )


def _env(stmt: IndexStmt, ip: int, op: int) -> IndexStmt:
    return stmt.environment(INNER_PAR, ip).environment(OUTER_PAR, op)


# ---------------------------------------------------------------------------
# Kernel builders
# ---------------------------------------------------------------------------


def _spmv(tensors, ip, op):
    A, x, y = tensors["A"], tensors["x"], tensors["y"]
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    ws = scalar("ws", onChip)
    stmt = _env(y.get_index_stmt(), ip, op)
    stmt = stmt.precompute(A[i, j] * x[j], [], [], ws)
    stmt = stmt.accelerate(j, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, y


def _plus3(tensors, ip, op):
    A, B, C, D = tensors["A"], tensors["B"], tensors["C"], tensors["D"]
    i, j, jw = index_vars("i j jw")
    A[i, j] = B[i, j] + C[i, j] + D[i, j]
    T = Tensor("T", (A.shape[1],), SPARSE_VECTOR(onChip))
    stmt = _env(A.get_index_stmt(), ip, op)
    # Iterated two-input addition: T = B + C on chip, then A = T + D.
    stmt = stmt.precompute(B[i, j] + C[i, j], [j], [jw], T)
    return stmt, A


def _sddmm(tensors, ip, op):
    A, B, C, D = tensors["A"], tensors["B"], tensors["C"], tensors["D"]
    i, j, k = index_vars("i j k")
    A[i, j] = B[i, j] * C[i, k] * D[k, j]
    ws = scalar("ws", onChip)
    stmt = _env(A.get_index_stmt(), ip, op)
    stmt = stmt.precompute(B[i, j] * C[i, k] * D[k, j], [], [], ws)
    stmt = stmt.accelerate(k, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, A


def _mattransmul(tensors, ip, op):
    A, x, z, y = tensors["A"], tensors["x"], tensors["z"], tensors["y"]
    alpha, beta = tensors["alpha"], tensors["beta"]
    i, j = index_vars("i j")
    term = alpha[()] * A[j, i] * x[j]
    y[i] = term + beta[()] * z[i]
    ws = scalar("ws", onChip)
    stmt = _env(y.get_index_stmt(), ip, op)
    stmt = stmt.precompute(term, [], [], ws)
    stmt = stmt.accelerate(j, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, y


def _residual(tensors, ip, op):
    A, x, b, y = tensors["A"], tensors["x"], tensors["b"], tensors["y"]
    i, j = index_vars("i j")
    term = A[i, j] * x[j]
    y[i] = b[i] - term
    ws = scalar("ws", onChip)
    stmt = _env(y.get_index_stmt(), ip, op)
    stmt = stmt.precompute(term, [], [], ws)
    stmt = stmt.accelerate(j, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, y


def _ttv(tensors, ip, op):
    A, B, c = tensors["A"], tensors["B"], tensors["c"]
    i, j, k = index_vars("i j k")
    A[i, j] = B[i, j, k] * c[k]
    ws = scalar("ws", onChip)
    stmt = _env(A.get_index_stmt(), ip, op)
    stmt = stmt.precompute(B[i, j, k] * c[k], [], [], ws)
    stmt = stmt.accelerate(k, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, A


def _ttm(tensors, ip, op):
    A, B, C = tensors["A"], tensors["B"], tensors["C"]
    i, j, k, l = index_vars("i j k l")
    A[i, j, k] = B[i, j, l] * C[k, l]
    stmt = _env(A.get_index_stmt(), ip, op)
    # Vectorise the dense k loop; keep the compressed l loop outside it so
    # the C(k, l) access stays affine per lane (no shuffle network).
    stmt = stmt.reorder(i, j, l, k)
    return stmt, A


def _mttkrp(tensors, ip, op):
    A, B, C, D = tensors["A"], tensors["B"], tensors["C"], tensors["D"]
    i, j, k, l = index_vars("i j k l")
    A[i, j] = B[i, k, l] * C[j, k] * D[j, l]
    stmt = _env(A.get_index_stmt(), ip, op)
    stmt = stmt.reorder(i, k, l, j)
    return stmt, A


def _innerprod(tensors, ip, op):
    alpha, B, C = tensors["alpha_out"], tensors["B"], tensors["C"]
    i, j, k = index_vars("i j k")
    alpha[()] = B[i, j, k] * C[i, j, k]
    ws = scalar("ws", onChip)
    stmt = _env(alpha.get_index_stmt(), ip, op)
    stmt = stmt.precompute(B[i, j, k] * C[i, j, k], [], [], ws)
    stmt = stmt.accelerate(k, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, alpha


def _coo_spmv(tensors, ip, op):
    """SpMV over a COO matrix: one flat position loop with a singleton
    column bind; the dense output scatter-accumulates on chip."""
    A, x, y = tensors["A"], tensors["x"], tensors["y"]
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    return _env(y.get_index_stmt(), ip, op), y


def _dcsr_spmm(tensors, ip, op):
    """SpMM with a doubly compressed operand: only nonzero rows launch.

    The dense output column loop is vectorised innermost (the TTM
    reorder trick), keeping B's row access affine per lane.
    """
    C, A, B = tensors["C"], tensors["A"], tensors["B"]
    i, j, k = index_vars("i j k")
    C[i, j] = A[i, k] * B[k, j]
    stmt = _env(C.get_index_stmt(), ip, op)
    stmt = stmt.reorder(i, k, j)
    return stmt, C


def _bcsr_spmv(tensors, ip, op):
    """Blocked SpMV: compressed block columns over static b×b tiles.

    The loop order matches BCSR's storage levels (block row, block
    column, tile row, tile column); both tile loops carry compile-time
    trip counts.
    """
    A, x, y = tensors["A"], tensors["x"], tensors["y"]
    I, J, bi, bj = index_vars("I J bi bj")
    y[I, bi] = A[I, J, bi, bj] * x[J, bj]
    stmt = _env(y.get_index_stmt(), ip, op)
    stmt = stmt.reorder(I, J, bi, bj)
    return stmt, y


def _plus2(tensors, ip, op):
    A, B, C = tensors["A"], tensors["B"], tensors["C"]
    i, j, k = index_vars("i j k")
    A[i, j, k] = B[i, j, k] + C[i, j, k]
    stmt = _env(A.get_index_stmt(), ip, op)
    return stmt, A


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

_SPECS = [
    KernelSpec(
        name="SpMV",
        expression="y(i) = sum_j A(i,j) * x(j)",
        tensor_specs=(
            TensorSpec("y", "output", 1, DENSE_VECTOR),
            TensorSpec("A", "sparse", 2, CSR),
            TensorSpec("x", "dense", 1, DENSE_VECTOR),
        ),
        build_stmt=_spmv,
        input_program="""\
Format csr_off = CSR(offChip);
Tensor A({N, N}, csr_off);
Tensor x({N}, dense_off);  Tensor y({N}, dense_off);
y(i) = A(i, j) * x(j);
IndexStmt stmt = y.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 16);
Tensor ws(on);
stmt = stmt.precompute(A(i,j) * x(j), {}, {}, ws);
stmt = stmt.accelerate(forall(j, ws += A*x), Spatial, Reduction, innerPar);
std::cout << y << std::endl;
""",
        paper_input_loc=10,
        paper_spatial_loc=44,
        paper_par=16,
    ),
    KernelSpec(
        name="Plus3",
        expression="A(i,j) = B(i,j) + C(i,j) + D(i,j)",
        tensor_specs=(
            TensorSpec("A", "output", 2, CSR),
            TensorSpec("B", "sparse", 2, CSR),
            TensorSpec("C", "sparse", 2, CSR),
            TensorSpec("D", "sparse", 2, CSR),
        ),
        build_stmt=_plus3,
        input_program="""\
Tensor A({N, N}, csr_off);  Tensor B({N, N}, csr_off);
Tensor C({N, N}, csr_off);  Tensor D({N, N}, csr_off);
A(i, j) = B(i, j) + C(i, j) + D(i, j);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 8);
Tensor T({N}, sparse_on);
stmt = stmt.precompute(B(i,j) + C(i,j), {j}, {jw}, T);
std::cout << A << std::endl;
""",
        paper_input_loc=8,
        paper_spatial_loc=91,
        paper_par=8,
        uses_reduction=False,
    ),
    KernelSpec(
        name="SDDMM",
        expression="A(i,j) = sum_k B(i,j) * C(i,k) * D(k,j)",
        tensor_specs=(
            TensorSpec("A", "output", 2, CSR),
            TensorSpec("B", "sparse", 2, CSR),
            TensorSpec("C", "dense", 2, DENSE_MATRIX),
            TensorSpec("D", "dense", 2, DENSE_MATRIX_CM),
        ),
        build_stmt=_sddmm,
        input_program="""\
Format csr_off({uncompressed, compressed}, offChip);
Format rm_off({uncompressed, uncompressed}, offChip);
Format cm_off({uncompressed, uncompressed}, {1, 0}, offChip);
Tensor A({N, N}, csr_off);  Tensor B({N, N}, csr_off);
Tensor C({N, K}, rm_off);   Tensor D({K, N}, cm_off);
A(i, j) = B(i, j) * C(i, k) * D(k, j);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16);
stmt = stmt.environment(outerPar, 12);
Tensor ws(on);
stmt = stmt.precompute(B(i,j) * C(i,k) * D(k,j), {}, {}, ws);
stmt = stmt.accelerate(forall(k, ws += B*C*D), Spatial, Reduction, innerPar);
std::cout << A << std::endl;
""",
        paper_input_loc=17,
        paper_spatial_loc=62,
        paper_par=12,
    ),
    KernelSpec(
        name="MatTransMul",
        expression="y(i) = sum_j alpha * A(j,i) * x(j) + beta * z(i)",
        tensor_specs=(
            TensorSpec("y", "output", 1, DENSE_VECTOR),
            TensorSpec("A", "sparse", 2, CSC),
            TensorSpec("x", "dense", 1, DENSE_VECTOR),
            TensorSpec("z", "dense", 1, DENSE_VECTOR),
            TensorSpec("alpha", "scalar", 0, None),
            TensorSpec("beta", "scalar", 0, None),
        ),
        build_stmt=_mattransmul,
        input_program="""\
Format csc_off({uncompressed, compressed}, {1, 0}, offChip);
Tensor A({N, N}, csc_off);
Tensor x({N}, dense_off);  Tensor z({N}, dense_off);  Tensor y({N}, dense_off);
Tensor alpha(off);  Tensor beta(off);
y(i) = alpha() * A(j, i) * x(j) + beta() * z(i);
IndexStmt stmt = y.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 16);
Tensor ws(on);
stmt = stmt.precompute(alpha() * A(j,i) * x(j), {}, {}, ws);
stmt = stmt.accelerate(forall(j, ws += alpha*A*x), Spatial, Reduction, innerPar);
std::cout << y << std::endl;
""",
        paper_input_loc=13,
        paper_spatial_loc=50,
        paper_par=16,
    ),
    KernelSpec(
        name="Residual",
        expression="y(i) = b(i) - sum_j A(i,j) * x(j)",
        tensor_specs=(
            TensorSpec("y", "output", 1, DENSE_VECTOR),
            TensorSpec("A", "sparse", 2, CSR),
            TensorSpec("x", "dense", 1, DENSE_VECTOR),
            TensorSpec("b", "dense", 1, DENSE_VECTOR),
        ),
        build_stmt=_residual,
        input_program="""\
Tensor A({N, N}, csr_off);
Tensor x({N}, dense_off);  Tensor b({N}, dense_off);  Tensor y({N}, dense_off);
y(i) = b(i) - A(i, j) * x(j);
IndexStmt stmt = y.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 16);
Tensor ws(on);
stmt = stmt.precompute(A(i,j) * x(j), {}, {}, ws);
stmt = stmt.accelerate(forall(j, ws += A*x), Spatial, Reduction, innerPar);
std::cout << y << std::endl;
""",
        paper_input_loc=9,
        paper_spatial_loc=48,
        paper_par=16,
    ),
    KernelSpec(
        name="TTV",
        expression="A(i,j) = sum_k B(i,j,k) * c(k)",
        tensor_specs=(
            TensorSpec("A", "output", 2, DCSR),
            TensorSpec("B", "sparse", 3, CSF),
            TensorSpec("c", "dense", 1, DENSE_VECTOR),
        ),
        build_stmt=_ttv,
        input_program="""\
Format csf_off({compressed, compressed, compressed}, offChip);
Format dcsr_off({compressed, compressed}, offChip);
Tensor B({I, J, K}, csf_off);
Tensor c({K}, dense_off);
Tensor A({I, J}, dcsr_off);
A(i, j) = B(i, j, k) * c(k);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 16);
Tensor ws(on);
stmt = stmt.precompute(B(i,j,k) * c(k), {}, {}, ws);
stmt = stmt.accelerate(forall(k, ws += B*c), Spatial, Reduction, innerPar);
std::cout << A << std::endl;
""",
        paper_input_loc=13,
        paper_spatial_loc=73,
        paper_par=16,
    ),
    KernelSpec(
        name="TTM",
        expression="A(i,j,k) = sum_l B(i,j,l) * C(k,l)",
        tensor_specs=(
            TensorSpec("A", "output", 3, CCD),
            TensorSpec("B", "sparse", 3, CSF),
            TensorSpec("C", "dense", 2, DENSE_MATRIX),
        ),
        build_stmt=_ttm,
        input_program="""\
Format csf_off({compressed, compressed, compressed}, offChip);
Format ccd_off({compressed, compressed, uncompressed}, offChip);
Tensor B({I, J, L}, csf_off);
Tensor C({K, L}, rm_off);
Tensor A({I, J, K}, ccd_off);
A(i, j, k) = B(i, j, l) * C(k, l);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 12);
stmt = stmt.reorder(i, j, l, k);
std::cout << A << std::endl;
""",
        paper_input_loc=11,
        paper_spatial_loc=83,
        paper_par=12,
        uses_reduction=False,
    ),
    KernelSpec(
        name="MTTKRP",
        expression="A(i,j) = sum_kl B(i,k,l) * C(j,k) * D(j,l)",
        tensor_specs=(
            TensorSpec("A", "output", 2, DENSE_MATRIX),
            TensorSpec("B", "sparse", 3, CSF),
            TensorSpec("C", "dense", 2, DENSE_MATRIX),
            TensorSpec("D", "dense", 2, DENSE_MATRIX),
        ),
        build_stmt=_mttkrp,
        input_program="""\
Format csf_off({compressed, compressed, compressed}, offChip);
Tensor B({I, K, L}, csf_off);
Tensor C({J, K}, rm_off);  Tensor D({J, L}, rm_off);
Tensor A({I, J}, rm_off);
A(i, j) = B(i, k, l) * C(j, k) * D(j, l);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 8);
stmt = stmt.reorder(i, k, l, j);
std::cout << A << std::endl;
""",
        paper_input_loc=15,
        paper_spatial_loc=86,
        paper_par=8,
        uses_reduction=False,
    ),
    KernelSpec(
        name="InnerProd",
        expression="alpha = sum_ijk B(i,j,k) * C(i,j,k)",
        tensor_specs=(
            TensorSpec("alpha_out", "output", 0, None),
            TensorSpec("B", "sparse", 3, UCC),
            TensorSpec("C", "sparse", 3, UCC),
        ),
        build_stmt=_innerprod,
        input_program="""\
Format ucc_off({uncompressed, compressed, compressed}, offChip);
Tensor B({I, J, K}, ucc_off);  Tensor C({I, J, K}, ucc_off);
Tensor alpha(off);
alpha() = B(i, j, k) * C(i, j, k);
IndexStmt stmt = alpha.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 8);
Tensor ws(on);
stmt = stmt.precompute(B(i,j,k) * C(i,j,k), {}, {}, ws);
stmt = stmt.accelerate(forall(k, ws += B*C), Spatial, Reduction, innerPar);
std::cout << alpha << std::endl;
""",
        paper_input_loc=11,
        paper_spatial_loc=115,
        paper_par=8,
    ),
    KernelSpec(
        name="Plus2",
        expression="A(i,j,k) = B(i,j,k) + C(i,j,k)",
        tensor_specs=(
            TensorSpec("A", "output", 3, UCC),
            TensorSpec("B", "sparse", 3, UCC),
            TensorSpec("C", "sparse", 3, UCC),
        ),
        build_stmt=_plus2,
        input_program="""\
Format ucc_off({uncompressed, compressed, compressed}, offChip);
Tensor A({I, J, K}, ucc_off);
Tensor B({I, J, K}, ucc_off);  Tensor C({I, J, K}, ucc_off);
A(i, j, k) = B(i, j, k) + C(i, j, k);
IndexStmt stmt = A.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 1);
std::cout << A << std::endl;
""",
        paper_input_loc=6,
        paper_spatial_loc=163,
        paper_par=1,
        uses_reduction=False,
    ),
]

#: Format-sweep kernels: the Table 3 matrix workloads re-expressed over
#: the COO/DCSR/BCSR whole-tensor formats enabled by the singleton and
#: block level formats. They are not part of the paper's tables (no
#: ``paper_*`` reference numbers), so they live outside KERNEL_ORDER.
_FORMAT_SPECS = [
    KernelSpec(
        name="COO-SpMV",
        expression="y(i) = sum_j A(i,j) * x(j)  [A: COO]",
        tensor_specs=(
            TensorSpec("y", "output", 1, DENSE_VECTOR),
            TensorSpec("A", "sparse", 2, COO),
            TensorSpec("x", "dense", 1, DENSE_VECTOR),
        ),
        build_stmt=_coo_spmv,
        input_program="""\
Format coo_off({compressed(non-unique), singleton}, offChip);
Tensor A({N, N}, coo_off);
Tensor x({N}, dense_off);  Tensor y({N}, dense_off);
y(i) = A(i, j) * x(j);
IndexStmt stmt = y.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 1);
std::cout << y << std::endl;
""",
        paper_input_loc=0,
        paper_spatial_loc=0,
        paper_par=1,
        uses_reduction=False,
    ),
    KernelSpec(
        name="DCSR-SpMM",
        expression="C(i,j) = sum_k A(i,k) * B(k,j)  [A: DCSR]",
        tensor_specs=(
            TensorSpec("C", "output", 2, DENSE_MATRIX),
            TensorSpec("A", "sparse", 2, DCSR),
            TensorSpec("B", "dense", 2, DENSE_MATRIX),
        ),
        build_stmt=_dcsr_spmm,
        input_program="""\
Format dcsr_off({compressed, compressed}, offChip);
Tensor A({N, N}, dcsr_off);
Tensor B({N, R}, rm_off);  Tensor C({N, R}, rm_off);
C(i, j) = A(i, k) * B(k, j);
IndexStmt stmt = C.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 8);
stmt = stmt.reorder(i, k, j);
std::cout << C << std::endl;
""",
        paper_input_loc=0,
        paper_spatial_loc=0,
        paper_par=8,
        uses_reduction=False,
    ),
    KernelSpec(
        name="BCSR-SpMV",
        expression="y(I,bi) = sum_Jbj A(I,J,bi,bj) * x(J,bj)  [A: BCSR]",
        tensor_specs=(
            TensorSpec("y", "output", 2, DENSE_MATRIX),
            TensorSpec("A", "sparse", 4, BCSR),
            TensorSpec("x", "dense", 2, DENSE_MATRIX),
        ),
        build_stmt=_bcsr_spmv,
        input_program="""\
Format bcsr_off({uncompressed, compressed, block[4], block[4]}, offChip);
Tensor A({N/4, N/4, 4, 4}, bcsr_off);
Tensor x({N/4, 4}, rm_off);  Tensor y({N/4, 4}, rm_off);
y(I, bi) = A(I, J, bi, bj) * x(J, bj);
IndexStmt stmt = y.getAssignment();
stmt = stmt.environment(innerPar, 16).environment(outerPar, 8);
stmt = stmt.reorder(I, J, bi, bj);
std::cout << y << std::endl;
""",
        paper_input_loc=0,
        paper_spatial_loc=0,
        paper_par=8,
        uses_reduction=False,
    ),
]

KERNELS: dict[str, KernelSpec] = {
    spec.name: spec for spec in (*_SPECS, *_FORMAT_SPECS)
}

#: Kernel evaluation order used throughout the paper's tables.
KERNEL_ORDER = tuple(spec.name for spec in _SPECS)

#: The format-sweep kernels (plus the CSR baseline, see eval.harness).
FORMAT_KERNEL_ORDER = tuple(spec.name for spec in _FORMAT_SPECS)


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; choose from {KERNEL_ORDER}")
