"""Parallel batch executor for evaluation jobs.

Each table and figure of the paper is a fan-out over (kernel, dataset,
platform) combinations that are independent of each other. The executor
expresses that fan-out explicitly: a list of :class:`Job` descriptions is
run over a ``concurrent.futures`` pool and folded back into a list of
:class:`JobResult` in **submission order**, regardless of completion
order, so a parallel run assembles byte-identical artefacts to a serial
one. Failures are isolated per job: one diverging kernel cannot take down
a whole table regeneration.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.obs import trace as _trace
from repro.pipeline.cache import stage_computes

__all__ = ["Job", "JobResult", "default_jobs", "run_jobs"]


@dataclasses.dataclass(frozen=True)
class Job:
    """One unit of evaluation work.

    Attributes:
        key: identifying tuple, conventionally ``(kernel, dataset,
            platform)`` with ``"*"`` for an all-platform sweep.
        fn: a picklable top-level callable (so process pools work too).
        args / kwargs: call arguments.
    """

    key: tuple
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __str__(self) -> str:
        return ":".join(str(k) for k in self.key)


@dataclasses.dataclass
class JobResult:
    """Outcome of one job: either a value or a captured error."""

    job: Job
    ok: bool
    value: Any = None
    error: str | None = None
    seconds: float = 0.0
    #: Whether any pipeline stage actually *computed* (vs. every stage
    #: answered from the cache) — the dispatch utilization split.
    computed: bool = True

    def unwrap(self) -> Any:
        """The value, re-raising a summarised error for failed jobs."""
        if not self.ok:
            raise RuntimeError(f"job {self.job} failed:\n{self.error}")
        return self.value


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _run_one(job: Job,
             should_stop: Callable[[], bool] | None = None) -> JobResult:
    if should_stop is not None and should_stop():
        return JobResult(job, False,
                         error=f"job {job} cancelled before it started")
    start = time.perf_counter()
    computes_before = stage_computes()
    with _trace.span("job", key=str(job)) as sp:
        try:
            value = job.run()
            result = JobResult(job, True, value=value,
                               seconds=time.perf_counter() - start,
                               computed=stage_computes() > computes_before)
        except Exception:
            result = JobResult(job, False, error=traceback.format_exc(),
                               seconds=time.perf_counter() - start)
        sp.set(ok=result.ok, computed=result.computed)
    return result


def run_jobs(
    jobs: Sequence[Job],
    max_workers: int | None = None,
    kind: str = "thread",
    on_result: Callable[[JobResult, int, int], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> list[JobResult]:
    """Run ``jobs`` and return their results in submission order.

    Args:
        jobs: the work list.
        max_workers: pool width; ``None`` reads ``REPRO_JOBS``; ``<= 1``
            runs serially in the calling thread (no pool overhead).
        kind: ``"thread"`` (default; shares the in-memory compilation
            cache) or ``"process"`` (isolated workers; jobs and results
            must be picklable).
        on_result: progress callback, invoked from the collecting thread
            as ``on_result(result, index, total)`` in submission order
            (long sharded sweeps report per-job progress through this).
        should_stop: cooperative cancellation, checked immediately before
            each job starts; once it returns True the remaining jobs are
            recorded as failed-without-running (the sweep dispatcher
            revokes an expired in-process lease through this). Jobs
            already mid-flight run to completion. Not supported with
            ``kind="process"`` (the predicate is not picklable).
    """
    jobs = list(jobs)
    if max_workers is None:
        max_workers = default_jobs()
    total = len(jobs)

    def _collect(result: JobResult, index: int) -> JobResult:
        if on_result is not None:
            on_result(result, index, total)
        return result

    if max_workers <= 1 or len(jobs) <= 1:
        return [_collect(_run_one(job, should_stop), i)
                for i, job in enumerate(jobs)]
    if kind == "thread":
        pool_cls = ThreadPoolExecutor
    elif kind == "process":
        if should_stop is not None:
            raise ValueError("should_stop is not supported with process pools")
        pool_cls = ProcessPoolExecutor
    else:
        raise ValueError(f"unknown executor kind {kind!r}")
    workers = min(max_workers, len(jobs))
    with pool_cls(max_workers=workers) as pool:
        futures = [pool.submit(_run_one, job, should_stop) for job in jobs]
        # Collect by submission index, not completion order: deterministic.
        return [_collect(f.result(), i) for i, f in enumerate(futures)]
