"""Content-addressed compilation cache.

Stardust's evaluation compiles and simulates the same (kernel, dataset,
platform) combinations over and over; TACO-style compilers memoize lowered
kernels per (expression, format) key for exactly this reason. This module
provides that memoization for the whole pipeline:

* :func:`fingerprint_stmt` derives a stable, content-addressed key from a
  scheduled statement: the concrete index notation text, the environment
  variables, and every referenced tensor's name, shape, format, memory
  region, and packed-data hash. Two statements with the same key lower to
  the same kernel bound to the same data.
* :func:`compiler_version` hashes every source file of the ``repro``
  package, so any code change invalidates prior cache entries — stale
  results can never survive a compiler edit.
* :class:`CompilationCache` layers an in-memory LRU over an optional
  on-disk store (default ``~/.cache/repro``, overridable with the
  ``REPRO_CACHE_DIR`` environment variable). Entries are pickled under
  a per-compiler-version directory keyed by SHA-256, so the store is safe
  to share between concurrent runs: writes are atomic renames and corrupt
  or unreadable entries degrade to cache misses.
* :func:`memoize_stage` splits the pipeline into separately-keyed
  **stages** (``dataset`` generation, ``kernel`` compilation, ``stats``,
  ``resources``, and the artefact-level results). Stages are the unit of
  sharing between shard workers and of selective invalidation: the
  ``dataset`` stage is keyed by a hash of only the data/format/tensor
  sources (compiler edits keep datasets warm) and is exempt from
  ``--no-cache``, so a forced recompile never regenerates datasets.
* :func:`get_stage` / :func:`put_stage` read and write staged entries
  directly (no compute callback) for stages that *record observations*
  rather than memoize computations — the work-stealing dispatcher's
  ``cost`` stage stores observed per-job wall times this way, keyed on
  the same (kernel, dataset, scale) coordinates the ``stats`` stage
  uses, and the planner treats a missing entry as "no cost known yet".

Environment knobs (read dynamically, so tests can monkeypatch them):

* ``REPRO_CACHE_DIR`` — on-disk store location (default ``~/.cache/repro``).
* ``REPRO_NO_CACHE=1`` — disable all caching (equivalent to ``--no-cache``).
* ``REPRO_CACHE_DISK=0`` — keep the in-memory LRU but skip the disk store.
* ``REPRO_CACHE_MEM`` — in-memory LRU capacity (default 64 entries).
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.obs import trace as _trace

__all__ = [
    "CacheStats",
    "CompilationCache",
    "NO_CACHE_EXEMPT_STAGES",
    "cache_enabled",
    "cache_env_knobs",
    "compiler_version",
    "default_cache",
    "disk_cache_dir",
    "fingerprint_stmt",
    "fingerprint_tensor",
    "get_stage",
    "make_key",
    "memoize",
    "memoize_stage",
    "note_stage_compute",
    "peek_stage",
    "stage_computes",
    "put_stage",
    "stage_version",
    "subsystem_version",
]

#: Default in-memory LRU capacity.
DEFAULT_MEMORY_ENTRIES = 64

#: Soft cap on on-disk entries per compiler version (pruned oldest-first).
DEFAULT_MAX_DISK_ENTRIES = 10_000

#: How often (in puts) the disk store checks the entry cap.
_PRUNE_EVERY = 200


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _sha256(*parts: bytes | str) -> str:
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode()
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()


@functools.lru_cache(maxsize=1)
def compiler_version() -> str:
    """A hash of every ``repro`` source file (cache-invalidation token)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


@functools.lru_cache(maxsize=None)
def subsystem_version(subpackages: tuple[str, ...]) -> str:
    """A hash of the source files of selected ``repro`` subsystems.

    Narrower than :func:`compiler_version`: cache stages whose results
    depend only on part of the codebase (dataset generation does not care
    about the lowerer) key on the subsystems they actually read, so
    unrelated compiler edits keep those entries warm. Entries may name a
    subpackage directory or a single top-level module file
    (``convert.py``).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for sub in sorted(subpackages):
        target = root / sub
        paths = [target] if target.is_file() else sorted(target.rglob("*.py"))
        for path in paths:
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
    return h.hexdigest()[:16]


#: Stages still served from cache under ``--no-cache``: regenerating a
#: synthetic dataset is deterministic in (name, scale, seed) and does not
#: involve the compiler, so a forced recompile never needs to redo it.
NO_CACHE_EXEMPT_STAGES = frozenset({"dataset"})

#: Stages keyed by a subsystem hash instead of the whole-compiler hash.
#: ``convert.py`` is included wherever converted operands can be embedded
#: in an entry, so conversion-compiler edits invalidate them.
_STAGE_SUBSYSTEMS: dict[str, tuple[str, ...]] = {
    "dataset": ("convert.py", "data", "formats", "kernels", "tensor"),
    "convert": ("convert.py", "data", "formats", "tensor"),
    # Per-block operand slices and partial products of the single-kernel
    # partitioner: keyed on the slicing/packing/compute sources only, so
    # unrelated compiler edits keep staged blocks warm across dispatches.
    "partition": ("convert.py", "data", "formats", "tensor",
                  "pipeline/partition.py"),
}


def stage_version(stage: str) -> str:
    """The cache-invalidation token for one pipeline stage."""
    subs = _STAGE_SUBSYSTEMS.get(stage)
    if subs is None:
        return compiler_version()
    return subsystem_version(subs)


def fingerprint_tensor(tensor: Any) -> str:
    """``name|shape|format|data-hash`` for one operand tensor.

    The data hash covers the packed level arrays and values, so mutating a
    tensor's contents (or loading a different dataset into the same
    formats) changes the compilation key. Tensors that hold no data yet
    (e.g. outputs) hash as ``empty`` without forcing a pack.
    """
    has_data = tensor._storage is not None or bool(tensor._pending)
    if not has_data:
        data = "empty"
    else:
        storage = tensor.storage
        h = hashlib.sha256()
        for level in storage.levels:
            h.update(type(level).__name__.encode())
            for field in vars(level).values():
                if hasattr(field, "tobytes"):
                    h.update(field.tobytes())
                else:
                    h.update(repr(field).encode())
        h.update(storage.vals.tobytes())
        data = h.hexdigest()[:16]
    return f"{tensor.name}|{tensor.shape}|{tensor.format}|{data}"


def fingerprint_stmt(stmt: Any, name: str = "kernel") -> str:
    """A stable content hash of a scheduled :class:`IndexStmt`.

    Combines the CIN text (loop structure, schedule relations, map calls),
    the environment variables, the kernel name (it appears in generated
    code), every referenced tensor's fingerprint, and the compiler
    version.
    """
    env = ",".join(f"{k}={v}" for k, v in sorted(stmt.environment_vars.items()))
    tensors = sorted(fingerprint_tensor(t) for t in stmt.cin.tensors())
    return _sha256(
        "stmt", name, str(stmt.cin), env, "\n".join(tensors), compiler_version()
    )


def make_key(kind: str, *parts: Any, version: str | None = None) -> str:
    """A content-addressed key for arbitrary pipeline results.

    ``kind`` namespaces the entry (``"kernel"``, ``"evaluate"``, ...);
    remaining parts are stringified into the hash along with a version
    token — the whole-compiler hash unless the caller passes the
    narrower :func:`stage_version` — so code changes invalidate entries.
    """
    return _sha256(kind, *(repr(p) for p in parts),
                   version if version is not None else compiler_version())


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` disables caching globally."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def disk_cache_dir() -> Path | None:
    """The on-disk store location, or None when the disk layer is off."""
    if os.environ.get("REPRO_CACHE_DISK", "") in ("0", "false", "no"):
        return None
    configured = os.environ.get("REPRO_CACHE_DIR", "")
    if configured:
        return Path(configured).expanduser()
    return Path.home() / ".cache" / "repro"


#: Environment variables that change cache behaviour; dispatch workers
#: (local subprocesses, SSH remotes) must see the same values the
#: dispatcher does or their staged entries land in a different store.
_ENV_KNOBS = ("REPRO_CACHE_DIR", "REPRO_NO_CACHE", "REPRO_CACHE_DISK",
              "REPRO_CACHE_MEM")


def cache_env_knobs() -> dict[str, str]:
    """The cache-relevant ``REPRO_*`` variables currently set.

    Used by the sweep dispatcher to forward this process's cache
    configuration into worker environments (notably over SSH, where the
    local environment is not inherited).
    """
    return {k: os.environ[k] for k in _ENV_KNOBS if k in os.environ}


def _memory_entries() -> int:
    try:
        return int(os.environ.get("REPRO_CACHE_MEM", DEFAULT_MEMORY_ENTRIES))
    except ValueError:
        return DEFAULT_MEMORY_ENTRIES


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class CacheStats:
    """Hit/miss counters (observable from tests and ``repro cache info``).

    Besides the aggregate counters, staged lookups (through
    :func:`memoize_stage` or a ``stage=`` argument to
    :meth:`CompilationCache.get_or_compute`) are tallied per stage, so a
    run can show e.g. dataset-stage hits alongside kernel-stage misses.
    """

    __slots__ = ("memory_hits", "disk_hits", "misses", "stores",
                 "stage_hits", "stage_misses")

    def __init__(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.stage_hits: dict[str, int] = {}
        self.stage_misses: dict[str, int] = {}

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def record_stage(self, stage: str, hit: bool) -> None:
        counters = self.stage_hits if hit else self.stage_misses
        counters[stage] = counters.get(stage, 0) + 1

    def stage_summary(self) -> str:
        """``dataset 3h/0m, kernel 0h/3m`` — one clause per seen stage."""
        stages = sorted(set(self.stage_hits) | set(self.stage_misses))
        return ", ".join(
            f"{s} {self.stage_hits.get(s, 0)}h/{self.stage_misses.get(s, 0)}m"
            for s in stages
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "stages": {
                stage: {
                    "hits": self.stage_hits.get(stage, 0),
                    "misses": self.stage_misses.get(stage, 0),
                }
                for stage in sorted(set(self.stage_hits)
                                    | set(self.stage_misses))
            },
        }

    def __repr__(self) -> str:
        return (f"CacheStats(memory_hits={self.memory_hits}, "
                f"disk_hits={self.disk_hits}, misses={self.misses}, "
                f"stores={self.stores})")


_MISSING = object()


class CompilationCache:
    """Thread-safe in-memory LRU with an optional pickled disk store.

    Args:
        max_entries: in-memory LRU capacity (defaults to ``REPRO_CACHE_MEM``).
        disk: on-disk store directory; ``None`` resolves dynamically from
            the environment (:func:`disk_cache_dir`), ``False`` disables
            the disk layer for this cache instance.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        disk: Path | str | bool | None = None,
    ) -> None:
        self._max_entries = max_entries
        self._disk = disk
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._puts = 0
        self.stats = CacheStats()

    # -- configuration ------------------------------------------------------

    def _capacity(self) -> int:
        return self._max_entries if self._max_entries is not None else _memory_entries()

    def _disk_dir(self) -> Path | None:
        if self._disk is False:
            return None
        if self._disk in (None, True):
            return disk_cache_dir()
        return Path(self._disk)

    def _entry_path(self, key: str, version: str | None = None) -> Path | None:
        base = self._disk_dir()
        if base is None:
            return None
        return base / (version or compiler_version()) / key[:2] / f"{key}.pkl"

    # -- core operations ----------------------------------------------------

    def get(self, key: str, default: Any = None,
            version: str | None = None) -> Any:
        """Look up ``key``, falling back from memory to the disk store.

        ``version`` selects the on-disk version tree (stage entries live
        under their :func:`stage_version`; default: the compiler hash).
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
        value = self._disk_get(key, version)
        if value is not _MISSING:
            with self._lock:
                self.stats.disk_hits += 1
                self._memory_put(key, value)
            return value
        with self._lock:
            self.stats.misses += 1
        return default

    def put(self, key: str, value: Any, version: str | None = None) -> None:
        """Insert into the LRU and (best-effort) the disk store."""
        with self._lock:
            self.stats.stores += 1
            self._memory_put(key, value)
        self._disk_put(key, value, version)

    def get_or_compute(self, key: str, compute, stage: str | None = None,
                       version: str | None = None):
        """Memoize ``compute()`` under ``key``.

        ``stage`` (optional) attributes the hit or miss to a named
        pipeline stage in :attr:`stats`; ``version`` selects the on-disk
        version tree.
        """
        value = self.get(key, _MISSING, version=version)
        if stage is not None:
            with self._lock:
                self.stats.record_stage(stage, hit=value is not _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value, version=version)
        return value

    def peek(self, key: str, default: Any = None, stage: str | None = None,
             version: str | None = None):
        """:meth:`get`, with the lookup tallied per stage (no compute).

        The serve daemon answers hot requests straight from the store
        through this: a hit is a finished result, a miss goes to the
        worker pool — either way the per-stage counters in
        :attr:`stats` record it, so ``/stats`` shows daemon traffic.
        """
        value = self.get(key, _MISSING, version=version)
        if stage is not None:
            with self._lock:
                self.stats.record_stage(stage, hit=value is not _MISSING)
        return default if value is _MISSING else value

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._entry_path(key)
        return path is not None and path.exists()

    # -- memory layer (callers hold the lock) -------------------------------

    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        capacity = self._capacity()
        while len(self._memory) > capacity:
            self._memory.popitem(last=False)

    # -- disk layer ---------------------------------------------------------

    def _disk_get(self, key: str, version: str | None = None) -> Any:
        path = self._entry_path(key, version)
        if path is None or not path.exists():
            return _MISSING
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # Corrupt / truncated / version-skewed entry: drop and miss.
            try:
                path.unlink()
            except OSError:
                pass
            return _MISSING

    def _disk_put(self, key: str, value: Any, version: str | None = None) -> None:
        path = self._entry_path(key, version)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return  # disk store is best-effort; memory layer still holds it
        with self._lock:
            self._puts += 1
            should_prune = self._puts % _PRUNE_EVERY == 0
        if should_prune:
            self.prune()

    def prune(self, max_entries: int = DEFAULT_MAX_DISK_ENTRIES) -> int:
        """Bound the disk store; return the number of entries removed.

        Deletes the oldest entries beyond ``max_entries`` in each live
        version tree (the current compiler tree and the per-stage
        subsystem trees), and whole trees left behind by superseded
        versions (every source edit abandons the previous tree, which
        would otherwise grow the store without bound).
        """
        import re
        import shutil

        base = self._disk_dir()
        if base is None:
            return 0
        current = compiler_version()
        versions = {stage_version(stage) for stage in _STAGE_SUBSYSTEMS}
        versions.add(current)
        removed = 0
        try:
            siblings = list(base.iterdir())
        except OSError:
            siblings = []
        for child in siblings:
            if (child.is_dir() and child.name not in versions
                    and re.fullmatch(r"[0-9a-f]{16}", child.name)):
                try:
                    stale = sum(1 for _ in child.rglob("*.pkl"))
                except OSError:
                    # Another process is clearing the same stale tree.
                    stale = 0
                shutil.rmtree(child, ignore_errors=True)
                removed += stale
        # Bound every live version tree (the compiler tree and each stage
        # tree — dataset entries are the largest in the store), oldest
        # entries first. Concurrent shard workers share REPRO_CACHE_DIR
        # and may remove entries (or whole trees) while we walk: a
        # vanished file is not an error, it just no longer needs pruning.
        for version in sorted(versions):
            entries: list[tuple[float, Path]] = []
            try:
                for path in (base / version).glob("*/*.pkl"):
                    try:
                        entries.append((path.stat().st_mtime, path))
                    except OSError:
                        pass
            except OSError:
                continue
            entries.sort(key=lambda e: e[0])
            for _mtime, path in entries[: max(0, len(entries) - max_entries)]:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def disk_info(self) -> dict[str, Any]:
        """Location / entry count / byte size of the disk store."""
        base = self._disk_dir()
        if base is None:
            return {"dir": None, "entries": 0, "bytes": 0}
        entries = 0
        size = 0
        try:
            for path in base.rglob("*.pkl"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    pass  # entry removed by a concurrent worker mid-walk
        except OSError:
            pass  # directory tree vanished mid-walk (concurrent clear/prune)
        return {"dir": str(base), "entries": entries, "bytes": size}


# ---------------------------------------------------------------------------
# Process-wide default cache
# ---------------------------------------------------------------------------

_default_cache = CompilationCache()


def default_cache() -> CompilationCache:
    """The process-wide cache shared by the compiler facade and harness."""
    return _default_cache


def memoize(kind: str, parts: tuple, compute, use_cache: bool | None = None):
    """Memoize ``compute()`` in the default cache under a content key.

    ``use_cache=None`` honours the ``REPRO_NO_CACHE`` environment knob;
    ``False`` bypasses the cache entirely; ``True`` forces it on.
    """
    if use_cache is None:
        use_cache = cache_enabled()
    if not use_cache:
        return compute()
    return default_cache().get_or_compute(make_key(kind, *parts), compute,
                                          stage=kind)


def get_stage(stage: str, parts: tuple, default: Any = None) -> Any:
    """Read one staged entry directly (no compute callback).

    For observation stages — entries *recorded* by one run and *read* by
    a later one (the dispatcher's ``cost`` stage) — where a miss is an
    ordinary answer ("nothing observed yet"), not a trigger to compute.
    Returns ``default`` on a miss or when caching is disabled.
    """
    if not cache_enabled():
        return default
    version = stage_version(stage)
    return default_cache().get(make_key(stage, *parts, version=version),
                               default, version=version)


def peek_stage(stage: str, parts: tuple, default: Any = None) -> Any:
    """Read one staged entry with per-stage hit/miss accounting.

    Like :func:`get_stage`, but the lookup shows up in the stage
    counters — the daemon's hot path uses this so cache traffic from
    served requests is observable in ``/stats``.
    """
    if not cache_enabled():
        return default
    version = stage_version(stage)
    return default_cache().peek(make_key(stage, *parts, version=version),
                                default, stage=stage, version=version)


def put_stage(stage: str, parts: tuple, value: Any) -> None:
    """Write one staged entry directly (the counterpart of :func:`get_stage`).

    A no-op when ``REPRO_NO_CACHE`` disables caching; otherwise the entry
    lands in the stage's version tree, shared by every worker pointing at
    the same ``REPRO_CACHE_DIR``.
    """
    if not cache_enabled():
        return
    version = stage_version(stage)
    default_cache().put(make_key(stage, *parts, version=version), value,
                        version=version)


_stage_compute_local = threading.local()


def stage_computes() -> int:
    """How many stage compute callbacks have run on this thread.

    The executor snapshots this around ``job.run()`` to tell a job that
    actually compiled something from one answered wholly by the cache
    (the ``jobs_computed`` / ``jobs_cached`` split in dispatch summaries).
    Valid because each job's stages run entirely on the job's own thread.
    """
    return getattr(_stage_compute_local, "count", 0)


def note_stage_compute() -> None:
    _stage_compute_local.count = getattr(
        _stage_compute_local, "count", 0) + 1


def memoize_stage(stage: str, parts: tuple, compute,
                  use_cache: bool | None = None):
    """Memoize one pipeline **stage** under its own content key.

    Unlike :func:`memoize`, staged entries

    * key on :func:`stage_version` — the ``dataset`` stage hashes only the
      data/format/tensor sources, so compiler edits keep it warm;
    * live in the disk store under their own version tree (shared by
      every shard worker pointing at the same ``REPRO_CACHE_DIR``);
    * honour :data:`NO_CACHE_EXEMPT_STAGES`: ``use_cache=False`` (the
      ``--no-cache`` flag) still *reads and writes* exempt stages, so a
      forced recompile reuses generated datasets while every compile-side
      stage recomputes. ``REPRO_NO_CACHE=1`` disables even exempt stages.
    """
    computed = False

    def run():
        # The nonlocal flag distinguishes hit from miss; the thread-local
        # counter lets the executor attribute computes to one job (each
        # job's stages run entirely on the job's own thread).
        nonlocal computed
        computed = True
        note_stage_compute()
        return compute()

    with _trace.span(f"stage:{stage}") as sp:
        if not cache_enabled() or (
                use_cache is False and stage not in NO_CACHE_EXEMPT_STAGES):
            value = run()
        else:
            version = stage_version(stage)
            value = default_cache().get_or_compute(
                make_key(stage, *parts, version=version), run,
                stage=stage, version=version,
            )
        sp.set(hit=not computed)
    return value
