"""Distributed sweep dispatcher: dynamic chunked leases over worker pools.

PR 2's ``--shard I/N`` slices an artefact's job list statically: the
operator picks the partition up front, starts every worker by hand, and
collects the manifests themselves. SpDISTAL-style distribution moves that
responsibility into a scheduler — this module is that scheduler for the
Stardust evaluation sweep:

* The job list is cut into **chunks** (many more chunks than workers).
  Each chunk *is* a :class:`~repro.pipeline.shard.ShardSpec` slice
  (``i/C``), so a chunk worker is just the existing ``repro batch
  <artefact> --shard i/C`` CLI and its output is an ordinary
  :class:`~repro.pipeline.shard.ShardManifest`.
* Workers **pull**: an idle worker slot is leased the next pending chunk.
  Fast workers take more chunks; a static partition's straggler problem
  disappears.
* Leases are **fault-tolerant**: a worker that dies is detected by its
  exit, a worker that hangs is detected by lease expiry and killed; in
  both cases the chunk is reassigned to another slot. Chunks whose jobs
  keep failing are retried up to a bound, then their failing jobs are
  **quarantined**: recorded (with their manifests' captured tracebacks)
  in the :class:`DispatchResult` instead of poisoning the sweep.
* The collected per-chunk manifests fold through the *existing*
  validating merge (:func:`repro.pipeline.shard.merge_manifests`), so a
  clean dispatch is **byte-identical** to the serial ``repro tables``
  run — the property CI asserts on every push.
* A dispatch writing its manifests to a state directory can be
  **resumed**: already-completed chunks are loaded from disk (and
  anything else is replayed cheaply out of the staged cache under
  ``REPRO_CACHE_DIR``).

Transports are pluggable behind :class:`Transport`:

* ``local:N`` — N subprocess slots on this machine (the default).
* ``ssh:host1,host2`` — one slot per SSH host; the same worker command
  runs remotely and streams its manifest back over stdout.
* ``inline:N`` — N in-process threads (no subprocess, shares this
  process's monkeypatchable state; used by tests and tiny sweeps).
* ``queue:DIR`` — an **elastic** pool: the dispatcher enqueues chunk
  tasks into a filesystem queue (:mod:`repro.pipeline.fsqueue`) and
  ``repro worker DIR`` processes attach and detach mid-sweep; the
  dispatcher owns only enqueue, lease expiry, and collect.

With ``steal=True`` the chunk partition itself adapts: observed per-job
wall times (recorded into a persistent ``cost`` table by every
dispatch — see :mod:`repro.pipeline.steal`) shape cost-balanced
explicit-index chunks, large first and shrinking toward a ``min_chunk``
tail, so idle workers always find small work to steal. The first sweep
(no costs recorded yet) falls back to uniform chunking.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import shlex
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.pipeline.batch import ARTIFACT_NAMES, artifact_jobs
from repro.pipeline.cache import cache_enabled, cache_env_knobs, compiler_version
from repro.pipeline.fsqueue import (
    ERROR_FORMAT,
    QueueError,
    QueueTransport,
    queue_task_payload,
)
from repro.pipeline.shard import (
    MergedArtifact,
    MergeError,
    ShardManifest,
    ShardSpec,
    merge_manifests,
    run_shard,
)
from repro.pipeline.steal import (
    DEFAULT_MIN_CHUNK,
    describe_plan,
    explicit_specs,
    load_costs,
    plan_chunks,
    record_manifest_costs,
)

__all__ = [
    "ChunkRequest",
    "DispatchError",
    "DispatchResult",
    "InlineTransport",
    "LocalTransport",
    "QueueTransport",
    "SshTransport",
    "Transport",
    "WorkerHandle",
    "chunk_count",
    "dispatch",
    "parse_transport",
    "worker_env",
]

#: Default chunks leased per worker slot: enough granularity that a slow
#: chunk cannot stall the sweep, few enough that per-worker startup cost
#: stays amortised.
DEFAULT_CHUNKS_PER_WORKER = 4

#: Default lease length before a silent worker is presumed hung (seconds).
DEFAULT_LEASE_TIMEOUT = 900.0

#: Default bound on re-dispatches of one chunk after worker death, lease
#: expiry, or per-job failure (total attempts = 1 + retries).
DEFAULT_RETRIES = 2

_POLL_INTERVAL = 0.05


class DispatchError(RuntimeError):
    """The dispatcher cannot start or resume (bad spec, bad state dir)."""


# ---------------------------------------------------------------------------
# Chunk requests (what a worker is asked to run)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChunkRequest:
    """One lease unit: shard ``spec`` of ``artifact``'s job list."""

    artifact: str
    scale: float
    spec: ShardSpec
    use_cache: bool | None = None
    jobs: int | None = None  #: worker-internal thread count
    engine: str | None = None  #: functional-execution engine for cells

    def batch_args(self) -> list[str]:
        """The ``repro`` CLI arguments that run this chunk.

        ``repr(scale)`` round-trips the float exactly through argparse,
        so the worker computes the identical job list and cache keys.
        """
        args = ["batch", self.artifact, "--scale", repr(self.scale),
                "--shard", str(self.spec), "--out", "-"]
        if self.use_cache is False:
            args.append("--no-cache")
        if self.jobs is not None:
            args += ["--jobs", str(self.jobs)]
        if self.engine is not None:
            args += ["--engine", self.engine]
        return args


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class WorkerHandle:
    """A running chunk worker: poll it, kill it, read its manifest."""

    def poll(self) -> int | None:
        """Exit code, or ``None`` while still running."""
        raise NotImplementedError

    def kill(self) -> None:
        """Terminate the worker (lease expiry); must be idempotent."""
        raise NotImplementedError

    def manifest_text(self) -> str:
        """The worker's stdout (the manifest JSON on success)."""
        raise NotImplementedError

    def error_text(self) -> str:
        """The worker's stderr (progress lines / tracebacks)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker-side resources (spool files); idempotent.

        The dispatcher calls this exactly once per lease, after the
        outputs have been read or the worker has been killed.
        """


class Transport:
    """A pool of worker slots that can each run one chunk at a time."""

    #: Human-readable pool description (``local:3``).
    name: str = "transport"
    #: Number of chunks that may run concurrently.
    slots: int = 1

    def launch(self, slot: int, request: ChunkRequest) -> WorkerHandle:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


class _PopenHandle(WorkerHandle):
    """Subprocess-backed handle; stdout/stderr spool to temp files so a
    large manifest can never deadlock the pipe while we poll."""

    def __init__(self, argv: list[str], env: dict[str, str] | None) -> None:
        self._out = tempfile.NamedTemporaryFile(
            mode="w+", suffix=".out", delete=False)
        self._err = tempfile.NamedTemporaryFile(
            mode="w+", suffix=".err", delete=False)
        try:
            self._proc = subprocess.Popen(
                argv, stdout=self._out, stderr=self._err,
                stdin=subprocess.DEVNULL, env=env,
            )
        except BaseException:
            # Popen itself failed (missing ssh binary, fd exhaustion):
            # the dispatcher never sees this handle, so the spool files
            # must be cleaned up here.
            self.close()
            raise

    def poll(self) -> int | None:
        return self._proc.poll()

    def kill(self) -> None:
        if self._proc.poll() is None:
            self._proc.kill()
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
                pass

    def _read(self, handle) -> str:
        try:
            handle.flush()
            return Path(handle.name).read_text()
        except (OSError, ValueError):  # pragma: no cover - spool closed
            return ""

    def manifest_text(self) -> str:
        return self._read(self._out)

    def error_text(self) -> str:
        return self._read(self._err)

    def close(self) -> None:
        for handle in (self._out, self._err):
            try:
                handle.close()
            except OSError:  # pragma: no cover - double close is fine
                pass
            try:
                os.unlink(handle.name)
            except OSError:
                pass


def worker_env() -> dict[str, str]:
    """A spawned worker's environment: ours, plus ``repro`` importable.

    Shared by the local transport, the serve benchmark, and tests that
    launch ``python -m repro worker`` subprocesses.
    """
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


_worker_env = worker_env  # back-compat alias


class LocalTransport(Transport):
    """``local:N`` — N subprocess slots on this machine.

    Workers share the parent's ``REPRO_CACHE_DIR`` (inherited through
    the environment), so every chunk draws on the same staged cache.
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise DispatchError(f"local transport needs >= 1 slot, got {slots}")
        self.slots = slots
        self.name = f"local:{slots}"

    def argv(self, request: ChunkRequest) -> list[str]:
        return [sys.executable, "-m", "repro", *request.batch_args()]

    def launch(self, slot: int, request: ChunkRequest) -> WorkerHandle:
        return _PopenHandle(self.argv(request), worker_env())


class SshTransport(Transport):
    """``ssh:host1,host2`` — one slot per host, same CLI over SSH.

    Each host needs a checkout of this repository and a Python with the
    dependencies installed; the remote command is the exact worker
    command :class:`LocalTransport` runs, and the manifest streams back
    over stdout, so no shared filesystem is required. Knobs (read from
    the dispatcher's environment):

    * ``REPRO_SSH_REPO``   — remote checkout path (default: this repo's
      absolute path, for homogeneous clusters).
    * ``REPRO_SSH_PYTHON`` — remote interpreter (default ``python3``).

    ``REPRO_*`` cache knobs set locally are forwarded into the remote
    environment, so pointing ``REPRO_CACHE_DIR`` at a shared mount gives
    the whole pool one staged cache.
    """

    def __init__(self, hosts: list[str]) -> None:
        hosts = [h for h in hosts if h]
        if not hosts:
            raise DispatchError("ssh transport needs at least one host")
        self.hosts = hosts
        self.slots = len(hosts)
        self.name = f"ssh:{','.join(hosts)}"

    def _remote_repo(self) -> str:
        configured = os.environ.get("REPRO_SSH_REPO", "")
        if configured:
            return configured
        import repro

        return str(Path(repro.__file__).resolve().parents[2])

    def remote_command(self, request: ChunkRequest) -> str:
        python = os.environ.get("REPRO_SSH_PYTHON", "python3")
        knobs = {"PYTHONPATH": "src", **cache_env_knobs(),
                 **_trace.trace_env_knobs()}
        exports = " ".join(f"{k}={shlex.quote(v)}" for k, v in knobs.items())
        batch = " ".join(shlex.quote(a) for a in request.batch_args())
        return (f"cd {shlex.quote(self._remote_repo())} && "
                f"env {exports} {shlex.quote(python)} -m repro {batch}")

    def argv(self, request: ChunkRequest, host: str) -> list[str]:
        return ["ssh", "-o", "BatchMode=yes", host,
                self.remote_command(request)]

    def launch(self, slot: int, request: ChunkRequest) -> WorkerHandle:
        return _PopenHandle(self.argv(request, self.hosts[slot]), None)


class _ThreadHandle(WorkerHandle):
    """In-process handle: the chunk runs on a thread via run_shard."""

    def __init__(self, request: ChunkRequest) -> None:
        self._cancel = threading.Event()
        self._text = ""
        self._error = ""
        self._code: int | None = None

        def work() -> None:
            try:
                manifest = run_shard(
                    request.artifact, request.scale, request.spec,
                    jobs=request.jobs, use_cache=request.use_cache,
                    should_stop=self._cancel.is_set,
                    engine=request.engine,
                )
                self._text = manifest.to_json()
                self._code = 1 if manifest.failures() else 0
            except Exception:  # pragma: no cover - run_shard isolates jobs
                import traceback

                self._error = traceback.format_exc()
                self._code = 1

        self._thread = threading.Thread(target=work, daemon=True)
        self._thread.start()

    def poll(self) -> int | None:
        return None if self._thread.is_alive() else self._code

    def kill(self) -> None:
        # Threads cannot be killed; cancel pending jobs so the chunk
        # drains quickly and its (incomplete) manifest is discarded.
        self._cancel.set()

    def manifest_text(self) -> str:
        return "" if self._cancel.is_set() else self._text

    def error_text(self) -> str:
        return self._error


class InlineTransport(Transport):
    """``inline:N`` — N in-process threads (tests, tiny local sweeps).

    Shares this process's modules and default cache, so test fixtures
    (monkeypatched job functions, private cache directories) apply to
    the workers. A killed lease cannot interrupt a job mid-flight — the
    cancel flag skips the chunk's *remaining* jobs — so lease timeouts
    here bound scheduling, not single-job runtime.
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise DispatchError(
                f"inline transport needs >= 1 slot, got {slots}")
        self.slots = slots
        self.name = f"inline:{slots}"

    def launch(self, slot: int, request: ChunkRequest) -> WorkerHandle:
        return _ThreadHandle(request)


def parse_transport(spec: str) -> Transport:
    """Parse a ``--workers`` spec into a transport.

    ``local:N`` (subprocess pool), ``ssh:host1,host2`` (one slot per
    host), ``inline:N`` (in-process threads), ``queue:DIR`` (elastic
    filesystem queue — ``repro worker DIR`` processes attach and detach
    mid-sweep). A bare integer means ``local:N``.
    """
    text = spec.strip()
    kind, sep, arg = text.partition(":")
    if not sep and kind.isdigit():
        kind, arg = "local", kind
    try:
        if kind == "local":
            return LocalTransport(int(arg))
        if kind == "inline":
            return InlineTransport(int(arg))
    except ValueError:
        raise DispatchError(
            f"invalid worker count in {spec!r}; expected e.g. local:4"
        ) from None
    if kind == "ssh":
        return SshTransport(arg.split(","))
    if kind == "queue":
        try:
            return QueueTransport(arg)
        except QueueError as exc:
            raise DispatchError(str(exc)) from None
    raise DispatchError(
        f"unknown transport {spec!r}; expected local:N, ssh:host1,host2, "
        f"inline:N, or queue:DIR"
    )


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------


def chunk_count(total_jobs: int, slots: int,
                chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER) -> int:
    """How many lease units to cut ``total_jobs`` into for ``slots``."""
    if total_jobs < 1:
        return 1
    return min(total_jobs, max(slots, 1) * max(chunks_per_worker, 1))


@dataclasses.dataclass
class DispatchResult:
    """Outcome of one dispatch: manifests, merge, and fault report."""

    artifact: str
    scale: float
    transport: str
    chunks: int
    manifests: list[ShardManifest]
    merged: MergedArtifact | None
    quarantined: list[dict]  #: ``{"key", "error", "chunk"}`` per dead job
    lost_chunks: dict[int, str]  #: chunk index -> last transport error
    resumed_chunks: int
    attempts: int
    seconds: float
    merge_error: str | None = None  #: the final fold's refusal, if any
    steal: bool = False  #: chunks were cost-planned (not uniform fallback)
    plan: list[dict] | None = None  #: per-chunk size/estimated-cost report
    costs_recorded: int = 0  #: cost-table entries written by this dispatch
    #: Jobs whose pipeline actually computed something this run, vs. jobs
    #: answered entirely from the staged cache (resumed chunks' jobs all
    #: count as cached: nothing executed for them in this dispatch).
    jobs_computed: int = 0
    jobs_cached: int = 0

    @property
    def ok(self) -> bool:
        return self.merged is not None

    def summary(self) -> str:
        jobs = sum(len(m.jobs) for m in self.manifests)
        if self.ok:
            status = "ok"
        elif self.merge_error is not None:
            status = "merge refused"
        else:
            status = (f"{len(self.quarantined)} quarantined, "
                      f"{len(self.lost_chunks)} lost chunk(s)")
        resumed = (f", {self.resumed_chunks} resumed"
                   if self.resumed_chunks else "")
        planned = ", cost-planned" if self.steal else ""
        return (f"dispatch {self.artifact} (scale {self.scale}) over "
                f"{self.transport}: {jobs} job(s) "
                f"({self.jobs_computed} computed, "
                f"{self.jobs_cached} cached) in {self.chunks} "
                f"chunk(s){planned}, {self.attempts} lease(s){resumed}, "
                f"{self.seconds:.2f}s [{status}]")

    def failure_report(self) -> list[str]:
        """One formatted line (or block) per failure, for CLI surfaces."""
        lines = []
        for entry in self.quarantined:
            key = ":".join(str(k) for k in entry["key"])
            lines.append(f"QUARANTINED {key} (chunk {entry['chunk']}):\n"
                         f"{entry['error']}")
        for index, why in sorted(self.lost_chunks.items()):
            lines.append(f"LOST chunk {index}/{self.chunks}: {why}")
        if self.merge_error is not None:
            lines.append(f"MERGE REFUSED: {self.merge_error}")
        return lines


def _load_resume_state(
    state_dir: Path,
    artifact: str,
    scale: float,
    on_event: Callable[[str], None],
    expected: dict[int, ShardSpec] | None = None,
) -> tuple[int | None, dict[int, ShardManifest]]:
    """Completed chunks from a previous dispatch's manifest files.

    Manifests from another artefact/scale/compiler (or with failed jobs)
    are ignored — their chunks simply run again, served mostly from the
    staged cache. With ``expected`` (a cost-planned partition), only
    manifests whose shard spec — including explicit positions — matches
    the current plan are reused: a replanned chunk layout invalidates
    the old pieces, which replay cheaply from the staged cache anyway.
    """
    chunks: int | None = len(expected) if expected is not None else None
    done: dict[int, ShardManifest] = {}
    for path in sorted(state_dir.glob(f"{artifact}.chunk*.json")):
        try:
            manifest = ShardManifest.load(path)
        except Exception as exc:
            on_event(f"resume: ignoring unreadable {path.name}: {exc}")
            continue
        if (manifest.artifact != artifact or manifest.scale != scale
                or manifest.compiler != compiler_version()):
            on_event(f"resume: ignoring stale {path.name} "
                     f"(different artefact/scale/compiler)")
            continue
        if manifest.failures():
            on_event(f"resume: re-running chunk {manifest.shard} "
                     f"({len(manifest.failures())} failed job(s) on disk)")
            continue
        if expected is not None:
            if manifest.shard != expected.get(manifest.shard.index):
                on_event(f"resume: ignoring {path.name} "
                         f"(chunk plan changed)")
                continue
            done[manifest.shard.index] = manifest
            continue
        if manifest.shard.positions is not None:
            on_event(f"resume: ignoring {path.name} (cost-planned chunk, "
                     f"this dispatch is uniform)")
            continue
        if chunks is None:
            chunks = manifest.shard.count
        if manifest.shard.count != chunks:
            raise DispatchError(
                f"{path}: chunk count {manifest.shard.count} does not match "
                f"{chunks} from other manifests in {state_dir}; clear the "
                f"directory or resume with a consistent state"
            )
        done[manifest.shard.index] = manifest
    return chunks, done


def _chunk_path(state_dir: Path, artifact: str, spec: ShardSpec) -> Path:
    return state_dir / f"{artifact}.chunk{spec.index}of{spec.count}.json"


def _parse_worker_manifest(
    handle: WorkerHandle, request: ChunkRequest
) -> tuple[ShardManifest | None, str]:
    """The worker's manifest, or ``(None, why)`` when it produced none."""
    text = handle.manifest_text()
    if not text.strip():
        err = handle.error_text().strip()
        tail = err.splitlines()[-1] if err else "no output"
        return None, f"worker produced no manifest ({tail})"
    return _validate_manifest_text(text, request)


def _validate_manifest_text(
    text: str, request: ChunkRequest
) -> tuple[ShardManifest | None, str]:
    """Validate raw manifest JSON against the chunk it should answer for.

    Shared by the pool loop (worker stdout) and the queue loop (result
    files); both must refuse wrong-chunk, wrong-compiler, or malformed
    answers at acceptance, not at the final merge fold.
    """
    try:
        data = json.loads(text)
        if isinstance(data, dict) and data.get("format") == ERROR_FORMAT:
            # A queue worker that could not run the task at all reports
            # the root cause instead of a manifest; surface *its* error,
            # not a generic format refusal.
            return None, (f"worker reported a task error: "
                          f"{data.get('error', 'unknown')}")
        manifest = ShardManifest.from_dict(data,
                                           source=f"chunk {request.spec}")
    except (ValueError, TypeError) as exc:
        return None, f"worker manifest unreadable: {exc}"
    if (manifest.artifact != request.artifact
            or manifest.scale != request.scale
            or manifest.shard != request.spec):
        return None, (f"worker answered for the wrong chunk "
                      f"({manifest.artifact} {manifest.shard}, "
                      f"expected {request.artifact} {request.spec})")
    if manifest.compiler != compiler_version():
        # Catch a stale remote checkout at the first chunk, not after
        # the whole sweep's compute is spent at the merge fold.
        return None, (f"worker runs compiler {manifest.compiler}, this "
                      f"checkout is {compiler_version()} (stale remote "
                      f"checkout?)")
    return manifest, ""


def dispatch(
    artifact: str,
    scale: float,
    transport: Transport | QueueTransport | str,
    *,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
    use_cache: bool | None = None,
    worker_jobs: int | None = None,
    state_dir: str | Path | None = None,
    resume: bool = False,
    steal: bool = False,
    min_chunk: int = DEFAULT_MIN_CHUNK,
    stop_queue: bool = True,
    on_event: Callable[[str], None] | None = None,
    engine: str | None = None,
) -> DispatchResult:
    """Drive ``artifact``'s whole job list through a worker pool.

    The job list is cut into :func:`chunk_count` uniform shard-slices —
    or, with ``steal=True``, into cost-balanced explicit-index chunks
    planned from the persistent cost table (falling back to uniform on
    the first sweep, before any costs are recorded); ``min_chunk``
    floors the planned steal-tail granularity. Idle worker slots lease
    pending chunks until none remain. A worker that exits without a
    valid manifest, or outlives ``lease_timeout``, loses its lease: the
    chunk is reassigned (up to ``retries`` extra attempts). A chunk
    whose manifest still contains failed jobs after the retry bound has
    those jobs quarantined. When every chunk completed cleanly the
    manifests fold through :func:`~repro.pipeline.shard.merge_manifests`
    into output byte-identical to the serial run; otherwise ``merged``
    is ``None`` and the quarantine/lost lists say exactly what is
    missing. Every dispatch records its jobs' observed wall times into
    the cost table, so the *next* ``steal=True`` dispatch plans from
    warm data.

    A :class:`QueueTransport` (``queue:DIR``) swaps the pool loop for an
    elastic one: chunks are enqueued as task files, ``repro worker DIR``
    processes attach and detach mid-sweep, and a lease whose worker goes
    silent past ``lease_timeout`` is revoked and re-enqueued. By default
    the queue's stop sentinel is raised when the dispatch ends, draining
    attached workers; a multi-artefact sweep passes ``stop_queue=False``
    on all but its last dispatch so the pool survives between artefacts.

    ``state_dir`` persists per-chunk manifests (and enables
    ``resume=True`` to skip chunks already completed by an earlier,
    interrupted dispatch). Without it, manifests live only in memory.
    """
    start = time.perf_counter()
    if isinstance(transport, str):
        transport = parse_transport(transport)
    from repro.pipeline.partition import is_partition_artifact

    if artifact not in ARTIFACT_NAMES and not is_partition_artifact(artifact):
        raise DispatchError(
            f"unknown artefact {artifact!r}; choose from {ARTIFACT_NAMES} "
            f"or a partition:* plan")
    events = on_event if on_event is not None else (lambda _msg: None)

    state_path: Path | None = None
    if state_dir is not None:
        state_path = Path(state_dir)
        state_path.mkdir(parents=True, exist_ok=True)
    if resume and state_path is None:
        raise DispatchError("resume requires a state directory")

    keys = [job.key for job in artifact_jobs(artifact, scale)]
    total = len(keys)

    # -- chunk planning (uniform, or cost-balanced under --steal) -----------
    specs: dict[int, ShardSpec] = {}
    plan_report: list[dict] | None = None
    stolen = False
    if steal:
        costs = load_costs(artifact, scale, keys)
        planned = plan_chunks(keys, costs, transport.slots, min_chunk)
        if planned is None:
            events("steal: no recorded costs for this job list; falling "
                   "back to uniform chunking (this sweep records them)")
        else:
            spec_list = explicit_specs(planned)
            specs = {s.index: s for s in spec_list}
            plan_report = describe_plan(spec_list, keys, costs)
            stolen = True
            events(f"steal: planned {len(spec_list)} cost-balanced "
                   f"chunk(s) from {len(costs)}/{total} recorded cost(s)")

    chunks: int | None = None
    done: dict[int, ShardManifest] = {}
    if resume:
        chunks, done = _load_resume_state(
            state_path, artifact, scale, events,
            expected=specs if stolen else None)
        if done:
            events(f"resume: {len(done)}/{chunks} chunk(s) already complete "
                   f"in {state_path}")
    if stolen:
        chunks = len(specs)
    elif chunks is None:
        chunks = chunk_count(total, transport.slots, chunks_per_worker)
    if not specs:
        specs = {i: ShardSpec(i, chunks) for i in range(1, chunks + 1)}
    resumed_indices = set(done)
    resumed = len(done)

    pending = collections.deque(
        i for i in range(1, chunks + 1) if i not in done)
    attempts: dict[int, int] = {}
    last_error: dict[int, str] = {}
    lost: dict[int, str] = {}
    quarantined: list[dict] = []
    total_attempts = 0

    def request_for(index: int) -> ChunkRequest:
        return ChunkRequest(artifact, scale, specs[index],
                            use_cache=use_cache, jobs=worker_jobs,
                            engine=engine)

    def chunk_failed(index: int, why: str) -> None:
        last_error[index] = why
        _trace.event("chunk.failed", chunk=index, attempt=attempts[index],
                     why=why)
        if attempts[index] <= retries:
            events(f"chunk {specs[index]}: {why}; reassigning "
                   f"(attempt {attempts[index]} of {1 + retries})")
            pending.append(index)
        else:
            events(f"chunk {specs[index]}: {why}; retry bound reached, "
                   f"chunk lost")
            lost[index] = why

    def accept(index: int, manifest: ShardManifest) -> None:
        if manifest.failures() and attempts[index] <= retries:
            failed = [":".join(map(str, e["key"]))
                      for e in manifest.failures()]
            chunk_failed(index, f"{len(failed)} job(s) failed ({failed[0]}...)"
                         if len(failed) > 1 else f"job {failed[0]} failed")
            return
        done[index] = manifest
        _trace.event("chunk.done", chunk=index, jobs=len(manifest.jobs),
                     attempt=attempts[index])
        if state_path is not None:
            manifest.save(_chunk_path(state_path, artifact, manifest.shard))
        if manifest.failures():
            for entry in manifest.failures():
                quarantined.append({
                    "key": list(entry["key"]),
                    "error": entry.get("error", ""),
                    "chunk": index,
                })
            events(f"chunk {specs[index]}: done with "
                   f"{len(manifest.failures())} job(s) quarantined after "
                   f"{attempts[index]} attempt(s)")
        else:
            events(f"chunk {specs[index]}: done "
                   f"({len(manifest.jobs)} job(s))")

    def next_attempt(index: int) -> int:
        nonlocal total_attempts
        attempts[index] = attempts.get(index, 0) + 1
        total_attempts += 1
        return attempts[index]

    def pool_loop() -> None:
        """Launch-style transports: the dispatcher owns the worker pool."""
        #: slot -> (chunk index, handle, lease deadline)
        active: dict[int, tuple[int, WorkerHandle, float]] = {}
        try:
            while pending or active:
                # Lease pending chunks to idle slots.
                idle = [s for s in range(transport.slots) if s not in active]
                for slot in idle:
                    if not pending:
                        break
                    index = pending.popleft()
                    attempt = next_attempt(index)
                    handle = transport.launch(slot, request_for(index))
                    active[slot] = (index, handle,
                                    time.monotonic() + lease_timeout)
                    _trace.event("lease", chunk=index, slot=slot,
                                 attempt=attempt)
                    events(f"chunk {specs[index]} -> {transport} slot {slot} "
                           f"(attempt {attempt})")

                # Poll active leases.
                for slot in list(active):
                    index, handle, deadline = active[slot]
                    code = handle.poll()
                    if code is None:
                        if time.monotonic() > deadline:
                            handle.kill()
                            handle.close()
                            del active[slot]
                            _trace.event("lease.expired", chunk=index,
                                         slot=slot)
                            chunk_failed(
                                index,
                                f"lease expired after {lease_timeout:g}s "
                                f"(worker hung?)")
                        continue
                    del active[slot]
                    manifest, why = _parse_worker_manifest(handle,
                                                           request_for(index))
                    handle.close()
                    if manifest is None:
                        chunk_failed(index,
                                     f"worker exited with code {code}: {why}")
                    else:
                        accept(index, manifest)

                if active:
                    time.sleep(_POLL_INTERVAL)
        finally:
            # An escaping exception (Ctrl-C, a transport launch error)
            # must not orphan in-flight workers: revoke every live lease.
            for _index, handle, _deadline in active.values():
                handle.kill()
                handle.close()

    def queue_loop() -> None:
        """Queue transport: elastic workers attach and detach mid-sweep.

        The dispatcher only enqueues task files, revokes silent leases,
        and collects result files — it never launches a worker, so the
        pool can grow (a host attaches ``repro worker DIR``) or shrink
        (a worker is killed; its lease expires and the chunk is
        re-enqueued) at any point during the sweep.
        """
        transport.prepare()
        outstanding: set[int] = set()
        idle_scans = 0
        # Scan far less often than the in-memory pool loop: every scan
        # globs the (possibly NFS-shared) queue directories, chunks run
        # for seconds-to-minutes, and workers only poll every ~0.5s —
        # but keep sub-second leases (tests) responsive.
        poll = min(0.5, max(_POLL_INTERVAL, lease_timeout / 20))
        try:
            while pending or outstanding:
                while pending:
                    index = pending.popleft()
                    attempt = next_attempt(index)
                    transport.enqueue(index, attempt, queue_task_payload(
                        artifact, scale, specs[index], use_cache,
                        worker_jobs, lease_timeout=lease_timeout,
                        engine=engine))
                    outstanding.add(index)
                    _trace.event("enqueue", chunk=index, attempt=attempt)
                    events(f"chunk {specs[index]} -> {transport} "
                           f"(attempt {attempt})")

                progressed = False
                for index, text, path in transport.collect():
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    if index not in outstanding:
                        continue  # late duplicate of a finished chunk
                    progressed = True
                    manifest, why = _validate_manifest_text(
                        text, request_for(index))
                    outstanding.discard(index)
                    # Drop any still-pending duplicate attempt before
                    # deciding this chunk's fate.
                    transport.withdraw(index)
                    if manifest is None:
                        chunk_failed(index, f"queue worker answered with an "
                                            f"invalid manifest: {why}")
                    else:
                        accept(index, manifest)

                for index in transport.expired_leases(lease_timeout):
                    if index not in outstanding:
                        continue
                    progressed = True
                    outstanding.discard(index)
                    _trace.event("lease.expired", chunk=index)
                    chunk_failed(index,
                                 f"lease expired after {lease_timeout:g}s "
                                 f"(worker detached?)")

                if pending or not outstanding:
                    continue
                idle_scans = 0 if progressed else idle_scans + 1
                if idle_scans and idle_scans * poll >= 30:
                    idle_scans = 0
                    queued, claimed = transport.pending_counts()
                    events(f"queue: {queued} task(s) waiting, {claimed} "
                           f"claimed; attach workers with `repro worker "
                           f"{transport.root}`")
                time.sleep(poll)
        finally:
            # Withdraw leftover tasks; with stop_queue also raise the
            # stop sentinel so attached workers drain and exit instead
            # of spinning (a multi-artefact sweep keeps them attached).
            if stop_queue:
                transport.shutdown()
            else:
                transport.drain()

    with _trace.span("dispatch", artifact=artifact, scale=scale,
                     transport=str(transport)) as dispatch_span:
        if isinstance(transport, QueueTransport):
            queue_loop()
        else:
            pool_loop()

        manifests = [done[i] for i in sorted(done)]
        # Record observed wall times from freshly-executed chunks only:
        # resumed manifests carry a *previous* run's times, and re-stamping
        # them would overwrite fresher observations ("latest wins"). Fresh
        # chunks must be recorded dispatcher-side for transports whose
        # workers do not share this cache (ssh without a common mount).
        fresh = [done[i] for i in sorted(done) if i not in resumed_indices]
        costs_recorded = 0
        if cache_enabled() and fresh:
            costs_recorded = record_manifest_costs(fresh)
            events(f"cost table: recorded {costs_recorded} job time(s)")
        merged: MergedArtifact | None = None
        merge_error: str | None = None
        if not lost and not quarantined and len(done) == chunks:
            try:
                merged = merge_manifests(manifests)
            except MergeError as exc:  # pragma: no cover - defensive fold
                # Every manifest was validated at acceptance, so this is a
                # should-not-happen guard; carry the reason in the result
                # so it survives --quiet and reaches the operator.
                merge_error = str(exc)
                events(f"merge refused the collected manifests: {exc}")
        # Honest utilization numbers: a job only counts as computed when
        # a freshly-executed chunk says its pipeline ran (manifests from
        # pre-"computed"-field workers conservatively count as computed);
        # everything else — cache-served jobs and whole resumed chunks —
        # is cached work this dispatch did not spend a worker on.
        jobs_total = sum(len(m.jobs) for m in manifests)
        jobs_computed = sum(
            sum(1 for e in m.jobs if e.get("computed", True))
            for m in fresh)
        jobs_cached = jobs_total - jobs_computed
        jobs_counter = _metrics.counter(
            "repro_dispatch_jobs_total",
            "Dispatch jobs by execution kind.", ("kind",))
        jobs_counter.inc(jobs_computed, kind="computed")
        jobs_counter.inc(jobs_cached, kind="cached")
        _metrics.counter("repro_dispatch_leases_total",
                         "Chunk leases granted.").inc(total_attempts)
        _metrics.counter("repro_dispatch_chunks_lost_total",
                         "Chunks lost after the retry bound.").inc(len(lost))
        dispatch_span.set(ok=merged is not None, chunks=chunks,
                          attempts=total_attempts,
                          jobs_computed=jobs_computed,
                          jobs_cached=jobs_cached)
        return DispatchResult(
            artifact=artifact,
            scale=scale,
            transport=str(transport),
            chunks=chunks,
            manifests=manifests,
            merged=merged,
            quarantined=quarantined,
            lost_chunks=lost,
            resumed_chunks=resumed,
            attempts=total_attempts,
            seconds=time.perf_counter() - start,
            merge_error=merge_error,
            steal=stolen,
            plan=plan_report,
            costs_recorded=costs_recorded,
            jobs_computed=jobs_computed,
            jobs_cached=jobs_cached,
        )


def dispatch_summary_payload(result: DispatchResult) -> dict[str, Any]:
    """A JSON-safe report of one dispatch (for logs and CI artifacts)."""
    return {
        "artifact": result.artifact,
        "scale": result.scale,
        "transport": result.transport,
        "chunks": result.chunks,
        "attempts": result.attempts,
        "resumed_chunks": result.resumed_chunks,
        "jobs_computed": result.jobs_computed,
        "jobs_cached": result.jobs_cached,
        "ok": result.ok,
        "quarantined": result.quarantined,
        "lost_chunks": {str(k): v for k, v in result.lost_chunks.items()},
        "merge_error": result.merge_error,
        "seconds": round(result.seconds, 3),
        "steal": result.steal,
        "plan": result.plan,
        "costs_recorded": result.costs_recorded,
    }
