"""Filesystem-backed elastic job queue: the ``queue:DIR`` transport.

The ``local:``/``ssh:`` transports own their worker pool: the dispatcher
launches every worker, so the pool is fixed for the sweep's lifetime. An
elastic pool inverts that — ``repro worker DIR`` processes attach to a
shared directory whenever a host becomes available and detach (or die)
whenever it is reclaimed, and the dispatcher only owns **enqueue**,
**lease expiry**, and **collect**. No broker is required: the queue is
plain files and every mutual-exclusion step is an atomic ``os.replace``
rename, the same trick the staged cache under ``REPRO_CACHE_DIR``
already relies on. (The :class:`QueueTransport` surface is deliberately
small — enqueue / revoke / collect — so a Redis-backed variant can slot
in behind the same dispatcher loop later.)

Layout under the queue directory::

    queue/chunk-0003-a1.json          pending task (attempt 1 of chunk 3)
    claimed/chunk-0003-a1.json.<wid>  claimed by worker <wid>; its mtime
                                      is the worker's heartbeat
    results/chunk-0003-a1.<wid>.json  the worker's shard manifest
    stop                              dispatcher finished; workers exit

Claim protocol: a worker renames a task file from ``queue/`` into
``claimed/``. Rename is atomic, so exactly one of the racing workers
wins; the losers see ``FileNotFoundError`` and move on. While running,
the worker touches its claimed file every few seconds and passes a
revocation check into the executor: if the dispatcher deletes the
claimed file (lease expired — the worker is presumed detached), the
worker cancels its remaining jobs and discards the manifest. A worker
killed outright simply stops heartbeating; either way the dispatcher
re-enqueues the chunk as a new attempt. A slow-but-alive worker whose
result races the revocation is harmless: results are validated and
deduplicated per chunk, and a manifest for an already-completed chunk is
dropped.

Tasks carry the enqueuer's compiler hash; a worker running a different
checkout leaves them in the queue (with a note) instead of burning a
lease to produce a manifest the dispatcher must reject.

Besides sweep chunks, the queue carries single **compile-request** tasks
(``req-<id>.json``) — the ``repro serve`` daemon's miss path. A request
task wraps one canonical :class:`repro.service.api.CompileRequest` dict;
a worker runs it through :func:`repro.service.api.execute` and writes
the ``CompileResult`` dict back as a result file. The claim, heartbeat,
lease-expiry, and compiler-gating protocol is identical to chunks — the
two task kinds share one queue and one worker pool.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs import trace as _trace
from repro.pipeline.cache import compiler_version
from repro.pipeline.shard import ShardSpec, run_shard

__all__ = [
    "QueueError",
    "QueueTransport",
    "REQUEST_FORMAT",
    "REQUEST_RESULT_FORMAT",
    "worker_loop",
]

#: Task file schema marker.
TASK_FORMAT = "repro-queue-task"

#: Result-file marker for a task the worker could not run at all (as
#: opposed to a shard manifest with per-job failures); the dispatcher
#: surfaces its ``error`` text against the chunk's retry bound.
ERROR_FORMAT = "repro-queue-error"

#: Task/result schema markers for single compile-request tasks (the
#: ``repro serve`` miss path).
REQUEST_FORMAT = "repro-queue-request"
REQUEST_RESULT_FORMAT = "repro-queue-request-result"

#: Default seconds between heartbeat touches of a claimed task file.
#: Each task carries its dispatch's lease timeout, and the worker beats
#: at least 4x per lease so a live worker can never look silent.
HEARTBEAT_INTERVAL = 2.0

#: Floor on the heartbeat interval (pathologically short leases).
MIN_HEARTBEAT_INTERVAL = 0.05

#: Default seconds a worker sleeps between empty queue scans.
DEFAULT_POLL_INTERVAL = 0.5

_worker_seq = itertools.count(1)


class QueueError(RuntimeError):
    """The queue directory cannot be prepared or a task is malformed."""


def _atomic_write(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _worker_id() -> str:
    """Unique per worker loop, even for threads sharing one process."""
    return f"{socket.gethostname()}-{os.getpid()}-{next(_worker_seq)}"


class QueueTransport:
    """``queue:DIR`` — an elastic pool attached to a shared directory.

    Unlike the launch-style transports, the dispatcher never starts a
    worker: it enqueues tasks, expires leases, and collects results,
    while ``repro worker DIR`` processes come and go. ``slots`` is only
    the *planning width* (how many chunks the uniform planner assumes
    will run concurrently); any number of workers may actually attach.
    """

    #: Planning width when the real (elastic) worker count is unknowable.
    DEFAULT_PLANNING_SLOTS = 4

    def __init__(self, root: str | Path,
                 slots: int = DEFAULT_PLANNING_SLOTS) -> None:
        text = str(root).strip()
        if not text:
            raise QueueError("queue transport needs a directory: queue:DIR")
        self.root = Path(text)
        self.slots = slots
        self.name = f"queue:{self.root}"
        #: claim file name -> (last seen mtime, local monotonic time of
        #: the last observed mtime *change*); lease age is measured on
        #: the dispatcher's clock against observed heartbeat progress,
        #: never worker mtime vs dispatcher wall clock — multi-host
        #: pools on a shared mount must survive cross-host clock skew.
        self._lease_watch: dict[str, tuple[float, float]] = {}

    def __str__(self) -> str:
        return self.name

    # -- directory layout ---------------------------------------------------

    @property
    def queue_dir(self) -> Path:
        return self.root / "queue"

    @property
    def claimed_dir(self) -> Path:
        return self.root / "claimed"

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def prepare(self) -> None:
        """Create the layout; clear residue of any previous dispatch.

        One dispatch owns a queue directory at a time: stale task,
        claim, and result files from a crashed (kill -9 skips
        ``shutdown``) or just-finished dispatch would otherwise collide
        with the new dispatch's chunk indexes and burn retry attempts —
        a worker still holding a stale claim loses it here, notices at
        its next heartbeat, and discards its manifest.
        """
        for directory in (self.queue_dir, self.claimed_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
            for pattern in ("chunk-*", "part-*", "req-*"):
                for path in directory.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
        try:
            self.stop_path.unlink()
        except OSError:
            pass

    # -- dispatcher side ----------------------------------------------------

    def _task_name(self, index: int, attempt: int,
                   prefix: str = "chunk") -> str:
        return f"{prefix}-{index:04d}-a{attempt}.json"

    def enqueue(self, index: int, attempt: int, payload: dict) -> None:
        """Publish one chunk attempt as a pending task file.

        Blocks of a partitioned single kernel publish as ``part-*``
        tasks (the payload's artefact is a ``partition:*`` plan), so a
        queue listing distinguishes sweep chunks from kernel blocks;
        both kinds flow through the same claim/lease/result machinery.
        """
        from repro.pipeline.partition import is_partition_artifact

        prefix = ("part" if is_partition_artifact(payload.get("artifact", ""))
                  else "chunk")
        task = {"format": TASK_FORMAT, "chunk": index, "attempt": attempt,
                "compiler": compiler_version(), **payload}
        _atomic_write(self.queue_dir / self._task_name(index, attempt, prefix),
                      json.dumps(task, indent=2) + "\n")

    def withdraw(self, index: int) -> None:
        """Remove every pending/claimed file of a chunk (done or lost)."""
        for directory in (self.queue_dir, self.claimed_dir):
            for prefix in ("chunk", "part"):
                for path in directory.glob(f"{prefix}-{index:04d}-*"):
                    try:
                        path.unlink()
                    except OSError:
                        pass  # a worker claimed/finished it concurrently

    def collect(self) -> list[tuple[int, str, Path]]:
        """New result files as ``(chunk index, manifest text, path)``.

        The caller unlinks the path as it consumes each entry. A
        dispatcher killed between the unlink and persisting the chunk
        manifest loses that result — the chunk simply reruns on resume,
        served almost entirely from the staged cache.
        """
        out = []
        for path in sorted(self.results_dir.glob("chunk-*.json")) + sorted(
                self.results_dir.glob("part-*.json")):
            try:
                index = int(path.name.split("-")[1])
                out.append((index, path.read_text(), path))
            except (OSError, ValueError, IndexError):
                continue  # partially-renamed or foreign file; skip
        return out

    def _expired_claims(self, prefix: str, lease_timeout: float) -> list[str]:
        """Claim file names under ``prefix`` silent past the lease, revoked.

        A claim is "silent" when its mtime has not *changed* for
        ``lease_timeout`` on the dispatcher's own monotonic clock,
        counted from when this dispatcher first observed the claim —
        heartbeats are detected as mtime progress, so a skewed worker
        (or NFS server) clock can neither insta-expire a healthy claim
        nor keep a dead one alive.

        Deleting the claimed file *is* the revocation: the worker's next
        heartbeat fails, it cancels the task and discards its result.
        """
        now = time.monotonic()
        revoked = []
        live: set[str] = set()
        for path in self.claimed_dir.glob(prefix + "*"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # worker finished and removed it mid-scan
            live.add(path.name)
            seen = self._lease_watch.get(path.name)
            if seen is None or mtime != seen[0]:
                self._lease_watch[path.name] = (mtime, now)
                continue
            if now - seen[1] <= lease_timeout:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # finished (or another scan revoked it) first
            live.discard(path.name)
            revoked.append(path.name)
        # Forget claims that no longer exist so the watch map cannot
        # grow without bound across a long multi-artefact sweep. Each
        # prefix prunes only its own entries — the chunk scan must not
        # drop the request scan's watches, and vice versa.
        for name in list(self._lease_watch):
            if name.startswith(prefix) and name not in live:
                del self._lease_watch[name]
        return revoked

    def expired_leases(self, lease_timeout: float) -> list[int]:
        """Chunk indexes whose claims went silent past the lease, revoked."""
        revoked = []
        for prefix in ("chunk-", "part-"):
            for name in self._expired_claims(prefix, lease_timeout):
                try:
                    revoked.append(int(name.split("-")[1]))
                except (ValueError, IndexError):
                    continue
        return sorted(set(revoked))

    # -- compile-request tasks (the ``repro serve`` miss path) --------------

    def _request_name(self, rid: str) -> str:
        if not rid or not rid.replace("-", "").replace("_", "").isalnum():
            raise QueueError(f"request id {rid!r} is not filename-safe")
        return f"req-{rid}.json"

    def enqueue_request(self, rid: str, payload: dict) -> None:
        """Publish one compile-request task for any attached worker."""
        task = {"format": REQUEST_FORMAT, "id": rid,
                "compiler": compiler_version(), **payload}
        _atomic_write(self.queue_dir / self._request_name(rid),
                      json.dumps(task, indent=2) + "\n")

    def withdraw_request(self, rid: str) -> None:
        """Remove a request's pending/claimed files (answered or lost)."""
        name = self._request_name(rid)
        for path in [self.queue_dir / name,
                     *self.claimed_dir.glob(f"{name}.*")]:
            try:
                path.unlink()
            except OSError:
                pass  # a worker claimed/finished it concurrently

    def collect_requests(self) -> list[tuple[str, dict, Path]]:
        """New request results as ``(request id, payload, path)``.

        The payload is the worker's ``{"ok": True, "result": ...}`` or
        ``{"ok": False, "error": ...}`` dict; the caller unlinks the
        path as it consumes each entry.
        """
        out = []
        for path in sorted(self.results_dir.glob("req-*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # partially-renamed or foreign file; skip
            if (not isinstance(data, dict)
                    or data.get("format") != REQUEST_RESULT_FORMAT
                    or not data.get("id")):
                continue
            out.append((str(data["id"]), data, path))
        return out

    def expired_requests(self, lease_timeout: float) -> list[str]:
        """Request ids whose claims went silent past the lease, revoked."""
        revoked = []
        for name in self._expired_claims("req-", lease_timeout):
            head, sep, _wid = name.partition(".json.")
            if sep and head.startswith("req-"):
                revoked.append(head[len("req-"):])
        return sorted(set(revoked))

    def pending_counts(self) -> tuple[int, int]:
        """(queued, claimed) task file counts, for progress events."""
        queued = (len(list(self.queue_dir.glob("chunk-*.json")))
                  + len(list(self.queue_dir.glob("part-*.json"))))
        claimed = (len(list(self.claimed_dir.glob("chunk-*")))
                   + len(list(self.claimed_dir.glob("part-*"))))
        return (queued, claimed)

    def drain(self) -> None:
        """Drop leftover tasks and claims, but keep workers attached.

        Used between the dispatches of a multi-artefact sweep sharing
        one queue directory: the pool stays alive for the next
        artefact; only :meth:`shutdown` releases the workers.
        """
        for directory in (self.queue_dir, self.claimed_dir):
            for pattern in ("chunk-*", "part-*", "req-*"):
                for path in directory.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def shutdown(self) -> None:
        """Tell attached workers the sweep is over; drop leftover tasks."""
        self.drain()
        try:
            _atomic_write(self.stop_path, "stop\n")
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The worker loop (``repro worker DIR``)
# ---------------------------------------------------------------------------


def _parse_task(text: str) -> dict:
    data = json.loads(text)
    if not isinstance(data, dict):
        raise QueueError("not a repro queue task file")
    fmt = data.get("format")
    if fmt == REQUEST_FORMAT:
        if not data.get("id") or not isinstance(data.get("request"), dict):
            raise QueueError("malformed repro queue request task")
        return {
            "kind": "request",
            "id": str(data["id"]),
            "compiler": data["compiler"],
            "request": data["request"],
            "use_cache": data.get("use_cache"),
            "lease_timeout": data.get("lease_timeout"),
        }
    if fmt != TASK_FORMAT:
        raise QueueError("not a repro queue task file")
    spec = ShardSpec.parse(data["shard"])
    return {
        "kind": "shard",
        "chunk": int(data["chunk"]),
        "attempt": int(data["attempt"]),
        "compiler": data["compiler"],
        "artifact": data["artifact"],
        "scale": float(data["scale"]),
        "spec": spec,
        "use_cache": data.get("use_cache"),
        "jobs": data.get("jobs"),
        "lease_timeout": data.get("lease_timeout"),
        "engine": data.get("engine"),
    }


def _run_request(task: dict) -> dict:
    """Run one compile-request task; always returns a result payload."""
    # Lazy import: the service layer itself reaches back into the
    # pipeline, and shard workers never need it.
    from repro.service import api

    try:
        request = api.CompileRequest.from_dict(task["request"])
        result = api.execute(request, use_cache=task["use_cache"])
    except Exception as exc:
        return {"format": REQUEST_RESULT_FORMAT, "id": task["id"],
                "ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"format": REQUEST_RESULT_FORMAT, "id": task["id"],
            "ok": True, "result": result.to_dict()}


def worker_loop(
    root: str | Path,
    poll: float = DEFAULT_POLL_INTERVAL,
    max_chunks: int | None = None,
    jobs: int | None = None,
    on_event: Callable[[str], None] | None = None,
    should_exit: Callable[[], bool] | None = None,
) -> int:
    """Attach to a queue directory and run chunks until told to stop.

    The loop claims the lowest-numbered pending task (atomic rename),
    heartbeats while running it through :func:`run_shard`, writes the
    manifest into ``results/``, and releases the claim. It exits — and
    returns the number of chunks completed — when the dispatcher's
    ``stop`` sentinel appears, after ``max_chunks`` chunks, or when
    ``should_exit()`` turns true (tests detach workers mid-sweep this
    way). Attaching before the dispatcher starts, or to a directory that
    does not exist yet, just waits.
    """
    transport = QueueTransport(root)
    events = on_event if on_event is not None else (lambda _msg: None)
    wid = _worker_id()
    completed = 0
    noted_stale: set[str] = set()
    events(f"worker {wid} attached to {transport.root}")
    while True:
        if should_exit is not None and should_exit():
            events(f"worker {wid} detaching ({completed} chunk(s) done)")
            return completed
        claimed = None
        task = None
        try:
            # Serve requests are latency-sensitive; claim them before
            # sweep chunks and partitioned kernel blocks.
            candidates = (sorted(transport.queue_dir.glob("req-*.json"))
                          + sorted(transport.queue_dir.glob("chunk-*.json"))
                          + sorted(transport.queue_dir.glob("part-*.json")))
        except OSError:
            candidates = []
        for path in candidates:
            try:
                task = _parse_task(path.read_text())
            except (OSError, ValueError, KeyError, QueueError):
                continue  # claimed by another worker mid-read, or foreign
            if task["compiler"] != compiler_version():
                if path.name not in noted_stale:
                    noted_stale.add(path.name)
                    events(f"worker {wid}: skipping {path.name} (task "
                           f"compiler {task['compiler']}, this checkout is "
                           f"{compiler_version()})")
                task = None
                continue
            target = transport.claimed_dir / f"{path.name}.{wid}"
            try:
                os.replace(path, target)
            except OSError:
                task = None
                continue  # another worker won the claim race
            try:
                # The rename preserves the *enqueue*-time mtime; stamp
                # the claim immediately, or a task that waited in the
                # queue longer than the lease would be revoked before
                # the first periodic heartbeat fires.
                os.utime(target)
            except OSError:
                # The claim vanished in the rename-to-stamp window (the
                # dispatcher revoked or withdrew it): the chunk is no
                # longer ours, so skip it rather than compute a manifest
                # that would only be discarded.
                events(f"worker {wid}: claim on {path.name} lost before "
                       f"it started; skipping")
                task = None
                continue
            claimed = target
            _trace.event("claim", task=path.name, worker=wid)
            break
        if claimed is None or task is None:
            if transport.stop_path.exists():
                events(f"worker {wid} detaching: queue stopped "
                       f"({completed} chunk(s) done)")
                return completed
            time.sleep(poll)
            continue

        revoked = threading.Event()
        done = threading.Event()
        interval = HEARTBEAT_INTERVAL
        if task["lease_timeout"]:
            interval = max(MIN_HEARTBEAT_INTERVAL,
                           min(interval, float(task["lease_timeout"]) / 4))

        def heartbeat(path: Path = claimed, every: float = interval) -> None:
            while not done.wait(every):
                try:
                    os.utime(path)
                except OSError:
                    # The dispatcher deleted the claim: lease revoked.
                    revoked.set()
                    return

        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()
        if task["kind"] == "request":
            label = f"request {task['id']}"
            events(f"worker {wid}: {label} "
                   f"({task['request'].get('action', 'evaluate')} "
                   f"{task['request'].get('kernel')})")
            try:
                with _trace.span("task", kind="request", task=task["id"],
                                 worker=wid):
                    result_text = json.dumps(_run_request(task),
                                             indent=2) + "\n"
            finally:
                done.set()
                beat.join(timeout=HEARTBEAT_INTERVAL * 2)
            result_path = (transport.results_dir /
                           f"req-{task['id']}.{wid}.json")
        else:
            label = f"chunk {task['chunk']}"
            events(f"worker {wid}: chunk {task['spec']} of "
                   f"{task['artifact']} (attempt {task['attempt']})")
            try:
                with _trace.span("task", kind="chunk", task=task["chunk"],
                                 artifact=task["artifact"], worker=wid):
                    manifest = run_shard(
                        task["artifact"], task["scale"], task["spec"],
                        jobs=task["jobs"] if jobs is None else jobs,
                        use_cache=task["use_cache"],
                        should_stop=revoked.is_set,
                        engine=task["engine"],
                    )
            except Exception as exc:
                # run_shard isolates job failures; reaching here means
                # the task itself was bad (e.g. stale positions for this
                # job list). Surface it as a result the dispatcher can
                # count against the chunk's retry bound.
                manifest = None
                error = f"{type(exc).__name__}: {exc}"
            finally:
                done.set()
                beat.join(timeout=HEARTBEAT_INTERVAL * 2)
            if manifest is not None:
                result_text = manifest.to_json()
            else:
                result_text = json.dumps(
                    {"format": ERROR_FORMAT, "chunk": task["chunk"],
                     "error": error}) + "\n"
            # Mirror the claimed task's prefix (chunk-* sweep slices,
            # part-* partition blocks) so collect() pairs them back up.
            task_prefix = claimed.name.partition("-")[0]
            result_path = (transport.results_dir /
                           f"{task_prefix}-{task['chunk']:04d}"
                           f"-a{task['attempt']}.{wid}.json")

        if revoked.is_set():
            _trace.event("lease.revoked", task=label, worker=wid)
            events(f"worker {wid}: lease on {label} revoked; "
                   f"discarding result")
            continue
        try:
            _atomic_write(result_path, result_text)
        except OSError as exc:
            # Result undeliverable (full/read-only shared mount): leave
            # the claim in place. Its heartbeat has stopped, so the
            # lease expires and the dispatcher re-enqueues the task —
            # releasing the claim here would strand it with no task, no
            # claim, and no result, hanging the dispatch.
            events(f"worker {wid}: cannot write result for {label} "
                   f"({exc}); leaving the claim to expire")
            continue
        try:
            claimed.unlink()
        except OSError:
            pass
        _trace.event("result", task=label, worker=wid)
        completed += 1
        if max_chunks is not None and completed >= max_chunks:
            events(f"worker {wid} detaching: --max-chunks reached")
            return completed


def queue_task_payload(artifact: str, scale: float, spec: ShardSpec,
                       use_cache: bool | None, jobs: int | None,
                       lease_timeout: float | None = None,
                       engine: str | None = None) -> dict:
    """The transport-agnostic body of one chunk task.

    ``lease_timeout`` tells the claiming worker how often it must
    heartbeat (at least 4x per lease) so a live worker never looks
    silent to the dispatcher's expiry scan. ``engine`` selects the
    functional-execution engine the worker runs kernel cells with.
    """
    payload: dict[str, Any] = {"artifact": artifact, "scale": scale,
                               "shard": str(spec)}
    if use_cache is not None:
        payload["use_cache"] = use_cache
    if jobs is not None:
        payload["jobs"] = jobs
    if lease_timeout is not None:
        payload["lease_timeout"] = lease_timeout
    if engine is not None:
        payload["engine"] = engine
    return payload
