"""Fused multi-kernel expression pipelines (FuseFlow-style).

A :class:`PipelineRequest` is an ordered list of einsum stages sharing
named intermediates — SDDMM→SpMM sparse attention, repeated SpMV in
PageRank/CG. The planner fuses each producer→consumer connection when the
producer's output levels can stream directly into the consumer's
co-iterators without materializing the intermediate in DRAM, and inserts
a materializing **cut** when formats or reuse patterns force one:

* multi-consumer intermediates (a stream can be consumed once);
* format mismatch between the produced levels and the consumer iterator
  (via :func:`repro.core.coiteration.stream_compatible`);
* unordered or non-unique producer levels;
* scatter outputs (the producer emits coordinates out of stream order);
* gathered reuse — the consumer re-reads the intermediate out of
  production order (its access variables are not a prefix of the
  consumer's loop order), so a stream would need unbounded buffering.

Execution is stage-by-stage with the selected engine, every stage
validated cell-by-cell against the interpreter oracle; fused and unfused
runs share the same numeric path (fusion changes the *model* — compile
notes, memory plan, capstan traffic — never the values), which the CI
fusion-transparency gate byte-diffs. The headline numbers — intermediate
bytes elided and end-to-end traffic reduction — come from
:func:`repro.capstan.stats.compute_stats` with the streamed connections
marked.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Mapping

import numpy as np

from repro.capstan.stats import compute_stats
from repro.core.compiler import compile_stmt, default_engine
from repro.core.coiteration import stream_compatible
from repro.core.memory_analysis import KernelAnalysis, analyze
from repro.formats import (
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    Format,
    offChip,
    onChip,
)
from repro.ir import index_vars
from repro.schedule.stmt import INNER_PAR, OUTER_PAR, REDUCTION, SPATIAL, IndexStmt
from repro.tensor import Tensor, scalar

__all__ = [
    "ATTENTION_RANK",
    "CutDecision",
    "FusionError",
    "PIPELINES",
    "PIPELINE_ORDER",
    "PipelineRequest",
    "PipelineStage",
    "run_pipeline",
]

#: Attention head rank for the SDDMM→SpMM pipeline. A low-rank head keeps
#: the dense Q/K/V slice traffic from swamping the sparse intermediate —
#: the regime cross-expression fusion targets (the modeled reduction
#: asymptote is ``16 / (16 + 8*rank)`` of total traffic).
ATTENTION_RANK = 2

#: Relative tolerance for the per-stage engine-vs-oracle check.
_RTOL = 1e-8


class FusionError(RuntimeError):
    """A pipeline failed to plan, execute, or validate."""


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One einsum statement in a pipeline.

    ``build(env)`` receives the bound operand tensors by name (leaf inputs
    plus intermediates produced by earlier stages) and returns the
    scheduled :class:`IndexStmt` and its output tensor. ``input_formats``
    optionally pins an operand to a format different from what the
    producer stores — a declared mismatch the planner must cut.
    """

    name: str
    output: str
    inputs: tuple[str, ...]
    build: Callable[[dict[str, Tensor]], tuple[IndexStmt, Tensor]]
    input_formats: Mapping[str, Format] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class PipelineRequest:
    """An ordered list of einsum stages sharing named intermediates.

    ``setup(dims, coords, vals, rng)`` materialises the leaf input tensors
    from one matrix dataset; each stage's output becomes available to
    later stages under its ``output`` name.
    """

    name: str
    description: str
    stages: tuple[PipelineStage, ...]
    datasets: tuple[str, ...]
    setup: Callable[..., dict[str, Tensor]]

    def consumers_of(self, intermediate: str) -> list[PipelineStage]:
        return [s for s in self.stages if intermediate in s.inputs]


@dataclasses.dataclass(frozen=True)
class CutDecision:
    """The planner's verdict for one producer→consumer connection."""

    intermediate: str
    producer: str
    consumer: str
    streamed: bool
    reason: str  # "streamed" when fused, else the cut reason

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# Cut planning
# ---------------------------------------------------------------------------


def _output_scatters(analysis: KernelAnalysis) -> bool:
    """Mirror of the lowerer's scatter test: dense outputs driven by a
    non-unique level repeat coordinates, so the output stream is not in
    coordinate order."""
    out = analysis.output
    if out.is_on_chip or out.order == 0 or not out.format.is_all_dense:
        return False
    for info in analysis.foralls:
        st = info.strategy
        if st.result_iterator is None or st.result_iterator.tensor is not out:
            continue
        if any(not it.level_format.unique for it in st.driving):
            return True
    return False


def _ordered_consumption(analysis: KernelAnalysis, name: str) -> bool:
    """True when the consumer reads ``name`` exactly in production order:
    the access's index variables (in storage-level order) form a prefix of
    the consumer's loop order, so one streamed pass suffices."""
    access = None
    for asg in analysis.assignments:
        for acc in asg.rhs.accesses():
            if acc.tensor.name == name:
                access = acc
                break
        if access is not None:
            break
    if access is None:
        return False
    fmt = access.tensor.format
    level_vars = [access.indices[fmt.mode_of_level(L)] for L in range(fmt.order)]
    loop_vars = [f.ivar for f in analysis.foralls]
    if len(loop_vars) < len(level_vars):
        return False
    return all(
        lv is ov or lv.name == ov.name
        for lv, ov in zip(level_vars, loop_vars[: len(level_vars)])
    )


def _plan(
    spec: PipelineRequest,
    outs: dict[str, Tensor],
    analyses: dict[str, KernelAnalysis],
    fuse: bool,
) -> list[CutDecision]:
    """Decide stream-vs-cut for every intermediate connection."""
    decisions: list[CutDecision] = []
    for idx, stage in enumerate(spec.stages):
        consumers = [
            s for s in spec.stages[idx + 1:] if stage.output in s.inputs
        ]
        if not consumers:
            continue  # final (or unused) output: always materialized
        producer_fmt = outs[stage.output].format
        consumer_names = "+".join(s.name for s in consumers)
        if not fuse:
            reason = "fusion disabled (--no-fuse)"
        elif len(consumers) > 1:
            reason = (
                f"multi-consumer intermediate ({len(consumers)} consumers: "
                f"{consumer_names}); a stream can be consumed once"
            )
        else:
            consumer = consumers[0]
            required = consumer.input_formats.get(stage.output, producer_fmt)
            reason = stream_compatible(producer_fmt, required)
            if reason is None and _output_scatters(analyses[stage.name]):
                reason = (
                    "scatter output (producer accumulates coordinates out "
                    "of stream order)"
                )
            if reason is None and not _ordered_consumption(
                analyses[consumer.name], stage.output
            ):
                reason = (
                    f"reuse: consumer {consumer.name} gathers {stage.output} "
                    "out of production order (access variables are not a "
                    "prefix of its loop order)"
                )
        decisions.append(CutDecision(
            intermediate=stage.output,
            producer=stage.name,
            consumer=consumer_names,
            streamed=reason is None,
            reason="streamed" if reason is None else reason,
        ))
    return decisions


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _checksum(array: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(array.shape).encode())
    h.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
    return h.hexdigest()


def _build_env(stage: PipelineStage, env: dict[str, Tensor],
               dense: dict[str, np.ndarray]) -> dict[str, Tensor]:
    """The operand view one stage builds against, honouring any declared
    ``input_formats`` (a cut materializes the converted copy)."""
    view = dict(env)
    for name, fmt in stage.input_formats.items():
        t = env[name]
        if t.format == fmt:
            continue
        conv = Tensor(name, t.shape, fmt)
        if name in dense:
            conv.from_dense(dense[name])
        view[name] = conv
    return view


def run_pipeline(
    pipeline: str | PipelineRequest,
    dataset: str,
    scale: float = 0.25,
    seed: int = 7,
    *,
    fuse: bool = True,
    engine: str | None = None,
    use_cache: bool | None = None,
) -> dict:
    """Compile and execute one pipeline on one dataset.

    Returns a plain-dict report: the cut decisions, per-stage modeled
    traffic (fused and unfused), the end-to-end reduction, and a checksum
    per stage output. Fused and unfused runs share the numeric path, so
    the output checksums are byte-identical across ``fuse`` settings —
    the property the CI fusion-transparency gate enforces.
    """
    from repro.data.datasets import load_matrix_coo

    spec = PIPELINES[pipeline] if isinstance(pipeline, str) else pipeline
    if dataset not in spec.datasets:
        raise FusionError(
            f"pipeline {spec.name!r} is not evaluated on {dataset!r}; "
            f"choose from {spec.datasets}"
        )
    eng = default_engine() if engine is None else engine

    dims, coords, vals = load_matrix_coo(dataset, scale, seed,
                                         use_cache=use_cache)
    rng = np.random.default_rng([seed, 1])
    leaf = spec.setup(dims, coords, vals, rng)

    # Pass 1 — structural plan: build every stage against empty
    # intermediates, analyse loop structure, and decide the cuts.
    env: dict[str, Tensor] = dict(leaf)
    outs: dict[str, Tensor] = {}
    analyses: dict[str, KernelAnalysis] = {}
    for stage in spec.stages:
        view = _build_env(stage, env, {})
        stmt, out = stage.build(view)
        analyses[stage.name] = analyze(stmt)
        outs[stage.output] = out
        env[stage.output] = out
    decisions = _plan(spec, outs, analyses, fuse)
    by_intermediate = {d.intermediate: d for d in decisions}

    # Pass 2 — execute stage-by-stage with the chosen engine, validating
    # each stage cell-by-cell against the interpreter oracle, handing the
    # packed intermediate to the consumer (the stream in the model).
    env = dict(leaf)
    dense: dict[str, np.ndarray] = {}
    stage_rows: list[dict] = []
    outputs: dict[str, dict] = {}
    unfused_total = 0
    fused_total = 0
    for stage in spec.stages:
        view = _build_env(stage, env, dense)
        stmt, out = stage.build(view)
        streams = set()
        if fuse:
            for name in stage.inputs:
                d = by_intermediate.get(name)
                if d is not None and d.streamed:
                    streams.add(name)
            d = by_intermediate.get(stage.output)
            if d is not None and d.streamed:
                streams.add(stage.output)
        kernel = compile_stmt(stmt, name=f"{spec.name}-{stage.name}",
                              cache=use_cache, streamed=frozenset(streams))
        expected = kernel.run_dense()
        if eng == "interp":
            got = expected
        else:
            got = kernel.run_engine(eng)
            denom = max(1.0, float(np.max(np.abs(expected))) if expected.size
                        else 1.0)
            worst = float(np.max(np.abs(got - expected))) if expected.size else 0.0
            if worst > _RTOL * denom:
                raise FusionError(
                    f"stage {stage.name} of {spec.name}: engine {eng} "
                    f"diverged from the oracle (max |err| {worst:.3e} > "
                    f"{_RTOL:.0e} rel)"
                )
        base = compute_stats(kernel)
        stage_unfused = base.dram_total_bytes
        if streams:
            fused_stats = compute_stats(
                kernel,
                stream_inputs=frozenset(n for n in streams
                                        if n != stage.output),
                stream_output=stage.output in streams,
            )
            stage_fused = fused_stats.dram_total_bytes
        else:
            stage_fused = stage_unfused
        unfused_total += stage_unfused
        fused_total += stage_fused

        out.from_dense(got)
        env[stage.output] = out
        dense[stage.output] = got
        outputs[stage.output] = {
            "shape": [int(s) for s in got.shape],
            "checksum": _checksum(got),
        }
        stage_rows.append({
            "stage": stage.name,
            "output": stage.output,
            "spatial_loc": kernel.spatial_loc,
            "unfused_bytes": int(stage_unfused),
            "fused_bytes": int(stage_fused),
            "streams": sorted(streams),
        })

    final = spec.stages[-1].output
    reduction = (100.0 * (1.0 - fused_total / unfused_total)
                 if unfused_total else 0.0)
    return {
        "pipeline": spec.name,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "fused": bool(fuse),
        "engine": eng,
        "decisions": [d.to_dict() for d in decisions],
        "stages": stage_rows,
        "unfused_bytes": int(unfused_total),
        "fused_bytes": int(fused_total),
        "elided_bytes": int(unfused_total - fused_total),
        "reduction_pct": round(reduction, 2),
        "output": final,
        "checksum": outputs[final]["checksum"],
        "outputs": outputs,
    }


# ---------------------------------------------------------------------------
# The shipped pipeline registry (the pipeline_sweep artefact family)
# ---------------------------------------------------------------------------


def _env_pars(stmt: IndexStmt, ip: int, op: int) -> IndexStmt:
    return stmt.environment(INNER_PAR, ip).environment(OUTER_PAR, op)


def _attention_setup(dims, coords, vals, rng) -> dict[str, Tensor]:
    rows, cols = dims
    r = ATTENTION_RANK
    M = Tensor("M", dims, CSR(offChip)).from_coo(coords, vals)
    Q = Tensor("Q", (rows, r), DENSE_MATRIX(offChip)).from_dense(
        rng.random((rows, r)))
    Kt = Tensor("Kt", (r, cols), DENSE_MATRIX_CM(offChip)).from_dense(
        rng.random((r, cols)))
    V = Tensor("V", (cols, r), DENSE_MATRIX(offChip)).from_dense(
        rng.random((cols, r)))
    return {"M": M, "Q": Q, "Kt": Kt, "V": V}


def _attention_scores(env):
    """Masked scores: SDDMM over the sparse attention mask."""
    M, Q, Kt = env["M"], env["Q"], env["Kt"]
    S = Tensor("S", M.shape, CSR(offChip))
    i, j, k = index_vars("i j k")
    S[i, j] = M[i, j] * Q[i, k] * Kt[k, j]
    ws = scalar("ws", onChip)
    stmt = _env_pars(S.get_index_stmt(), 16, 4)
    stmt = stmt.precompute(M[i, j] * Q[i, k] * Kt[k, j], [], [], ws)
    stmt = stmt.accelerate(k, SPATIAL, REDUCTION, par=INNER_PAR)
    return stmt, S


def _attention_mix(env):
    """Value mix: SpMM of the sparse scores with the dense values."""
    S, V = env["S"], env["V"]
    O = Tensor("O", (S.shape[0], V.shape[1]), DENSE_MATRIX(offChip))
    i, j, c = index_vars("i j c")
    O[i, c] = S[i, j] * V[j, c]
    stmt = _env_pars(O.get_index_stmt(), 16, 4)
    stmt = stmt.reorder(i, j, c)
    return stmt, O


def _spmv_setup(dims, coords, vals, rng) -> dict[str, Tensor]:
    rows, cols = dims
    A = Tensor("A", dims, CSR(offChip)).from_coo(coords, vals)
    x = Tensor("x", (cols,), DENSE_VECTOR(offChip)).from_dense(
        rng.random(cols))
    return {"A": A, "x": x}


def _spmv_stage(matrix: str, vector: str, output: str):
    def build(env):
        A, x = env[matrix], env[vector]
        y = Tensor(output, (A.shape[0],), DENSE_VECTOR(offChip))
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        ws = scalar("ws", onChip)
        stmt = _env_pars(y.get_index_stmt(), 16, 4)
        stmt = stmt.precompute(A[i, j] * x[j], [], [], ws)
        stmt = stmt.accelerate(j, SPATIAL, REDUCTION, par=INNER_PAR)
        return stmt, y

    return build


def _cg_setup(dims, coords, vals, rng) -> dict[str, Tensor]:
    tensors = _spmv_setup(dims, coords, vals, rng)
    p = tensors.pop("x")
    p.name = "p"
    r = Tensor("r", (dims[0],), DENSE_VECTOR(offChip)).from_dense(
        rng.random(dims[0]))
    alpha = scalar("alpha", offChip)
    alpha.insert((), 0.5)
    return {"A": tensors["A"], "p": p, "r": r, "alpha": alpha}


def _cg_update(env):
    """The CG/PageRank vector update: z = alpha*q + r (q streamed in)."""
    q, r, alpha = env["q"], env["r"], env["alpha"]
    z = Tensor("z", q.shape, DENSE_VECTOR(offChip))
    i, = index_vars("i")
    z[i] = alpha[()] * q[i] + r[i]
    stmt = _env_pars(z.get_index_stmt(), 16, 4)
    return stmt, z


#: Matrix datasets every shipped pipeline is evaluated on.
_PIPELINE_DATASETS = ("random-10pct", "random-50pct", "Trefethen_20000")


def _registry() -> dict[str, PipelineRequest]:
    attention = PipelineRequest(
        name="attention",
        description="Sparse attention: SDDMM scores stream into the SpMM "
                    "value mix (the FuseFlow headline chain)",
        stages=(
            PipelineStage("scores", "S", ("M", "Q", "Kt"), _attention_scores),
            PipelineStage("mix", "O", ("S", "V"), _attention_mix),
        ),
        datasets=_PIPELINE_DATASETS,
        setup=_attention_setup,
    )
    twohop = PipelineRequest(
        name="twohop",
        description="2-hop graph propagation: y = A*x then z = A*y; the "
                    "consumer gathers y by column, forcing a cut",
        stages=(
            PipelineStage("hop1", "y", ("A", "x"), _spmv_stage("A", "x", "y")),
            PipelineStage("hop2", "z", ("A", "y"), _spmv_stage("A", "y", "z")),
        ),
        datasets=_PIPELINE_DATASETS,
        setup=_spmv_setup,
    )
    cgstep = PipelineRequest(
        name="cgstep",
        description="One CG/PageRank step: q = A*p streams into the "
                    "z = alpha*q + r vector update",
        stages=(
            PipelineStage("spmv", "q", ("A", "p"), _spmv_stage("A", "p", "q")),
            PipelineStage("update", "z", ("q", "r", "alpha"), _cg_update),
        ),
        datasets=_PIPELINE_DATASETS,
        setup=_cg_setup,
    )
    return {spec.name: spec for spec in (attention, twohop, cgstep)}


PIPELINES: dict[str, PipelineRequest] = _registry()
PIPELINE_ORDER: tuple[str, ...] = tuple(PIPELINES)
