"""Single-kernel distribution: SpDISTAL-style row-block partitioning.

The dispatcher (:mod:`repro.pipeline.dispatch`) shards *job lists*: each
job is one whole (kernel, dataset) cell, so a single large kernel is
still bounded by what one worker holds. SpDISTAL (Yadav et al.) removes
that ceiling by compiling *one* sparse computation into distributed
pieces. This module reproduces that capability for the matrix products
the evaluation runs end-to-end (CSR SpMV, DCSR SpMM):

* :class:`PartitionPlan` row-blocks the output iteration space of one
  kernel into ``count`` independent sub-kernels. Each block's sparse
  operand slice is cut by the conversion compiler's coordinate
  primitives (:func:`repro.convert.slice_rows`) from the staged full
  matrix and memoized under the new ``partition`` cache stage; dense
  operands are broadcast by reference (regenerated deterministically
  from the seed, never shipped).
* The plan is addressed as a **pseudo-artifact** string
  ``partition:<kernel>:<dataset>:p<P>:<mode>`` that flows wholesale
  through the batch/shard/dispatch machinery: ``artifact_jobs`` expands
  it to per-block jobs, shard manifests carry the block payloads, and
  the fault-tolerant transports (``inline:N``, ``local:N``,
  ``queue:DIR``) lease blocks exactly like sweep chunks — including
  lease expiry, work-steal tail chunking and ``--resume``.
* Partial outputs fold through a **reducing merge**
  (:func:`reduce_partials`): row-partitioned blocks concatenate (the
  merged array is byte-identical to the unpartitioned run because each
  row's dot product sees exactly the same operand subarrays in the same
  order); contraction-split (``sum`` mode) partials are summed, which
  reassociates the reduction, so they are validated cell-by-cell
  against the unpartitioned oracle instead of byte-compared.

Two partition modes:

``row``
    Split the output rows ``i``. Block ``b`` computes rows ``[lo, hi)``
    from the row slice ``A[lo:hi]`` and the full dense operand.
    Deterministic and byte-identical to serial by construction.
``sum``
    Split the contraction dimension ``k``. Every block computes a full-
    shape partial from column slice ``A[:, lo:hi]`` and dense rows
    ``[lo, hi)``; the reduce sums partials. Float results differ from
    serial only by reduction order (tolerance-validated).
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro import obs
from repro.pipeline.cache import memoize_stage

__all__ = [
    "PARTITION_FORMATS",
    "PARTITION_MODES",
    "PARTITION_PREFIX",
    "PARTITION_SEED",
    "PartitionError",
    "PartitionPlan",
    "block_range",
    "format_partition",
    "is_partition_artifact",
    "parse_partition",
    "partition_artifact",
    "partition_cell",
    "reduce_partials",
    "serial_report",
]

#: Artefact-namespace prefix for partition pseudo-artifacts.
PARTITION_PREFIX = "partition:"

#: Supported iteration-space splits.
PARTITION_MODES = ("row", "sum")

#: Partitionable kernels and the format their sparse operand stages in.
PARTITION_FORMATS = {"SpMV": "csr", "DCSR-SpMM": "dcsr"}

#: Dataset seed (the harness's fixed evaluation seed).
PARTITION_SEED = 7

#: Dense second-operand rank for SpMM (mirrors the harness's FACTOR_RANK
#: clamp in :func:`repro.data.datasets._shape_for`).
_FACTOR_RANK = 16


class PartitionError(ValueError):
    """A partition plan is malformed or its partials do not reduce."""


# ---------------------------------------------------------------------------
# Pseudo-artifact naming
# ---------------------------------------------------------------------------


def is_partition_artifact(name: str) -> bool:
    """True for ``partition:<kernel>:<dataset>:p<P>:<mode>`` strings."""
    return isinstance(name, str) and name.startswith(PARTITION_PREFIX)


def partition_artifact(kernel: str, dataset: str, count: int,
                       mode: str = "row") -> str:
    """The pseudo-artifact string addressing one partition plan."""
    return f"{PARTITION_PREFIX}{kernel}:{dataset}:p{count}:{mode}"


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """Row-block decomposition of one kernel into ``count`` sub-kernels."""

    kernel: str
    dataset: str
    count: int
    mode: str = "row"

    def __post_init__(self) -> None:
        if self.kernel not in PARTITION_FORMATS:
            raise PartitionError(
                f"kernel {self.kernel!r} is not partitionable; choose from "
                f"{sorted(PARTITION_FORMATS)}"
            )
        if self.mode not in PARTITION_MODES:
            raise PartitionError(
                f"unknown partition mode {self.mode!r}; choose from "
                f"{PARTITION_MODES}"
            )
        if self.count < 1:
            raise PartitionError(
                f"partition count must be >= 1, got {self.count}"
            )
        from repro.data.datasets import DATASETS_BY_NAME

        dspec = DATASETS_BY_NAME.get(self.dataset)
        if dspec is None or dspec.kind != "matrix":
            raise PartitionError(
                f"{self.dataset!r} is not a matrix dataset; partitioning "
                f"needs one"
            )

    @property
    def artifact(self) -> str:
        return partition_artifact(self.kernel, self.dataset, self.count,
                                  self.mode)

    @property
    def format_name(self) -> str:
        return PARTITION_FORMATS[self.kernel]

    def jobs(self, scale: float, use_cache: bool | None = None,
             engine: str | None = None) -> list:
        """One executor job per block (keys feed the steal cost table)."""
        from repro.pipeline.executor import Job

        kwargs: dict = {"use_cache": use_cache}
        if engine is not None:
            kwargs["engine"] = engine
        return [
            Job((self.kernel, self.dataset,
                 f"part{index}of{self.count}:{self.mode}"),
                partition_cell,
                (self.kernel, self.dataset, self.mode, index, self.count,
                 scale),
                dict(kwargs))
            for index in range(self.count)
        ]


def parse_partition(name: str) -> PartitionPlan:
    """Parse a pseudo-artifact string back into its plan."""
    if not is_partition_artifact(name):
        raise PartitionError(f"not a partition artefact: {name!r}")
    parts = name[len(PARTITION_PREFIX):].split(":")
    if len(parts) != 4 or not parts[2].startswith("p"):
        raise PartitionError(
            f"malformed partition artefact {name!r}; expected "
            f"partition:<kernel>:<dataset>:p<P>:<mode>"
        )
    kernel, dataset, count_spec, mode = parts
    try:
        count = int(count_spec[1:])
    except ValueError:
        raise PartitionError(
            f"malformed partition count {count_spec!r} in {name!r}"
        ) from None
    return PartitionPlan(kernel, dataset, count, mode)


def block_range(extent: int, count: int, index: int) -> tuple[int, int]:
    """Half-open range of block ``index`` in an even split of ``extent``.

    The first ``extent % count`` blocks take one extra element; blocks
    past the extent are empty (``lo == hi``), which slices and reduces
    losslessly.
    """
    if not 0 <= index < count:
        raise PartitionError(f"block {index} outside plan of {count}")
    base, rem = divmod(extent, count)
    lo = index * base + min(index, rem)
    hi = lo + base + (1 if index < rem else 0)
    return lo, hi


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


def _full_storage(plan: PartitionPlan, scale: float,
                  use_cache: bool | None = None):
    """The full sparse operand, staged once per (dataset, format)."""
    from repro.convert import staged_matrix_storage

    return staged_matrix_storage(plan.dataset, scale, PARTITION_SEED,
                                 plan.format_name, use_cache)


def _dense_operand(kernel: str, dims: tuple[int, ...]) -> np.ndarray:
    """The dense operand, regenerated deterministically from the seed.

    Blocks broadcast this by reference: every worker rebuilds the same
    array from (kernel, dims, seed) instead of shipping it, the same way
    the dataset stage regenerates matrices from their spec.
    """
    rng = np.random.default_rng(PARTITION_SEED)
    if kernel == "SpMV":
        return rng.random(dims[1])
    r = max(4, min(_FACTOR_RANK, dims[0]))
    return rng.random((dims[1], r))


def _rowwise_product(coords: np.ndarray, vals: np.ndarray, nrows: int,
                     dense: np.ndarray) -> np.ndarray:
    """Per-row dot products of sparse rows against a dense operand.

    One ``np.dot`` per stored row over that row's (vals, cols) slice.
    Because a row block sees exactly the same per-row subarrays as the
    full matrix, block results are bitwise equal to the serial run's.
    """
    out = np.zeros((nrows,) + dense.shape[1:], dtype=np.float64)
    if len(vals):
        rows = coords[:, 0]
        cols = coords[:, 1]
        bounds = np.searchsorted(rows, np.arange(nrows + 1))
        for i in range(nrows):
            s, e = bounds[i], bounds[i + 1]
            if s < e:
                out[i] = vals[s:e] @ dense[cols[s:e]]
    return out


# ---------------------------------------------------------------------------
# Per-block cell (top-level, so process pools and queue workers pickle it)
# ---------------------------------------------------------------------------


def partition_cell(kernel: str, dataset: str, mode: str, index: int,
                   count: int, scale: float,
                   use_cache: bool | None = None,
                   engine: str | None = None) -> dict:
    """Compute one block's partial output (JSON-safe payload).

    The operand slice and the block result each memoize under the
    ``partition`` stage, so a re-leased block (worker death, retry) is
    answered from the cache by whichever worker computed it first.
    ``engine`` is accepted for dispatch signature-compatibility; the
    block product is its own vectorized path.
    """
    del engine  # blocks compute row-wise regardless of sweep engine
    plan = PartitionPlan(kernel, dataset, count, mode)
    from repro.convert import slice_rows
    from repro.tensor.storage import unpack

    full = _full_storage(plan, scale, use_cache)
    dims = full.dims
    axis = 0 if mode == "row" else 1
    lo, hi = block_range(dims[axis], count, index)

    with obs.span("partition:slice", kernel=kernel, dataset=dataset,
                  mode=mode, block=index, count=count) as sp:
        sliced = memoize_stage(
            "partition",
            ("slice", kernel, dataset, scale, PARTITION_SEED, mode, index,
             count),
            lambda: slice_rows(full, lo, hi, axis=axis),
            use_cache,
        )
        sp.set(lo=lo, hi=hi, nnz=int(sliced.nnz))
    obs.counter("repro_partition_blocks_total",
                "Partition blocks sliced and computed").inc()

    def compute() -> dict:
        dense = _dense_operand(kernel, dims)
        coords, vals = unpack(sliced)
        with obs.span("partition:compute", kernel=kernel, dataset=dataset,
                      mode=mode, block=index, nnz=int(sliced.nnz)):
            if mode == "row":
                partial = _rowwise_product(coords, vals, hi - lo, dense)
            else:
                # Contraction split: full-shape partial from the column
                # slice and the matching dense rows.
                partial = _rowwise_product(coords, vals, dims[0],
                                           dense[lo:hi])
        return {
            "kernel": kernel, "dataset": dataset, "mode": mode,
            "block": index, "count": count, "lo": lo, "hi": hi,
            "scale": scale, "seed": PARTITION_SEED,
            "nnz": int(sliced.nnz), "shape": list(partial.shape),
            "values": partial.tolist(),
        }

    return memoize_stage(
        "partition",
        ("cell", kernel, dataset, scale, PARTITION_SEED, mode, index, count),
        compute, use_cache,
    )


# ---------------------------------------------------------------------------
# Reducing merge + oracle validation
# ---------------------------------------------------------------------------


def _oracle(plan: PartitionPlan, scale: float, shape: tuple[int, ...],
            use_cache: bool | None = None) -> np.ndarray:
    """Unpartitioned reference computed by an *independent* accumulation.

    ``np.add.at`` scatters every nonzero's contribution in storage order
    — a different association of the same sums than the per-row dots —
    so agreement genuinely cross-checks the partition arithmetic.
    """
    from repro.tensor.storage import unpack

    full = _full_storage(plan, scale, use_cache)
    coords, vals = unpack(full)
    dense = _dense_operand(plan.kernel, full.dims)
    oracle = np.zeros(shape, dtype=np.float64)
    if len(vals):
        contrib = (vals[:, None] * dense[coords[:, 1]]
                   if dense.ndim == 2 else vals * dense[coords[:, 1]])
        np.add.at(oracle, coords[:, 0], contrib)
    return oracle


def _validate_against_oracle(plan: PartitionPlan, scale: float,
                             out: np.ndarray,
                             use_cache: bool | None = None) -> float:
    oracle = _oracle(plan, scale, out.shape, use_cache)
    maxerr = float(np.max(np.abs(out - oracle))) if out.size else 0.0
    tol = 1e-8 * max(1.0, float(np.max(np.abs(oracle))) if out.size else 1.0)
    if maxerr > tol:
        raise PartitionError(
            f"{plan.artifact}: merged output disagrees with the "
            f"unpartitioned oracle (max |err| {maxerr:.3e} > tol {tol:.3e})"
        )
    return maxerr


def reduce_partials(artifact: str, results: list) -> dict:
    """Fold per-block partials into the merged output (reducing merge).

    Row-partitioned blocks concatenate in block order; contraction-split
    partials sum. Either way the merged array is validated cell-by-cell
    against the unpartitioned oracle before a report is built.
    """
    plan = parse_partition(artifact)
    partials = sorted((res.unwrap() for res in results),
                      key=lambda p: p["block"])
    if [p["block"] for p in partials] != list(range(plan.count)):
        raise PartitionError(
            f"{artifact}: expected blocks 0..{plan.count - 1}, got "
            f"{[p['block'] for p in partials]}"
        )
    scale = partials[0]["scale"]
    with obs.span("partition:reduce", artifact=artifact, mode=plan.mode,
                  blocks=plan.count) as sp:
        arrays = [np.asarray(p["values"], dtype=np.float64).reshape(
            tuple(p["shape"])) for p in partials]
        if plan.mode == "row":
            edges = [(p["lo"], p["hi"]) for p in partials]
            for (lo, hi), (nlo, _) in zip(edges, edges[1:]):
                if hi != nlo:
                    raise PartitionError(
                        f"{artifact}: row blocks are not contiguous at "
                        f"[{lo}, {hi}) -> [{nlo}, ...)"
                    )
            out = np.concatenate(arrays, axis=0)
        else:
            out = arrays[0]
            for arr in arrays[1:]:
                out = out + arr
        nnz_total = sum(p["nnz"] for p in partials)
        full = _full_storage(plan, scale)
        if nnz_total != int(full.nnz):
            raise PartitionError(
                f"{artifact}: blocks cover {nnz_total} nonzeros but the "
                f"full operand holds {int(full.nnz)} (lost or duplicated "
                f"work)"
            )
        maxerr = _validate_against_oracle(plan, scale, out)
        sp.set(nnz=nnz_total, maxerr=maxerr)
    obs.counter("repro_partition_reduces_total",
                "Partition reducing merges performed").inc()
    return _report_data(plan, scale, out, nnz_total, maxerr)


def _report_data(plan: PartitionPlan, scale: float, out: np.ndarray,
                 nnz_total: int, maxerr: float) -> dict:
    """The artefact data dict (shared by merged and serial paths).

    Deliberately excludes the block count: a row-mode report depends
    only on the merged array, so serial and any ``P`` byte-diff equal.
    """
    flat = out.reshape(-1)
    samples = {}
    if flat.size:
        for label, idx in (("first", 0), ("mid", flat.size // 2),
                           ("last", flat.size - 1)):
            samples[label] = repr(float(flat[idx]))
    return {
        "kernel": plan.kernel,
        "dataset": plan.dataset,
        "mode": plan.mode,
        "scale": repr(float(scale)),
        "shape": list(out.shape),
        "nnz": nnz_total,
        "sha256": hashlib.sha256(out.tobytes()).hexdigest(),
        "sum": repr(float(flat.sum())),
        "samples": samples,
        "oracle_maxerr": repr(maxerr),
    }


def format_partition(data: dict) -> str:
    """Render the partition report (the dispatch/serial comparison surface)."""
    lines = [
        f"# distributed kernel: {data['kernel']} on {data['dataset']} "
        f"(scale {data['scale']}, mode {data['mode']})",
        f"output shape = {tuple(data['shape'])}",
        f"operand nnz  = {data['nnz']}",
        f"sha256       = {data['sha256']}",
        f"sum          = {data['sum']}",
    ]
    for label, value in data["samples"].items():
        lines.append(f"sample {label:<5} = {value}")
    lines.append(f"oracle maxerr = {data['oracle_maxerr']}")
    return "\n".join(lines)


def serial_report(kernel: str, dataset: str, scale: float,
                  mode: str = "row",
                  use_cache: bool | None = None) -> str:
    """The unpartitioned run's report text (the byte-identity reference).

    Computes the full product in-process with the same per-row dots the
    blocks use, validates it against the oracle, and renders the same
    report — so ``diff`` against any row-partitioned dispatch is empty.
    """
    from repro.tensor.storage import unpack

    plan = PartitionPlan(kernel, dataset, 1, mode)
    full = _full_storage(plan, scale, use_cache)
    dense = _dense_operand(kernel, full.dims)
    coords, vals = unpack(full)
    with obs.span("partition:compute", kernel=kernel, dataset=dataset,
                  mode=mode, block=0, nnz=int(full.nnz)):
        out = _rowwise_product(coords, vals, full.dims[0], dense)
    maxerr = _validate_against_oracle(plan, scale, out, use_cache)
    return format_partition(
        _report_data(plan, scale, out, int(full.nnz), maxerr)
    )
