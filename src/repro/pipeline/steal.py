"""Cost-model-driven work stealing: observed job costs shape the chunks.

The PR 4 dispatcher cuts an artefact's job list into *count*-balanced
round-robin chunks. That partition is blind to cost, and the Stardust
sweep is wildly irregular — compile+simulate time spans orders of
magnitude between a dense GEMV cell and a large blocked SpMM cell — so
the slowest chunk becomes the critical path (the load-imbalance problem
SpDISTAL observes for distributed sparse tensor sweeps). This module
closes that gap in two pieces:

* A **persistent cost table**: every dispatch records each successful
  job's observed wall time (the ``seconds`` field its worker manifest
  already carries) into the staged cache under a new ``cost`` stage,
  keyed on the same (artifact, scale, job-key) coordinates the ``stats``
  stage uses. Workers sharing ``REPRO_CACHE_DIR`` share the table; the
  entries live in the compiler-version tree, so a compiler edit resets
  the model along with the results it described. A recorded cost
  reflects cache warmth too — a job whose stages are already staged
  replays in milliseconds, and *that* is its cost for the next sweep.
* A **chunk planner** (:func:`plan_chunks`): guided self-scheduling over
  costs. Jobs are taken in descending cost order; each chunk claims jobs
  until it holds ``remaining_cost / (2 * slots)`` worth, floored at
  ``min_chunk`` jobs — so early chunks are cost-heavy (the expensive
  jobs start first and nothing big is left to straggle at the end) and
  the tail degenerates into ``min_chunk``-job slivers that an idle
  worker can always steal. The output is a list of explicit-index
  :class:`~repro.pipeline.shard.ShardSpec` chunks: a true partition of
  the canonical job list, so the merged result stays byte-identical to
  the serial run.

When no costs are recorded yet (first sweep, or a fresh compiler
version), :func:`plan_chunks` returns ``None`` and the dispatcher falls
back to uniform round-robin chunking — which itself records costs, so
the *next* ``--steal`` dispatch plans from a warm table.
"""

from __future__ import annotations

from statistics import median
from typing import Iterable

from repro.pipeline.cache import get_stage, put_stage
from repro.pipeline.shard import ShardManifest, ShardSpec

__all__ = [
    "COST_STAGE",
    "DEFAULT_MIN_CHUNK",
    "explicit_specs",
    "export_costs",
    "load_costs",
    "plan_chunks",
    "record_manifest_costs",
]

#: The staged-cache stage name job costs are recorded under.
COST_STAGE = "cost"

#: Default floor on jobs per planned chunk (the steal-tail granularity).
DEFAULT_MIN_CHUNK = 1


# ---------------------------------------------------------------------------
# The cost table (persistent, shared through the staged cache)
# ---------------------------------------------------------------------------


def _cost_parts(artifact: str, scale: float, key: tuple) -> tuple:
    # repr(scale) round-trips the float exactly (the same trick the
    # worker command line uses), so dispatcher and workers agree on keys.
    return (artifact, repr(scale), tuple(key))


def record_cost(artifact: str, scale: float, key: tuple,
                seconds: float) -> None:
    """Record one observed job wall time (latest observation wins)."""
    put_stage(COST_STAGE, _cost_parts(artifact, scale, key), float(seconds))


def record_manifest_costs(manifests: Iterable[ShardManifest]) -> int:
    """Record every successful job's wall time from collected manifests.

    Returns the number of entries written. Failed jobs are skipped: a
    traceback's wall time says nothing about the cost of the job done
    right.
    """
    recorded = 0
    for manifest in manifests:
        for entry in manifest.jobs:
            if not entry["ok"]:
                continue
            record_cost(manifest.artifact, manifest.scale,
                        tuple(entry["key"]), entry.get("seconds", 0.0))
            recorded += 1
    return recorded


def load_costs(artifact: str, scale: float,
               keys: list[tuple]) -> dict[tuple, float]:
    """The recorded cost of each job in ``keys`` (absent = never seen)."""
    costs: dict[tuple, float] = {}
    for key in keys:
        seconds = get_stage(COST_STAGE, _cost_parts(artifact, scale, key))
        if seconds is not None:
            costs[tuple(key)] = float(seconds)
    return costs


def export_costs(artifact: str, scale: float,
                 keys: list[tuple]) -> dict[str, float]:
    """The cost table as a JSON-safe mapping (for CI artifacts/logs)."""
    return {":".join(map(str, key)): seconds
            for key, seconds in sorted(load_costs(artifact, scale,
                                                  keys).items())}


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


def plan_chunks(
    keys: list[tuple],
    costs: dict[tuple, float],
    slots: int,
    min_chunk: int = DEFAULT_MIN_CHUNK,
) -> list[tuple[int, ...]] | None:
    """Cut job positions into cost-balanced chunks (guided scheduling).

    Returns one tuple of 0-based job-list positions per chunk — together
    a partition of ``range(len(keys))`` — or ``None`` when ``costs``
    holds no entry for any job (first sweep: the caller falls back to
    uniform chunking). Jobs with no recorded cost are priced at the
    median of the known costs, so one new kernel joining a warm sweep
    does not distort the plan.

    The plan is **deterministic** in its inputs: the same keys, costs,
    ``slots``, and ``min_chunk`` produce the same chunk boundaries on
    every run (no randomness, no wall-clock reads), which is what makes
    a ``--steal`` dispatch resumable and its manifests auditable.
    """
    n = len(keys)
    if n == 0:
        return None
    known = [costs[key] for key in keys if key in costs]
    if not known:
        return None
    fill = median(known)
    by_position = [costs.get(key, fill) for key in keys]
    # Descending cost, position as the deterministic tie-break.
    order = sorted(range(n), key=lambda p: (-by_position[p], p))
    min_chunk = max(1, min_chunk)

    chunks: list[tuple[int, ...]] = []
    remaining = sum(by_position)
    slots = max(1, slots)
    i = 0
    while i < n:
        target = remaining / (2 * slots)
        take: list[int] = []
        acc = 0.0
        while i < n and (len(take) < min_chunk or acc < target):
            take.append(order[i])
            acc += by_position[order[i]]
            i += 1
        chunks.append(tuple(sorted(take)))
        remaining = max(0.0, remaining - acc)
    return chunks


def explicit_specs(chunks: list[tuple[int, ...]]) -> list[ShardSpec]:
    """Planned position chunks as explicit-index :class:`ShardSpec`\\ s."""
    count = len(chunks)
    return [ShardSpec(i + 1, count, positions)
            for i, positions in enumerate(chunks)]


def describe_plan(
    specs: list[ShardSpec],
    keys: list[tuple],
    costs: dict[tuple, float],
) -> list[dict]:
    """A JSON-safe per-chunk report: size and estimated cost.

    Uploaded by the nightly sweep so chunk-balance regressions (one
    chunk hoarding most of the estimated cost) are inspectable across
    runs without rerunning anything.
    """
    known = list(costs.values())
    fill = median(known) if known else 0.0
    plan = []
    for spec in specs:
        if spec.positions is None:
            raise ValueError(f"describe_plan needs explicit-index specs, "
                             f"got uniform {spec}")
        est = sum(costs.get(keys[p], fill) for p in spec.positions)
        plan.append({
            "chunk": str(spec),
            "jobs": len(spec.positions),
            "estimated_cost_s": round(est, 6),
        })
    return plan
