"""Tables and figures as explicit (kernel, dataset, platform) job lists.

The evaluation harness regenerates every artefact of Section 8 by fanning
out over independent combinations. This module makes that fan-out a
first-class object: :func:`artifact_jobs` returns the job list for one
artefact, :func:`run_artifact` executes it (serially or over a worker
pool) and folds the per-job results into exactly the data structure the
harness's serial loops produce — deterministic ordering guarantees the
two are byte-identical. ``python -m repro batch`` drives this directly.
"""

from __future__ import annotations

import dataclasses
import time
from statistics import geometric_mean
from typing import Any

from repro.pipeline.cache import memoize_stage
from repro.pipeline.executor import Job, JobResult, run_jobs

__all__ = [
    "ARTIFACT_NAMES",
    "BatchRun",
    "artifact_jobs",
    "assemble_artifact",
    "format_artifact",
    "record_result_costs",
    "run_artifact",
    "run_batch",
]

#: Artefacts the batch runner can regenerate.
ARTIFACT_NAMES = ("table3", "table5", "table6", "figure12", "format_sweep",
                  "pipeline_sweep")


# ---------------------------------------------------------------------------
# Per-cell job functions (top-level, so process pools can pickle them)
# ---------------------------------------------------------------------------


def evaluate_cell(kernel_name: str, dataset_name: str, scale: float,
                  use_cache: bool | None = None,
                  engine: str | None = None):
    """One Table 6 cell: all-platform times for one kernel+dataset.

    When ``engine`` is set, the cell first executes the kernel
    functionally with that engine and validates the result against the
    interpreter oracle (:func:`repro.service.api.exec_check`); a
    disagreeing engine fails the job, so engine-selected artefact runs
    genuinely gate execution equivalence. The simulator-predicted times
    themselves are engine-invariant: the request keyed *with* the engine
    carries the check, the engine-less request carries the times, so
    shard manifests stay byte-identical across engines.
    """
    from repro.service import api

    if engine is not None:
        api.exec_check(
            api.CompileRequest(kernel=kernel_name, dataset=dataset_name,
                               scale=scale, engine=engine),
            use_cache=use_cache,
        )
    result = api.evaluate(
        api.CompileRequest(kernel=kernel_name, dataset=dataset_name,
                           scale=scale),
        use_cache=use_cache,
    )
    return result.platform_times()


def table5_cell(kernel_name: str, scale: float,
                use_cache: bool | None = None):
    """One Table 5 row: the resource estimate for one compiled kernel.

    Memoized under the ``resources`` stage with the same coordinate key
    the Table 6 simulations use, so whichever shard computes a kernel's
    estimate first serves every other artefact that needs it.
    """
    from repro.capstan.resources import estimate_resources
    from repro.service import api

    dataset = api.first_dataset(kernel_name)

    def compute():
        kernel = api.build(
            api.CompileRequest(kernel=kernel_name, dataset=dataset,
                               scale=scale),
            use_cache=use_cache,
        )
        return estimate_resources(kernel)

    return memoize_stage("resources", (kernel_name, dataset, scale, 7),
                         compute, use_cache)


def table3_cell(kernel_name: str, scale: float,
                use_cache: bool | None = None):
    """One Table 3 row: input vs generated lines of code."""
    from repro.eval import paper_results
    from repro.service import api

    def compute():
        # The compile-action request renders exactly this cell's data
        # (and shares its staged entry with `repro compile` and the
        # daemon's /compile endpoint).
        result = api.compile(
            api.CompileRequest(kernel=kernel_name, scale=scale,
                               action="compile"),
            use_cache=use_cache,
        )
        paper_in, paper_sp = paper_results.TABLE3_LOC[kernel_name]
        return {
            "input_loc": result.input_loc,
            "spatial_loc": result.spatial_loc,
            "paper_input_loc": paper_in,
            "paper_spatial_loc": paper_sp,
        }

    return memoize_stage("table3", (kernel_name, scale), compute, use_cache)


def figure12_cell(kernel_name: str, scale: float,
                  use_cache: bool | None = None):
    """One Figure 12 series: the bandwidth sweep for one kernel."""
    from repro.capstan.simulator import CapstanSimulator
    from repro.capstan.stats import compute_stats_cached
    from repro.eval.paper_results import FIG12_BANDWIDTHS
    from repro.service import api

    dataset = api.first_dataset(kernel_name)

    def compute():
        kernel = api.build(
            api.CompileRequest(kernel=kernel_name, dataset=dataset,
                               scale=scale),
            use_cache=use_cache,
        )
        # Shares the per-cell stats entry with the Table 6 simulations.
        stats = compute_stats_cached(kernel, (kernel_name, dataset, scale, 7),
                                     use_cache)
        sweep = CapstanSimulator().sweep_bandwidth(
            kernel, None, FIG12_BANDWIDTHS, stats
        )
        base = sweep[FIG12_BANDWIDTHS[0]].seconds
        return {bw: base / res.seconds for bw, res in sweep.items()}

    return memoize_stage("figure12", (kernel_name, scale), compute, use_cache)


def format_sweep_cell(kernel_name: str, dataset_name: str, scale: float,
                      use_cache: bool | None = None,
                      engine: str | None = None):
    """One format-sweep cell: per-format cost of a kernel on one dataset.

    The kernel's sparse operand is staged once per (dataset, format) by
    the conversion compiler (``repro.convert``), so every cell sharing a
    dataset reuses the same generated matrix and every cell sharing a
    format reuses the converted storage. ``engine`` adds the same
    functional equivalence check as :func:`evaluate_cell`.
    """
    from repro.capstan.dram import HBM2E
    from repro.capstan.resources import estimate_resources_cached
    from repro.capstan.simulator import CapstanSimulator
    from repro.capstan.stats import compute_stats_cached
    from repro.service import api

    if engine is not None:
        api.exec_check(
            api.CompileRequest(kernel=kernel_name, dataset=dataset_name,
                               scale=scale, engine=engine),
            use_cache=use_cache,
        )

    def compute():
        coords = (kernel_name, dataset_name, scale, 7)
        kernel = api.build(
            api.CompileRequest(kernel=kernel_name, dataset=dataset_name,
                               scale=scale),
            use_cache=use_cache,
        )
        stats = compute_stats_cached(kernel, coords, use_cache)
        resources = estimate_resources_cached(kernel, coords, use_cache)
        seconds = CapstanSimulator().simulate(
            kernel, dram=HBM2E, stats=stats, resources=resources
        ).seconds
        storage = kernel.tensors["A"].storage
        return {
            "format": str(kernel.tensors["A"].format),
            "nnz": int(storage.nnz),
            "storage_bytes": int(storage.bytes_total()),
            "spatial_loc": int(kernel.spatial_loc),
            "pcu": int(resources.pcu),
            "pmu": int(resources.pmu),
            "dram_bytes": int(stats.dram_total_bytes),
            "seconds": float(seconds),
        }

    return memoize_stage("format_sweep", (kernel_name, dataset_name, scale, 7),
                         compute, use_cache)


def pipeline_sweep_cell(pipeline_name: str, dataset_name: str, scale: float,
                        use_cache: bool | None = None,
                        engine: str | None = None):
    """One pipeline-sweep cell: the fused-vs-unfused report for one
    pipeline on one dataset.

    The row itself is computed with the interpreter oracle, so shard
    manifests stay engine-agnostic (the discipline :func:`evaluate_cell`
    set). ``engine`` adds a separate engine-keyed run whose every stage is
    validated cell-by-cell against the oracle inside
    :func:`repro.pipeline.fusion.run_pipeline`.
    """
    from repro.pipeline.fusion import run_pipeline

    if engine is not None and engine != "interp":
        memoize_stage(
            "pipeline", (pipeline_name, dataset_name, scale, 7, engine),
            lambda: run_pipeline(pipeline_name, dataset_name, scale, seed=7,
                                 fuse=True, engine=engine,
                                 use_cache=use_cache)["checksum"],
            use_cache,
        )

    def compute():
        return run_pipeline(pipeline_name, dataset_name, scale, seed=7,
                            fuse=True, engine="interp", use_cache=use_cache)

    return memoize_stage("pipeline", (pipeline_name, dataset_name, scale, 7),
                         compute, use_cache)


# ---------------------------------------------------------------------------
# Job lists
# ---------------------------------------------------------------------------


def artifact_jobs(artifact: str, scale: float,
                  use_cache: bool | None = None,
                  engine: str | None = None) -> list[Job]:
    """The (kernel, dataset, platform) job list for one artefact.

    ``engine`` only affects the cells that execute kernels functionally
    (``table6`` and ``format_sweep``); job **keys** never include it, so
    shard manifests stay engine-agnostic and merge across engines.
    """
    from repro.data.datasets import datasets_for
    from repro.kernels.suite import KERNEL_ORDER
    from repro.pipeline.partition import is_partition_artifact, parse_partition

    if is_partition_artifact(artifact):
        # Partition pseudo-artifacts expand to one job per row block; the
        # plan string carries the kernel/dataset/count/mode coordinates.
        return parse_partition(artifact).jobs(scale, use_cache=use_cache,
                                              engine=engine)
    kwargs = {"use_cache": use_cache}
    # Leave the kwarg out entirely when unset, so engine-less runs call
    # the cells exactly as they always did.
    exec_kwargs = dict(kwargs, engine=engine) if engine is not None else kwargs
    if artifact == "table6":
        return [
            Job((kernel, dspec.name, "*"), evaluate_cell,
                (kernel, dspec.name, scale), dict(exec_kwargs))
            for kernel in KERNEL_ORDER
            for dspec in datasets_for(kernel)
        ]
    if artifact == "table5":
        return [Job((kernel, "-", "capstan-resources"), table5_cell,
                    (kernel, scale), dict(kwargs))
                for kernel in KERNEL_ORDER]
    if artifact == "table3":
        return [Job((kernel, "-", "loc"), table3_cell,
                    (kernel, scale), dict(kwargs))
                for kernel in KERNEL_ORDER]
    if artifact == "figure12":
        return [Job((kernel, "-", "bandwidth-sweep"), figure12_cell,
                    (kernel, scale), dict(kwargs))
                for kernel in KERNEL_ORDER]
    if artifact == "format_sweep":
        from repro.eval.harness import FORMAT_SWEEP_KERNELS

        return [
            Job((kernel, dspec.name, "format"), format_sweep_cell,
                (kernel, dspec.name, scale), dict(exec_kwargs))
            for kernel in FORMAT_SWEEP_KERNELS
            for dspec in datasets_for(kernel)
        ]
    if artifact == "pipeline_sweep":
        from repro.pipeline.fusion import PIPELINES, PIPELINE_ORDER

        return [
            Job((name, dataset, "fusion"), pipeline_sweep_cell,
                (name, dataset, scale), dict(exec_kwargs))
            for name in PIPELINE_ORDER
            for dataset in PIPELINES[name].datasets
        ]
    raise KeyError(
        f"unknown artefact {artifact!r}; choose from {ARTIFACT_NAMES}"
    )


# ---------------------------------------------------------------------------
# Assembly: fold ordered job results into the harness data structures
# ---------------------------------------------------------------------------


def _assemble_table6(results: list[JobResult]) -> dict[str, dict[str, float]]:
    from repro.kernels.suite import KERNEL_ORDER

    ratios_by_kernel: dict[str, dict[str, list[float]]] = {}
    for res in results:
        times = res.unwrap()
        ratios = ratios_by_kernel.setdefault(times.kernel, {})
        for platform, value in times.normalised().items():
            ratios.setdefault(platform, []).append(value)
    per_platform: dict[str, dict[str, float]] = {}
    for kernel in KERNEL_ORDER:
        for platform, values in ratios_by_kernel.get(kernel, {}).items():
            per_platform.setdefault(platform, {})[kernel] = (
                geometric_mean(values)
            )
    return per_platform


def _assemble_by_kernel(results: list[JobResult]) -> dict[str, Any]:
    return {res.job.key[0]: res.unwrap() for res in results}


def _assemble_format_sweep(results: list[JobResult]) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {}
    for res in results:
        kernel, dataset = res.job.key[0], res.job.key[1]
        out.setdefault(kernel, {})[dataset] = res.unwrap()
    return out


def assemble_artifact(artifact: str, results: list[JobResult]):
    """Fold ordered job results into the artefact's data structure."""
    from repro.pipeline.partition import is_partition_artifact, reduce_partials

    if is_partition_artifact(artifact):
        return reduce_partials(artifact, results)
    if artifact == "table6":
        return _assemble_table6(results)
    if artifact in ("format_sweep", "pipeline_sweep"):
        return _assemble_format_sweep(results)
    return _assemble_by_kernel(results)


def format_artifact(artifact: str, data) -> str:
    """Render an artefact with the harness's formatter."""
    from repro.eval import harness
    from repro.pipeline.partition import format_partition, is_partition_artifact

    if is_partition_artifact(artifact):
        return format_partition(data)
    formatter = {
        "table3": harness.format_table3,
        "table5": harness.format_table5,
        "table6": harness.format_table6,
        "figure12": harness.format_figure12,
        "format_sweep": harness.format_format_sweep,
        "pipeline_sweep": harness.format_pipeline_sweep,
    }[artifact]
    return formatter(data)


def record_result_costs(artifact: str, scale: float,
                        results: list[JobResult]) -> int:
    """Record each successful job's observed wall time in the cost table.

    Every run that executes an artefact's jobs — serial ``tables``, a
    ``batch`` invocation, a shard worker — feeds the work-stealing
    planner's persistent cost model (:mod:`repro.pipeline.steal`), so a
    later ``dispatch --steal`` plans from warm data no matter how the
    sweep was last executed. Returns the number of entries written
    (zero when caching is disabled).
    """
    from repro.pipeline.cache import cache_enabled
    from repro.pipeline.steal import record_cost

    if not cache_enabled():
        return 0
    recorded = 0
    for res in results:
        if res.ok:
            record_cost(artifact, scale, res.job.key, res.seconds)
            recorded += 1
    return recorded


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BatchRun:
    """Outcome of one batch invocation (artefacts + execution report)."""

    artifacts: dict[str, Any]
    texts: dict[str, str]
    results: dict[str, list[JobResult]]
    seconds: float

    @property
    def jobs(self) -> int:
        return sum(len(r) for r in self.results.values())

    @property
    def failures(self) -> list[JobResult]:
        return [res for rs in self.results.values() for res in rs if not res.ok]

    def summary(self) -> str:
        failed = len(self.failures)
        status = "ok" if not failed else f"{failed} FAILED"
        return (f"batch: {self.jobs} jobs across "
                f"{len(self.results)} artefact(s) in {self.seconds:.2f}s "
                f"[{status}]")


def run_artifact(
    artifact: str,
    scale: float,
    jobs: int | None = None,
    use_cache: bool | None = None,
    kind: str = "thread",
    engine: str | None = None,
):
    """Regenerate one artefact through the pipeline.

    Returns the same data structure the harness's serial loop produces.
    Raises ``RuntimeError`` (with the captured traceback) if any job
    failed.
    """
    results = run_jobs(artifact_jobs(artifact, scale, use_cache, engine),
                       max_workers=jobs, kind=kind)
    record_result_costs(artifact, scale, results)
    return assemble_artifact(artifact, results)


def run_batch(
    artifacts: list[str],
    scale: float,
    jobs: int | None = None,
    use_cache: bool | None = None,
    kind: str = "thread",
    engine: str | None = None,
) -> BatchRun:
    """Regenerate several artefacts, isolating failures per job.

    Artefacts whose jobs all succeeded are assembled and formatted;
    artefacts with failed jobs are reported in :attr:`BatchRun.failures`
    and omitted from :attr:`BatchRun.artifacts`.
    """
    start = time.perf_counter()
    all_results: dict[str, list[JobResult]] = {}
    assembled: dict[str, Any] = {}
    texts: dict[str, str] = {}
    for artifact in artifacts:
        results = run_jobs(artifact_jobs(artifact, scale, use_cache, engine),
                           max_workers=jobs, kind=kind)
        record_result_costs(artifact, scale, results)
        all_results[artifact] = results
        if all(res.ok for res in results):
            data = assemble_artifact(artifact, results)
            assembled[artifact] = data
            texts[artifact] = format_artifact(artifact, data)
    return BatchRun(assembled, texts, all_results,
                    time.perf_counter() - start)
