"""The ``repro.pipeline`` subsystem: caching + parallel evaluation.

Two orthogonal pieces that the compiler facade, evaluation harness, CLI,
and benchmark drivers all route through:

* :mod:`repro.pipeline.cache` — a content-addressed compilation cache
  (in-memory LRU + optional on-disk store under ``~/.cache/repro``) keyed
  by a stable hash of the index statement, tensor formats, schedule, and
  compiler version.
* :mod:`repro.pipeline.executor` — a batch executor that fans
  (kernel, dataset, platform) jobs out over ``concurrent.futures``
  workers with deterministic result ordering and per-job failure
  isolation.
* :mod:`repro.pipeline.batch` — each paper artefact (Tables 3/5/6,
  Figure 12) expressed as an explicit job list.
* :mod:`repro.pipeline.shard` — deterministic sharding of those job
  lists across workers/hosts, with self-describing JSON manifests and a
  validating merge that reproduces the serial artefacts byte-identically.
"""

from repro.pipeline.cache import (
    CacheStats,
    CompilationCache,
    cache_enabled,
    compiler_version,
    default_cache,
    disk_cache_dir,
    fingerprint_stmt,
    fingerprint_tensor,
    make_key,
    memoize,
    memoize_stage,
    stage_version,
)
from repro.pipeline.executor import Job, JobResult, default_jobs, run_jobs
from repro.pipeline.batch import (
    ARTIFACT_NAMES,
    BatchRun,
    artifact_jobs,
    run_artifact,
    run_batch,
)
from repro.pipeline.shard import (
    ManifestError,
    MergedArtifact,
    MergeError,
    ShardManifest,
    ShardSpec,
    merge_manifests,
    run_shard,
)

__all__ = [
    "ARTIFACT_NAMES",
    "BatchRun",
    "CacheStats",
    "CompilationCache",
    "Job",
    "JobResult",
    "ManifestError",
    "MergeError",
    "MergedArtifact",
    "ShardManifest",
    "ShardSpec",
    "artifact_jobs",
    "cache_enabled",
    "compiler_version",
    "default_cache",
    "default_jobs",
    "disk_cache_dir",
    "fingerprint_stmt",
    "fingerprint_tensor",
    "make_key",
    "memoize",
    "memoize_stage",
    "merge_manifests",
    "run_artifact",
    "run_batch",
    "run_jobs",
    "run_shard",
    "stage_version",
]
