"""The ``repro.pipeline`` subsystem: caching + parallel evaluation.

Two orthogonal pieces that the compiler facade, evaluation harness, CLI,
and benchmark drivers all route through:

* :mod:`repro.pipeline.cache` — a content-addressed compilation cache
  (in-memory LRU + optional on-disk store under ``~/.cache/repro``) keyed
  by a stable hash of the index statement, tensor formats, schedule, and
  compiler version.
* :mod:`repro.pipeline.executor` — a batch executor that fans
  (kernel, dataset, platform) jobs out over ``concurrent.futures``
  workers with deterministic result ordering and per-job failure
  isolation.
* :mod:`repro.pipeline.batch` — each paper artefact (Tables 3/5/6,
  Figure 12) expressed as an explicit job list.
* :mod:`repro.pipeline.shard` — deterministic sharding of those job
  lists across workers/hosts, with self-describing JSON manifests and a
  validating merge that reproduces the serial artefacts byte-identically.
* :mod:`repro.pipeline.dispatch` — a fault-tolerant sweep dispatcher
  that leases chunks of a job list to a pool of workers (local
  subprocesses, SSH hosts, or in-process threads), reassigns the chunks
  of dead or hung workers, quarantines persistently failing jobs, and
  folds the collected manifests through the validating merge.
* :mod:`repro.pipeline.steal` — cost-model-driven work stealing: every
  dispatch records observed per-job wall times into a persistent
  ``cost`` cache stage, and ``--steal`` plans cost-balanced
  explicit-index chunks from the table (uniform fallback when cold).
* :mod:`repro.pipeline.fsqueue` — the ``queue:DIR`` elastic transport:
  a filesystem job queue with atomic-rename claim semantics where
  ``repro worker`` processes attach and detach mid-sweep.
"""

from repro.pipeline.cache import (
    CacheStats,
    CompilationCache,
    cache_enabled,
    compiler_version,
    default_cache,
    disk_cache_dir,
    fingerprint_stmt,
    fingerprint_tensor,
    make_key,
    memoize,
    memoize_stage,
    stage_version,
)
from repro.pipeline.executor import Job, JobResult, default_jobs, run_jobs
from repro.pipeline.batch import (
    ARTIFACT_NAMES,
    BatchRun,
    artifact_jobs,
    assemble_artifact,
    format_artifact,
    run_artifact,
    run_batch,
)
from repro.pipeline.shard import (
    ManifestError,
    MergedArtifact,
    MergeError,
    ShardManifest,
    ShardSpec,
    expand_manifest_paths,
    merge_manifests,
    run_shard,
)
from repro.pipeline.dispatch import (
    DispatchError,
    DispatchResult,
    InlineTransport,
    LocalTransport,
    QueueTransport,
    SshTransport,
    Transport,
    dispatch,
    parse_transport,
)
from repro.pipeline.fsqueue import worker_loop
from repro.pipeline.steal import (
    load_costs,
    plan_chunks,
    record_manifest_costs,
)

__all__ = [
    "ARTIFACT_NAMES",
    "BatchRun",
    "CacheStats",
    "CompilationCache",
    "DispatchError",
    "DispatchResult",
    "InlineTransport",
    "Job",
    "JobResult",
    "LocalTransport",
    "ManifestError",
    "MergeError",
    "MergedArtifact",
    "QueueTransport",
    "ShardManifest",
    "ShardSpec",
    "SshTransport",
    "Transport",
    "artifact_jobs",
    "assemble_artifact",
    "cache_enabled",
    "compiler_version",
    "default_cache",
    "default_jobs",
    "disk_cache_dir",
    "dispatch",
    "expand_manifest_paths",
    "fingerprint_stmt",
    "fingerprint_tensor",
    "format_artifact",
    "load_costs",
    "make_key",
    "memoize",
    "memoize_stage",
    "merge_manifests",
    "parse_transport",
    "plan_chunks",
    "record_manifest_costs",
    "run_artifact",
    "run_batch",
    "run_jobs",
    "run_shard",
    "stage_version",
    "worker_loop",
]
