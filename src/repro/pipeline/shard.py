"""Deterministic sharding of artefact job lists + manifest merge.

Stardust's evaluation is an embarrassingly parallel sweep over (kernel,
dataset, platform) cells; this module distributes one artefact's job list
across independent workers — different processes, CI matrix entries, or
hosts — and folds the pieces back together:

* :class:`ShardSpec` names one slice (``2/8`` = shard 2 of 8, 1-based)
  and selects its jobs by **position** in the artefact's deterministic
  job list, so the partition is stable regardless of worker count,
  executor kind, or which machine runs it: the union of all shards is
  exactly the full list and shards are pairwise disjoint.
* :func:`run_shard` executes one slice and returns a self-describing
  :class:`ShardManifest` — artefact, scale, shard spec, compiler-version
  hash, and per-job results as JSON-safe payloads (floats round-trip
  exactly through JSON's shortest-repr encoding).
* :func:`merge_manifests` validates a set of manifests for compatibility
  (same artefact / scale / compiler hash; no missing, duplicate, or
  failed jobs) and assembles them into **exactly** the structure the
  serial harness produces, so ``repro merge shard*.json`` output is
  byte-identical to ``repro tables``.

Shard workers sharing a ``REPRO_CACHE_DIR`` also share the staged cache
(:func:`repro.pipeline.cache.memoize_stage`): whichever shard generates a
dataset or compiles a kernel first serves the others.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.pipeline.batch import (
    ARTIFACT_NAMES,
    artifact_jobs,
    assemble_artifact,
    format_artifact,
)
from repro.obs import trace as _trace
from repro.pipeline.cache import compiler_version
from repro.pipeline.executor import Job, JobResult, run_jobs

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "ManifestError",
    "MergeError",
    "MergedArtifact",
    "ShardManifest",
    "ShardSpec",
    "decode_result",
    "encode_result",
    "expand_manifest_paths",
    "merge_manifests",
    "run_shard",
]

#: The ``format`` field stamped into every manifest file.
MANIFEST_FORMAT = "repro-shard-manifest"

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


class ManifestError(ValueError):
    """A manifest file is malformed or self-inconsistent."""


class MergeError(ManifestError):
    """A set of manifests cannot be merged (incompatible or incomplete)."""


# ---------------------------------------------------------------------------
# Shard specification
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One slice of a job list: shard ``index`` of ``count`` (1-based).

    Two selection modes share this type:

    * **Uniform** (``positions is None``): position ``p`` belongs to
      shard ``p % count`` — the stable round-robin partition operators
      type by hand (``--shard 2/8``).
    * **Explicit** (``positions`` set): the shard holds exactly the
      named 0-based job-list positions (``2/8=1,5,9``). The
      work-stealing planner cuts *cost-balanced* chunks this way —
      non-uniform in size, still a partition of the same canonical job
      list, so the merge remains byte-identical to the serial run.
    """

    index: int
    count: int
    positions: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )
        if self.positions is not None:
            object.__setattr__(self, "positions", tuple(self.positions))
            if not self.positions:
                raise ValueError("explicit shard needs at least one position")
            if any(p < 0 for p in self.positions):
                raise ValueError(
                    f"shard positions must be >= 0, got {self.positions}")
            if list(self.positions) != sorted(set(self.positions)):
                # Canonical form keeps planner output deterministic and
                # makes spec equality (resume validation) reliable.
                raise ValueError(
                    f"shard positions must be strictly increasing, got "
                    f"{self.positions}")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse ``"2/8"`` or explicit ``"2/8=1,5,9"`` into a spec."""
        spec_text, eq, pos_text = text.partition("=")
        head, sep, tail = spec_text.partition("/")
        try:
            if not sep:
                raise ValueError
            positions = None
            if eq:
                positions = tuple(int(p) for p in pos_text.split(","))
            return cls(int(head), int(tail), positions)
        except ValueError:
            raise ValueError(
                f"invalid shard spec {text!r}; expected I/N with 1 <= I <= N, "
                f"optionally =p0,p1,... (0-based increasing positions)"
            ) from None

    def select(self, jobs: list[Job]) -> list[Job]:
        """This shard's slice of ``jobs``.

        Uniform specs take position ``p`` into shard ``p % count``;
        round-robin (rather than contiguous blocks) balances the slow
        kernels, which cluster at the front of the suite order, across
        shards. Explicit specs take exactly their named positions.
        """
        if self.positions is not None:
            out_of_range = [p for p in self.positions if p >= len(jobs)]
            if out_of_range:
                raise ValueError(
                    f"shard {self} names position(s) {out_of_range} beyond "
                    f"the {len(jobs)}-job list (stale chunk plan?)"
                )
            return [jobs[p] for p in self.positions]
        return [job for pos, job in enumerate(jobs)
                if pos % self.count == self.index - 1]

    def __str__(self) -> str:
        base = f"{self.index}/{self.count}"
        if self.positions is not None:
            return base + "=" + ",".join(map(str, self.positions))
        return base


# ---------------------------------------------------------------------------
# Result payload codecs (per artefact, JSON-safe, lossless for floats)
# ---------------------------------------------------------------------------


def encode_result(artifact: str, value: Any) -> Any:
    """A per-job result as a JSON-safe payload.

    JSON serialises floats with ``repr`` (shortest round-trip), so every
    float survives encode → decode bit-identically — the property the
    byte-identical merge guarantee rests on.
    """
    if artifact == "table6":  # PlatformTimes
        return {"kernel": value.kernel, "dataset": value.dataset,
                "seconds": dict(value.seconds)}
    if artifact == "table5":  # ResourceEstimate
        return {"kernel": value.kernel, "par": value.par, "pcu": value.pcu,
                "pmu": value.pmu, "mc": value.mc, "shuffle": value.shuffle}
    if artifact == "table3":  # plain LoC dict
        return dict(value)
    if artifact == "figure12":  # {bandwidth: speedup}; JSON keys are strings
        return {str(bw): ratio for bw, ratio in value.items()}
    if artifact == "format_sweep":  # plain metrics dict per cell
        return dict(value)
    if artifact == "pipeline_sweep":  # plain fusion-report dict per cell
        return dict(value)
    from repro.pipeline.partition import is_partition_artifact

    if is_partition_artifact(artifact):  # per-block partial (already JSON-safe)
        return dict(value)
    raise KeyError(
        f"unknown artefact {artifact!r}; choose from {ARTIFACT_NAMES}"
    )


def decode_result(artifact: str, payload: Any) -> Any:
    """Invert :func:`encode_result` back into the harness's result type."""
    if artifact == "table6":
        from repro.service.api import PlatformTimes

        return PlatformTimes(payload["kernel"], payload["dataset"],
                             dict(payload["seconds"]))
    if artifact == "table5":
        from repro.capstan.resources import ResourceEstimate

        return ResourceEstimate(
            kernel=payload["kernel"], par=payload["par"], pcu=payload["pcu"],
            pmu=payload["pmu"], mc=payload["mc"], shuffle=payload["shuffle"],
        )
    if artifact == "table3":
        return dict(payload)
    if artifact == "figure12":
        return {int(bw) if bw.lstrip("-").isdigit() else float(bw): ratio
                for bw, ratio in payload.items()}
    if artifact == "format_sweep":
        return dict(payload)
    if artifact == "pipeline_sweep":
        return dict(payload)
    from repro.pipeline.partition import is_partition_artifact

    if is_partition_artifact(artifact):
        return dict(payload)
    raise KeyError(
        f"unknown artefact {artifact!r}; choose from {ARTIFACT_NAMES}"
    )


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ShardManifest:
    """Self-describing record of one shard's run over one artefact."""

    artifact: str
    scale: float
    shard: ShardSpec
    compiler: str
    total_jobs: int
    jobs: list[dict]
    version: int = MANIFEST_VERSION

    def job_keys(self) -> list[tuple]:
        return [tuple(entry["key"]) for entry in self.jobs]

    def failures(self) -> list[dict]:
        return [entry for entry in self.jobs if not entry["ok"]]

    def to_dict(self) -> dict:
        shard: dict[str, Any] = {"index": self.shard.index,
                                 "count": self.shard.count}
        if self.shard.positions is not None:
            shard["positions"] = list(self.shard.positions)
        return {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "artifact": self.artifact,
            "scale": self.scale,
            "shard": shard,
            "compiler": self.compiler,
            "total_jobs": self.total_jobs,
            "jobs": self.jobs,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Any, source: str = "<manifest>") -> "ShardManifest":
        if not isinstance(data, dict):
            raise ManifestError(f"{source}: manifest must be a JSON object")
        if data.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"{source}: not a {MANIFEST_FORMAT} file "
                f"(format={data.get('format')!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"{source}: unsupported manifest version "
                f"{data.get('version')!r} (expected {MANIFEST_VERSION})"
            )
        missing = [f for f in ("artifact", "scale", "shard", "compiler",
                               "total_jobs", "jobs") if f not in data]
        if missing:
            raise ManifestError(f"{source}: missing field(s) {missing}")
        from repro.pipeline.partition import is_partition_artifact

        if (data["artifact"] not in ARTIFACT_NAMES
                and not is_partition_artifact(data["artifact"])):
            raise ManifestError(
                f"{source}: unknown artefact {data['artifact']!r}; "
                f"expected one of {ARTIFACT_NAMES} or a partition:* plan"
            )
        shard = data["shard"]
        try:
            positions = shard.get("positions")
            if positions is not None:
                positions = tuple(int(p) for p in positions)
            spec = ShardSpec(int(shard["index"]), int(shard["count"]),
                             positions)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ManifestError(f"{source}: bad shard spec: {exc}") from None
        jobs = data["jobs"]
        if not isinstance(jobs, list) or not all(
            isinstance(e, dict) and "key" in e and "ok" in e for e in jobs
        ):
            raise ManifestError(f"{source}: malformed jobs list")
        return cls(
            artifact=data["artifact"],
            scale=data["scale"],
            shard=spec,
            compiler=data["compiler"],
            total_jobs=int(data["total_jobs"]),
            jobs=jobs,
        )

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"{path}: cannot read manifest: {exc}") from None
        return cls.from_dict(data, source=str(path))


# ---------------------------------------------------------------------------
# Running one shard
# ---------------------------------------------------------------------------


def run_shard(
    artifact: str,
    scale: float,
    spec: ShardSpec,
    jobs: int | None = None,
    use_cache: bool | None = None,
    kind: str = "thread",
    on_result=None,
    should_stop=None,
    engine: str | None = None,
) -> ShardManifest:
    """Execute one shard of an artefact's job list into a manifest.

    Failed jobs are captured in the manifest (``ok: false`` with the
    traceback text) rather than raised, so a sweep driver can inspect
    partial shards; :func:`merge_manifests` refuses to fold them.
    ``should_stop`` (a nullary predicate) cancels jobs not yet started —
    the dispatcher revokes an expired in-process lease through it, and
    the cancelled jobs appear as failures in the manifest. ``engine``
    selects the functional-execution engine for cells that run kernels;
    job keys and manifests stay engine-agnostic.
    """
    from repro.pipeline.batch import record_result_costs

    all_jobs = artifact_jobs(artifact, scale, use_cache, engine)
    with _trace.span("chunk", artifact=artifact, shard=str(spec)) as chunk_sp:
        results = run_jobs(spec.select(all_jobs), max_workers=jobs, kind=kind,
                           on_result=on_result, should_stop=should_stop)
        chunk_sp.set(jobs=len(results),
                     computed=sum(1 for r in results if r.computed))
    # Feed the work-stealing cost model from the worker side too: shard
    # workers sharing REPRO_CACHE_DIR warm the dispatcher's table even
    # before their manifest is collected.
    record_result_costs(artifact, scale, results)
    entries = []
    for res in results:
        entry: dict[str, Any] = {
            "key": list(res.job.key),
            "ok": res.ok,
            "seconds": round(res.seconds, 6),
            "computed": res.computed,
        }
        if res.ok:
            entry["value"] = encode_result(artifact, res.value)
        else:
            entry["error"] = res.error
        entries.append(entry)
    return ShardManifest(
        artifact=artifact,
        scale=scale,
        shard=spec,
        compiler=compiler_version(),
        total_jobs=len(all_jobs),
        jobs=entries,
    )


def expand_manifest_paths(patterns: list[str]) -> list[Path]:
    """Manifest paths from literal names and/or glob patterns.

    ``repro merge 'shards/*.json'`` must work even when the shell did
    not expand the glob (quoted, or run through ``subprocess`` without a
    shell), and an unmatched pattern must surface as "no manifests"
    rather than as an unreadable file named ``shards/*.json``. A name
    that exists on disk is always taken literally — even when it
    contains glob metacharacters (``results[2026]/s1.json``) — and a
    nonexistent literal name passes through so a typo'd filename still
    reports "cannot read" with its name.
    """
    import glob as globlib

    paths: list[Path] = []
    for pattern in patterns:
        path = Path(pattern)
        if path.exists() or not any(ch in pattern for ch in "*?["):
            paths.append(path)
        else:
            paths.extend(sorted(Path(p) for p in globlib.glob(pattern)))
    return paths


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class MergedArtifact:
    """The result of folding shard manifests back into one artefact."""

    artifact: str
    scale: float
    data: Any
    text: str


def _check_consistent(manifests: list[ShardManifest]) -> None:
    for field, label in (("artifact", "artefact"), ("scale", "scale"),
                         ("compiler", "compiler hash"),
                         ("total_jobs", "job-list length")):
        values = {getattr(m, field) for m in manifests}
        if len(values) > 1:
            raise MergeError(
                f"manifests disagree on {label}: {sorted(map(str, values))}"
            )
    counts = {m.shard.count for m in manifests}
    if len(counts) > 1:
        raise MergeError(
            f"manifests disagree on shard count: {sorted(counts)}"
        )
    indices = [m.shard.index for m in manifests]
    duplicates = sorted({i for i in indices if indices.count(i) > 1})
    if duplicates:
        raise MergeError(f"duplicate shard index(es): {duplicates}")


def merge_manifests(
    manifests: list[ShardManifest],
    require_current_compiler: bool = True,
) -> MergedArtifact:
    """Validate shard manifests and fold them into the serial artefact.

    The merged result is assembled through the exact code path the serial
    harness uses (:func:`assemble_artifact` over results in canonical job
    order), so its formatted text is byte-identical to ``repro tables``.

    Raises :class:`MergeError` when the manifests are incompatible (mixed
    artefact / scale / compiler hash, overlapping shards) or incomplete
    (missing, duplicate, or failed jobs).
    """
    if not manifests:
        raise MergeError("no manifests to merge")
    _check_consistent(manifests)
    artifact = manifests[0].artifact
    scale = manifests[0].scale

    if require_current_compiler and manifests[0].compiler != compiler_version():
        raise MergeError(
            f"manifests were produced by compiler {manifests[0].compiler} "
            f"but this checkout is {compiler_version()}; results would not "
            f"be comparable to a serial run (re-run the shards, or pass "
            f"--allow-stale-compiler to merge anyway)"
        )

    # Failures, duplicates, and malformed payloads name the artefact and
    # the originating chunk (the full spec — explicit-index chunks from
    # the work-stealing planner or a queue worker are not identified by
    # I/N alone), so a refused merge in a multi-artefact dispatch is
    # attributable to both the sweep and the worker that produced the
    # offending manifest.
    failed = [(entry, m.shard) for m in manifests for entry in m.failures()]
    if failed:
        keys = [f"{':'.join(map(str, entry['key']))} (chunk {shard})"
                for entry, shard in failed]
        raise MergeError(
            f"cannot merge failed job(s) for artefact {artifact}: {keys}"
        )

    collected: dict[tuple, Any] = {}
    origin: dict[tuple, ShardSpec] = {}
    for manifest in manifests:
        for entry in manifest.jobs:
            key = tuple(entry["key"])
            if key in collected:
                raise MergeError(
                    f"duplicate job {':'.join(map(str, key))} in artefact "
                    f"{artifact} (chunks {origin[key]} and {manifest.shard})"
                )
            try:
                collected[key] = decode_result(artifact, entry["value"])
            except (KeyError, TypeError, AttributeError, ValueError) as exc:
                raise MergeError(
                    f"malformed result payload for job "
                    f"{':'.join(map(str, key))} in artefact {artifact} "
                    f"(chunk {manifest.shard}): {exc!r}"
                ) from None
            origin[key] = manifest.shard

    expected = artifact_jobs(artifact, scale)
    expected_keys = [job.key for job in expected]
    missing = [k for k in expected_keys if k not in collected]
    if missing:
        raise MergeError(
            f"missing job(s) for artefact {artifact} (incomplete shard "
            f"set?): {[':'.join(map(str, k)) for k in missing]}"
        )
    unexpected = sorted(set(collected) - set(expected_keys))
    if unexpected:
        labels = [":".join(map(str, k)) + f" (chunk {origin[k]})"
                  for k in unexpected]
        raise MergeError(
            f"unexpected job(s) not in the {artifact} job list: {labels}"
        )

    results = [JobResult(job, True, value=collected[job.key])
               for job in expected]
    data = assemble_artifact(artifact, results)
    return MergedArtifact(artifact, scale, data, format_artifact(artifact, data))
