"""Minimal ASCII plotting for the figure benchmarks.

No plotting libraries are available offline; the Figure 12/13 benches
render their series as monospace charts so the *shape* of each figure is
visible directly in the benchmark log.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

_GLYPHS = "ox+*#@%&=~"


def ascii_xy(
    series: Mapping[str, Mapping[float, float]],
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
) -> str:
    """Render named (x → y) series as an ASCII scatter chart."""
    xs = sorted({x for pts in series.values() for x in pts})
    ys = [y for pts in series.values() for y in pts.values()]
    if not xs or not ys:
        return "(empty plot)"

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(max(v, 1e-12)) if logy else v

    x_lo, x_hi = tx(min(xs)), tx(max(xs))
    y_lo, y_hi = ty(min(ys)), ty(max(ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for k, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in pts.items():
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = f"{max(ys):.3g}"
    y_bot = f"{min(ys):.3g}"
    pad = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{pad}s} |{''.join(row)}")
    lines.append(f"{'':>{pad}s} +{'-' * width}")
    lines.append(f"{'':>{pad}s}  {min(xs):<10g}{'':^{max(0, width - 22)}}{max(xs):>10g}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    logscale: bool = True,
    title: str = "",
) -> str:
    """Render a named-value mapping as horizontal ASCII bars."""
    if not values:
        return "(empty plot)"
    vmax = max(values.values())

    def scale(v: float) -> int:
        if v <= 0:
            return 0
        if logscale and vmax > 0:
            lo = math.log10(max(min(values.values()), 1e-12))
            hi = math.log10(vmax)
            span = (hi - lo) or 1.0
            return max(1, round((math.log10(v) - lo) / span * width))
        return max(1, round(v / vmax * width))

    name_w = max(len(n) for n in values)
    lines = [title] if title else []
    for name, v in values.items():
        lines.append(f"{name:<{name_w}s} |{'#' * scale(v):<{width}s}| {v:.3g}")
    return "\n".join(lines)
