"""Small utilities: LoC accounting and ASCII figure rendering."""

from repro.util.loc import count_loc, loc_reduction
from repro.util.plot import ascii_bars, ascii_xy

__all__ = ["ascii_bars", "ascii_xy", "count_loc", "loc_reduction"]
