"""Lines-of-code accounting (the Table 3 metric).

Counts non-blank, non-comment lines for the languages that appear in the
evaluation: Spatial/Scala (``//`` comments), C (``//``), and the Stardust
input language snippets recorded in the kernel suite.
"""

from __future__ import annotations

_LINE_COMMENT_PREFIXES = ("//", "#")


def count_loc(source: str) -> int:
    """Non-blank, non-comment lines of a source text."""
    count = 0
    in_block = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block = True
            continue
        if not line or line.startswith(_LINE_COMMENT_PREFIXES):
            continue
        count += 1
    return count


def loc_reduction(input_loc: int, baseline_loc: int) -> float:
    """Percentage reduction of ``input_loc`` relative to ``baseline_loc``
    (Section 8.3 reports 76 % for SpMV)."""
    if baseline_loc <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - input_loc / baseline_loc)
