"""The public typed API: ``import repro.api``.

Every way of constructing compiler work — the CLI subcommands, the batch
runner, dispatch workers, and the ``repro serve`` daemon — goes through
these names. Build a :class:`CompileRequest`, hand it to
:func:`evaluate` / :func:`compile` (or :func:`execute` to dispatch on
the request's action), and get a :class:`CompileResult` whose
``to_json()`` rendering is deterministic and byte-identical across all
of those paths.

>>> from repro.api import CompileRequest, evaluate
>>> times = evaluate(CompileRequest(kernel="SpMV")).platform_times()
"""

from repro.core.compiler import DEFAULT_ENGINE, ENGINES, default_engine
from repro.service.api import (
    ACTIONS,
    BASELINE_PLATFORM,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    PLATFORMS,
    CompileRequest,
    CompileResult,
    EngineMismatchError,
    PlatformTimes,
    build,
    cached,
    compile,
    evaluate,
    exec_check,
    execute,
    first_dataset,
    load_dataset,
    partition,
    pipeline,
)

__all__ = [
    "ACTIONS",
    "BASELINE_PLATFORM",
    "CompileRequest",
    "CompileResult",
    "DEFAULT_ENGINE",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "ENGINES",
    "EngineMismatchError",
    "PLATFORMS",
    "PlatformTimes",
    "build",
    "cached",
    "compile",
    "default_engine",
    "evaluate",
    "exec_check",
    "execute",
    "first_dataset",
    "load_dataset",
    "partition",
    "pipeline",
]
