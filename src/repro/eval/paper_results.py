"""Published numbers from the paper's evaluation (Tables 3, 5, 6; Fig. 12).

Kept verbatim so benchmarks and EXPERIMENTS.md can print paper-vs-measured
side by side. Values transcribed from the paper text.
"""

from __future__ import annotations

#: Table 3 — lines of code: {kernel: (input_loc, spatial_loc)}.
TABLE3_LOC = {
    "SpMV": (10, 44),
    "Plus3": (8, 91),
    "SDDMM": (17, 62),
    "MatTransMul": (13, 50),
    "Residual": (9, 48),
    "TTV": (13, 73),
    "TTM": (11, 83),
    "MTTKRP": (15, 86),
    "InnerProd": (11, 115),
    "Plus2": (6, 163),
}

#: Section 8.3 — handwritten Capstan SpMV is 52 lines of Spatial.
HANDWRITTEN_SPMV_LOC = 52

#: Table 5 — {kernel: (par, pcu, pmu, mc, shuffle, limiting resources)}.
TABLE5_RESOURCES = {
    "SpMV": (16, 44, 41, 35, 16, ("MC", "Shuf")),
    "Plus3": (8, 55, 100, 58, 8, ("MC",)),
    "SDDMM": (12, 163, 90, 61, 0, ("PCU",)),
    "MatTransMul": (16, 47, 66, 36, 16, ("Shuf",)),
    "Residual": (16, 43, 65, 36, 16, ("Shuf",)),
    "TTV": (16, 93, 91, 67, 16, ("MC", "Shuf")),
    "TTM": (12, 161, 89, 70, 0, ("PCU", "MC")),
    "MTTKRP": (8, 140, 70, 58, 0, ("PCU",)),
    "InnerProd": (8, 53, 155, 80, 0, ("MC",)),
    "Plus2": (1, 10, 23, 14, 2, ("Shuf",)),
}

#: Table 6 — runtimes normalised to compiled Capstan-HBM2E (= 1.0).
#: {platform: {kernel: normalised runtime}}; None = not evaluated.
TABLE6_NORMALISED = {
    "Capstan (HBM2E, handwritten)": {"SpMV": 0.65},
    "Capstan (Ideal)": {
        "SpMV": 0.77, "Plus3": 0.24, "SDDMM": 0.78, "MatTransMul": 0.75,
        "Residual": 0.75, "TTV": 0.49, "TTM": 0.57, "MTTKRP": 0.44,
        "InnerProd": 0.35, "Plus2": 0.42,
    },
    "Capstan (HBM2E)": {k: 1.0 for k in TABLE3_LOC},
    "Capstan (DDR4)": {
        "SpMV": 12.13, "Plus3": 10.07, "SDDMM": 8.33, "MatTransMul": 12.31,
        "Residual": 12.06, "TTV": 4.92, "TTM": 9.80, "MTTKRP": 7.76,
        "InnerProd": 3.28, "Plus2": 1.72,
    },
    "Plasticine (HBM2E, handwritten)": {"SpMV": 8.72},
    "V100 GPU": {
        "SpMV": 3.15, "Plus3": 41.89, "SDDMM": 18259.50,
        "MatTransMul": 3.59, "Residual": 3.54, "TTV": 232.85,
        "TTM": 284.47, "MTTKRP": 6.77, "InnerProd": 2.76, "Plus2": 381.38,
    },
    "128-Thread CPU": {
        "SpMV": 27.90, "Plus3": 236.40, "SDDMM": 220.28,
        "MatTransMul": 376.52, "Residual": 384.08, "TTV": 335.99,
        "TTM": 8.47, "MTTKRP": 398.72, "InnerProd": 178.34, "Plus2": 59.22,
    },
}

#: Headline claims (abstract): geomean speedups of compiled Capstan.
HEADLINE_CPU_SPEEDUP = 138.0
HEADLINE_GPU_SPEEDUP = 41.0

#: Figure 12 sweep points (GB/s).
FIG12_BANDWIDTHS = (20, 50, 100, 200, 500, 1000, 2000)
