"""Evaluation harness: regenerates every table and figure of Section 8.

Each ``table*``/``figure*`` function returns plain data structures (and a
formatted text rendering) so the pytest benchmarks can both print the
artefact and assert its qualitative shape against the paper.
"""

from __future__ import annotations

import dataclasses
import math
import os
from statistics import geometric_mean

from repro.backends.cpu import CpuBackend, lower_cpu
from repro.backends.gpu import GpuBackend
from repro.backends.handwritten import (
    HandwrittenCapstanSpMV,
    HandwrittenPlasticineSpMV,
    handwritten_capstan_loc,
)
from repro.capstan.dram import DDR4, HBM2E, IDEAL
from repro.capstan.resources import ResourceEstimate, estimate_resources
from repro.capstan.simulator import CapstanSimulator
from repro.capstan.stats import compute_stats
from repro.core.compiler import CompiledKernel, compile_stmt
from repro.data.datasets import datasets_for, load
from repro.eval import paper_results
from repro.kernels.suite import KERNEL_ORDER, KERNELS

#: Default dataset scale; override with REPRO_SCALE (1.0 = full Table 4).
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

PLATFORMS = (
    "Capstan (Ideal)",
    "Capstan (HBM2E)",
    "Capstan (DDR4)",
    "V100 GPU",
    "128-Thread CPU",
)


def build_kernel(kernel_name: str, dataset_name: str, scale: float,
                 seed: int = 7) -> CompiledKernel:
    """Load a dataset and compile the kernel on it."""
    spec = KERNELS[kernel_name]
    tensors = load(kernel_name, dataset_name, scale=scale, seed=seed)
    stmt, _out = spec.build(tensors)
    return compile_stmt(stmt, kernel_name)


@dataclasses.dataclass
class PlatformTimes:
    """Predicted seconds per platform for one kernel+dataset."""

    kernel: str
    dataset: str
    seconds: dict[str, float]

    def normalised(self) -> dict[str, float]:
        base = self.seconds["Capstan (HBM2E)"]
        return {p: s / base for p, s in self.seconds.items()}


def evaluate(kernel_name: str, dataset_name: str,
             scale: float = DEFAULT_SCALE) -> PlatformTimes:
    """Predict runtimes on every platform for one kernel+dataset."""
    kernel = build_kernel(kernel_name, dataset_name, scale)
    stats = compute_stats(kernel)
    sim = CapstanSimulator()
    resources = estimate_resources(kernel)
    seconds = {
        "Capstan (Ideal)": sim.simulate(kernel, dram=IDEAL, stats=stats,
                                        resources=resources).seconds,
        "Capstan (HBM2E)": sim.simulate(kernel, dram=HBM2E, stats=stats,
                                        resources=resources).seconds,
        "Capstan (DDR4)": sim.simulate(kernel, dram=DDR4, stats=stats,
                                       resources=resources).seconds,
        "V100 GPU": GpuBackend().predict_seconds(kernel, stats),
        "128-Thread CPU": CpuBackend().predict_seconds(kernel, stats),
    }
    if kernel_name == "SpMV":
        seconds["Capstan (HBM2E, handwritten)"] = (
            HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
        )
        seconds["Plasticine (HBM2E, handwritten)"] = (
            HandwrittenPlasticineSpMV().predict_seconds(stats, HBM2E)
        )
    return PlatformTimes(kernel_name, dataset_name, seconds)


# ---------------------------------------------------------------------------
# Table 6 / Figure 13
# ---------------------------------------------------------------------------


def table6(scale: float = DEFAULT_SCALE) -> dict[str, dict[str, float]]:
    """Normalised geomean runtimes per platform per kernel (Table 6)."""
    per_platform: dict[str, dict[str, float]] = {}
    for kernel_name in KERNEL_ORDER:
        ratios: dict[str, list[float]] = {}
        for dspec in datasets_for(kernel_name):
            times = evaluate(kernel_name, dspec.name, scale)
            for platform, value in times.normalised().items():
                ratios.setdefault(platform, []).append(value)
        for platform, values in ratios.items():
            per_platform.setdefault(platform, {})[kernel_name] = (
                geometric_mean(values)
            )
    return per_platform


def format_table6(results: dict[str, dict[str, float]]) -> str:
    lines = ["Table 6 — runtimes normalised to compiled Capstan (HBM2E), "
             "geomean across datasets"]
    header = f"{'Platform':34s}" + "".join(f"{k:>12s}" for k in KERNEL_ORDER)
    lines.append(header + f"{'gmean':>10s}")
    order = [
        "Capstan (HBM2E, handwritten)",
        "Capstan (Ideal)",
        "Capstan (HBM2E)",
        "Capstan (DDR4)",
        "Plasticine (HBM2E, handwritten)",
        "V100 GPU",
        "128-Thread CPU",
    ]
    for platform in order:
        row = results.get(platform)
        if not row:
            continue
        cells = "".join(
            f"{row[k]:12.2f}" if k in row else f"{'—':>12s}"
            for k in KERNEL_ORDER
        )
        gmean = geometric_mean(list(row.values()))
        lines.append(f"{platform:34s}{cells}{gmean:10.2f}")
        paper_row = paper_results.TABLE6_NORMALISED.get(platform)
        if paper_row:
            cells = "".join(
                f"{paper_row[k]:12.2f}" if k in paper_row else f"{'—':>12s}"
                for k in KERNEL_ORDER
            )
            pg = geometric_mean(list(paper_row.values()))
            lines.append(f"{'  (paper)':34s}{cells}{pg:10.2f}")
    return "\n".join(lines)


def figure13(scale: float = DEFAULT_SCALE) -> dict[str, dict[str, float]]:
    """Figure 13 series: Capstan/GPU/CPU normalised runtimes per kernel."""
    full = table6(scale)
    return {
        "Capstan": full["Capstan (HBM2E)"],
        "GPU": full["V100 GPU"],
        "CPU": full["128-Thread CPU"],
    }


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5(scale: float = 0.05) -> dict[str, ResourceEstimate]:
    """Resource estimates per kernel (Table 5).

    Resources are structural (dataset-independent), so a tiny dataset
    suffices to build each kernel.
    """
    out = {}
    for kernel_name in KERNEL_ORDER:
        dataset = datasets_for(kernel_name)[0]
        kernel = build_kernel(kernel_name, dataset.name, scale)
        out[kernel_name] = estimate_resources(kernel)
    return out


def format_table5(results: dict[str, ResourceEstimate]) -> str:
    lines = ["Table 5 — Capstan resources per compiled kernel "
             "(measured | paper)"]
    for kernel_name in KERNEL_ORDER:
        est = results[kernel_name]
        p_par, p_pcu, p_pmu, p_mc, p_shuf, p_lim = (
            paper_results.TABLE5_RESOURCES[kernel_name]
        )
        lines.append(est.row())
        lines.append(
            f"{'  (paper)':12s} par={p_par:3d}  PCU={p_pcu:4d} ({p_pcu / 2:5.1f}%)  "
            f"PMU={p_pmu:4d} ({p_pmu / 2:5.1f}%)  MC={p_mc:4d} "
            f"({p_mc / 0.8:5.1f}%)  Shuf={p_shuf:4d} ({p_shuf / 0.16:5.1f}%)  "
            f"limit={','.join(p_lim)}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 (+ Section 8.3 LoC study)
# ---------------------------------------------------------------------------


def table3(scale: float = 0.05) -> dict[str, dict[str, int]]:
    """Lines-of-code comparison per kernel (Table 3)."""
    rows = {}
    for kernel_name in KERNEL_ORDER:
        spec = KERNELS[kernel_name]
        dataset = datasets_for(kernel_name)[0]
        kernel = build_kernel(kernel_name, dataset.name, scale)
        paper_in, paper_sp = paper_results.TABLE3_LOC[kernel_name]
        rows[kernel_name] = {
            "input_loc": spec.input_loc(),
            "spatial_loc": kernel.spatial_loc,
            "paper_input_loc": paper_in,
            "paper_spatial_loc": paper_sp,
        }
    return rows


def format_table3(rows: dict[str, dict[str, int]]) -> str:
    lines = ["Table 3 — lines of code (measured | paper)"]
    lines.append(f"{'Kernel':14s}{'input':>8s}{'spatial':>9s}"
                 f"{'p.input':>9s}{'p.spatial':>10s}")
    for kernel_name in KERNEL_ORDER:
        r = rows[kernel_name]
        lines.append(
            f"{kernel_name:14s}{r['input_loc']:8d}{r['spatial_loc']:9d}"
            f"{r['paper_input_loc']:9d}{r['paper_spatial_loc']:10d}"
        )
    hand = handwritten_capstan_loc()
    spmv_in = rows["SpMV"]["input_loc"]
    lines.append(
        f"SpMV productivity: {spmv_in} input lines vs {hand} handwritten "
        f"Spatial lines ({100 * (1 - spmv_in / hand):.0f}% decrease; paper: "
        f"10 vs {paper_results.HANDWRITTEN_SPMV_LOC}, 76%)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 12
# ---------------------------------------------------------------------------


def figure12(scale: float = DEFAULT_SCALE) -> dict[str, dict[float, float]]:
    """DRAM bandwidth sensitivity: speedup over the 20 GB/s point."""
    sim = CapstanSimulator()
    series: dict[str, dict[float, float]] = {}
    for kernel_name in KERNEL_ORDER:
        dataset = datasets_for(kernel_name)[0]
        kernel = build_kernel(kernel_name, dataset.name, scale)
        stats = compute_stats(kernel)
        sweep = sim.sweep_bandwidth(
            kernel, None, paper_results.FIG12_BANDWIDTHS, stats
        )
        base = sweep[paper_results.FIG12_BANDWIDTHS[0]].seconds
        series[kernel_name] = {
            bw: base / res.seconds for bw, res in sweep.items()
        }
    return series


def format_figure12(series: dict[str, dict[float, float]]) -> str:
    lines = ["Figure 12 — speedup vs DRAM bandwidth (relative to 20 GB/s)"]
    bws = paper_results.FIG12_BANDWIDTHS
    lines.append(f"{'Kernel':14s}" + "".join(f"{bw:>9d}" for bw in bws))
    for kernel_name, points in series.items():
        lines.append(
            f"{kernel_name:14s}"
            + "".join(f"{points[bw]:9.2f}" for bw in bws)
        )
    return "\n".join(lines)
