"""Evaluation harness: regenerates every table and figure of Section 8.

Each ``table*``/``figure*`` function returns plain data structures (and a
formatted text rendering) so the pytest benchmarks can both print the
artefact and assert its qualitative shape against the paper.

All artefacts route through :mod:`repro.pipeline`: the per-combination
work is expressed as (kernel, dataset, platform) jobs that fan out over a
worker pool (``jobs=N``) and memoize through the content-addressed
compilation cache (disable with ``use_cache=False`` or the
``REPRO_NO_CACHE`` environment variable). Parallel runs assemble results
in deterministic job order, so they are byte-identical to serial runs.

Compile-request handling itself lives in :mod:`repro.service.api` now:
every cell is a typed :class:`~repro.service.api.CompileRequest` and this
module keeps only the artefact orchestration plus thin back-compat
wrappers for the old positional signatures (which emit a
``DeprecationWarning`` once per process — new code should go through
:mod:`repro.api`).
"""

from __future__ import annotations

import warnings
from statistics import geometric_mean

from repro.backends.handwritten import handwritten_capstan_loc
from repro.capstan.resources import ResourceEstimate
from repro.core.compiler import CompiledKernel
from repro.data.datasets import datasets_for
from repro.eval import paper_results
from repro.kernels.suite import FORMAT_KERNEL_ORDER, KERNEL_ORDER
from repro.service import api as _api
from repro.service.api import (  # noqa: F401 - back-compat re-exports
    BASELINE_PLATFORM,
    DEFAULT_SCALE,
    PLATFORMS,
    EngineMismatchError,
    PlatformTimes,
    first_dataset,
)
from repro.service.api import CompileRequest
from repro.tensor.tensor import Tensor

#: Names re-exported for callers that still import them from here.
__all__ = [
    "BASELINE_PLATFORM",
    "DEFAULT_SCALE",
    "FORMAT_SWEEP_KERNELS",
    "PLATFORMS",
    "EngineMismatchError",
    "PlatformTimes",
    "build_kernel",
    "build_kernel_cached",
    "evaluate",
    "exec_check",
    "figure12",
    "figure13",
    "first_dataset",
    "format_figure12",
    "format_format_sweep",
    "format_pipeline_sweep",
    "format_sweep",
    "format_table3",
    "format_table5",
    "format_table6",
    "load_dataset_cached",
    "pipeline_sweep",
    "table3",
    "table5",
    "table6",
]


# ---------------------------------------------------------------------------
# Back-compat wrappers over repro.service.api
# ---------------------------------------------------------------------------

#: Deprecated entry points that already warned (once per process each).
_DEPRECATED_SEEN: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATED_SEEN:
        return
    _DEPRECATED_SEEN.add(name)
    warnings.warn(
        f"repro.eval.harness.{name}() is deprecated; build a "
        f"repro.api.CompileRequest and call {replacement} instead",
        DeprecationWarning, stacklevel=3,
    )


def load_dataset_cached(kernel_name: str, dataset_name: str, scale: float,
                        seed: int = 7,
                        use_cache: bool | None = None) -> dict[str, Tensor]:
    """Dataset-generation stage (see :func:`repro.service.api.load_dataset`)."""
    return _api.load_dataset(
        CompileRequest(kernel=kernel_name, dataset=dataset_name, scale=scale,
                       seed=seed),
        use_cache=use_cache,
    )


def build_kernel(kernel_name: str, dataset_name: str, scale: float,
                 seed: int = 7, use_cache: bool | None = None) -> CompiledKernel:
    """Deprecated positional wrapper over :func:`repro.service.api.build`."""
    _warn_deprecated("build_kernel", "repro.api.build(request)")
    return _api.build(
        CompileRequest(kernel=kernel_name, dataset=dataset_name, scale=scale,
                       seed=seed),
        use_cache=use_cache,
    )


def build_kernel_cached(kernel_name: str, dataset_name: str, scale: float,
                        seed: int = 7,
                        use_cache: bool | None = None) -> CompiledKernel:
    """Deprecated positional wrapper over :func:`repro.service.api.build`."""
    _warn_deprecated("build_kernel_cached", "repro.api.build(request)")
    return _api.build(
        CompileRequest(kernel=kernel_name, dataset=dataset_name, scale=scale,
                       seed=seed),
        use_cache=use_cache,
    )


def evaluate(kernel_name: str, dataset_name: str,
             scale: float = DEFAULT_SCALE,
             platforms: tuple[str, ...] | None = None,
             use_cache: bool | None = None) -> PlatformTimes:
    """Deprecated positional wrapper over :func:`repro.service.api.evaluate`.

    Returns the evaluate payload as :class:`PlatformTimes`, exactly as
    before; the staged result entry is shared with every caller of the
    typed API (same canonical request, same key).
    """
    _warn_deprecated("evaluate", "repro.api.evaluate(request)")
    wanted = tuple(platforms) if platforms is not None else None
    result = _api.evaluate(
        CompileRequest(kernel=kernel_name, dataset=dataset_name, scale=scale,
                       platforms=wanted),
        use_cache=use_cache,
    )
    return result.platform_times()


def exec_check(kernel_name: str, dataset_name: str,
               scale: float = DEFAULT_SCALE, engine: str | None = None,
               seed: int = 7, use_cache: bool | None = None) -> dict:
    """Functional-execution stage (see :func:`repro.service.api.exec_check`)."""
    return _api.exec_check(
        CompileRequest(kernel=kernel_name, dataset=dataset_name, scale=scale,
                       seed=seed, engine=engine),
        use_cache=use_cache,
    )


# ---------------------------------------------------------------------------
# Table 6 / Figure 13
# ---------------------------------------------------------------------------


def table6(scale: float = DEFAULT_SCALE, jobs: int | None = None,
           use_cache: bool | None = None,
           engine: str | None = None) -> dict[str, dict[str, float]]:
    """Normalised geomean runtimes per platform per kernel (Table 6).

    ``engine`` selects the functional-execution engine used for the
    per-cell :func:`exec_check`; the simulator-predicted table itself is
    engine-invariant, so every engine yields byte-identical output (or
    the run fails the equivalence check outright).
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("table6", scale, jobs=jobs, use_cache=use_cache,
                        engine=engine)


def format_table6(results: dict[str, dict[str, float]]) -> str:
    lines = ["Table 6 — runtimes normalised to compiled Capstan (HBM2E), "
             "geomean across datasets"]
    header = f"{'Platform':34s}" + "".join(f"{k:>12s}" for k in KERNEL_ORDER)
    lines.append(header + f"{'gmean':>10s}")
    order = [
        "Capstan (HBM2E, handwritten)",
        "Capstan (Ideal)",
        "Capstan (HBM2E)",
        "Capstan (DDR4)",
        "Plasticine (HBM2E, handwritten)",
        "V100 GPU",
        "128-Thread CPU",
    ]
    for platform in order:
        row = results.get(platform)
        if not row:
            continue
        cells = "".join(
            f"{row[k]:12.2f}" if k in row else f"{'—':>12s}"
            for k in KERNEL_ORDER
        )
        gmean = geometric_mean(list(row.values()))
        lines.append(f"{platform:34s}{cells}{gmean:10.2f}")
        paper_row = paper_results.TABLE6_NORMALISED.get(platform)
        if paper_row:
            cells = "".join(
                f"{paper_row[k]:12.2f}" if k in paper_row else f"{'—':>12s}"
                for k in KERNEL_ORDER
            )
            pg = geometric_mean(list(paper_row.values()))
            lines.append(f"{'  (paper)':34s}{cells}{pg:10.2f}")
    return "\n".join(lines)


def figure13(scale: float = DEFAULT_SCALE, jobs: int | None = None,
             use_cache: bool | None = None,
             engine: str | None = None) -> dict[str, dict[str, float]]:
    """Figure 13 series: Capstan/GPU/CPU normalised runtimes per kernel."""
    full = table6(scale, jobs=jobs, use_cache=use_cache, engine=engine)
    return {
        "Capstan": full["Capstan (HBM2E)"],
        "GPU": full["V100 GPU"],
        "CPU": full["128-Thread CPU"],
    }


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5(scale: float = 0.05, jobs: int | None = None,
           use_cache: bool | None = None) -> dict[str, ResourceEstimate]:
    """Resource estimates per kernel (Table 5).

    Resources are structural (dataset-independent), so a tiny dataset
    suffices to build each kernel.
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("table5", scale, jobs=jobs, use_cache=use_cache)


def format_table5(results: dict[str, ResourceEstimate]) -> str:
    lines = ["Table 5 — Capstan resources per compiled kernel "
             "(measured | paper)"]
    for kernel_name in KERNEL_ORDER:
        est = results[kernel_name]
        p_par, p_pcu, p_pmu, p_mc, p_shuf, p_lim = (
            paper_results.TABLE5_RESOURCES[kernel_name]
        )
        lines.append(est.row())
        lines.append(
            f"{'  (paper)':12s} par={p_par:3d}  PCU={p_pcu:4d} ({p_pcu / 2:5.1f}%)  "
            f"PMU={p_pmu:4d} ({p_pmu / 2:5.1f}%)  MC={p_mc:4d} "
            f"({p_mc / 0.8:5.1f}%)  Shuf={p_shuf:4d} ({p_shuf / 0.16:5.1f}%)  "
            f"limit={','.join(p_lim)}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 (+ Section 8.3 LoC study)
# ---------------------------------------------------------------------------


def table3(scale: float = 0.05, jobs: int | None = None,
           use_cache: bool | None = None) -> dict[str, dict[str, int]]:
    """Lines-of-code comparison per kernel (Table 3)."""
    from repro.pipeline.batch import run_artifact

    return run_artifact("table3", scale, jobs=jobs, use_cache=use_cache)


def format_table3(rows: dict[str, dict[str, int]]) -> str:
    lines = ["Table 3 — lines of code (measured | paper)"]
    lines.append(f"{'Kernel':14s}{'input':>8s}{'spatial':>9s}"
                 f"{'p.input':>9s}{'p.spatial':>10s}")
    for kernel_name in KERNEL_ORDER:
        r = rows[kernel_name]
        lines.append(
            f"{kernel_name:14s}{r['input_loc']:8d}{r['spatial_loc']:9d}"
            f"{r['paper_input_loc']:9d}{r['paper_spatial_loc']:10d}"
        )
    hand = handwritten_capstan_loc()
    spmv_in = rows["SpMV"]["input_loc"]
    lines.append(
        f"SpMV productivity: {spmv_in} input lines vs {hand} handwritten "
        f"Spatial lines ({100 * (1 - spmv_in / hand):.0f}% decrease; paper: "
        f"10 vs {paper_results.HANDWRITTEN_SPMV_LOC}, 76%)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 12
# ---------------------------------------------------------------------------


def figure12(scale: float = DEFAULT_SCALE, jobs: int | None = None,
             use_cache: bool | None = None) -> dict[str, dict[float, float]]:
    """DRAM bandwidth sensitivity: speedup over the 20 GB/s point."""
    from repro.pipeline.batch import run_artifact

    return run_artifact("figure12", scale, jobs=jobs, use_cache=use_cache)


def format_figure12(series: dict[str, dict[float, float]]) -> str:
    lines = ["Figure 12 — speedup vs DRAM bandwidth (relative to 20 GB/s)"]
    bws = paper_results.FIG12_BANDWIDTHS
    lines.append(f"{'Kernel':14s}" + "".join(f"{bw:>9d}" for bw in bws))
    for kernel_name, points in series.items():
        lines.append(
            f"{kernel_name:14s}"
            + "".join(f"{points[bw]:9.2f}" for bw in bws)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Format sweep (singleton/COO, DCSR, and blocked formats)
# ---------------------------------------------------------------------------

#: The format-sweep kernel set: the CSR SpMV baseline plus the COO, DCSR,
#: and BCSR workloads enabled by the format abstraction subsystem.
FORMAT_SWEEP_KERNELS = ("SpMV",) + FORMAT_KERNEL_ORDER


def format_sweep(scale: float = DEFAULT_SCALE, jobs: int | None = None,
                 use_cache: bool | None = None,
                 engine: str | None = None) -> dict[str, dict[str, dict]]:
    """Per-format kernel cost over the matrix datasets.

    Each cell compiles one format-sweep kernel on one dataset (the sparse
    operand stages once per (dataset, format) through ``repro.convert``)
    and reports storage footprint, generated-code size, Capstan resources,
    DRAM traffic, and predicted HBM2E runtime.
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("format_sweep", scale, jobs=jobs, use_cache=use_cache,
                        engine=engine)


def format_format_sweep(results: dict[str, dict[str, dict]]) -> str:
    lines = ["Format sweep — per-format kernel cost on Capstan (HBM2E)"]
    lines.append(
        f"{'Kernel':12s}{'Dataset':18s}{'nnz':>10s}{'KiB':>9s}"
        f"{'LoC':>6s}{'PCU':>6s}{'PMU':>6s}{'DRAM MiB':>10s}{'us':>12s}"
    )
    for kernel_name in FORMAT_SWEEP_KERNELS:
        rows = results.get(kernel_name, {})
        for dspec in datasets_for(kernel_name):
            cell = rows.get(dspec.name)
            if cell is None:
                continue
            lines.append(
                f"{kernel_name:12s}{dspec.name:18s}{cell['nnz']:10d}"
                f"{cell['storage_bytes'] / 1024:9.1f}"
                f"{cell['spatial_loc']:6d}{cell['pcu']:6d}{cell['pmu']:6d}"
                f"{cell['dram_bytes'] / (1024 * 1024):10.2f}"
                f"{cell['seconds'] * 1e6:12.2f}"
            )
    return "\n".join(lines)


def pipeline_sweep(scale: float = DEFAULT_SCALE, jobs: int | None = None,
                   use_cache: bool | None = None,
                   engine: str | None = None) -> dict[str, dict[str, dict]]:
    """Fused multi-kernel pipelines over the matrix datasets.

    Each cell plans and executes one expression pipeline (FuseFlow-style
    cross-expression fusion with automatic cuts) and reports the cut
    decisions plus the modeled memory traffic with and without fusion.
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("pipeline_sweep", scale, jobs=jobs,
                        use_cache=use_cache, engine=engine)


def format_pipeline_sweep(results: dict[str, dict[str, dict]]) -> str:
    from repro.pipeline.fusion import PIPELINE_ORDER, PIPELINES

    lines = ["Pipeline sweep — fused expression pipelines (FuseFlow cuts)"]
    lines.append(
        f"{'Pipeline':12s}{'Dataset':18s}{'Conn':>6s}{'Streams':>9s}"
        f"{'Unfused KiB':>13s}{'Fused KiB':>11s}{'Saved':>8s}  Cut reasons"
    )
    for name in PIPELINE_ORDER:
        rows = results.get(name, {})
        for dataset in PIPELINES[name].datasets:
            cell = rows.get(dataset)
            if cell is None:
                continue
            decisions = cell["decisions"]
            streams = sum(1 for d in decisions if d["streamed"])
            cuts = "; ".join(
                d["reason"].split("(")[0].split(":")[0].strip()
                for d in decisions if not d["streamed"]
            ) or "-"
            lines.append(
                f"{name:12s}{dataset:18s}{len(decisions):6d}{streams:9d}"
                f"{cell['unfused_bytes'] / 1024:13.1f}"
                f"{cell['fused_bytes'] / 1024:11.1f}"
                f"{cell['reduction_pct']:7.1f}%  {cuts}"
            )
    return "\n".join(lines)
