"""Evaluation harness: regenerates every table and figure of Section 8.

Each ``table*``/``figure*`` function returns plain data structures (and a
formatted text rendering) so the pytest benchmarks can both print the
artefact and assert its qualitative shape against the paper.

All artefacts route through :mod:`repro.pipeline`: the per-combination
work is expressed as (kernel, dataset, platform) jobs that fan out over a
worker pool (``jobs=N``) and memoize through the content-addressed
compilation cache (disable with ``use_cache=False`` or the
``REPRO_NO_CACHE`` environment variable). Parallel runs assemble results
in deterministic job order, so they are byte-identical to serial runs.
"""

from __future__ import annotations

import dataclasses
import os
from statistics import geometric_mean

from repro.backends.cpu import CpuBackend
from repro.backends.gpu import GpuBackend
from repro.backends.handwritten import (
    HandwrittenCapstanSpMV,
    HandwrittenPlasticineSpMV,
    handwritten_capstan_loc,
)
from repro.capstan.dram import DDR4, HBM2E, IDEAL
from repro.capstan.resources import ResourceEstimate, estimate_resources_cached
from repro.capstan.simulator import CapstanSimulator
from repro.capstan.stats import compute_stats_cached
from repro.core.compiler import CompiledKernel, compile_stmt
from repro.data.datasets import datasets_for, load
from repro.eval import paper_results
from repro.kernels.suite import FORMAT_KERNEL_ORDER, KERNEL_ORDER, KERNELS
from repro.pipeline.cache import memoize_stage
from repro.tensor.tensor import Tensor

#: Default dataset scale; override with REPRO_SCALE (1.0 = full Table 4).
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

PLATFORMS = (
    "Capstan (Ideal)",
    "Capstan (HBM2E)",
    "Capstan (DDR4)",
    "V100 GPU",
    "128-Thread CPU",
)

#: The normalisation baseline of Table 6 / Figure 13.
BASELINE_PLATFORM = "Capstan (HBM2E)"


def first_dataset(kernel_name: str) -> str:
    """The kernel's first Table 4 dataset (used for structural artefacts)."""
    return datasets_for(kernel_name)[0].name


def load_dataset_cached(kernel_name: str, dataset_name: str, scale: float,
                        seed: int = 7,
                        use_cache: bool | None = None) -> dict[str, Tensor]:
    """Dataset-generation **stage**: the kernel's packed operand tensors.

    Generating and packing the synthetic Table 4 datasets dominates cold
    build time but involves no compiler code, so this stage is keyed by a
    hash of only the data/format/tensor sources and — uniquely — stays
    warm under ``--no-cache``: a forced recompile reuses the generated
    datasets while every later stage recomputes.
    """
    return memoize_stage(
        "dataset", (kernel_name, dataset_name, scale, seed),
        lambda: load(kernel_name, dataset_name, scale=scale, seed=seed),
        use_cache,
    )


def build_kernel(kernel_name: str, dataset_name: str, scale: float,
                 seed: int = 7, use_cache: bool | None = None) -> CompiledKernel:
    """Materialise a dataset (dataset stage) and compile the kernel on it.

    Both halves are separately-staged cache entries: the dataset stage
    survives ``--no-cache`` and compiler edits; the compilation stage is
    memoized by statement fingerprint inside :func:`compile_stmt`.
    """
    spec = KERNELS[kernel_name]
    tensors = load_dataset_cached(kernel_name, dataset_name, scale, seed,
                                  use_cache=use_cache)
    stmt, _out = spec.build(tensors)
    return compile_stmt(stmt, kernel_name, cache=use_cache)


def build_kernel_cached(kernel_name: str, dataset_name: str, scale: float,
                        seed: int = 7,
                        use_cache: bool | None = None) -> CompiledKernel:
    """:func:`build_kernel` memoized under the ``build`` stage.

    Keyed by the evaluation coordinates; a warm hit skips even the
    statement construction and fingerprinting. On a ``--no-cache`` run
    this stage bypasses, falling through to the staged
    :func:`build_kernel` so dataset generation is still reused.
    """
    return memoize_stage(
        "build", (kernel_name, dataset_name, scale, seed),
        lambda: build_kernel(kernel_name, dataset_name, scale, seed,
                             use_cache=use_cache),
        use_cache,
    )


@dataclasses.dataclass
class PlatformTimes:
    """Predicted seconds per platform for one kernel+dataset."""

    kernel: str
    dataset: str
    seconds: dict[str, float]

    def normalised(self) -> dict[str, float]:
        base = self.seconds[BASELINE_PLATFORM]
        return {p: s / base for p, s in self.seconds.items()}


def _platform_models(kernel: CompiledKernel, stats, sim: CapstanSimulator,
                     resources) -> dict[str, object]:
    """Per-platform runtime predictors (lazily evaluated thunks)."""
    models = {
        "Capstan (Ideal)": lambda: sim.simulate(
            kernel, dram=IDEAL, stats=stats, resources=resources).seconds,
        "Capstan (HBM2E)": lambda: sim.simulate(
            kernel, dram=HBM2E, stats=stats, resources=resources).seconds,
        "Capstan (DDR4)": lambda: sim.simulate(
            kernel, dram=DDR4, stats=stats, resources=resources).seconds,
        "V100 GPU": lambda: GpuBackend().predict_seconds(kernel, stats),
        "128-Thread CPU": lambda: CpuBackend().predict_seconds(kernel, stats),
    }
    if kernel.name == "SpMV":
        models["Capstan (HBM2E, handwritten)"] = (
            lambda: HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
        )
        models["Plasticine (HBM2E, handwritten)"] = (
            lambda: HandwrittenPlasticineSpMV().predict_seconds(stats, HBM2E)
        )
    return models


def evaluate(kernel_name: str, dataset_name: str,
             scale: float = DEFAULT_SCALE,
             platforms: tuple[str, ...] | None = None,
             use_cache: bool | None = None) -> PlatformTimes:
    """Predict runtimes on every platform for one kernel+dataset.

    Args:
        platforms: restrict prediction to these platform names (default:
            all applicable platforms). Note :meth:`PlatformTimes.normalised`
            needs the ``Capstan (HBM2E)`` baseline to be included.
        use_cache: route the result through the pipeline cache (``None``
            honours ``REPRO_NO_CACHE``).
    """
    wanted = tuple(platforms) if platforms is not None else None

    def compute() -> PlatformTimes:
        coords = (kernel_name, dataset_name, scale, 7)
        kernel = build_kernel_cached(kernel_name, dataset_name, scale,
                                     use_cache=use_cache)
        stats = compute_stats_cached(kernel, coords, use_cache)
        sim = CapstanSimulator()
        resources = estimate_resources_cached(kernel, coords, use_cache)
        models = _platform_models(kernel, stats, sim, resources)
        if wanted is not None:
            unknown = [p for p in wanted if p not in models]
            if unknown:
                raise ValueError(
                    f"unknown platform(s) {unknown} for {kernel_name}; "
                    f"choose from {sorted(models)}"
                )
        seconds = {
            name: model()
            for name, model in models.items()
            if wanted is None or name in wanted
        }
        return PlatformTimes(kernel_name, dataset_name, seconds)

    return memoize_stage(
        "evaluate", (kernel_name, dataset_name, scale, 7, wanted),
        compute, use_cache,
    )


class EngineMismatchError(AssertionError):
    """A functional execution engine disagreed with the interpreter oracle."""


def exec_check(kernel_name: str, dataset_name: str,
               scale: float = DEFAULT_SCALE, engine: str | None = None,
               seed: int = 7, use_cache: bool | None = None) -> dict:
    """Functional-execution **stage**: run one cell with ``engine``.

    Executes the kernel's statement with the selected engine and checks
    the dense result against the Spatial interpreter
    (``CompiledKernel.run_dense`` — the oracle: it executes the lowered
    program and handles every format, and unlike the dense broadcast
    reference it never materializes the full iteration-space product,
    which is intractable at sweep scales for contractions like SDDMM).
    Raises :class:`EngineMismatchError` on disagreement — so an artefact
    job that embeds this check genuinely gates engine equivalence. Keyed
    by the evaluation coordinates **plus the engine name** (the ``exec``
    cache stage), so results for different engines never collide. For
    ``engine="interp"`` the check is the oracle run itself.
    """
    from repro.core.compiler import default_engine

    engine = default_engine() if engine is None else engine

    def compute() -> dict:
        import numpy as np

        kernel = build_kernel_cached(kernel_name, dataset_name, scale, seed,
                                     use_cache=use_cache)
        expected = np.asarray(kernel.run_dense(), dtype=np.float64)
        fell_back = False
        if engine == "interp":
            got = expected
        elif engine == "numpy":
            from repro.backends.numpy_exec import NumpyExecutor

            executor = NumpyExecutor(kernel.stmt)
            got = executor.run()
            fell_back = executor.fell_back
        else:
            got = kernel.run_engine(engine)
        got = np.asarray(got, dtype=np.float64).reshape(expected.shape)
        magnitude = max(1.0, float(np.max(np.abs(expected))) if expected.size
                        else 1.0)
        maxerr = (float(np.max(np.abs(got - expected)))
                  if expected.size else 0.0)
        if maxerr > 1e-8 * magnitude:
            raise EngineMismatchError(
                f"{engine} engine disagrees with the interpreter oracle on "
                f"{kernel_name}/{dataset_name} (scale={scale}): "
                f"max abs error {maxerr:.3e}"
            )
        return {
            "kernel": kernel_name,
            "dataset": dataset_name,
            "engine": engine,
            "maxerr": maxerr,
            "elements": int(expected.size),
            "fell_back": fell_back,
        }

    return memoize_stage(
        "exec", (kernel_name, dataset_name, scale, seed, engine),
        compute, use_cache,
    )


# ---------------------------------------------------------------------------
# Table 6 / Figure 13
# ---------------------------------------------------------------------------


def table6(scale: float = DEFAULT_SCALE, jobs: int | None = None,
           use_cache: bool | None = None,
           engine: str | None = None) -> dict[str, dict[str, float]]:
    """Normalised geomean runtimes per platform per kernel (Table 6).

    ``engine`` selects the functional-execution engine used for the
    per-cell :func:`exec_check`; the simulator-predicted table itself is
    engine-invariant, so every engine yields byte-identical output (or
    the run fails the equivalence check outright).
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("table6", scale, jobs=jobs, use_cache=use_cache,
                        engine=engine)


def format_table6(results: dict[str, dict[str, float]]) -> str:
    lines = ["Table 6 — runtimes normalised to compiled Capstan (HBM2E), "
             "geomean across datasets"]
    header = f"{'Platform':34s}" + "".join(f"{k:>12s}" for k in KERNEL_ORDER)
    lines.append(header + f"{'gmean':>10s}")
    order = [
        "Capstan (HBM2E, handwritten)",
        "Capstan (Ideal)",
        "Capstan (HBM2E)",
        "Capstan (DDR4)",
        "Plasticine (HBM2E, handwritten)",
        "V100 GPU",
        "128-Thread CPU",
    ]
    for platform in order:
        row = results.get(platform)
        if not row:
            continue
        cells = "".join(
            f"{row[k]:12.2f}" if k in row else f"{'—':>12s}"
            for k in KERNEL_ORDER
        )
        gmean = geometric_mean(list(row.values()))
        lines.append(f"{platform:34s}{cells}{gmean:10.2f}")
        paper_row = paper_results.TABLE6_NORMALISED.get(platform)
        if paper_row:
            cells = "".join(
                f"{paper_row[k]:12.2f}" if k in paper_row else f"{'—':>12s}"
                for k in KERNEL_ORDER
            )
            pg = geometric_mean(list(paper_row.values()))
            lines.append(f"{'  (paper)':34s}{cells}{pg:10.2f}")
    return "\n".join(lines)


def figure13(scale: float = DEFAULT_SCALE, jobs: int | None = None,
             use_cache: bool | None = None,
             engine: str | None = None) -> dict[str, dict[str, float]]:
    """Figure 13 series: Capstan/GPU/CPU normalised runtimes per kernel."""
    full = table6(scale, jobs=jobs, use_cache=use_cache, engine=engine)
    return {
        "Capstan": full["Capstan (HBM2E)"],
        "GPU": full["V100 GPU"],
        "CPU": full["128-Thread CPU"],
    }


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5(scale: float = 0.05, jobs: int | None = None,
           use_cache: bool | None = None) -> dict[str, ResourceEstimate]:
    """Resource estimates per kernel (Table 5).

    Resources are structural (dataset-independent), so a tiny dataset
    suffices to build each kernel.
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("table5", scale, jobs=jobs, use_cache=use_cache)


def format_table5(results: dict[str, ResourceEstimate]) -> str:
    lines = ["Table 5 — Capstan resources per compiled kernel "
             "(measured | paper)"]
    for kernel_name in KERNEL_ORDER:
        est = results[kernel_name]
        p_par, p_pcu, p_pmu, p_mc, p_shuf, p_lim = (
            paper_results.TABLE5_RESOURCES[kernel_name]
        )
        lines.append(est.row())
        lines.append(
            f"{'  (paper)':12s} par={p_par:3d}  PCU={p_pcu:4d} ({p_pcu / 2:5.1f}%)  "
            f"PMU={p_pmu:4d} ({p_pmu / 2:5.1f}%)  MC={p_mc:4d} "
            f"({p_mc / 0.8:5.1f}%)  Shuf={p_shuf:4d} ({p_shuf / 0.16:5.1f}%)  "
            f"limit={','.join(p_lim)}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 (+ Section 8.3 LoC study)
# ---------------------------------------------------------------------------


def table3(scale: float = 0.05, jobs: int | None = None,
           use_cache: bool | None = None) -> dict[str, dict[str, int]]:
    """Lines-of-code comparison per kernel (Table 3)."""
    from repro.pipeline.batch import run_artifact

    return run_artifact("table3", scale, jobs=jobs, use_cache=use_cache)


def format_table3(rows: dict[str, dict[str, int]]) -> str:
    lines = ["Table 3 — lines of code (measured | paper)"]
    lines.append(f"{'Kernel':14s}{'input':>8s}{'spatial':>9s}"
                 f"{'p.input':>9s}{'p.spatial':>10s}")
    for kernel_name in KERNEL_ORDER:
        r = rows[kernel_name]
        lines.append(
            f"{kernel_name:14s}{r['input_loc']:8d}{r['spatial_loc']:9d}"
            f"{r['paper_input_loc']:9d}{r['paper_spatial_loc']:10d}"
        )
    hand = handwritten_capstan_loc()
    spmv_in = rows["SpMV"]["input_loc"]
    lines.append(
        f"SpMV productivity: {spmv_in} input lines vs {hand} handwritten "
        f"Spatial lines ({100 * (1 - spmv_in / hand):.0f}% decrease; paper: "
        f"10 vs {paper_results.HANDWRITTEN_SPMV_LOC}, 76%)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 12
# ---------------------------------------------------------------------------


def figure12(scale: float = DEFAULT_SCALE, jobs: int | None = None,
             use_cache: bool | None = None) -> dict[str, dict[float, float]]:
    """DRAM bandwidth sensitivity: speedup over the 20 GB/s point."""
    from repro.pipeline.batch import run_artifact

    return run_artifact("figure12", scale, jobs=jobs, use_cache=use_cache)


def format_figure12(series: dict[str, dict[float, float]]) -> str:
    lines = ["Figure 12 — speedup vs DRAM bandwidth (relative to 20 GB/s)"]
    bws = paper_results.FIG12_BANDWIDTHS
    lines.append(f"{'Kernel':14s}" + "".join(f"{bw:>9d}" for bw in bws))
    for kernel_name, points in series.items():
        lines.append(
            f"{kernel_name:14s}"
            + "".join(f"{points[bw]:9.2f}" for bw in bws)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Format sweep (singleton/COO, DCSR, and blocked formats)
# ---------------------------------------------------------------------------

#: The format-sweep kernel set: the CSR SpMV baseline plus the COO, DCSR,
#: and BCSR workloads enabled by the format abstraction subsystem.
FORMAT_SWEEP_KERNELS = ("SpMV",) + FORMAT_KERNEL_ORDER


def format_sweep(scale: float = DEFAULT_SCALE, jobs: int | None = None,
                 use_cache: bool | None = None,
                 engine: str | None = None) -> dict[str, dict[str, dict]]:
    """Per-format kernel cost over the matrix datasets.

    Each cell compiles one format-sweep kernel on one dataset (the sparse
    operand stages once per (dataset, format) through ``repro.convert``)
    and reports storage footprint, generated-code size, Capstan resources,
    DRAM traffic, and predicted HBM2E runtime.
    """
    from repro.pipeline.batch import run_artifact

    return run_artifact("format_sweep", scale, jobs=jobs, use_cache=use_cache,
                        engine=engine)


def format_format_sweep(results: dict[str, dict[str, dict]]) -> str:
    lines = ["Format sweep — per-format kernel cost on Capstan (HBM2E)"]
    lines.append(
        f"{'Kernel':12s}{'Dataset':18s}{'nnz':>10s}{'KiB':>9s}"
        f"{'LoC':>6s}{'PCU':>6s}{'PMU':>6s}{'DRAM MiB':>10s}{'us':>12s}"
    )
    for kernel_name in FORMAT_SWEEP_KERNELS:
        rows = results.get(kernel_name, {})
        for dspec in datasets_for(kernel_name):
            cell = rows.get(dspec.name)
            if cell is None:
                continue
            lines.append(
                f"{kernel_name:12s}{dspec.name:18s}{cell['nnz']:10d}"
                f"{cell['storage_bytes'] / 1024:9.1f}"
                f"{cell['spatial_loc']:6d}{cell['pcu']:6d}{cell['pmu']:6d}"
                f"{cell['dram_bytes'] / (1024 * 1024):10.2f}"
                f"{cell['seconds'] * 1e6:12.2f}"
            )
    return "\n".join(lines)
