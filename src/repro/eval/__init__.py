"""Evaluation harness and published reference numbers."""

from repro.eval import paper_results
from repro.eval.harness import (
    DEFAULT_SCALE,
    build_kernel,
    evaluate,
    figure12,
    figure13,
    format_figure12,
    format_table3,
    format_table5,
    format_table6,
    table3,
    table5,
    table6,
)

__all__ = [
    "DEFAULT_SCALE",
    "build_kernel",
    "evaluate",
    "figure12",
    "figure13",
    "format_figure12",
    "format_table3",
    "format_table5",
    "format_table6",
    "paper_results",
    "table3",
    "table5",
    "table6",
]
