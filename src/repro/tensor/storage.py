"""Level-based sparse tensor storage (the Chou et al. format abstraction).

A tensor of order *n* is stored as *n* stacked level structures plus one
values array. Each level materialises the coordinates of one tensor mode
(in ``mode_ordering`` order):

* **dense** levels store nothing; a parent position ``p`` expands to child
  positions ``p * N + i`` for every coordinate ``i`` in ``[0, N)``.
* **block** levels behave like dense levels whose extent is fixed by the
  format (the BCSR tile dimensions); packing validates the tensor shape
  against the static size.
* **compressed** levels store a ``pos`` array (segment boundaries per parent
  position) and a ``crd`` array (the nonzero coordinates), exactly the
  CSR-style arrays of Figure 8. Non-unique compressed levels (the COO
  root) keep one position per stored entry instead of deduplicating.
* **singleton** levels store a bare ``crd`` array with exactly one
  coordinate per parent position (the COO column/tail levels).

The :func:`pack` function converts COO data into this representation for an
arbitrary format, and :func:`unpack` converts back, so round-tripping is
property-testable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.formats.format import Format
from repro.formats.levels import LevelKind


@dataclasses.dataclass
class DenseLevel:
    """A dense (uncompressed) storage level: coordinates are implicit."""

    size: int

    @property
    def kind(self) -> LevelKind:
        return LevelKind.DENSE

    def num_children(self, num_parents: int) -> int:
        return num_parents * self.size


@dataclasses.dataclass
class CompressedLevel:
    """A compressed storage level: explicit ``pos``/``crd`` arrays."""

    pos: np.ndarray
    crd: np.ndarray

    @property
    def kind(self) -> LevelKind:
        return LevelKind.COMPRESSED

    @property
    def nnz(self) -> int:
        return len(self.crd)

    def segment(self, parent_pos: int) -> tuple[int, int]:
        """Child position range ``[start, end)`` for one parent position."""
        return int(self.pos[parent_pos]), int(self.pos[parent_pos + 1])


@dataclasses.dataclass
class SingletonLevel:
    """A singleton storage level: one explicit coordinate per parent
    position (a ``crd`` array with no ``pos`` array)."""

    crd: np.ndarray

    @property
    def kind(self) -> LevelKind:
        return LevelKind.SINGLETON

    @property
    def nnz(self) -> int:
        return len(self.crd)


Level = DenseLevel | CompressedLevel | SingletonLevel


@dataclasses.dataclass
class TensorStorage:
    """Packed storage for one tensor: levels (outermost first) plus values.

    ``levels[L]`` stores tensor mode ``fmt.mode_ordering[L]``. ``vals`` has
    one entry per position of the innermost level.
    """

    fmt: Format
    dims: tuple[int, ...]
    levels: list[Level]
    vals: np.ndarray

    @property
    def order(self) -> int:
        return len(self.dims)

    @property
    def nnz(self) -> int:
        """Number of stored (possibly explicit-zero) entries."""
        return len(self.vals)

    def level_dim(self, level: int) -> int:
        """Dimension size of the mode stored at ``level``."""
        return self.dims[self.fmt.mode_of_level(level)]

    def array(self, level: int, name: str) -> np.ndarray:
        """Fetch a named sub-array (``pos``/``crd``) of a sparse level."""
        lvl = self.levels[level]
        if isinstance(lvl, SingletonLevel):
            if name == "crd":
                return lvl.crd
            raise KeyError(
                f"singleton level {level} has no {name!r} array (only crd)"
            )
        if not isinstance(lvl, CompressedLevel):
            raise KeyError(f"level {level} is dense and has no {name!r} array")
        if name == "pos":
            return lvl.pos
        if name == "crd":
            return lvl.crd
        raise KeyError(f"unknown sub-array {name!r}")

    def bytes_total(self, elem_bytes: int = 4) -> int:
        """Total footprint in bytes (indices and values, 4B words)."""
        total = len(self.vals) * elem_bytes
        for lvl in self.levels:
            if isinstance(lvl, CompressedLevel):
                total += (len(lvl.pos) + len(lvl.crd)) * 4
            elif isinstance(lvl, SingletonLevel):
                total += len(lvl.crd) * 4
        return total


_POS_DTYPE = np.int64
_CRD_DTYPE = np.int32


def _dedupe_coo(
    coords: np.ndarray, vals: np.ndarray, storage_order: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Sort COO entries by storage order and sum duplicates.

    ``coords`` is (nnz, order); returns sorted, unique coords and summed
    values in storage-level order of significance.
    """
    if coords.shape[0] == 0:
        return coords, vals
    keys = tuple(coords[:, m] for m in reversed(storage_order))
    order = np.lexsort(keys)
    coords = coords[order]
    vals = vals[order]
    if coords.shape[0] > 1:
        same = np.all(coords[1:] == coords[:-1], axis=1)
        if same.any():
            group_ids = np.concatenate(([0], np.cumsum(~same)))
            n_groups = group_ids[-1] + 1
            first = np.concatenate(([True], ~same))
            summed = np.zeros(n_groups, dtype=vals.dtype)
            np.add.at(summed, group_ids, vals)
            coords = coords[first]
            vals = summed
    return coords, vals


def pack(
    coords: np.ndarray,
    vals: np.ndarray,
    dims: tuple[int, ...],
    fmt: Format,
) -> TensorStorage:
    """Pack COO data into level storage for an arbitrary format.

    Args:
        coords: integer array of shape (nnz, order), one row per entry.
        vals: values of shape (nnz,).
        dims: dimension sizes per tensor mode.
        fmt: target format; ``fmt.order`` must equal ``len(dims)``.

    The algorithm walks levels top-down, tracking each entry's *parent
    position*. Dense levels multiply the position space by the dimension;
    compressed levels rank the unique (parent, coordinate) pairs.
    """
    order = len(dims)
    if fmt.order != order:
        raise ValueError(f"format order {fmt.order} != tensor order {order}")
    coords = np.asarray(coords, dtype=np.int64).reshape(-1, order) if order else (
        np.zeros((len(np.atleast_1d(vals)), 0), dtype=np.int64)
    )
    vals = np.asarray(vals, dtype=np.float64).reshape(-1)
    if coords.shape[0] != vals.shape[0]:
        raise ValueError("coords and vals disagree on entry count")
    for m in range(order):
        if coords.shape[0] and (
            coords[:, m].min() < 0 or coords[:, m].max() >= dims[m]
        ):
            raise ValueError(f"coordinate out of bounds in mode {m}")

    if order == 0:
        value = float(vals.sum()) if len(vals) else 0.0
        return TensorStorage(fmt, (), [], np.array([value], dtype=np.float64))

    coords, vals = _dedupe_coo(coords, vals, fmt.mode_ordering)
    n = coords.shape[0]

    levels: list[Level] = []
    # parent position of each stored entry at the level being built
    parent_pos = np.zeros(n, dtype=np.int64)
    num_parents = 1
    for lvl_idx in range(order):
        mode = fmt.mode_of_level(lvl_idx)
        dim = dims[mode]
        lvl_coords = coords[:, mode]
        lf = fmt.level_format(lvl_idx)
        if lf.is_dense:
            if lf.is_block and dim != lf.size:
                raise ValueError(
                    f"block level {lvl_idx} has static size {lf.size} but "
                    f"mode {mode} has dimension {dim}"
                )
            levels.append(DenseLevel(dim))
            parent_pos = parent_pos * dim + lvl_coords
            num_parents *= dim
        elif lf.is_singleton:
            # One coordinate per parent position: positions pass through.
            if n != num_parents or (
                n and len(np.unique(parent_pos)) != n
            ):
                raise ValueError(
                    f"singleton level {lvl_idx} requires exactly one entry "
                    f"per parent position ({num_parents} parents, {n} "
                    f"entries); use a non-unique compressed parent level"
                )
            crd = np.zeros(num_parents, dtype=_CRD_DTYPE)
            crd[parent_pos] = lvl_coords
            levels.append(SingletonLevel(crd=crd))
        else:
            # Rank unique (parent_pos, coord) pairs. Entries are already
            # sorted in storage order, so pairs appear grouped and sorted.
            # Non-unique compressed levels (the COO root) keep one position
            # per stored entry instead of grouping equal pairs.
            key = parent_pos * dim + lvl_coords
            if n:
                if lf.unique:
                    new_group = np.concatenate(([True], key[1:] != key[:-1]))
                else:
                    new_group = np.ones(n, dtype=bool)
                group_rank = np.cumsum(new_group) - 1
                uniq_key = key[new_group]
                uniq_parent = parent_pos[new_group]
                uniq_crd = (uniq_key % dim).astype(_CRD_DTYPE)
            else:
                group_rank = np.zeros(0, dtype=np.int64)
                uniq_parent = np.zeros(0, dtype=np.int64)
                uniq_crd = np.zeros(0, dtype=_CRD_DTYPE)
            pos = np.zeros(num_parents + 1, dtype=_POS_DTYPE)
            np.add.at(pos, uniq_parent + 1, 1)
            np.cumsum(pos, out=pos)
            levels.append(CompressedLevel(pos=pos, crd=uniq_crd))
            parent_pos = group_rank
            num_parents = len(uniq_crd)

    # One value slot per innermost-level position: compressed tails have one
    # slot per stored entry, dense tails one per (possibly zero) dense slot.
    out_vals = np.zeros(num_parents, dtype=np.float64)
    out_vals[parent_pos] = vals
    return TensorStorage(fmt, tuple(dims), levels, out_vals)


def unpack(storage: TensorStorage) -> tuple[np.ndarray, np.ndarray]:
    """Expand level storage back to COO ``(coords, vals)``.

    Dense levels enumerate every slot, so unpacking a format with a trailing
    dense level yields explicit zeros; callers filter if needed.
    """
    order = storage.order
    if order == 0:
        return np.zeros((1, 0), dtype=np.int64), storage.vals.copy()

    # positions and per-entry coordinates, built level by level
    positions = np.zeros(1, dtype=np.int64)
    coord_cols: list[np.ndarray] = []
    for lvl_idx in range(order):
        lvl = storage.levels[lvl_idx]
        if isinstance(lvl, DenseLevel):
            dim = lvl.size
            reps = len(positions)
            new_coord = np.tile(np.arange(dim, dtype=np.int64), reps)
            positions = np.repeat(positions, dim) * dim + new_coord
            coord_cols = [np.repeat(c, dim) for c in coord_cols]
            coord_cols.append(new_coord)
        elif isinstance(lvl, SingletonLevel):
            # One child per parent: positions pass through unchanged.
            coord_cols.append(lvl.crd[positions].astype(np.int64))
        else:
            counts = lvl.pos[positions + 1] - lvl.pos[positions]
            starts = lvl.pos[positions]
            total = int(counts.sum())
            # offsets[e] = starts[parent] + (rank of e within its segment)
            prefix = np.concatenate(([0], np.cumsum(counts)))[: len(counts)]
            seg_base = np.repeat(prefix, counts)
            offsets = np.repeat(starts, counts) + (np.arange(total) - seg_base)
            coord_cols = [np.repeat(c, counts) for c in coord_cols]
            coord_cols.append(lvl.crd[offsets].astype(np.int64))
            positions = offsets
    coords_storage = np.stack(coord_cols, axis=1) if coord_cols else np.zeros((0, 0))
    # map storage-level order back to mode order
    coords = np.zeros_like(coords_storage)
    for lvl_idx in range(order):
        coords[:, storage.fmt.mode_of_level(lvl_idx)] = coords_storage[:, lvl_idx]
    return coords, storage.vals[positions]


def to_dense(storage: TensorStorage) -> np.ndarray:
    """Materialise the tensor as a dense numpy array."""
    if storage.order == 0:
        return np.array(storage.vals[0])
    if all(isinstance(lvl, DenseLevel) for lvl in storage.levels):
        # All-dense storage holds one value per slot in level order: a
        # reshape plus a mode-permuting transpose avoids the COO expansion.
        arr = storage.vals.reshape(
            [storage.level_dim(L) for L in range(storage.order)]
        )
        perm = [storage.fmt.level_of_mode(m) for m in range(storage.order)]
        return np.ascontiguousarray(np.transpose(arr, perm))
    dense = np.zeros(storage.dims, dtype=np.float64)
    coords, vals = unpack(storage)
    if len(vals):
        np.add.at(dense, tuple(coords[:, m] for m in range(storage.order)), vals)
    return dense


def from_dense(array: np.ndarray, fmt: Format) -> TensorStorage:
    """Pack a dense numpy array, keeping only the nonzero entries for
    compressed levels (dense formats keep everything)."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim == 0:
        return pack(np.zeros((1, 0), dtype=np.int64), [float(array)], (), fmt)
    if fmt.is_all_dense:
        idx = np.indices(array.shape).reshape(array.ndim, -1).T
        return pack(idx, array.reshape(-1), array.shape, fmt)
    nz = np.nonzero(array)
    coords = np.stack(nz, axis=1) if array.ndim else np.zeros((0, 0))
    return pack(coords, array[nz], array.shape, fmt)
