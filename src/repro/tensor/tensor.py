"""The user-facing :class:`Tensor`: format-aware sparse/dense tensor.

Mirrors the Stardust C++ API of Figure 5::

    Tensor<int> A({N, N}, csr_off);   ->  Tensor("A", (N, N), CSR(offChip))
    Tensor<int> ws(on);               ->  Tensor("ws", (), memory=onChip)

Tensors participate in index notation via indexing: ``A[i, j]`` builds an
:class:`~repro.ir.index_notation.Access` and ``A[i, j] = B[i, j] * c[j]``
records an :class:`~repro.ir.index_notation.Assignment` on ``A``, retrieved
with :meth:`Tensor.get_assignment` (the paper's ``getAssignment()``).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.formats.format import DENSE_VECTOR, Format
from repro.formats.levels import dense as dense_level
from repro.formats.memory import MemoryRegion
from repro.ir.index_notation import (
    Access,
    Add,
    Assignment,
    IndexVar,
    Sub,
    to_expr,
)
from repro.tensor import storage as storage_mod
from repro.tensor.storage import TensorStorage, pack

_name_counter = itertools.count()


def _default_format(order: int, memory: MemoryRegion) -> Format:
    return Format([dense_level] * order, None, memory)


class Tensor:
    """A named tensor with a shape, a format, and (optionally) data.

    Args:
        name: identifier used in generated code. Auto-generated if omitted.
        shape: dimension sizes; ``()`` declares a scalar.
        fmt: storage format. Defaults to all-dense in the given region.
        memory: shorthand to override only the memory region of ``fmt``
            (used for workspace tensors: ``Tensor("ws", (), memory=onChip)``).
    """

    def __init__(
        self,
        name: str | None = None,
        shape: Sequence[int] = (),
        fmt: Format | None = None,
        memory: MemoryRegion | None = None,
    ) -> None:
        self.name = name if name is not None else f"T{next(_name_counter)}"
        self.shape = tuple(int(d) for d in shape)
        if fmt is None:
            fmt = _default_format(len(self.shape), memory or MemoryRegion.OFF_CHIP)
        elif memory is not None:
            fmt = fmt.with_memory(memory)
        if fmt.order != len(self.shape):
            raise ValueError(
                f"format order {fmt.order} does not match shape {self.shape}"
            )
        self.format = fmt
        self._storage: TensorStorage | None = None
        self._pending: list[tuple[tuple[int, ...], float]] = []
        self._assignment: Assignment | None = None

    # -- basic properties ---------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return self.order == 0

    @property
    def is_on_chip(self) -> bool:
        return self.format.is_on_chip

    @property
    def storage(self) -> TensorStorage:
        """Packed storage, building it from inserted entries on demand."""
        if self._storage is None or self._pending:
            self._pack_pending()
        assert self._storage is not None
        return self._storage

    @property
    def nnz(self) -> int:
        return self.storage.nnz

    # -- data ingestion -----------------------------------------------------

    def insert(self, coords: Sequence[int], value: float) -> None:
        """Queue one entry for packing (TACO's ``insert``)."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.order:
            raise ValueError(f"expected {self.order} coordinates, got {coords}")
        self._pending.append((coords, float(value)))

    def from_coo(self, coords: np.ndarray, vals: np.ndarray) -> "Tensor":
        """Pack COO arrays directly (bulk ingestion)."""
        self._pending.clear()
        self._storage = pack(np.asarray(coords), np.asarray(vals), self.shape, self.format)
        return self

    def from_dense(self, array: np.ndarray) -> "Tensor":
        array = np.asarray(array, dtype=np.float64)
        if array.shape != self.shape:
            raise ValueError(f"array shape {array.shape} != tensor shape {self.shape}")
        self._pending.clear()
        self._storage = storage_mod.from_dense(array, self.format)
        return self

    def _pack_pending(self) -> None:
        if self._pending:
            coords = np.array([c for c, _ in self._pending], dtype=np.int64)
            vals = np.array([v for _, v in self._pending], dtype=np.float64)
        else:
            coords = np.zeros((0, self.order), dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
        base = self._storage
        if base is not None and base.nnz:
            old_coords, old_vals = storage_mod.unpack(base)
            coords = np.concatenate([old_coords, coords.reshape(-1, self.order)])
            vals = np.concatenate([old_vals, vals])
        self._storage = pack(coords, vals, self.shape, self.format)
        self._pending.clear()

    def from_scipy(self, matrix) -> "Tensor":
        """Pack a ``scipy.sparse`` matrix (2-D tensors only)."""
        if self.order != 2:
            raise TypeError("from_scipy applies to matrices")
        coo = matrix.tocoo()
        if coo.shape != self.shape:
            raise ValueError(f"matrix shape {coo.shape} != {self.shape}")
        coords = np.stack([coo.row, coo.col], axis=1)
        return self.from_coo(coords, coo.data)

    def to_scipy(self):
        """The tensor as a ``scipy.sparse.csr_matrix`` (2-D only)."""
        if self.order != 2:
            raise TypeError("to_scipy applies to matrices")
        import scipy.sparse as sp

        coords, vals = storage_mod.unpack(self.storage)
        return sp.coo_matrix(
            (vals, (coords[:, 0], coords[:, 1])), shape=self.shape
        ).tocsr()

    def to_dense(self) -> np.ndarray:
        return storage_mod.to_dense(self.storage)

    def scalar_value(self) -> float:
        if not self.is_scalar:
            raise TypeError(f"{self.name} is not a scalar")
        return float(self.storage.vals[0])

    # -- index notation -----------------------------------------------------

    def _as_indices(self, key) -> tuple[IndexVar, ...]:
        if key is None or (isinstance(key, tuple) and len(key) == 0):
            key = ()
        elif not isinstance(key, tuple):
            key = (key,)
        if not all(isinstance(v, IndexVar) for v in key):
            raise TypeError(
                f"tensor {self.name} must be indexed with IndexVars, got {key!r}"
            )
        return key

    def __getitem__(self, key) -> Access:
        return Access(self, self._as_indices(key))

    def __call__(self, *ivars: IndexVar) -> Access:
        """Paper-style access syntax: ``A(i, j)``."""
        return Access(self, ivars)

    def __setitem__(self, key, expr) -> None:
        lhs = Access(self, self._as_indices(key))
        rhs = to_expr(expr)
        # Recognise `A[i,j] += e`, which Python desugars to
        # `A[i,j] = A[i,j] + e`: peel a top-level self-access addend.
        accumulate = False
        if isinstance(rhs, (Add, Sub)) and rhs.a.equals(lhs):
            if isinstance(rhs, Add):
                rhs = rhs.b
                accumulate = True
        self._assignment = Assignment(lhs, rhs, accumulate)

    def get_assignment(self) -> Assignment:
        """The assignment last recorded on this tensor (Figure 5, line 16)."""
        if self._assignment is None:
            raise ValueError(f"no assignment has been defined for {self.name}")
        return self._assignment

    def get_index_stmt(self):
        """The assignment as a schedulable :class:`IndexStmt` (CIN)."""
        from repro.schedule.stmt import IndexStmt  # local: avoids import cycle

        return IndexStmt.from_assignment(self.get_assignment())

    # -- misc ---------------------------------------------------------------

    def copy_structure(self, name: str | None = None) -> "Tensor":
        """A new empty tensor with the same shape and format."""
        return Tensor(name, self.shape, self.format)

    def __repr__(self) -> str:
        return (
            f"Tensor({self.name!r}, shape={self.shape}, format={self.format})"
        )


def scalar(name: str, memory: MemoryRegion = MemoryRegion.OFF_CHIP) -> Tensor:
    """A scalar tensor (order 0)."""
    return Tensor(name, (), None, memory)


def vector(
    name: str, n: int, fmt: Format | None = None, memory: MemoryRegion | None = None
) -> Tensor:
    """A vector tensor; dense by default."""
    return Tensor(name, (n,), fmt or DENSE_VECTOR(memory or MemoryRegion.OFF_CHIP))
