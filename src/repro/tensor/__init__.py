"""Sparse tensor substrate: level storage, bit vectors, and the Tensor API."""

from repro.tensor.bitvector import BitVector, ScanEntry, gen_bitvector, scan, scan_count
from repro.tensor.ops import evaluate_dense, infer_dimensions
from repro.tensor.storage import (
    CompressedLevel,
    DenseLevel,
    TensorStorage,
    from_dense,
    pack,
    to_dense,
    unpack,
)
from repro.tensor.tensor import Tensor, scalar, vector

__all__ = [
    "BitVector",
    "CompressedLevel",
    "DenseLevel",
    "ScanEntry",
    "Tensor",
    "TensorStorage",
    "evaluate_dense",
    "from_dense",
    "gen_bitvector",
    "infer_dimensions",
    "pack",
    "scalar",
    "scan",
    "scan_count",
    "to_dense",
    "unpack",
    "vector",
]
