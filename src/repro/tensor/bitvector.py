"""Packed bit-vector coordinate streams and the Capstan scanner model.

Capstan's declarative-sparse model (Section 7.1, Figure 7) co-iterates two
compressed tensor levels by (1) expanding each level's coordinates into a
packed occupancy bit vector, (2) combining the vectors with AND (for
intersection / multiplication) or OR (for union / addition), and (3)
scanning the combined vector, emitting for every set bit a *pattern index
tuple* ``(pos_a, pos_b, pos_out, i_dense)`` — the operand positions (or
*invalid* when an operand lacks the coordinate), the output position, and
the dense coordinate.

This module implements that machinery exactly: :func:`gen_bitvector`
mirrors the hardware's ``Gen BV`` block, and :func:`scan` mirrors the
sparse bit-vector scanner. The Spatial interpreter and the Capstan
simulator both consume these primitives.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

#: Word width of Capstan's packed bit-vector streams.
WORD_BITS = 32

#: Marker for "this operand has no entry at this coordinate" (the paper's X).
INVALID = -1


@dataclasses.dataclass(frozen=True)
class BitVector:
    """A packed occupancy vector over a dense coordinate space ``[0, n)``."""

    words: np.ndarray  # uint32, ceil(n / 32) entries
    n: int

    @property
    def num_words(self) -> int:
        return len(self.words)

    def popcount(self) -> int:
        """Number of set bits (coordinates present)."""
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    def test(self, i: int) -> bool:
        if not 0 <= i < self.n:
            raise IndexError(i)
        return bool((int(self.words[i // WORD_BITS]) >> (i % WORD_BITS)) & 1)

    def coordinates(self) -> np.ndarray:
        """Set-bit indices in ascending order."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: self.n])[0].astype(np.int64)

    def __and__(self, other: "BitVector") -> "BitVector":
        _check_same_space(self, other)
        return BitVector(self.words & other.words, self.n)

    def __or__(self, other: "BitVector") -> "BitVector":
        _check_same_space(self, other)
        return BitVector(self.words | other.words, self.n)


def _check_same_space(a: BitVector, b: BitVector) -> None:
    if a.n != b.n:
        raise ValueError(f"bit vectors span different spaces ({a.n} vs {b.n})")


def gen_bitvector(coords: np.ndarray, n: int) -> BitVector:
    """Pack a sorted coordinate array into an occupancy bit vector.

    Models Capstan's ``Gen BV`` block: coordinates stream in, set bits
    stream out, one word per 32 coordinate slots.
    """
    coords = np.asarray(coords, dtype=np.int64)
    if len(coords) and (coords.min() < 0 or coords.max() >= n):
        raise ValueError("coordinate out of bit-vector range")
    nwords = max(1, -(-n // WORD_BITS))
    bits = np.zeros(nwords * WORD_BITS, dtype=np.uint8)
    bits[coords] = 1
    words = np.packbits(bits, bitorder="little").view(np.uint32).copy()
    return BitVector(words, n)


@dataclasses.dataclass(frozen=True)
class ScanEntry:
    """One pattern-index tuple produced by the scanner (Figure 7)."""

    pos_a: int
    pos_b: int
    pos_out: int
    coord: int

    @property
    def a_valid(self) -> bool:
        return self.pos_a != INVALID

    @property
    def b_valid(self) -> bool:
        return self.pos_b != INVALID


def scan(
    bv_a: BitVector,
    bv_b: BitVector | None = None,
    op: str = "and",
    pos_a_base: int = 0,
    pos_b_base: int = 0,
    pos_out_base: int = 0,
) -> Iterator[ScanEntry]:
    """Scan one or two bit vectors, yielding pattern-index tuples.

    With one vector, iterates its set bits (pattern of Figure 9, line 7).
    With two, combines them with ``op`` ('and' for ∩, 'or' for ∪) and emits
    ``(pos_a, pos_b, pos_out, coord)`` per set bit of the combination, with
    invalid operand positions set to :data:`INVALID`. The ``*_base``
    arguments offset positions into the enclosing segment, matching how the
    hardware scanner chains position counters across segments.
    """
    if bv_b is None:
        for k, c in enumerate(bv_a.coordinates()):
            yield ScanEntry(pos_a_base + k, INVALID, pos_out_base + k, int(c))
        return
    _check_same_space(bv_a, bv_b)
    if op not in ("and", "or"):
        raise ValueError(f"unknown scan op {op!r}")
    combined = (bv_a & bv_b) if op == "and" else (bv_a | bv_b)
    coords = combined.coordinates()
    # Rank each combined coordinate within each operand via searchsorted on
    # the operands' own coordinate lists — this mirrors the hardware's
    # popcount-prefix trick for recovering operand positions.
    ca = bv_a.coordinates()
    cb = bv_b.coordinates()
    ranks_a = np.searchsorted(ca, coords)
    ranks_b = np.searchsorted(cb, coords)
    in_a = (ranks_a < len(ca)) & (ca[np.minimum(ranks_a, max(len(ca) - 1, 0))] == coords) if len(ca) else np.zeros(len(coords), dtype=bool)
    in_b = (ranks_b < len(cb)) & (cb[np.minimum(ranks_b, max(len(cb) - 1, 0))] == coords) if len(cb) else np.zeros(len(coords), dtype=bool)
    for k, c in enumerate(coords):
        pa = pos_a_base + int(ranks_a[k]) if bool(in_a[k]) else INVALID
        pb = pos_b_base + int(ranks_b[k]) if bool(in_b[k]) else INVALID
        yield ScanEntry(pa, pb, pos_out_base + k, int(c))


def scan_count(bv_a: BitVector, bv_b: BitVector | None = None, op: str = "and") -> int:
    """Number of entries the scanner would produce (the first scanner loop
    of Section 7.2, which computes result position sub-array entries)."""
    if bv_b is None:
        return bv_a.popcount()
    combined = (bv_a & bv_b) if op == "and" else (bv_a | bv_b)
    return combined.popcount()
