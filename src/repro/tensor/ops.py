"""Dense reference semantics for index-notation assignments.

Used as ground truth throughout the test suite: every backend (Spatial
interpreter, CPU lowering, handwritten kernels) is checked against
:func:`evaluate_dense`, which evaluates an assignment by aligned numpy
broadcasting over the full (dense) iteration space and summing over
reduction variables.
"""

from __future__ import annotations

import numpy as np

from repro.ir.index_notation import (
    Access,
    Add,
    Assignment,
    IndexExpr,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
)


def infer_dimensions(assignment: Assignment) -> dict[IndexVar, int]:
    """Dimension of each index variable, checked for consistency."""
    dims: dict[IndexVar, int] = {}
    accesses = (assignment.lhs,) + assignment.rhs.accesses()
    for acc in accesses:
        for mode, ivar in enumerate(acc.indices):
            size = acc.tensor.shape[mode]
            prior = dims.get(ivar)
            if prior is not None and prior != size:
                raise ValueError(
                    f"index variable {ivar} ranges over both {prior} and "
                    f"{size} (access {acc})"
                )
            dims[ivar] = size
    return dims


def _eval(expr: IndexExpr, var_order: list[IndexVar], dense: dict[int, np.ndarray]) -> np.ndarray:
    """Evaluate ``expr`` as an array broadcast over ``var_order`` axes."""
    if isinstance(expr, Literal):
        return np.asarray(float(expr.value))
    if isinstance(expr, Access):
        arr = dense[id(expr.tensor)]
        if not expr.indices:
            return np.asarray(float(arr))
        # Transpose tensor modes into var_order positions, then expand with
        # singleton axes so operands broadcast against each other.
        order = np.argsort([var_order.index(v) for v in expr.indices])
        arr_t = np.transpose(arr, order)
        shape = [1] * len(var_order)
        axes_sorted = sorted(var_order.index(v) for v in expr.indices)
        for ax, size in zip(axes_sorted, arr_t.shape):
            shape[ax] = size
        return arr_t.reshape(shape)
    if isinstance(expr, Add):
        return _eval(expr.a, var_order, dense) + _eval(expr.b, var_order, dense)
    if isinstance(expr, Sub):
        return _eval(expr.a, var_order, dense) - _eval(expr.b, var_order, dense)
    if isinstance(expr, Mul):
        return _eval(expr.a, var_order, dense) * _eval(expr.b, var_order, dense)
    if isinstance(expr, Neg):
        return -_eval(expr.a, var_order, dense)
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def evaluate_dense(
    assignment: Assignment,
    inputs: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Evaluate an assignment densely, returning the result array.

    Implicit reductions apply *per additive term*: in
    ``y(i) = b(i) - A(i,j)*x(j)`` the sum over ``j`` ranges only over the
    term that mentions ``j`` (TACO semantics). Each top-level term is
    therefore evaluated and reduced independently before combining.

    Args:
        assignment: the index-notation statement.
        inputs: optional override arrays by tensor name; tensors not listed
            are densified from their own storage.
    """
    from repro.ir.index_notation import additive_terms

    inputs = inputs or {}
    dims = infer_dimensions(assignment)
    lhs_vars = list(assignment.lhs.indices)
    dense: dict[int, np.ndarray] = {}
    for acc in assignment.rhs.accesses():
        t = acc.tensor
        if id(t) not in dense:
            arr = inputs.get(t.name)
            dense[id(t)] = (
                np.asarray(arr, dtype=np.float64) if arr is not None else t.to_dense()
            )

    out_shape = tuple(dims[v] for v in lhs_vars)
    result = np.zeros(out_shape, dtype=np.float64)
    for sign, term in additive_terms(assignment.rhs):
        term_vars = [v for v in lhs_vars]
        for v in term.index_vars():
            if all(v is not u for u in term_vars):
                term_vars.append(v)
        value = _eval(term, term_vars, dense)
        value = np.broadcast_to(value, [dims[v] for v in term_vars])
        reduce_axes = tuple(
            k for k, v in enumerate(term_vars)
            if all(v is not u for u in lhs_vars)
        )
        if reduce_axes:
            value = value.sum(axis=reduce_axes)
        result = result + sign * value
    if assignment.accumulate:
        base = inputs.get(assignment.lhs.tensor.name)
        if base is None and assignment.lhs.tensor._storage is not None:
            base = assignment.lhs.tensor.to_dense()
        if base is not None:
            result = result + np.asarray(base, dtype=np.float64)
    return result
