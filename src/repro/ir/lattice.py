"""Merge lattices: TACO's co-iteration representation (Section 9).

TACO "defines co-iteration as only the intersection of tensor coordinates
[and] uses an iteration lattice IR to decompose all unions of coordinates
into disjoint intersections", emitting multi-way merge loops — in contrast
to Stardust's bit-vector scanners. This module implements that lattice for
the CPU backend and for the iteration-space algebra the CPU executor uses.

A :class:`MergeLattice` for one index variable enumerates *lattice
points*: the subsets of sparse iterators that can be simultaneously
present at a coordinate, ordered by inclusion. The top point co-iterates
every operand; lower points take over as operands are exhausted. Dense
operands (the universe) are present at every point.

Construction follows TACO's rules:

* a single iterator is a one-point lattice;
* multiplication takes the *product* of sub-lattice points (an operand
  absent on either side annihilates the term);
* addition takes the product plus both sub-lattices (either side may
  continue alone).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.ir.index_notation import IndexExpr, IndexVar

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard (core uses ir)
    from repro.core.coiteration import IterTerm, LevelIterator


@dataclasses.dataclass(frozen=True)
class LatticePoint:
    """One lattice point: the sparse iterators present at a coordinate."""

    iterators: frozenset[int]  # ids of the LevelIterator tensors present

    def dominates(self, other: "LatticePoint") -> bool:
        return self.iterators >= other.iterators

    def __len__(self) -> int:
        return len(self.iterators)


@dataclasses.dataclass
class MergeLattice:
    """The merge lattice of one forall variable over one expression."""

    ivar: IndexVar
    sparse: tuple[LevelIterator, ...]
    has_universe: bool  # a dense operand keeps the whole dimension live
    points: tuple[LatticePoint, ...]  # descending by size; top first

    @property
    def top(self) -> Optional[LatticePoint]:
        return self.points[0] if self.points else None

    @property
    def is_neutral(self) -> bool:
        """The expression does not involve the variable at all: it places
        no constraint on (and contributes nothing to) the iteration."""
        return not self.points and not self.has_universe and not self.sparse

    @property
    def is_intersection(self) -> bool:
        """True when iteration ends once any operand is exhausted."""
        return len(self.points) == 1 and not self.has_universe

    @property
    def is_full_union(self) -> bool:
        """True when every operand subset has its own point."""
        n = len(self.sparse)
        return n > 0 and len(self.points) == 2 ** n - 1

    def describe(self) -> str:
        names = {id(it.tensor): it.tensor.name for it in self.sparse}
        rows = []
        for p in self.points:
            members = sorted(names[t] for t in p.iterators)
            rows.append("{" + ", ".join(members) + "}")
        kind = "U ∪ ..." if self.has_universe else ""
        return f"lattice({self.ivar.name}){kind}: " + " > ".join(rows)


def _point_sets(term: "IterTerm") -> tuple[set[frozenset[int]], bool]:
    """(lattice point sets, has_universe) for a contraction term."""
    if term.op is None:
        it = term.leaf
        if it.symbol == "U":
            return set(), True
        return {frozenset([id(it.tensor)])}, False
    a_pts, a_univ = _point_sets(term.a)
    b_pts, b_univ = _point_sets(term.b)
    if term.op == "intersect":
        if a_univ and b_univ:
            return set(), True
        if a_univ:
            return b_pts, False
        if b_univ:
            return a_pts, False
        return {pa | pb for pa in a_pts for pb in b_pts}, False
    # union
    if a_univ or b_univ:
        return set(), True
    product = {pa | pb for pa in a_pts for pb in b_pts}
    return product | a_pts | b_pts, False


def build_lattice(expr: IndexExpr, ivar: IndexVar) -> MergeLattice:
    """The merge lattice of ``ivar`` over ``expr``.

    An expression that never mentions ``ivar`` yields a *neutral* lattice
    (no points, no universe): it neither drives nor widens the iteration.
    """
    from repro.core.coiteration import iteration_algebra  # cycle guard

    term = iteration_algebra(expr, ivar)
    if term is None:
        return MergeLattice(ivar, (), False, ())
    sparse = tuple(
        l for l in term.leaves() if l.symbol in ("C", "B")
    )
    point_sets, has_universe = _point_sets(term)
    points = tuple(
        sorted((LatticePoint(frozenset(p)) for p in point_sets),
               key=len, reverse=True)
    )
    return MergeLattice(ivar, sparse, has_universe, points)


def iteration_space(
    lattice: MergeLattice,
    coords_of: dict[int, np.ndarray],
    dim: int,
) -> np.ndarray:
    """The exact coordinates the lattice visits.

    ``coords_of`` maps ``id(tensor)`` to the sorted coordinate array of
    that operand's current segment. A universe operand (or an empty
    lattice) visits the whole dimension; otherwise each lattice point
    contributes the intersection of its members' coordinates, and the
    visited set is their union — precisely the coordinates TACO's merged
    while-loops touch.
    """
    if lattice.has_universe or not lattice.points:
        return np.arange(dim, dtype=np.int64)
    visited: Optional[np.ndarray] = None
    for point in lattice.points:
        inter: Optional[np.ndarray] = None
        for tid in point.iterators:
            c = coords_of[tid]
            inter = c if inter is None else np.intersect1d(inter, c,
                                                           assume_unique=True)
        if inter is None:
            continue
        visited = inter if visited is None else np.union1d(visited, inter)
    return visited if visited is not None else np.zeros(0, dtype=np.int64)
