"""Concrete Index Notation (CIN): the scheduling IR of Stardust.

CIN (Kjolstad et al. 2019; Figure 2 of the Stardust paper) makes loop
structure explicit while staying declarative about *how* loops iterate::

    S ::= forall i S | a = e | a += e | S ; S | S where S | S s.t. r*

Scheduling commands (Tables 1 and 2) are tree-to-tree transformations over
CIN. Stardust adds the ``map`` node — a sub-statement replaced by a
backend-specific function or pattern — and hardware metadata on foralls
(parallelization factors bound by the ``environment`` command).

Nodes are immutable and compared by identity: schedules locate and replace
specific occurrences, so two structurally equal sub-statements must remain
distinguishable.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator
from typing import Optional

from repro.ir.index_notation import Access, Assignment, IndexExpr, IndexVar


class CinStmt:
    """Base class of CIN statements."""

    def children(self) -> tuple["CinStmt", ...]:
        return ()

    def map_children(self, fn: Callable[["CinStmt"], "CinStmt"]) -> "CinStmt":
        return self

    # -- traversal helpers ----------------------------------------------------

    def walk(self) -> Iterator["CinStmt"]:
        """Pre-order traversal of the statement tree."""
        yield self
        for c in self.children():
            yield from c.walk()

    def assignments(self) -> tuple["CinAssign", ...]:
        return tuple(s for s in self.walk() if isinstance(s, CinAssign))

    def foralls(self) -> tuple["Forall", ...]:
        return tuple(s for s in self.walk() if isinstance(s, Forall))

    def index_vars(self) -> tuple[IndexVar, ...]:
        """Forall variables in pre-order."""
        seen: dict[int, IndexVar] = {}
        for s in self.walk():
            if isinstance(s, Forall):
                seen.setdefault(id(s.ivar), s.ivar)
        return tuple(seen.values())

    def tensors(self):
        """Distinct tensors referenced anywhere in the tree."""
        seen: dict[int, object] = {}
        for s in self.walk():
            if isinstance(s, CinAssign):
                for t in (s.lhs.tensor, *s.rhs.tensors()):
                    seen.setdefault(id(t), t)
            elif isinstance(s, MapCall):
                for t in s.tensors:
                    seen.setdefault(id(t), t)
        return tuple(seen.values())

    def contains(self, node: "CinStmt") -> bool:
        return any(s is node for s in self.walk())

    def __str__(self) -> str:
        from repro.ir.printer import format_stmt  # local: avoids cycle

        return format_stmt(self)


@dataclasses.dataclass(frozen=True, eq=False)
class CinAssign(CinStmt):
    """``a = e`` or ``a += e`` over concrete index variables."""

    lhs: Access
    rhs: IndexExpr
    accumulate: bool = False


@dataclasses.dataclass(frozen=True, eq=False)
class Forall(CinStmt):
    """``forall ivar body``, optionally annotated with a hardware
    parallelization factor (bound from the environment by lowering)."""

    ivar: IndexVar
    body: CinStmt
    parallel: int = 1

    def children(self) -> tuple[CinStmt, ...]:
        return (self.body,)

    def map_children(self, fn) -> "Forall":
        return dataclasses.replace(self, body=fn(self.body))


@dataclasses.dataclass(frozen=True, eq=False)
class Where(CinStmt):
    """``consumer where producer``: producer materialises a temporary the
    consumer reads (introduced by ``precompute``)."""

    consumer: CinStmt
    producer: CinStmt

    def children(self) -> tuple[CinStmt, ...]:
        return (self.consumer, self.producer)

    def map_children(self, fn) -> "Where":
        return dataclasses.replace(
            self, consumer=fn(self.consumer), producer=fn(self.producer)
        )


@dataclasses.dataclass(frozen=True, eq=False)
class CinSequence(CinStmt):
    """``S1 ; S2 ; ...`` executed in order."""

    stmts: tuple[CinStmt, ...]

    def children(self) -> tuple[CinStmt, ...]:
        return self.stmts

    def map_children(self, fn) -> "CinSequence":
        return dataclasses.replace(self, stmts=tuple(fn(s) for s in self.stmts))


class IndexVarRel:
    """Base class of scheduling relations attached by ``s.t.`` nodes."""


@dataclasses.dataclass(frozen=True)
class SplitUp(IndexVarRel):
    """``split_up(i, io, ii, c)``: stripmine ``i`` into an outer ``io`` and a
    constant-``c`` inner ``ii`` (outer iterates ceil(N/c))."""

    parent: IndexVar
    outer: IndexVar
    inner: IndexVar
    factor: int

    def __str__(self) -> str:
        return f"split_up({self.parent}, {self.outer}, {self.inner}, {self.factor})"


@dataclasses.dataclass(frozen=True)
class SplitDown(IndexVarRel):
    """``split_down(i, io, ii, c)``: constant-``c`` *outer* loop."""

    parent: IndexVar
    outer: IndexVar
    inner: IndexVar
    factor: int

    def __str__(self) -> str:
        return f"split_down({self.parent}, {self.outer}, {self.inner}, {self.factor})"


@dataclasses.dataclass(frozen=True)
class FuseRel(IndexVarRel):
    """``fuse(io, ii, if)``: collapse two nested foralls into one."""

    outer: IndexVar
    inner: IndexVar
    fused: IndexVar

    def __str__(self) -> str:
        return f"fuse({self.outer}, {self.inner}, {self.fused})"


@dataclasses.dataclass(frozen=True, eq=False)
class SuchThat(CinStmt):
    """``body s.t. r*``: body constrained by scheduling relations."""

    body: CinStmt
    relations: tuple[IndexVarRel, ...]

    def children(self) -> tuple[CinStmt, ...]:
        return (self.body,)

    def map_children(self, fn) -> "SuchThat":
        return dataclasses.replace(self, body=fn(self.body))


@dataclasses.dataclass(frozen=True, eq=False)
class MapCall(CinStmt):
    """A sub-statement replaced by a backend function ``f`` (Table 2).

    The original statement is retained so correctness checks (and backends
    without the function) can still interpret the semantics.
    """

    original: CinStmt
    backend: str
    func: str
    par: int = 1

    @property
    def tensors(self):
        return self.original.tensors()

    def children(self) -> tuple[CinStmt, ...]:
        return (self.original,)

    def map_children(self, fn) -> "MapCall":
        return dataclasses.replace(self, original=fn(self.original))


# ---------------------------------------------------------------------------
# Construction and rewriting utilities
# ---------------------------------------------------------------------------


from repro.ir.index_notation import additive_terms as _additive_terms  # noqa: E402


def make_concrete(assignment: Assignment) -> CinStmt:
    """Expand index notation to canonical CIN (Section 4, eq. 1).

    Free variables (in lhs order) become the outer foralls; reduction
    variables nest inside in first-use order, with the assignment becoming
    a compound (``+=``) assignment when reductions are present.

    When the right-hand side is a sum whose terms range over *different*
    reduction variables (``y(i) = α·A(j,i)·x(j) + β·z(i)``), a single
    nested-forall assignment would re-add the reduction-free terms once per
    reduction iteration. Such statements expand to a sequence inside the
    shared free-variable loops: an initialising assignment for the
    reduction-free terms, then one accumulating loop nest per remaining
    term (the same decomposition TACO performs via merge lattices).
    """
    from repro.ir.index_notation import Neg

    reduction = assignment.reduction_vars
    free = assignment.free_vars
    red_ids = {id(v) for v in reduction}

    terms = _additive_terms(assignment.rhs)
    uniform = all(
        red_ids == {id(v) for v in t.index_vars() if id(v) in red_ids}
        for _sign, t in terms
    )
    if not reduction or uniform or len(terms) == 1:
        accumulate = assignment.accumulate or bool(reduction)
        stmt: CinStmt = CinAssign(assignment.lhs, assignment.rhs, accumulate)
        for ivar in reversed(free + reduction):
            stmt = Forall(ivar, stmt)
        return stmt

    # Mixed reduction structure: initialise, then accumulate per term.
    init_terms = [
        (s, t)
        for s, t in terms
        if not any(id(v) in red_ids for v in t.index_vars())
    ]
    red_terms = [(s, t) for s, t in terms if (s, t) not in init_terms]

    def combine(signed):
        expr = None
        for sign, t in signed:
            t = Neg(t) if sign < 0 else t
            expr = t if expr is None else expr + t
        return expr

    stmts: list[CinStmt] = []
    if init_terms:
        stmts.append(CinAssign(assignment.lhs, combine(init_terms), False))
    for k, (sign, term) in enumerate(red_terms):
        body: CinStmt = CinAssign(
            assignment.lhs,
            Neg(term) if sign < 0 else term,
            accumulate=True,
        )
        term_reds = [v for v in reduction if any(u is v for u in term.index_vars())]
        for ivar in reversed(term_reds):
            body = Forall(ivar, body)
        stmts.append(body)
    inner: CinStmt = CinSequence(tuple(stmts)) if len(stmts) > 1 else stmts[0]
    for ivar in reversed(free):
        inner = Forall(ivar, inner)
    return inner


def replace_stmt(root: CinStmt, old: CinStmt, new: CinStmt) -> CinStmt:
    """Replace the (identity-matched) occurrence of ``old`` with ``new``."""
    if root is old:
        return new
    return root.map_children(lambda c: replace_stmt(c, old, new))


def rewrite(root: CinStmt, fn: Callable[[CinStmt], Optional[CinStmt]]) -> CinStmt:
    """Bottom-up rewrite: ``fn`` returns a replacement or None to keep."""
    node = root.map_children(lambda c: rewrite(c, fn))
    out = fn(node)
    return node if out is None else out


def parent_of(root: CinStmt, node: CinStmt) -> Optional[CinStmt]:
    """The parent of ``node`` in ``root``, or None if node is the root."""
    for s in root.walk():
        if any(c is node for c in s.children()):
            return s
    return None


def enclosing_foralls(root: CinStmt, node: CinStmt) -> tuple[Forall, ...]:
    """Foralls on the path from ``root`` down to ``node`` (outermost first)."""

    def search(s: CinStmt, path: tuple[Forall, ...]) -> Optional[tuple[Forall, ...]]:
        if s is node:
            return path
        next_path = path + (s,) if isinstance(s, Forall) else path
        for c in s.children():
            found = search(c, next_path)
            if found is not None:
                return found
        return None

    found = search(root, ())
    if found is None:
        raise ValueError("node not found under root")
    return found


def forall_chain(stmt: CinStmt) -> tuple[tuple[Forall, ...], CinStmt]:
    """Peel the outermost chain of foralls, returning (loops, inner body)."""
    loops: list[Forall] = []
    s = stmt
    while isinstance(s, (Forall, SuchThat)):
        if isinstance(s, SuchThat):
            s = s.body
            continue
        loops.append(s)
        s = s.body
    return tuple(loops), s


def strip_suchthat(stmt: CinStmt) -> tuple[CinStmt, tuple[IndexVarRel, ...]]:
    """Remove top-level ``s.t.`` wrappers, collecting their relations."""
    rels: list[IndexVarRel] = []
    while isinstance(stmt, SuchThat):
        rels.extend(stmt.relations)
        stmt = stmt.body
    return stmt, tuple(rels)


def with_relations(stmt: CinStmt, relations: tuple[IndexVarRel, ...]) -> CinStmt:
    """Attach relations, merging with an existing top-level ``s.t.``."""
    if not relations:
        return stmt
    body, existing = strip_suchthat(stmt)
    return SuchThat(body, existing + tuple(relations))
