"""Pretty-printer for CIN statements, matching the paper's notation.

Renders trees in the style of Figure 6::

    forall(i) forall(j) (forall(k) A(i,j) += B(i,j) * Con(k) * Don(k)
      where forall(k) Con(k) = C(i,k)
      where forall(k) Don(k) = D(k,j))
"""

from __future__ import annotations

from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    MapCall,
    SuchThat,
    Where,
)

_FORALL = "forall"


def format_stmt(stmt: CinStmt, unicode_forall: bool = False) -> str:
    """Render a CIN statement as a single-line string."""
    sym = "∀" if unicode_forall else _FORALL

    def fmt(s: CinStmt) -> str:
        if isinstance(s, Forall):
            par = f" par={s.parallel}" if s.parallel != 1 else ""
            head = f"{sym}({s.ivar.name}{par})" if not unicode_forall else f"{sym}{s.ivar.name}"
            return f"{head} {fmt(s.body)}"
        if isinstance(s, CinAssign):
            op = "+=" if s.accumulate else "="
            return f"{s.lhs} {op} {s.rhs}"
        if isinstance(s, Where):
            return f"({fmt(s.consumer)} where {fmt(s.producer)})"
        if isinstance(s, CinSequence):
            return "; ".join(fmt(x) for x in s.stmts)
        if isinstance(s, SuchThat):
            rels = ", ".join(str(r) for r in s.relations)
            return f"{fmt(s.body)} s.t. {rels}"
        if isinstance(s, MapCall):
            tensors = ", ".join(t.name for t in s.tensors)
            return f"{s.func}[{s.backend}]({tensors}, par={s.par})"
        raise TypeError(f"cannot format {type(s).__name__}")

    return fmt(stmt)


def format_stmt_tree(stmt: CinStmt, indent: str = "  ") -> str:
    """Render a CIN statement as an indented multi-line tree (debugging)."""

    lines: list[str] = []

    def walk(s: CinStmt, depth: int) -> None:
        pad = indent * depth
        if isinstance(s, Forall):
            par = f" par={s.parallel}" if s.parallel != 1 else ""
            lines.append(f"{pad}forall {s.ivar.name}{par}")
            walk(s.body, depth + 1)
        elif isinstance(s, CinAssign):
            op = "+=" if s.accumulate else "="
            lines.append(f"{pad}{s.lhs} {op} {s.rhs}")
        elif isinstance(s, Where):
            lines.append(f"{pad}where")
            lines.append(f"{pad}{indent}consumer:")
            walk(s.consumer, depth + 2)
            lines.append(f"{pad}{indent}producer:")
            walk(s.producer, depth + 2)
        elif isinstance(s, CinSequence):
            lines.append(f"{pad}sequence")
            for x in s.stmts:
                walk(x, depth + 1)
        elif isinstance(s, SuchThat):
            rels = ", ".join(str(r) for r in s.relations)
            lines.append(f"{pad}suchthat [{rels}]")
            walk(s.body, depth + 1)
        elif isinstance(s, MapCall):
            tensors = ", ".join(t.name for t in s.tensors)
            lines.append(f"{pad}map {s.func}@{s.backend}({tensors}, par={s.par})")
            walk(s.original, depth + 1)
        else:
            raise TypeError(f"cannot format {type(s).__name__}")

    walk(stmt, 0)
    return "\n".join(lines)
