"""Tensor index notation: the algorithm language of Stardust.

Users state *what* to compute as algebra over tensor accesses indexed by
index variables (Figure 5, line 13)::

    A[i, j] = B[i, j] * C[i, k] * D[k, j]

This module defines the expression language — :class:`IndexVar`,
:class:`Access`, :class:`Literal` and the arithmetic combinators — plus
:class:`Assignment`, the root of an index-notation statement. Assignments
are converted to concrete index notation (CIN) by
:func:`repro.ir.cin.make_concrete`.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tensor.tensor import Tensor

_ivar_counter = itertools.count()


class IndexVar:
    """An index variable ranging over one dimension of an iteration space.

    Index variables are identified by object identity *and* name; two
    variables with the same name are distinct unless they are the same
    object, which lets schedules introduce fresh variables (``i0``, ``i1``)
    without capture.
    """

    __slots__ = ("name", "_uid")

    def __init__(self, name: str | None = None) -> None:
        uid = next(_ivar_counter)
        self.name = name if name is not None else f"i{uid}"
        self._uid = uid

    def __repr__(self) -> str:
        return f"IndexVar({self.name!r})"

    def __str__(self) -> str:
        return self.name


def index_vars(names: str | int) -> tuple[IndexVar, ...]:
    """Create several index variables at once.

    ``index_vars("i j k")`` or ``index_vars(3)``.
    """
    if isinstance(names, int):
        return tuple(IndexVar() for _ in range(names))
    return tuple(IndexVar(n) for n in names.replace(",", " ").split())


class IndexExpr:
    """Base class of index-notation expressions."""

    def __add__(self, other: ExprLike) -> "Add":
        return Add(self, to_expr(other))

    def __radd__(self, other: ExprLike) -> "Add":
        return Add(to_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Sub":
        return Sub(self, to_expr(other))

    def __rsub__(self, other: ExprLike) -> "Sub":
        return Sub(to_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Mul":
        return Mul(self, to_expr(other))

    def __rmul__(self, other: ExprLike) -> "Mul":
        return Mul(to_expr(other), self)

    def __neg__(self) -> "Neg":
        return Neg(self)

    # -- structural helpers -------------------------------------------------

    def children(self) -> tuple["IndexExpr", ...]:
        return ()

    def index_vars(self) -> tuple[IndexVar, ...]:
        """All index variables in the expression, in first-use order."""
        seen: dict[int, IndexVar] = {}

        def walk(e: IndexExpr) -> None:
            if isinstance(e, Access):
                for v in e.indices:
                    seen.setdefault(id(v), v)
            for c in e.children():
                walk(c)

        walk(self)
        return tuple(seen.values())

    def accesses(self) -> tuple["Access", ...]:
        """All tensor accesses in the expression, left-to-right."""
        out: list[Access] = []

        def walk(e: IndexExpr) -> None:
            if isinstance(e, Access):
                out.append(e)
            for c in e.children():
                walk(c)

        walk(self)
        return tuple(out)

    def tensors(self) -> tuple["Tensor", ...]:
        """Distinct tensors referenced, in first-use order."""
        seen: dict[int, "Tensor"] = {}
        for a in self.accesses():
            seen.setdefault(id(a.tensor), a.tensor)
        return tuple(seen.values())

    def equals(self, other: "IndexExpr") -> bool:
        """Structural equality (same tensors, same index variables)."""
        if type(self) is not type(other):
            return False
        if isinstance(self, Access):
            return self.tensor is other.tensor and all(
                a is b for a, b in zip(self.indices, other.indices, strict=True)
            ) if len(self.indices) == len(other.indices) else False
        if isinstance(self, Literal):
            return self.value == other.value
        mine, theirs = self.children(), other.children()
        if len(mine) != len(theirs):
            return False
        return all(a.equals(b) for a, b in zip(mine, theirs))

    def contains(self, sub: "IndexExpr") -> bool:
        """Whether ``sub`` occurs (structurally) inside this expression."""
        if self.equals(sub):
            return True
        return any(c.contains(sub) for c in self.children())

    def substitute(self, old: "IndexExpr", new: "IndexExpr") -> "IndexExpr":
        """Replace every structural occurrence of ``old`` with ``new``."""
        if self.equals(old):
            return new
        return self.map_children(lambda c: c.substitute(old, new))

    def rename(self, mapping: dict[IndexVar, IndexVar]) -> "IndexExpr":
        """Rename index variables according to ``mapping``."""
        if isinstance(self, Access):
            return Access(
                self.tensor, tuple(mapping.get(v, v) for v in self.indices)
            )
        return self.map_children(lambda c: c.rename(mapping))

    def map_children(self, fn) -> "IndexExpr":
        return self


class Literal(IndexExpr):
    """A scalar constant."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class Access(IndexExpr):
    """A tensor access ``T(i1, ..., in)``. Scalars are 0-order accesses."""

    __slots__ = ("tensor", "indices")

    def __init__(self, tensor: "Tensor", indices: Iterable[IndexVar] = ()) -> None:
        self.tensor = tensor
        self.indices = tuple(indices)
        if len(self.indices) != tensor.order:
            raise ValueError(
                f"tensor {tensor.name} has order {tensor.order} but was "
                f"accessed with {len(self.indices)} index variables"
            )
        if len({id(v) for v in self.indices}) != len(self.indices):
            raise ValueError(
                f"repeated index variable in access to {tensor.name}; "
                "diagonal accesses are not supported"
            )

    def mode_of(self, ivar: IndexVar) -> int | None:
        """Tensor mode indexed by ``ivar``, or None."""
        for m, v in enumerate(self.indices):
            if v is ivar:
                return m
        return None

    def __str__(self) -> str:
        if not self.indices:
            return self.tensor.name
        return f"{self.tensor.name}({', '.join(v.name for v in self.indices)})"

    def __repr__(self) -> str:
        return f"Access({self.tensor.name}, {[v.name for v in self.indices]})"


class _Binary(IndexExpr):
    __slots__ = ("a", "b")
    op = "?"

    def __init__(self, a: IndexExpr, b: IndexExpr) -> None:
        self.a = a
        self.b = b

    def children(self) -> tuple[IndexExpr, ...]:
        return (self.a, self.b)

    def map_children(self, fn) -> IndexExpr:
        return type(self)(fn(self.a), fn(self.b))

    def __str__(self) -> str:
        return f"({self.a} {self.op} {self.b})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.a!r}, {self.b!r})"


class Add(_Binary):
    """Element-wise addition; co-iteration is a union (∪)."""

    op = "+"


class Sub(_Binary):
    """Element-wise subtraction; co-iteration is a union (∪)."""

    op = "-"


class Mul(_Binary):
    """Element-wise multiplication; co-iteration is an intersection (∩)."""

    op = "*"


class Neg(IndexExpr):
    """Unary negation."""

    __slots__ = ("a",)

    def __init__(self, a: IndexExpr) -> None:
        self.a = a

    def children(self) -> tuple[IndexExpr, ...]:
        return (self.a,)

    def map_children(self, fn) -> IndexExpr:
        return Neg(fn(self.a))

    def __str__(self) -> str:
        return f"(-{self.a})"


ExprLike = Union[IndexExpr, int, float]


def to_expr(x: ExprLike) -> IndexExpr:
    """Coerce a Python number (or expression) to an :class:`IndexExpr`."""
    if isinstance(x, IndexExpr):
        return x
    if isinstance(x, (int, float)):
        return Literal(x)
    raise TypeError(f"cannot convert {x!r} to an index expression")


@dataclasses.dataclass(frozen=True)
class Assignment:
    """An index-notation statement ``lhs = rhs`` or ``lhs += rhs``.

    Attributes:
        lhs: the result access.
        rhs: the computed expression.
        accumulate: True for ``+=`` (explicit reduction into lhs).
    """

    lhs: Access
    rhs: IndexExpr
    accumulate: bool = False

    @property
    def free_vars(self) -> tuple[IndexVar, ...]:
        """Index variables of the result (in lhs order)."""
        return self.lhs.indices

    @property
    def reduction_vars(self) -> tuple[IndexVar, ...]:
        """Index variables summed over (in rhs first-use order)."""
        free = {id(v) for v in self.lhs.indices}
        return tuple(v for v in self.rhs.index_vars() if id(v) not in free)

    @property
    def all_vars(self) -> tuple[IndexVar, ...]:
        """Free variables then reduction variables: the default loop order."""
        return self.free_vars + self.reduction_vars

    def tensors(self) -> tuple["Tensor", ...]:
        seen: dict[int, "Tensor"] = {id(self.lhs.tensor): self.lhs.tensor}
        for t in self.rhs.tensors():
            seen.setdefault(id(t), t)
        return tuple(seen.values())

    def __str__(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.lhs} {op} {self.rhs}"


def iter_subexpressions(expr: IndexExpr) -> Iterator[IndexExpr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for c in expr.children():
        yield from iter_subexpressions(c)


def additive_terms(expr: IndexExpr) -> list[tuple[int, IndexExpr]]:
    """Flatten a top-level +/− chain into ``(sign, term)`` pairs.

    Index-notation reductions apply *per term*: in
    ``y(i) = b(i) - A(i,j)*x(j)`` the implicit sum over ``j`` ranges only
    over the term containing ``j``. Both the CIN expansion and the dense
    reference semantics use this decomposition.
    """
    if isinstance(expr, Add):
        return additive_terms(expr.a) + additive_terms(expr.b)
    if isinstance(expr, Sub):
        return additive_terms(expr.a) + [
            (-sign, term) for sign, term in additive_terms(expr.b)
        ]
    if isinstance(expr, Neg):
        return [(-sign, term) for sign, term in additive_terms(expr.a)]
    return [(1, expr)]
