"""The cycle-approximate Capstan simulator.

Combines workload statistics (:mod:`repro.capstan.stats`) with the
architecture model to predict kernel runtime under a DRAM configuration.
The model is a bottleneck (roofline-style) composition of four terms that
the Capstan design overlaps against each other:

* **compute** — innermost pattern iterations at ``min(innerPar, 16)``
  lanes across ``outerPar`` replicas, plus control loop iterations and a
  pipeline-fill cost per pattern launch (short sparse segments make this
  term matter, exactly as on the real machine);
* **scan** — packed bit-vector words streamed through the scanners plus
  coordinates packed by the Gen BV blocks (this is why Capstan's
  bit-vector format wants densities above ~5%, Section 8.1);
* **gather** — shuffle-network traffic, capped at 16 networks;
* **DRAM** — bulk transfer bytes and per-burst latency under the selected
  memory model (DDR4 / HBM-2E / Ideal / Figure 12 sweep points).

The bottleneck term dominates; a small serial fraction is added on top.
"""

from __future__ import annotations

import dataclasses

from repro.capstan.arch import DEFAULT_CONFIG, CapstanConfig
from repro.capstan.calibration import DEFAULT_COST, CapstanCostModel
from repro.capstan.dram import HBM2E, DramModel
from repro.capstan.network import NetworkModel
from repro.capstan.resources import ResourceEstimate, estimate_resources
from repro.capstan.stats import WorkloadStats, compute_stats
from repro.core.compiler import CompiledKernel
from repro.tensor.tensor import Tensor


@dataclasses.dataclass
class SimResult:
    """Predicted execution of one kernel on one dataset + memory config."""

    kernel: str
    dram: str
    cycles: float
    seconds: float
    bottleneck: str
    breakdown: dict[str, float]  # seconds per term
    resources: ResourceEstimate
    stats: WorkloadStats

    def speedup_over(self, other: "SimResult") -> float:
        return other.seconds / self.seconds


class CapstanSimulator:
    """Evaluates compiled kernels on the Capstan model."""

    def __init__(
        self,
        config: CapstanConfig = DEFAULT_CONFIG,
        cost: CapstanCostModel = DEFAULT_COST,
    ) -> None:
        self.config = config
        self.cost = cost
        self.network = NetworkModel(config, cost)

    def simulate(
        self,
        kernel: CompiledKernel,
        tensors: dict[str, Tensor] | None = None,
        dram: DramModel = HBM2E,
        stats: WorkloadStats | None = None,
        resources: ResourceEstimate | None = None,
    ) -> SimResult:
        if stats is None:
            stats = compute_stats(kernel, tensors)
        if resources is None:
            resources = estimate_resources(kernel, self.config)
        cfg = self.config
        cost = self.cost

        outer_par = kernel.stmt.environment_vars.get("outerPar", 1)
        uses_shuffle = resources.shuffle > 0
        par = self.network.effective_outer_par(outer_par, uses_shuffle)
        segment_ii = cost.segment_ii_cycles * (
            cost.ideal_overhead_fraction if dram.is_ideal else 1.0
        )

        compute_cycles = 0.0
        scan_cycles = 0.0
        for loop in stats.loops:
            # A pipelined pattern is bound by the slower of its element
            # throughput and its per-segment initiation interval; segments
            # stream back-to-back in the declarative-sparse model.
            lanes = max(1, loop.vector_par) if loop.is_innermost else 1
            per_elem = 1.0 / lanes if loop.is_innermost else cost.mid_loop_cycles
            work = max(loop.iters * per_elem, loop.launches * segment_ii)
            compute_cycles += work / par
            compute_cycles += cost.pattern_fill_cycles
            if loop.scan_words:
                scan_cycles += loop.scan_words / (cost.scan_words_per_cycle * par)
            if loop.bv_coords:
                scan_cycles += loop.bv_coords / (cost.bv_coords_per_cycle * par)

        gather_cycles = self.network.gather_cycles(
            stats.gather_elems, resources.shuffle
        )

        compute_s = cfg.cycles_to_seconds(compute_cycles)
        scan_s = cfg.cycles_to_seconds(scan_cycles)
        gather_s = cfg.cycles_to_seconds(gather_cycles)
        dram_s = dram.transfer_seconds(stats.dram_total_bytes, stats.dram_bursts)

        breakdown = {
            "compute": compute_s,
            "scan": scan_s,
            "gather": gather_s,
            "dram": dram_s,
        }
        bottleneck = max(breakdown, key=breakdown.get)
        total = max(breakdown.values()) * (1.0 + cost.serial_fraction)
        return SimResult(
            kernel=kernel.name,
            dram=dram.name,
            cycles=total * cfg.clock_hz,
            seconds=total,
            bottleneck=bottleneck,
            breakdown=breakdown,
            resources=resources,
            stats=stats,
        )

    def sweep_bandwidth(
        self,
        kernel: CompiledKernel,
        tensors: dict[str, Tensor] | None,
        bandwidths_gb_s,
        stats: WorkloadStats | None = None,
    ) -> dict[float, SimResult]:
        """Figure 12: runtime across DRAM bandwidth points."""
        from repro.capstan.dram import custom_bandwidth

        if stats is None:
            stats = compute_stats(kernel, tensors)
        resources = estimate_resources(kernel, self.config)
        return {
            bw: self.simulate(kernel, tensors, custom_bandwidth(bw), stats,
                              resources)
            for bw in bandwidths_gb_s
        }
