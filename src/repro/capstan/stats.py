"""Workload statistics: what a kernel actually does on a dataset.

The cycle-approximate simulator does not interpret the Spatial program
element by element (full Table 4 datasets would take hours in Python).
Instead, this module derives the quantities the cost model needs directly
from the kernel's loop structure and the packed tensor storages, fully
vectorised:

* per-loop totals: how many times each forall launches and iterates,
* DRAM traffic: bytes moved per array, split into streams and bursts,
* co-iteration work: bit-vector words scanned and coordinates packed,
* shuffle-network gathers, and
* arithmetic operations at the innermost loops.

Union/intersection iteration counts are exact: they are computed as sizes
of unions/intersections of linearised coordinate-prefix sets, which is
precisely what the hardware's scanners enumerate (Figure 7).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.core.compiler import CompiledKernel
from repro.core.memory_analysis import ForallInfo
from repro.formats.memory import MemoryType
from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    MapCall,
    SuchThat,
    Where,
)
from repro.ir.index_notation import Add, IndexExpr, Mul, Neg, Sub
from repro.tensor.bitvector import WORD_BITS
from repro.tensor.storage import CompressedLevel, SingletonLevel, unpack
from repro.tensor.tensor import Tensor

WORD_BYTES = 4


@dataclasses.dataclass
class LoopStats:
    """Aggregate behaviour of one forall over the whole kernel run."""

    ivar: str
    kind: str  # dense | compressed | scan
    depth: int
    launches: int  # times the loop starts
    iters: int  # total iterations across all launches
    is_innermost: bool
    vector_par: int  # lanes applied to this loop
    scan_words: int = 0  # bit-vector words processed (scan loops)
    bv_coords: int = 0  # coordinates packed into bit vectors


@dataclasses.dataclass
class WorkloadStats:
    """Everything the Capstan cost model needs about one kernel run."""

    kernel: str
    loops: list[LoopStats]
    flops: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    dram_bursts: int = 0
    gather_elems: int = 0
    output_entries: int = 0
    slice_read_bytes: int = 0  # subset of reads from per-iteration slices

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def total_scan_words(self) -> int:
        return sum(l.scan_words for l in self.loops)

    @property
    def total_bv_coords(self) -> int:
        return sum(l.bv_coords for l in self.loops)

    @property
    def innermost_iters(self) -> int:
        return sum(l.iters for l in self.loops if l.is_innermost)

    def loop(self, ivar_name: str) -> LoopStats:
        for l in self.loops:
            if l.ivar == ivar_name:
                return l
        raise KeyError(ivar_name)


class _TensorKeys:
    """Linearised storage-prefix coordinate keys of a sparse tensor."""

    def __init__(self, tensor: Tensor) -> None:
        self.tensor = tensor
        storage = tensor.storage
        coords, _ = unpack(storage)
        fmt = tensor.format
        order = fmt.order
        # Storage-order coordinates and progressive Horner keys per level.
        self.level_keys: list[np.ndarray] = []
        key = np.zeros(len(coords), dtype=np.int64)
        for level in range(order):
            mode = fmt.mode_of_level(level)
            dim = tensor.shape[mode]
            key = key * dim + coords[:, mode]
            self.level_keys.append(np.unique(key))

    def keys(self, level: int) -> np.ndarray:
        """Unique prefix keys at a storage level (level -1 = the root)."""
        if level < 0:
            return np.zeros(1, dtype=np.int64)
        return self.level_keys[level]


def _count_ops(expr: IndexExpr) -> int:
    if isinstance(expr, (Add, Sub, Mul)):
        return 1 + _count_ops(expr.a) + _count_ops(expr.b)
    if isinstance(expr, Neg):
        return 1 + _count_ops(expr.a)
    return 0


def _restrict(keys: np.ndarray, parents: Optional[np.ndarray], dim: int) -> np.ndarray:
    """Keep only keys whose parent prefix (key // dim) is in ``parents``."""
    if parents is None:
        return keys
    return keys[np.isin(keys // dim, parents, assume_unique=False)]


class StatsBuilder:
    """Walks the scheduled CIN once, accumulating workload statistics."""

    def __init__(
        self,
        kernel: CompiledKernel,
        tensors: dict[str, Tensor],
        stream_inputs: frozenset[str] = frozenset(),
        stream_output: bool = False,
    ) -> None:
        self.kernel = kernel
        self.analysis = kernel.analysis
        self.plan = kernel.plan
        self.tensors = tensors
        # Fused-pipeline connections: operands arriving over an on-fabric
        # stream (and an output leaving on one) never touch DRAM, so their
        # segment/static transfers are elided from the traffic model.
        self.stream_inputs = frozenset(stream_inputs)
        self.stream_output = bool(stream_output)
        self.env = kernel.stmt.environment_vars
        self.stats = WorkloadStats(kernel.name, [])
        self._keys_cache: dict[int, _TensorKeys] = {}
        self._ws_keys: dict[int, np.ndarray] = {}  # workspace key sets
        # Per-(tensor, level) parent restriction during intersection descent.
        self._restriction: dict[tuple[int, int], np.ndarray] = {}
        self._max_depth = self.analysis.max_depth

    # -- helpers ----------------------------------------------------------------

    def tensor_of(self, t) -> Tensor:
        return self.tensors.get(t.name, t)

    def keys_of(self, t) -> _TensorKeys:
        bound = self.tensor_of(t)
        tk = self._keys_cache.get(id(bound))
        if tk is None:
            tk = _TensorKeys(bound)
            self._keys_cache[id(bound)] = tk
        return tk

    def dim_of(self, ivar) -> int:
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                mode = acc.mode_of(ivar)
                if mode is not None:
                    return self.tensor_of(acc.tensor).shape[mode]
        raise KeyError(f"no dimension for {ivar}")

    def _vector_par(self, info: ForallInfo) -> int:
        if info.mapped is not None:
            return min(info.mapped.par, 16)
        if info.depth == self._max_depth:
            return min(self.env.get("innerPar", 1), 16)
        return 1

    # -- level key-set computation -------------------------------------------------

    def _operand_keys(self, it, level: int) -> np.ndarray:
        """Reachable prefix keys of a scan operand at its level."""
        t = it.tensor
        if t.is_on_chip:
            keys = self._ws_keys.get(id(t))
            if keys is None:
                raise KeyError(f"workspace {t.name} scanned before production")
            return keys
        keys = self.keys_of(t).keys(level)
        restriction = self._restriction.get((id(t), level - 1))
        if restriction is not None:
            dim = self.tensor_of(t).shape[t.format.mode_of_level(level)]
            keys = _restrict(keys, restriction, dim)
        return keys

    # -- main walk ---------------------------------------------------------------

    def build(self) -> WorkloadStats:
        cin = self.kernel.stmt.cin
        self.walk(cin, launches=1)
        self._add_static_traffic()
        return self.stats

    def walk(self, stmt: CinStmt, launches: int) -> int:
        """Returns total iterations contributed at this nesting level."""
        if isinstance(stmt, SuchThat):
            return self.walk(stmt.body, launches)
        if isinstance(stmt, MapCall):
            return self.walk(stmt.original, launches)
        if isinstance(stmt, Where):
            self.walk(stmt.producer, launches)
            self.walk(stmt.consumer, launches)
            return launches
        if isinstance(stmt, CinSequence):
            for s in stmt.stmts:
                self.walk(s, launches)
            return launches
        if isinstance(stmt, CinAssign):
            self._account_assign(stmt, launches)
            return launches
        if isinstance(stmt, Forall):
            return self._walk_forall(stmt, launches)
        raise TypeError(type(stmt).__name__)

    def _walk_forall(self, forall: Forall, launches: int) -> int:
        info = self.analysis.info(forall.ivar)
        strategy = info.strategy
        kind = strategy.kind
        is_innermost = not any(
            isinstance(s, Forall) for s in forall.body.walk()
        )
        scan_words = 0
        bv_coords = 0
        saved_restrictions = dict(self._restriction)

        if kind == "dense":
            trip = self.dim_of(forall.ivar)
            iters = launches * trip
        elif kind == "singleton":
            # One stored coordinate per parent position: the loop body runs
            # exactly once per launch (the crd array itself is a staged
            # whole-array transfer, accounted statically).
            iters = launches
        elif kind == "compressed":
            it = strategy.driving[0]
            keys = self._operand_keys(it, it.level)
            if not it.level_format.unique and not it.tensor.is_on_chip:
                # Non-unique (COO root) levels store one position per
                # entry; unique prefix keys undercount the traversal.
                lvl = self.tensor_of(it.tensor).storage.levels[it.level]
                iters = int(getattr(lvl, "nnz", len(keys)))
            else:
                iters = len(keys)
            # Segment transfers: crd (+vals at innermost level) stream once.
            self._add_segment_traffic(it, iters, launches)
        else:  # scan
            dim = self.dim_of(forall.ivar)
            op = strategy.op or "and"
            key_sets = []
            for it in strategy.driving:
                keys = self._operand_keys(it, it.level)
                key_sets.append(keys)
                if not it.tensor.is_on_chip:
                    bv_coords += len(keys)
                    self._add_segment_traffic(it, len(keys), launches)
            if len(key_sets) == 2:
                if op == "and":
                    merged = np.intersect1d(key_sets[0], key_sets[1],
                                            assume_unique=True)
                else:
                    merged = np.union1d(key_sets[0], key_sets[1])
            else:
                merged = key_sets[0]
            iters = len(merged)
            # The scanner streams the packed words of both operands for
            # every launch (one pass per the two scanner loops would double
            # this; Capstan fuses position and value scans per Figure 7).
            words = math.ceil(dim / WORD_BITS)
            scan_words = launches * words * max(1, len(key_sets))
            # Record the result key set for workspaces, restrictions for
            # intersection descent.
            result_it = strategy.result_iterator
            if result_it is not None and result_it.tensor.is_on_chip:
                self._ws_keys[id(result_it.tensor)] = merged
            if op == "and":
                for it in strategy.driving:
                    if not it.tensor.is_on_chip:
                        self._restriction[(id(it.tensor), it.level)] = merged

        self.stats.loops.append(LoopStats(
            ivar=forall.ivar.name,
            kind=kind,
            depth=info.depth,
            launches=launches,
            iters=iters,
            is_innermost=is_innermost,
            vector_par=self._vector_par(info),
            scan_words=scan_words,
            bv_coords=bv_coords,
        ))
        self.walk(forall.body, iters)
        self._restriction = saved_restrictions
        return iters

    # -- per-assignment accounting ---------------------------------------------------

    def _account_assign(self, asg: CinAssign, launches: int) -> None:
        self.stats.flops += launches * max(1, _count_ops(asg.rhs))
        out = asg.lhs.tensor
        if out is self.analysis.output:
            self.stats.output_entries += launches
        # Gathers: staged-full sparse SRAM reads go through the shuffle net.
        for acc in asg.rhs.accesses():
            vb = self.plan.get(acc.tensor.name, "vals")
            if vb is not None and vb.memory is MemoryType.SRAM_SPARSE and vb.uses_shuffle:
                self.stats.gather_elems += launches

    # -- traffic -----------------------------------------------------------------------

    def _add_segment_traffic(self, it, elements: int, launches: int) -> None:
        """crd (and innermost vals) segments stream exactly once overall."""
        if it.tensor.name in self.stream_inputs:
            return  # fed by the producer stage's stream, not DRAM
        # Consecutive segments of one traversal are contiguous in DRAM, so
        # a loop's loads form one long stream per replica (the decoupled
        # access-execute point of Section 8.2), not per-segment bursts.
        bytes_ = elements * WORD_BYTES
        self.stats.dram_read_bytes += bytes_  # crd
        self.stats.dram_bursts += 1
        if it.tensor.format.streams_vals_at(it.level):
            vb = self.plan.get(it.tensor.name, "vals")
            if vb is not None and not vb.staged_full:
                self.stats.dram_read_bytes += bytes_  # vals
                self.stats.dram_bursts += 1

    def _add_static_traffic(self) -> None:
        """Whole-array transfers: pos loads, full stages, slices, outputs."""
        loops_by_depth: dict[int, LoopStats] = {}
        for l in self.stats.loops:
            loops_by_depth.setdefault(l.depth, l)

        def launches_at_depth(depth: int) -> int:
            if depth <= 0:
                return 1
            # A statement at alloc depth d executes once per iteration of
            # the loop at depth d-1 (best effort: first chain).
            loop = loops_by_depth.get(depth - 1)
            return loop.iters if loop is not None else 1

        for t in self.analysis.inputs:
            if t.order == 0 or t.is_on_chip:
                continue
            if t.name in self.stream_inputs:
                continue  # pos/crd/vals all arrive over the fused stream
            bound = self.tensor_of(t)
            storage = bound.storage
            fmt = t.format
            for level, lvl in enumerate(storage.levels):
                if isinstance(lvl, CompressedLevel):
                    self.stats.dram_read_bytes += len(lvl.pos) * WORD_BYTES
                    self.stats.dram_bursts += 1
                elif isinstance(lvl, SingletonLevel):
                    # Singleton crd arrays stage whole, like pos arrays.
                    self.stats.dram_read_bytes += len(lvl.crd) * WORD_BYTES
                    self.stats.dram_bursts += 1
            vb = self.plan.get(t.name, "vals")
            if vb is None:
                continue
            if vb.staged_full:
                self.stats.dram_read_bytes += len(storage.vals) * WORD_BYTES
                self.stats.dram_bursts += 1
            elif vb.memory is MemoryType.SRAM_DENSE:
                # Slice staged per launch of its allocation site.
                trailing_dim = bound.shape[fmt.mode_of_level(fmt.order - 1)]
                n = launches_at_depth(vb.alloc_depth)
                self.stats.dram_read_bytes += n * trailing_dim * WORD_BYTES
                self.stats.slice_read_bytes += n * trailing_dim * WORD_BYTES
                # Slice loads are large contiguous transfers; latency
                # overlaps across replicas (memory-level parallelism).
                self.stats.dram_bursts += max(1, n // 64)
            # FIFO vals traffic is accounted per segment in the walk.

        out = self.analysis.output
        if self.stream_output:
            return  # consumed downstream by the fused consumer, never stored
        if out.order == 0:
            self.stats.dram_write_bytes += WORD_BYTES
            return
        fmt = out.format
        entries = self.stats.output_entries
        # Values and innermost coordinates stream out once.
        self.stats.dram_write_bytes += entries * WORD_BYTES
        bursts = 0
        for level in range(fmt.order):
            if fmt.level_format(level).is_compressed:
                # Coordinate stream (bounded by the entry count) + pos store.
                self.stats.dram_write_bytes += entries * WORD_BYTES
                self.stats.dram_write_bytes += WORD_BYTES
                bursts += 1
        self.stats.dram_bursts += bursts + 1


def compute_stats(
    kernel: CompiledKernel,
    tensors: dict[str, Tensor] | None = None,
    *,
    stream_inputs: frozenset[str] = frozenset(),
    stream_output: bool = False,
) -> WorkloadStats:
    """Workload statistics for a compiled kernel on its bound tensors.

    ``stream_inputs`` names operands that a fused pipeline streams in from
    a producer stage; ``stream_output`` marks the output as streaming into
    a consumer stage. Both elide the corresponding DRAM transfers.
    """
    bound = dict(kernel.tensors)
    if tensors:
        bound.update(tensors)
    return StatsBuilder(kernel, bound, stream_inputs=stream_inputs,
                        stream_output=stream_output).build()


def compute_stats_cached(
    kernel: CompiledKernel,
    key: tuple | None = None,
    use_cache: bool | None = None,
) -> WorkloadStats:
    """:func:`compute_stats` memoized under the pipeline's ``stats`` stage.

    ``key`` is the evaluation coordinate tuple, e.g. ``(kernel, dataset,
    scale, seed)``; callers that share coordinates (Table 6 cells and the
    Figure 12 bandwidth sweep) then share one stats entry per cell instead
    of re-deriving it per artefact. Without ``key`` the statement
    fingerprint is used, which still dedupes identical kernels.
    """
    from repro.pipeline.cache import fingerprint_stmt, memoize_stage

    parts = key if key is not None else (fingerprint_stmt(kernel.stmt,
                                                          kernel.name),)
    return memoize_stage("stats", tuple(parts),
                         lambda: compute_stats(kernel), use_cache)
