"""Off-chip memory models (Section 8.1 methodology).

The paper evaluates Capstan with Ramulator-modelled DDR4-2133 (four
channels) and HBM-2E at 1800 GB/s, plus an idealised network-and-memory
configuration. This module provides analytic stand-ins: peak bandwidth,
first-access latency, and an efficiency knob for short/irregular bursts
(Ramulator's row-conflict behaviour collapsed into one factor).
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class DramModel:
    """An analytic DRAM performance model."""

    name: str
    bandwidth_gb_s: float  # peak sequential bandwidth
    latency_ns: float  # first-word latency per burst
    burst_bytes: int = 64  # minimum efficient transfer granule
    stream_efficiency: float = 0.85  # sustained fraction of peak for streams

    @property
    def is_ideal(self) -> bool:
        return math.isinf(self.bandwidth_gb_s)

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gb_s * 1e9

    def transfer_seconds(self, total_bytes: float, bursts: float = 1.0) -> float:
        """Time to move ``total_bytes`` across ``bursts`` separate requests.

        Bursts below the granule pay full-granule cost; each burst adds a
        latency term, pipelined eight-deep (memory-level parallelism).
        """
        if self.is_ideal:
            return 0.0
        effective_bytes = max(total_bytes, bursts * self.burst_bytes)
        bw_time = effective_bytes / (self.bytes_per_second * self.stream_efficiency)
        mlp = 8.0
        latency_time = (bursts / mlp) * self.latency_ns * 1e-9
        return bw_time + latency_time


#: Four channels of DDR4-2133: 4 x 17.07 GB/s.
DDR4 = DramModel("DDR4", 68.3, 80.0, stream_efficiency=0.88)

#: HBM-2E at the paper's quoted 1800 GB/s.
HBM2E = DramModel("HBM2E", 1800.0, 100.0, stream_efficiency=0.5)

#: Ideal network and memory: no latency or throughput constraints.
IDEAL = DramModel("Ideal", math.inf, 0.0)


def custom_bandwidth(gb_s: float, name: str | None = None) -> DramModel:
    """A DRAM model at an arbitrary bandwidth (the Figure 12 sweep)."""
    return DramModel(name or f"{gb_s:g}GB/s", gb_s, 90.0, stream_efficiency=0.6)


#: The Figure 12 sweep points (GB/s).
FIG12_BANDWIDTHS = (20, 50, 100, 200, 500, 1000, 2000)
