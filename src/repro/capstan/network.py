"""On-chip network and shuffle model.

The paper's simulator uses the scalable-interconnect model of Zhang et al.
(ISCA '19) for delay and throughput. This reproduction collapses the
network into the two constraints that shape the evaluation:

* **shuffle throughput** — coordinate-indexed gathers and union-scan value
  accesses cross PMU lanes through one of the 16 shuffle networks; each
  serves one 16-lane vector per cycle, and using them caps outer
  parallelism at 16 (Section 8.2);
* **pattern launch latency** — each pattern launch pays a pipeline fill
  that includes network hops between the PCUs and PMUs of its pipeline.
"""

from __future__ import annotations

import dataclasses

from repro.capstan.arch import CapstanConfig
from repro.capstan.calibration import CapstanCostModel


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """Shuffle and interconnect throughput/latency constraints."""

    config: CapstanConfig
    cost: CapstanCostModel

    def effective_outer_par(self, outer_par: int, uses_shuffle: bool) -> int:
        """Shuffle users cannot replicate beyond the 16 networks."""
        if uses_shuffle:
            return min(outer_par, self.config.n_shuffle)
        return max(1, outer_par)

    def gather_cycles(self, gather_elems: int, shuffle_count: int) -> float:
        """Cycles to serve all shuffle-network gathers."""
        if gather_elems == 0:
            return 0.0
        ports = max(1, shuffle_count)
        rate = ports * self.cost.gather_per_shuffle_per_cycle
        return gather_elems / rate

    def segment_ii_cycles(self, ideal: bool) -> float:
        """Steady-state initiation interval between segment launches,
        including network transfer-issue stalls."""
        base = self.cost.segment_ii_cycles
        return base * self.cost.ideal_overhead_fraction if ideal else base
