"""The Capstan RDA model: architecture, DRAM, resources, and simulator."""

from repro.capstan.arch import DEFAULT_CONFIG, CapstanConfig
from repro.capstan.calibration import (
    DEFAULT_COST,
    DEFAULT_CPU,
    DEFAULT_GPU,
    DEFAULT_RESOURCES,
    CapstanCostModel,
    CpuModel,
    GpuModel,
    ResourceModel,
)
from repro.capstan.dram import (
    DDR4,
    FIG12_BANDWIDTHS,
    HBM2E,
    IDEAL,
    DramModel,
    custom_bandwidth,
)
from repro.capstan.network import NetworkModel
from repro.capstan.resources import ResourceEstimate, estimate_resources
from repro.capstan.simulator import CapstanSimulator, SimResult
from repro.capstan.stats import LoopStats, WorkloadStats, compute_stats

__all__ = [
    "CapstanConfig",
    "CapstanCostModel",
    "CapstanSimulator",
    "CpuModel",
    "DDR4",
    "DEFAULT_CONFIG",
    "DEFAULT_COST",
    "DEFAULT_CPU",
    "DEFAULT_GPU",
    "DEFAULT_RESOURCES",
    "DramModel",
    "FIG12_BANDWIDTHS",
    "GpuModel",
    "HBM2E",
    "IDEAL",
    "LoopStats",
    "NetworkModel",
    "ResourceEstimate",
    "ResourceModel",
    "SimResult",
    "WorkloadStats",
    "compute_stats",
    "custom_bandwidth",
    "estimate_resources",
]
