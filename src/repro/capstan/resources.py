"""Capstan resource allocation (the Table 5 estimate).

Counts the physical resources a compiled Spatial program occupies, the
role SARA's placement plays in the paper's toolchain. The estimate is
structural: it walks the generated IR, charging

* **PCUs** for parallel patterns (one per ~6 pipeline arithmetic stages,
  replicated by the parallelization factor) and fractional PCUs for
  transfer address generators and bit-vector packers,
* **PMUs** for SRAM buffers, FIFOs, and bit-vector streams,
* **MCs** for concurrently active DRAM streams (replicated streams are
  staggered, so a concurrency factor applies), and
* **shuffle networks** for coordinate-indexed gathers and union-scan value
  accesses — the two access patterns whose per-lane addresses cannot be
  served by a single PMU's banks.

Statements outside the outermost pattern are shared; statements inside it
replicate ``outerPar`` times. Totals clamp at the chip's capacity, which is
how the "limiting resource" column of Table 5 is identified.
"""

from __future__ import annotations

import dataclasses
import math

from repro.capstan.arch import DEFAULT_CONFIG, CapstanConfig
from repro.capstan.calibration import DEFAULT_RESOURCES, ResourceModel
from repro.core.compiler import CompiledKernel
from repro.formats.memory import MemoryType
from repro.spatial.ir import (
    BitVectorDecl,
    Foreach,
    GenBitVector,
    LoadBulk,
    MemReduce,
    ReducePat,
    SBin,
    SExpr,
    SStmt,
    SramDecl,
    FifoDecl,
    StoreBulk,
    StreamStore,
)


@dataclasses.dataclass
class ResourceEstimate:
    """Estimated occupancy of one kernel configuration (Table 5 row)."""

    kernel: str
    par: int
    pcu: int
    pmu: int
    mc: int
    shuffle: int
    config: CapstanConfig = dataclasses.field(default=DEFAULT_CONFIG)

    @property
    def pcu_pct(self) -> float:
        return 100.0 * self.pcu / self.config.n_pcu

    @property
    def pmu_pct(self) -> float:
        return 100.0 * self.pmu / self.config.n_pmu

    @property
    def mc_pct(self) -> float:
        return 100.0 * self.mc / self.config.n_mc

    @property
    def shuffle_pct(self) -> float:
        return 100.0 * self.shuffle / self.config.n_shuffle

    def utilizations(self) -> dict[str, float]:
        return {
            "PCU": self.pcu_pct,
            "PMU": self.pmu_pct,
            "MC": self.mc_pct,
            "Shuf": self.shuffle_pct,
        }

    @property
    def limiting(self) -> tuple[str, ...]:
        """The resource(s) closest to capacity (Table 5 bold entries)."""
        utils = self.utilizations()
        best = max(utils.values())
        return tuple(name for name, pct in utils.items() if pct >= best - 1e-9)

    def row(self) -> str:
        u = self.utilizations()
        cells = "  ".join(
            f"{name}={count:4d} ({u[name]:5.1f}%)"
            for name, count in (
                ("PCU", self.pcu), ("PMU", self.pmu),
                ("MC", self.mc), ("Shuf", self.shuffle),
            )
        )
        return f"{self.kernel:12s} par={self.par:3d}  {cells}  limit={','.join(self.limiting)}"


def _expr_ops(e: SExpr) -> int:
    return sum(1 for n in e.walk() if isinstance(n, SBin))


@dataclasses.dataclass
class _Tally:
    pcu: float = 0.0
    pmu: float = 0.0
    mc: float = 0.0

    def __iadd__(self, other: "_Tally") -> "_Tally":
        self.pcu += other.pcu
        self.pmu += other.pmu
        self.mc += other.mc
        return self


def _count_block(stmts, model: ResourceModel) -> _Tally:
    tally = _Tally()
    for s in stmts:
        tally += _count_stmt(s, model)
    return tally


def _count_stmt(s: SStmt, model: ResourceModel) -> _Tally:
    t = _Tally()
    if isinstance(s, SramDecl):
        t.pmu += model.pmu_per_sram
    elif isinstance(s, FifoDecl):
        t.pmu += model.pmu_per_fifo
    elif isinstance(s, BitVectorDecl):
        t.pmu += model.pmu_per_bv
    elif isinstance(s, GenBitVector):
        t.pcu += model.pcu_per_genbv
    elif isinstance(s, (LoadBulk, StoreBulk, StreamStore)):
        t.mc += 1.0
        t.pcu += model.pcu_per_transfer
    elif isinstance(s, (Foreach, ReducePat, MemReduce)):
        ops = 2  # counter + control
        for b in s.body:
            for node in getattr(b, "__dict__", {}).values():
                if isinstance(node, SExpr):
                    ops += _expr_ops(node)
        if isinstance(s, ReducePat):
            ops += _expr_ops(s.value) + 1  # reduction tree stage
        t.pcu += math.ceil(ops / 6)
        inner = _count_block(s.body, model)
        t += inner
    return t


def _consumer_or_scan_levels(kernel: CompiledKernel) -> int:
    """Union-scan loop levels whose values feed off-chip results."""
    count = 0
    for info in kernel.analysis.foralls:
        st = info.strategy
        if st.kind != "scan" or st.op != "or":
            continue
        lhs = [a.lhs.tensor for a in info.forall.assignments()]
        if any(not t.is_on_chip for t in lhs):
            count += 1
    return count


def _gather_tensor_count(kernel: CompiledKernel) -> int:
    names = {
        b.tensor
        for b in kernel.plan.bindings.values()
        if b.uses_shuffle and b.memory is MemoryType.SRAM_SPARSE and b.staged_full
    }
    return len(names)


def estimate_resources(
    kernel: CompiledKernel,
    config: CapstanConfig = DEFAULT_CONFIG,
    model: ResourceModel = DEFAULT_RESOURCES,
) -> ResourceEstimate:
    """Structural Table 5 resource estimate for a compiled kernel."""
    program = kernel.program
    outer_par = kernel.stmt.environment_vars.get("outerPar", 1)

    shared = _Tally()
    replicated = _Tally()
    seen_outer = False
    for s in program.accel:
        if isinstance(s, (Foreach, ReducePat, MemReduce)) and not seen_outer:
            seen_outer = True
            # The outermost pattern itself is control (one PCU per replica);
            # everything inside replicates.
            replicated.pcu += 1
            replicated += _count_block(s.body, model)
        else:
            shared += _count_stmt(s, model)

    pcu = shared.pcu + outer_par * replicated.pcu
    pmu = shared.pmu + outer_par * replicated.pmu
    mc = shared.mc + outer_par * replicated.mc * model.mc_concurrency

    shuffle_levels = _consumer_or_scan_levels(kernel) + _gather_tensor_count(kernel)
    shuffle = min(config.n_shuffle, outer_par * shuffle_levels)

    return ResourceEstimate(
        kernel=kernel.name,
        par=outer_par,
        pcu=min(config.n_pcu, math.ceil(pcu)),
        pmu=min(config.n_pmu, math.ceil(pmu)),
        mc=min(config.n_mc, math.ceil(mc)),
        shuffle=shuffle,
        config=config,
    )


def estimate_resources_cached(
    kernel: CompiledKernel,
    key: tuple | None = None,
    use_cache: bool | None = None,
) -> ResourceEstimate:
    """:func:`estimate_resources` memoized under the ``resources`` stage.

    Keyed by the evaluation coordinates when given (so Table 5 rows and
    Table 6 simulations share one entry per kernel configuration), else
    by the statement fingerprint.
    """
    from repro.pipeline.cache import fingerprint_stmt, memoize_stage

    parts = key if key is not None else (fingerprint_stmt(kernel.stmt,
                                                          kernel.name),)
    return memoize_stage("resources", tuple(parts),
                         lambda: estimate_resources(kernel), use_cache)
