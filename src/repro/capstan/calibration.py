"""Calibration constants for the cycle-approximate models.

The paper evaluates with the Capstan authors' cycle-accurate simulator
(Ramulator DRAM + the ISCA'19 network model), which is not public. This
reproduction replaces it with analytic models whose free constants are
gathered here, so every knob is visible and documented. EXPERIMENTS.md
records the paper-vs-model deltas these constants produce.

Constants marked *calibrated* were tuned (once, against Table 6's shape)
rather than derived from the architecture description.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CapstanCostModel:
    """Cost-model constants for the Capstan simulator."""

    #: Steady-state initiation interval between consecutive segment
    #: launches of a pipelined pattern (the declarative-sparse model
    #: streams segments; there is no per-segment control overhead).
    segment_ii_cycles: float = 1.5

    #: One-time pipeline fill per pattern in the program (fill + drain).
    pattern_fill_cycles: float = 300.0

    #: Cycles per iteration of a non-innermost (control/address) loop.
    mid_loop_cycles: float = 1.0

    #: Packed bit-vector words a scanner consumes per cycle per replica.
    scan_words_per_cycle: float = 16.0

    #: Coordinates packed per cycle per replica by the Gen BV block.
    bv_coords_per_cycle: float = 16.0

    #: Elements per cycle served by one shuffle network (16-lane crossbar).
    gather_per_shuffle_per_cycle: float = 16.0

    #: Fraction of per-segment initiation cost that remains under the
    #: ideal network and memory configuration (no transfer-issue stalls).
    ideal_overhead_fraction: float = 0.5

    #: Serial fraction added on top of the bottleneck term (host control).
    serial_fraction: float = 0.02


@dataclasses.dataclass(frozen=True)
class ResourceModel:
    """Structural resource-estimate constants (Table 5)."""

    #: PCU fraction charged per bulk-transfer address generator.
    pcu_per_transfer: float = 0.6

    #: PCU fraction charged per Gen BV packer.
    pcu_per_genbv: float = 1.0

    #: PMUs charged per SRAM buffer / per FIFO / per bit-vector stream.
    pmu_per_sram: float = 2.0
    pmu_per_fifo: float = 1.0
    pmu_per_bv: float = 1.0

    #: Fraction of replicated DRAM streams concurrently demanding an MC
    #: (calibrated: streams are staggered in time).
    mc_concurrency: float = 0.7


@dataclasses.dataclass(frozen=True)
class CpuModel:
    """128-thread Xeon E7-8890 v3 model (Section 8.1 baseline)."""

    threads: int = 128
    clock_hz: float = 2.494e9
    #: Sustained aggregate memory bandwidth (4-socket NUMA, calibrated).
    bandwidth_gb_s: float = 85.0
    #: Cycles per element for in-order compressed iteration (pointer
    #: chasing + branch per element in TACO's generated loops).
    cycles_per_sparse_elem: float = 6.0
    #: Cycles per element for multi-way merge co-iteration (TACO lowers
    #: unions to branchy while-loops; calibrated).
    cycles_per_merge_elem: float = 40.0
    #: Effective dense-inner-loop elements per cycle per core (AVX).
    dense_elems_per_cycle: float = 8.0
    #: Seconds per random gather after memory-level parallelism.
    gather_seconds: float = 4e-9
    #: Parallel efficiency across 128 threads on sparse kernels
    #: (NUMA traffic, load imbalance; calibrated).
    parallel_efficiency: float = 0.22
    #: Per-kernel OpenMP fork/join plus cold-cache warmup.
    launch_seconds: float = 5e-5
    #: Seconds per non-innermost compressed iteration (CSF pointer chasing
    #: with cold-cache misses; calibrated).
    cache_miss_seconds: float = 6e-8
    #: Fraction of peak bandwidth sustained on strided slice traffic
    #: (random column/row fetches across NUMA nodes; calibrated).
    slice_bandwidth_fraction: float = 0.08
    #: Effective thread count on latency-bound irregular work (merges and
    #: cold-cache fiber traversal do not scale on the 4-socket box).
    irregular_threads: float = 4.0
    #: Effective thread count when TACO emits a compound (multi-statement)
    #: kernel it cannot parallelise (MatTransMul/Residual-style axpy).
    compound_threads: float = 1.5


@dataclasses.dataclass(frozen=True)
class GpuModel:
    """NVIDIA V100 SXM-2 model running TACO-generated CUDA (Section 8.1)."""

    bandwidth_gb_s: float = 900.0
    peak_flops: float = 14e12
    #: Kernel launch + driver overhead per kernel.
    launch_seconds: float = 8e-6
    #: Effective rate of TACO's dense-output zero-initialisation, which the
    #: paper identifies as dominating GPU time for sparse-output kernels
    #: ("most of the time is spent zero initializing the fully dense result
    #: tensor"). Far below memset speed because TACO's initialisation is a
    #: generated scalar loop + allocation (calibrated to Table 6's shape).
    dense_init_gb_s: float = 30.0
    #: Seconds per irregular (gather/atomic) element (cache-amortised).
    irregular_seconds: float = 5e-11
    #: Seconds per element of a *serialised* sparse innermost loop feeding
    #: a densified output (warp-serial merge path in TACO CUDA).
    serial_sparse_seconds: float = 4e-9
    #: Seconds per coordinate of a two-way merge (TACO CUDA co-iteration).
    merge_seconds: float = 2e-10
    #: Seconds per non-innermost compressed iteration (warp divergence on
    #: nested sparse traversal).
    divergence_seconds: float = 1e-9
    #: Parallel efficiency on sparse TACO kernels (warp divergence).
    efficiency: float = 0.5


DEFAULT_COST = CapstanCostModel()
DEFAULT_RESOURCES = ResourceModel()
DEFAULT_CPU = CpuModel()
DEFAULT_GPU = GpuModel()
