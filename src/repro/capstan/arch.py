"""The Capstan architecture model (Section 3.2 and Section 8.2).

Capstan (Rucker et al., MICRO '21) is a vectorised reconfigurable dataflow
architecture derived from Plasticine: a grid of 200 pattern compute units
(PCUs) and 200 pattern memory units (PMUs) ringed by 80 memory controllers
(MCs), plus 16 shuffle networks for sparse cross-lane accesses. Each PCU
has six pipeline stages and 16 vector lanes; each PMU has 16 banks of
4096 32-bit words supporting one read and one write per bank per cycle.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CapstanConfig:
    """Physical resource and timing parameters of the simulated chip."""

    n_pcu: int = 200
    n_pmu: int = 200
    n_mc: int = 80
    n_shuffle: int = 16
    lanes: int = 16  # vector lanes per PCU
    pcu_stages: int = 6  # pipeline stages per PCU
    pmu_banks: int = 16
    pmu_words_per_bank: int = 4096
    word_bytes: int = 4
    clock_hz: float = 1.6e9

    @property
    def pmu_bytes(self) -> int:
        return self.pmu_banks * self.pmu_words_per_bank * self.word_bytes

    @property
    def peak_flops(self) -> float:
        """Peak fused multiply-add throughput (ops/s)."""
        return self.n_pcu * self.lanes * self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def bytes_per_cycle(self, bandwidth_bytes_per_s: float) -> float:
        return bandwidth_bytes_per_s / self.clock_hz


#: The default chip used across the evaluation.
DEFAULT_CONFIG = CapstanConfig()
