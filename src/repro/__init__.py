"""Stardust reproduction: sparse tensor algebra → reconfigurable dataflow.

Public API re-exports — the names a downstream user needs:

>>> from repro import Tensor, index_vars, compile_stmt, CSR, offChip
"""

from repro.capstan import (
    DDR4,
    HBM2E,
    IDEAL,
    CapstanConfig,
    CapstanSimulator,
    compute_stats,
    estimate_resources,
)
from repro.core import CompiledKernel, compile_stmt, compile_tensor
from repro.core.compiler import ENGINES
from repro.formats import (
    CSC,
    CSF,
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    MemoryRegion,
    MemoryType,
    compressed,
    dense,
    offChip,
    onChip,
)
from repro.ir import IndexVar, index_vars
from repro.pipeline import (
    CompilationCache,
    Job,
    JobResult,
    default_cache,
    run_jobs,
)
from repro.schedule import INNER_PAR, OUTER_PAR, REDUCTION, SPATIAL, IndexStmt
from repro.service.api import CompileRequest, CompileResult
from repro.tensor import Tensor, evaluate_dense, scalar, to_dense, vector

__version__ = "1.0.0"

__all__ = [
    "CSC",
    "CSF",
    "CSR",
    "CapstanConfig",
    "CapstanSimulator",
    "CompilationCache",
    "CompileRequest",
    "CompileResult",
    "CompiledKernel",
    "DDR4",
    "DENSE_MATRIX",
    "DENSE_MATRIX_CM",
    "DENSE_VECTOR",
    "ENGINES",
    "Format",
    "HBM2E",
    "IDEAL",
    "INNER_PAR",
    "IndexStmt",
    "IndexVar",
    "Job",
    "JobResult",
    "MemoryRegion",
    "MemoryType",
    "OUTER_PAR",
    "REDUCTION",
    "SPARSE_VECTOR",
    "SPATIAL",
    "Tensor",
    "UCC",
    "compile_stmt",
    "compile_tensor",
    "compressed",
    "compute_stats",
    "default_cache",
    "dense",
    "estimate_resources",
    "evaluate_dense",
    "index_vars",
    "offChip",
    "onChip",
    "run_jobs",
    "scalar",
    "to_dense",
    "vector",
]
