"""Stardust reproduction: sparse tensor algebra → reconfigurable dataflow.

Public API re-exports — the names a downstream user needs:

>>> from repro import Tensor, index_vars, compile_stmt, CSR, offChip
"""

from repro.capstan import (
    DDR4,
    HBM2E,
    IDEAL,
    CapstanConfig,
    CapstanSimulator,
    compute_stats,
    estimate_resources,
)
from repro.core import CompiledKernel, compile_stmt, compile_tensor
from repro.formats import (
    CSC,
    CSF,
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    MemoryRegion,
    MemoryType,
    compressed,
    dense,
    offChip,
    onChip,
)
from repro.ir import IndexVar, index_vars
from repro.schedule import INNER_PAR, OUTER_PAR, REDUCTION, SPATIAL, IndexStmt
from repro.tensor import Tensor, evaluate_dense, scalar, to_dense, vector

__version__ = "1.0.0"

__all__ = [
    "CSC",
    "CSF",
    "CSR",
    "CapstanConfig",
    "CapstanSimulator",
    "CompiledKernel",
    "DDR4",
    "DENSE_MATRIX",
    "DENSE_MATRIX_CM",
    "DENSE_VECTOR",
    "Format",
    "HBM2E",
    "IDEAL",
    "INNER_PAR",
    "IndexStmt",
    "IndexVar",
    "MemoryRegion",
    "MemoryType",
    "OUTER_PAR",
    "REDUCTION",
    "SPARSE_VECTOR",
    "SPATIAL",
    "Tensor",
    "UCC",
    "compile_stmt",
    "compile_tensor",
    "compressed",
    "compute_stats",
    "dense",
    "estimate_resources",
    "evaluate_dense",
    "index_vars",
    "offChip",
    "onChip",
    "scalar",
    "to_dense",
    "vector",
]
