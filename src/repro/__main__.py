"""Command-line interface: ``python -m repro``.

Subcommands:

* ``compile``  — compile an evaluation kernel on a dataset; print the
  generated Spatial, the memory analysis, and (optionally) CPU C code.
* ``simulate`` — predict runtime across platforms for a kernel+dataset.
* ``kernels``  — list the evaluation kernels and their datasets.
* ``tables``   — regenerate a table or figure of the paper
  (``--jobs N`` fans the work out; ``--no-cache`` recomputes from
  scratch).
* ``batch``    — regenerate several artefacts as one parallel job batch,
  with per-job failure isolation and a cache/throughput summary;
  ``--shard I/N --out F.json`` runs one deterministic slice of a single
  artefact's job list and writes a shard manifest instead (``--out -``
  streams the manifest to stdout, which is how dispatch workers report).
* ``dispatch`` — drive an artefact's whole job list through a pool of
  fault-tolerant workers (``--workers local:N`` / ``ssh:h1,h2`` /
  ``inline:N`` / ``queue:DIR``): idle workers lease chunks dynamically,
  dead or hung workers lose their lease and the chunk is reassigned,
  persistently failing jobs are quarantined, and the merged output is
  byte-identical to the serial ``tables`` run. ``--resume DIR``
  persists per-chunk manifests and picks up a partially completed
  dispatch; ``--steal`` cuts cost-balanced chunks from the persistent
  per-job cost table instead of uniform slices. ``--partition P``
  reinterprets the positional as a kernel name and distributes that
  single kernel as ``P`` row blocks instead of sharding a sweep.
* ``spmm-dist`` — distribute ONE kernel's iteration space over the
  same worker transports (SpDISTAL-style): row-block the output space
  into independent sub-kernels whose operand slices are cut by the
  conversion compiler, compute partials on leased workers, and fold
  them through a reducing merge validated against the unpartitioned
  oracle; row mode is byte-identical to the ``--serial`` baseline.
* ``worker``   — attach an elastic worker to a ``queue:DIR`` pool:
  claims chunk tasks (from ``dispatch``) and compile-request tasks
  (from ``serve``) by atomic rename, heartbeats while running them,
  streams results back through the queue directory, and exits when
  the dispatcher raises the stop sentinel. Start and stop workers on
  any host (sharing the directory) at any point mid-sweep.
* ``serve``    — run the compile-as-a-service daemon: an HTTP/JSON
  front end over the typed ``repro.api`` request surface. Hot requests
  are answered straight from the staged cache, identical in-flight
  requests coalesce into one job, and misses run on an ``inline:N``
  thread pool or an elastic ``queue:DIR`` worker pool. SIGTERM drains
  gracefully; ``/stats`` reports serve and cache counters.
* ``merge``    — validate shard manifests and fold them into the full
  artefact, byte-identical to the serial ``tables`` output. Arguments
  may be glob patterns (quoted, for non-shell callers).
* ``formats``  — list the registered whole-tensor formats with their
  level kinds, mode ordering, and memory region (``--json`` for a
  machine-readable dump).
* ``convert``  — synthesize and run a format-conversion plan between two
  registered formats on a matrix dataset (the ``repro.convert``
  conversion compiler).
* ``pipeline`` — plan and run a fused expression pipeline (FuseFlow):
  chained einsum stages whose intermediates stream producer-to-consumer
  on-fabric unless a cut heuristic forces materialization; prints the
  per-connection cut report and the modeled traffic saved
  (``--no-fuse`` is the materialize-everything baseline, ``--out``
  writes the fusion-invariant numeric outputs as JSON).
* ``cache``    — inspect or clear the on-disk compilation cache
  (``--json`` emits the same stats payload the serve daemon exposes
  at ``/stats``).
* ``trace``    — summarize or export the structured span traces that
  ``--trace DIR`` (or ``REPRO_TRACE_DIR``) makes every stage of the
  pipeline write: per-stage totals, cache hit ratios, worker
  utilization, the critical path, and a Chrome trace-viewer export.
"""

from __future__ import annotations

import argparse
import sys


def _use_cache(args) -> bool | None:
    """``--no-cache`` → False; otherwise defer to the environment."""
    return False if getattr(args, "no_cache", False) else None


def _cmd_kernels(_args) -> int:
    from repro.data import datasets_for
    from repro.kernels import FORMAT_KERNEL_ORDER, KERNEL_ORDER, KERNELS

    print(f"{'kernel':14s}{'expression':50s}datasets")
    for name in (*KERNEL_ORDER, *FORMAT_KERNEL_ORDER):
        spec = KERNELS[name]
        ds = ", ".join(d.name for d in datasets_for(name))
        print(f"{name:14s}{spec.expression:50s}{ds}")
    return 0


def _cmd_compile(args) -> int:
    from repro.api import CompileRequest, build
    from repro.backends import lower_cpu

    kernel = build(CompileRequest(kernel=args.kernel, dataset=args.dataset,
                                  scale=args.scale))
    if args.memory_report:
        print(kernel.memory_report())
        print()
    print(kernel.source)
    print(f"// generated Spatial LoC: {kernel.spatial_loc}",
          file=sys.stderr)
    if args.cpu:
        print()
        print(lower_cpu(kernel.stmt, args.kernel.lower()))
    return 0


def _cmd_simulate(args) -> int:
    from repro.api import BASELINE_PLATFORM, CompileRequest, evaluate

    request = CompileRequest(kernel=args.kernel, dataset=args.dataset,
                             scale=args.scale)
    times = evaluate(request, use_cache=_use_cache(args)).platform_times()
    base = times.seconds[BASELINE_PLATFORM]
    print(f"{args.kernel} on {args.dataset} (scale {args.scale}):")
    for platform, seconds in times.seconds.items():
        print(f"  {platform:34s}{seconds * 1e6:14.2f} us"
              f"{seconds / base:10.2f}x")
    return 0


def _cmd_tables(args) -> int:
    from repro.eval import harness

    artefact = args.artifact
    use_cache = _use_cache(args)
    engine = args.engine
    if artefact == "table3":
        print(harness.format_table3(
            harness.table3(jobs=args.jobs, use_cache=use_cache)))
    elif artefact == "table5":
        print(harness.format_table5(
            harness.table5(jobs=args.jobs, use_cache=use_cache)))
    elif artefact == "table6":
        print(harness.format_table6(
            harness.table6(args.scale, jobs=args.jobs, use_cache=use_cache,
                           engine=engine)))
    elif artefact == "figure12":
        print(harness.format_figure12(
            harness.figure12(args.scale, jobs=args.jobs,
                             use_cache=use_cache)))
    elif artefact == "format_sweep":
        print(harness.format_format_sweep(
            harness.format_sweep(args.scale, jobs=args.jobs,
                                 use_cache=use_cache, engine=engine)))
    elif artefact == "pipeline_sweep":
        print(harness.format_pipeline_sweep(
            harness.pipeline_sweep(args.scale, jobs=args.jobs,
                                   use_cache=use_cache, engine=engine)))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_formats(args) -> int:
    import json

    from repro.formats import offChip, registered_formats

    specs = registered_formats()
    if args.json:
        payload = []
        for name in sorted(specs):
            fmt = specs[name].instantiate(offChip)
            levels = []
            for mf in fmt.mode_formats:
                entry = {"kind": mf.kind.value, **mf.properties()}
                if mf.size is not None:
                    entry["size"] = mf.size
                levels.append(entry)
            payload.append({
                "name": name,
                "description": specs[name].description,
                "order": fmt.order,
                "levels": levels,
                "mode_ordering": list(fmt.mode_ordering),
                "memory": str(fmt.memory),
            })
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'name':11s}{'order':>5s}  {'levels':48s}{'ordering':10s}"
          f"{'memory':9s}description")
    for name in sorted(specs):
        fmt = specs[name].instantiate(offChip)
        levels = ", ".join(str(mf) for mf in fmt.mode_formats)
        ordering = ",".join(map(str, fmt.mode_ordering))
        print(f"{name:11s}{fmt.order:5d}  {levels:48s}{ordering:10s}"
              f"{str(fmt.memory):9s}{specs[name].description}")
    return 0


def _cmd_convert(args) -> int:
    import time

    import numpy as np

    from repro.convert import ConversionError, plan_conversion
    from repro.data.datasets import load_matrix_coo
    from repro.formats import CSR, format_of, offChip
    from repro.tensor.storage import pack, to_dense

    use_cache = _use_cache(args)
    try:
        src_fmt = format_of(args.source)
        dst_fmt = format_of(args.target)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.plan:
        # The plan is a function of the two formats alone; skip dataset
        # generation entirely.
        try:
            print(plan_conversion(src_fmt, dst_fmt).describe())
        except ConversionError as exc:
            print(f"conversion error: {exc}", file=sys.stderr)
            return 1
        return 0
    dims, coords, vals = load_matrix_coo(args.dataset, args.scale, args.seed,
                                         use_cache=use_cache)
    base = pack(coords, vals, dims, CSR(offChip))
    try:
        to_src = plan_conversion(base.fmt, src_fmt, dims)
        source = to_src.run(base) if args.source != "csr" else base
        plan = plan_conversion(source.fmt, dst_fmt,
                               dims if dst_fmt.order == len(dims) else None)
    except ConversionError as exc:
        print(f"conversion error: {exc}", file=sys.stderr)
        return 1
    print(plan.describe())
    start = time.perf_counter()
    converted = plan.run(source)
    seconds = time.perf_counter() - start
    print(f"{args.dataset} (scale {args.scale}): "
          f"{source.nnz} stored -> {converted.nnz} stored, "
          f"{source.bytes_total() / 1024:.1f} KiB -> "
          f"{converted.bytes_total() / 1024:.1f} KiB in {seconds * 1e3:.2f} ms")
    if args.verify:
        # Convert back to the source format and compare densified values.
        back = plan_conversion(converted.fmt, source.fmt, dims).run(converted)
        if np.allclose(to_dense(back), to_dense(source)):
            print("verify: dense round-trip matches")
        else:
            print("verify: MISMATCH", file=sys.stderr)
            return 1
    return 0


def _print_pipeline_report(row: dict) -> None:
    mode = "fused" if row["fused"] else "unfused (--no-fuse)"
    print(f"{row['pipeline']} on {row['dataset']} "
          f"(scale {row['scale']}, {mode}, engine {row['engine']}):")
    for dec in row["decisions"]:
        verdict = ("streams on-fabric (DRAM buffer elided)"
                   if dec["streamed"] else f"cut: {dec['reason']}")
        print(f"  {dec['producer']} -> {dec['consumer']} "
              f"via {dec['intermediate']}: {verdict}")
    for st in row["stages"]:
        streams = ", ".join(st["streams"]) if st["streams"] else "-"
        print(f"  stage {st['stage']:<10s} out={st['output']:<4s}"
              f"{st['fused_bytes'] / 1024:10.1f} KiB "
              f"(unfused {st['unfused_bytes'] / 1024:.1f} KiB)  "
              f"streams: {streams}")
    print(f"  total {row['fused_bytes'] / 1024:.1f} KiB vs "
          f"{row['unfused_bytes'] / 1024:.1f} KiB unfused: "
          f"{row['reduction_pct']:.2f}% saved "
          f"({row['elided_bytes'] / 1024:.1f} KiB elided)")


def _cmd_pipeline(args) -> int:
    import json

    from repro.pipeline.fusion import (
        PIPELINE_ORDER,
        PIPELINES,
        FusionError,
        run_pipeline,
    )

    if args.all:
        names = list(PIPELINE_ORDER)
    elif args.name:
        if args.name not in PIPELINES:
            print(f"unknown pipeline {args.name!r}; choose from: "
                  f"{', '.join(PIPELINE_ORDER)}", file=sys.stderr)
            return 2
        names = [args.name]
    else:
        print("pipeline: give a pipeline name or --all; registered: "
              f"{', '.join(PIPELINE_ORDER)}", file=sys.stderr)
        return 2

    use_cache = _use_cache(args)
    payload: dict[str, dict] = {}
    for name in names:
        spec = PIPELINES[name]
        datasets = [args.dataset] if args.dataset else list(spec.datasets)
        payload[name] = {}
        for dataset in datasets:
            try:
                row = run_pipeline(name, dataset, args.scale, args.seed,
                                   fuse=not args.no_fuse, engine=args.engine,
                                   use_cache=use_cache)
            except FusionError as exc:
                print(f"pipeline error: {exc}", file=sys.stderr)
                return 1
            payload[name][dataset] = row["outputs"]
            _print_pipeline_report(row)
            print()
    if args.out:
        # Numerics only (shapes + checksums): fused and --no-fuse runs
        # of the same pipelines must produce byte-identical files.
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.out == "-":
            print(text)
        else:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
    return 0


def _cmd_batch(args) -> int:
    from repro.pipeline.batch import ARTIFACT_NAMES, artifact_jobs, run_batch
    from repro.pipeline.cache import default_cache
    from repro.pipeline.shard import ShardSpec

    artifacts = list(args.artifacts)
    if "all" in artifacts:
        artifacts = list(ARTIFACT_NAMES)
    from repro.pipeline.partition import (
        PartitionError,
        is_partition_artifact,
        parse_partition,
    )

    for name in artifacts:
        if name in ARTIFACT_NAMES:
            continue
        if not is_partition_artifact(name):
            print(f"unknown artefact {name!r}; choose from "
                  f"{list(ARTIFACT_NAMES)}, 'all', or a "
                  f"partition:<kernel>:<dataset>:p<P>:<mode> plan",
                  file=sys.stderr)
            return 2
        try:
            parse_partition(name)
        except PartitionError as exc:
            print(f"batch error: {exc}", file=sys.stderr)
            return 2
    use_cache = _use_cache(args)

    spec = None
    if args.shard:
        try:
            spec = ShardSpec.parse(args.shard)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if len(artifacts) != 1:
            print("--shard slices one artefact's job list; pass exactly "
                  "one artefact (one manifest per file)", file=sys.stderr)
            return 2

    if args.list:
        for artifact in artifacts:
            jobs = artifact_jobs(artifact, args.scale, use_cache)
            if spec is not None:
                jobs = spec.select(jobs)
            for job in jobs:
                print(f"{artifact:10s}  {job}")
        return 0

    if spec is not None:
        return _run_shard_to_manifest(args, artifacts[0], spec, use_cache)

    run = run_batch(artifacts, args.scale, jobs=args.jobs,
                    use_cache=use_cache,
                    kind="process" if args.processes else "thread",
                    engine=args.engine)
    bar = "=" * 78
    for artifact in artifacts:
        if artifact in run.texts:
            print(f"{bar}\n{run.texts[artifact]}\n{bar}")
    for failure in run.failures:
        print(f"FAILED {failure.job}:\n{failure.error}", file=sys.stderr)
    if args.processes:
        # Worker processes own their caches; the parent's counters would
        # always read zero.
        cache_note = "cache: n/a with --processes"
    else:
        stats = default_cache().stats
        cache_note = f"cache: {stats.hits} hits / {stats.misses} misses"
    print(f"{run.summary()} ({cache_note})")
    return 1 if run.failures else 0


def _run_shard_to_manifest(args, artifact: str, spec, use_cache) -> int:
    from repro.pipeline.cache import default_cache
    from repro.pipeline.shard import run_shard

    def progress(res, index, total):
        status = "ok" if res.ok else "FAILED"
        print(f"[{index + 1}/{total}] {res.job}: {status} "
              f"({res.seconds:.2f}s)", file=sys.stderr)

    manifest = run_shard(artifact, args.scale, spec, jobs=args.jobs,
                         use_cache=use_cache,
                         kind="process" if args.processes else "thread",
                         on_result=progress, engine=args.engine)
    to_stdout = args.out == "-"
    if to_stdout:
        # Dispatch workers stream the manifest back over stdout; keep
        # stdout pure JSON and push the human summary to stderr.
        sys.stdout.write(manifest.to_json())
        sys.stdout.flush()
        out = "<stdout>"
    else:
        out = args.out or f"{artifact}.shard{spec.index}of{spec.count}.json"
        manifest.save(out)
    failures = manifest.failures()
    stages = default_cache().stats.stage_summary()
    note = f"; cache stages: {stages}" if stages and not args.processes else ""
    print(f"shard {spec} of {artifact} (scale {args.scale}): "
          f"{len(manifest.jobs)}/{manifest.total_jobs} job(s), "
          f"{len(failures)} failed -> {out}{note}",
          file=sys.stderr if to_stdout else sys.stdout)
    for entry in failures:
        key = ":".join(str(k) for k in entry["key"])
        print(f"FAILED {key}:\n{entry.get('error', '')}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_merge(args) -> int:
    from pathlib import Path

    from repro.pipeline.shard import (
        ManifestError,
        ShardManifest,
        expand_manifest_paths,
        merge_manifests,
    )

    paths = expand_manifest_paths(args.manifests)
    if not paths:
        patterns = " ".join(args.manifests) or "(no arguments)"
        print(f"merge error: no manifest files matched {patterns}; "
              f"run `batch <artefact> --shard I/N --out F.json` first",
              file=sys.stderr)
        return 2
    try:
        manifests = [ShardManifest.load(p) for p in paths]
        merged = merge_manifests(
            manifests,
            require_current_compiler=not args.allow_stale_compiler,
        )
    except ManifestError as exc:
        print(f"merge error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).write_text(merged.text + "\n")
    print(merged.text)
    return 0


def _cmd_dispatch(args) -> int:
    from pathlib import Path

    from repro.pipeline.dispatch import DispatchError, dispatch

    artifact = args.artifact
    if args.partition is not None:
        # `dispatch table6 --partition` makes no sense: --partition
        # reinterprets the positional as a kernel to row-block.
        from repro.pipeline.partition import PartitionError, PartitionPlan

        try:
            plan = PartitionPlan(args.artifact, args.dataset,
                                 args.partition, args.mode)
        except PartitionError as exc:
            print(f"dispatch error: {exc}", file=sys.stderr)
            return 2
        artifact = plan.artifact

    def event(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    try:
        result = dispatch(
            artifact, args.scale, args.workers,
            chunks_per_worker=args.chunks_per_worker,
            lease_timeout=args.lease_timeout,
            retries=args.retries,
            use_cache=_use_cache(args),
            worker_jobs=args.jobs,
            state_dir=args.resume,
            resume=args.resume is not None,
            steal=args.steal,
            min_chunk=args.min_chunk,
            on_event=event,
            engine=args.engine,
        )
    except DispatchError as exc:
        print(f"dispatch error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # e.g. the transport binary (ssh) is missing or fds ran out;
        # in-flight workers were already revoked by the dispatcher.
        print(f"dispatch error: cannot launch workers over "
              f"{args.workers}: {exc}", file=sys.stderr)
        return 2
    print(result.summary(), file=sys.stderr)
    for line in result.failure_report():
        print(line, file=sys.stderr)
    if not result.ok:
        return 1
    if args.out:
        Path(args.out).write_text(result.merged.text + "\n")
    print(result.merged.text)
    return 0


def _cmd_spmm_dist(args) -> int:
    from pathlib import Path

    from repro.pipeline.partition import (
        PartitionError,
        PartitionPlan,
        serial_report,
    )

    try:
        plan = PartitionPlan(args.kernel, args.dataset, args.partition,
                             args.mode)
    except PartitionError as exc:
        print(f"spmm-dist error: {exc}", file=sys.stderr)
        return 2

    if args.serial:
        # Unpartitioned in-process run: the byte-diff baseline.
        try:
            text = serial_report(args.kernel, args.dataset, args.scale,
                                 mode=args.mode,
                                 use_cache=_use_cache(args))
        except PartitionError as exc:
            print(f"spmm-dist error: {exc}", file=sys.stderr)
            return 1
        if args.out:
            Path(args.out).write_text(text + "\n")
        print(text)
        return 0

    from repro.pipeline.dispatch import DispatchError, dispatch

    def event(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    try:
        result = dispatch(
            plan.artifact, args.scale, args.workers,
            chunks_per_worker=args.chunks_per_worker,
            lease_timeout=args.lease_timeout,
            retries=args.retries,
            use_cache=_use_cache(args),
            worker_jobs=args.jobs,
            state_dir=args.resume,
            resume=args.resume is not None,
            steal=args.steal,
            min_chunk=args.min_chunk,
            on_event=event,
            engine=None,
        )
    except (DispatchError, PartitionError) as exc:
        print(f"spmm-dist error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"spmm-dist error: cannot launch workers over "
              f"{args.workers}: {exc}", file=sys.stderr)
        return 2
    print(result.summary(), file=sys.stderr)
    for line in result.failure_report():
        print(line, file=sys.stderr)
    if not result.ok:
        return 1
    if args.out:
        Path(args.out).write_text(result.merged.text + "\n")
    print(result.merged.text)
    return 0


def _cmd_worker(args) -> int:
    from repro.pipeline.fsqueue import worker_loop

    def event(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    try:
        completed = worker_loop(args.dir, poll=args.poll,
                                max_chunks=args.max_chunks, jobs=args.jobs,
                                on_event=event)
    except KeyboardInterrupt:
        print("worker interrupted; any claimed chunk will be re-leased "
              "after its lease expires", file=sys.stderr)
        return 130
    print(f"worker done: {completed} chunk(s) completed", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import ServeConfig, ServeError, run_service

    def event(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        pool=args.pool,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        drain_grace=args.drain_grace,
        queue_lease=args.lease_timeout,
        use_cache=_use_cache(args),
        on_event=event,
    )
    try:
        return run_service(config)
    except ServeError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"serve error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_cache(args) -> int:
    from repro.pipeline.cache import compiler_version, default_cache

    cache = default_cache()
    info = cache.disk_info()
    if args.action == "info":
        if args.json:
            from repro.service.stats import render_cache_stats

            print(render_cache_stats())
            return 0
        where = info["dir"] or "(disk store disabled)"
        print(f"cache dir:        {where}")
        print(f"compiler version: {compiler_version()}")
        print(f"entries:          {info['entries']}")
        print(f"size:             {info['bytes'] / 1024:.1f} KiB")
        return 0
    if args.action == "clear":
        import re
        import shutil
        from pathlib import Path

        cache.clear_memory()
        if info["dir"]:
            # Remove only the cache's own per-compiler-version trees, in
            # case REPRO_CACHE_DIR points at a directory holding other
            # content too.
            base = Path(info["dir"])
            if base.exists():
                for child in base.iterdir():
                    if child.is_dir() and re.fullmatch(r"[0-9a-f]{16}",
                                                       child.name):
                        shutil.rmtree(child, ignore_errors=True)
            print(f"cleared {info['entries']} entries from {info['dir']}")
        else:
            print("disk store disabled; cleared in-memory cache only")
        return 0
    return 2  # pragma: no cover - argparse restricts choices


def _cmd_trace(args) -> int:
    import json
    import os

    from repro.obs import TRACE_ENV
    from repro.obs.timeline import load_trace_dir, render_summary, to_chrome

    root = args.dir or os.environ.get(TRACE_ENV)
    if not root:
        print(f"error: no trace directory (pass one or set {TRACE_ENV})",
              file=sys.stderr)
        return 2
    data = load_trace_dir(root)
    if not data.records:
        print(f"error: no trace records under {root}", file=sys.stderr)
        return 1
    if args.action == "summary":
        print(render_summary(data))
    elif args.action == "export":
        if not args.chrome:
            print("error: export needs --chrome OUT.json", file=sys.stderr)
            return 2
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(to_chrome(data), fh)
        print(f"wrote {len(data.spans)} span(s), {len(data.events)} "
              f"event(s) to {args.chrome}", file=sys.stderr)
    problems = data.problems()
    if problems:
        for item in problems:
            print(f"trace problem: {item}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


def _apply_trace(args) -> None:
    """``--trace DIR`` → the environment knob, inherited by workers."""
    if getattr(args, "trace", None):
        import os

        from repro.obs import TRACE_ENV

        os.environ[TRACE_ENV] = args.trace


def _add_trace_flag(parser) -> None:
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="write structured span traces as JSONL under "
                             "DIR (same as REPRO_TRACE_DIR; inherited by "
                             "spawned/remote workers; inspect with "
                             "`repro trace`)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Stardust reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list evaluation kernels")

    p_compile = sub.add_parser("compile", help="compile a kernel")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--dataset", default=None)
    p_compile.add_argument("--scale", type=float, default=0.05)
    p_compile.add_argument("--cpu", action="store_true",
                           help="also print TACO-style CPU C code")
    p_compile.add_argument("--memory-report", action="store_true",
                           help="print the Section 6 memory analysis")

    p_sim = sub.add_parser("simulate", help="predict cross-platform runtime")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--dataset", default=None)
    p_sim.add_argument("--scale", type=float, default=0.25)
    p_sim.add_argument("--no-cache", action="store_true",
                       help="bypass the compilation/result cache")

    p_tab = sub.add_parser("tables", help="regenerate a table/figure")
    p_tab.add_argument("artifact",
                       choices=["table3", "table5", "table6", "figure12",
                                "format_sweep", "pipeline_sweep"])
    p_tab.add_argument("--scale", type=float, default=0.25)
    p_tab.add_argument("--jobs", type=int, default=None,
                       help="parallel worker count (default: REPRO_JOBS or 1)")
    p_tab.add_argument("--no-cache", action="store_true",
                       help="bypass the compilation/result cache")
    p_tab.add_argument("--engine", choices=["interp", "cpu", "numpy"],
                       default=None,
                       help="functionally execute each table6/format_sweep "
                            "cell with this engine and validate it against "
                            "the interpreter oracle (default: skip the check)")

    p_batch = sub.add_parser(
        "batch", help="regenerate several artefacts as one parallel batch")
    p_batch.add_argument(
        "artifacts", nargs="+",
        help="table3/table5/table6/figure12/format_sweep/pipeline_sweep, "
             "'all', or a partition:<kernel>:<dataset>:p<P>:<mode> plan")
    p_batch.add_argument("--scale", type=float, default=0.25)
    p_batch.add_argument("--jobs", type=int, default=None,
                         help="parallel worker count (default: REPRO_JOBS or 1)")
    p_batch.add_argument("--no-cache", action="store_true",
                         help="bypass the compilation/result cache")
    p_batch.add_argument("--processes", action="store_true",
                         help="use a process pool instead of threads")
    p_batch.add_argument("--list", action="store_true",
                         help="print the (kernel, dataset, platform) job "
                              "list without running it")
    p_batch.add_argument("--shard", metavar="I/N", default=None,
                         help="run only shard I of N (1-based, "
                              "deterministic round-robin slice) and write "
                              "a JSON manifest instead of printing tables")
    p_batch.add_argument("--out", default=None,
                         help="manifest path for --shard (default: "
                              "<artefact>.shardIofN.json; `-` streams the "
                              "manifest JSON to stdout)")
    p_batch.add_argument("--engine", choices=["interp", "cpu", "numpy"],
                         default=None,
                         help="functionally execute each table6/format_sweep "
                              "cell with this engine and validate it against "
                              "the interpreter oracle (default: skip the check)")

    p_disp = sub.add_parser(
        "dispatch",
        help="drive an artefact's sweep through a fault-tolerant worker "
             "pool (chunked leases; merged output byte-identical to "
             "`tables`)")
    p_disp.add_argument("artifact",
                        help="table3/table5/table6/figure12/format_sweep/"
                             "pipeline_sweep, a partition:<kernel>:"
                             "<dataset>:p<P>:<mode> plan, or (with "
                             "--partition) a kernel name to row-block")
    p_disp.add_argument("--partition", type=int, default=None, metavar="P",
                        help="distribute ONE kernel instead of a sweep: "
                             "treat the positional as a kernel name and "
                             "row-block its iteration space into P "
                             "independent sub-kernels")
    p_disp.add_argument("--dataset", default="bcsstk30",
                        help="matrix dataset for --partition "
                             "(default bcsstk30)")
    p_disp.add_argument("--mode", choices=["row", "sum"], default="row",
                        help="--partition split: output rows "
                             "(byte-identical merge, default) or the "
                             "contraction dimension (summed partials, "
                             "oracle-validated)")
    p_disp.add_argument("--workers", default="local:2", metavar="SPEC",
                        help="transport spec: local:N subprocesses "
                             "(default local:2), ssh:host1,host2, "
                             "inline:N in-process threads, or queue:DIR "
                             "(elastic pool; attach `repro worker DIR` "
                             "processes at any time)")
    p_disp.add_argument("--scale", type=float, default=0.25)
    p_disp.add_argument("--steal", action="store_true",
                        help="cut cost-balanced chunks from the recorded "
                             "per-job cost table (uniform fallback on the "
                             "first sweep, which records the costs)")
    p_disp.add_argument("--min-chunk", type=int, default=1, metavar="N",
                        help="smallest planned chunk, in jobs (the "
                             "steal-tail granularity; default 1)")
    p_disp.add_argument("--chunks-per-worker", type=int, default=4,
                        help="lease granularity: chunks cut per worker "
                             "slot (default 4)")
    p_disp.add_argument("--lease-timeout", type=float, default=900.0,
                        help="seconds before a silent worker is presumed "
                             "hung and its chunk reassigned (default 900)")
    p_disp.add_argument("--retries", type=int, default=2,
                        help="re-dispatches per chunk after worker death "
                             "or job failure before quarantine (default 2)")
    p_disp.add_argument("--jobs", type=int, default=None,
                        help="worker-internal thread count (default: "
                             "REPRO_JOBS or 1)")
    p_disp.add_argument("--resume", metavar="DIR", default=None,
                        help="persist per-chunk manifests under DIR and "
                             "skip chunks a previous dispatch completed")
    p_disp.add_argument("--out", default=None,
                        help="also write the merged artefact text here")
    p_disp.add_argument("--no-cache", action="store_true",
                        help="workers bypass the compilation/result cache")
    p_disp.add_argument("--quiet", action="store_true",
                        help="suppress per-lease progress on stderr")
    p_disp.add_argument("--engine", choices=["interp", "cpu", "numpy"],
                        default=None,
                        help="workers functionally execute each "
                             "table6/format_sweep cell with this engine and "
                             "validate it against the interpreter oracle")

    p_dist = sub.add_parser(
        "spmm-dist",
        help="distribute ONE kernel's iteration space over the worker "
             "transports (SpDISTAL-style row blocks): slice per-block "
             "operands, compute partials, reduce; row mode is "
             "byte-identical to --serial")
    p_dist.add_argument("kernel",
                        help="partitionable kernel: SpMV or DCSR-SpMM")
    p_dist.add_argument("--dataset", default="bcsstk30",
                        help="matrix dataset (default bcsstk30)")
    p_dist.add_argument("--partition", type=int, default=2, metavar="P",
                        help="number of independent blocks (default 2)")
    p_dist.add_argument("--mode", choices=["row", "sum"], default="row",
                        help="split the output rows (byte-identical "
                             "merge, default) or the contraction "
                             "dimension (summed partials, "
                             "oracle-validated)")
    p_dist.add_argument("--workers", default="inline:2", metavar="SPEC",
                        help="transport spec: inline:N in-process threads "
                             "(default inline:2), local:N subprocesses, "
                             "ssh:host1,host2, or queue:DIR (elastic "
                             "pool; attach `repro worker DIR` processes "
                             "at any time)")
    p_dist.add_argument("--scale", type=float, default=0.25)
    p_dist.add_argument("--serial", action="store_true",
                        help="compute unpartitioned in-process and print "
                             "the reference report (the byte-diff "
                             "baseline for row mode)")
    p_dist.add_argument("--steal", action="store_true",
                        help="cut cost-balanced block chunks from the "
                             "recorded per-block cost table")
    p_dist.add_argument("--min-chunk", type=int, default=1, metavar="N",
                        help="smallest planned chunk, in blocks "
                             "(default 1)")
    p_dist.add_argument("--chunks-per-worker", type=int, default=4,
                        help="lease granularity: chunks cut per worker "
                             "slot (default 4)")
    p_dist.add_argument("--lease-timeout", type=float, default=900.0,
                        help="seconds before a silent worker is presumed "
                             "hung and its blocks reassigned "
                             "(default 900)")
    p_dist.add_argument("--retries", type=int, default=2,
                        help="re-dispatches per chunk after worker death "
                             "or block failure before quarantine "
                             "(default 2)")
    p_dist.add_argument("--jobs", type=int, default=None,
                        help="worker-internal thread count (default: "
                             "REPRO_JOBS or 1)")
    p_dist.add_argument("--resume", metavar="DIR", default=None,
                        help="persist per-chunk manifests under DIR and "
                             "skip blocks a previous run completed")
    p_dist.add_argument("--out", default=None,
                        help="also write the report text here")
    p_dist.add_argument("--no-cache", action="store_true",
                        help="bypass the slice/cell partition cache")
    p_dist.add_argument("--quiet", action="store_true",
                        help="suppress per-lease progress on stderr")

    p_merge = sub.add_parser(
        "merge", help="merge shard manifests into the full artefact")
    p_merge.add_argument("manifests", nargs="*",
                         help="shard manifest files (or quoted glob "
                              "patterns) written by "
                              "`batch --shard I/N --out ...`")
    p_merge.add_argument("--out", default=None,
                         help="also write the merged artefact text here")
    p_merge.add_argument("--allow-stale-compiler", action="store_true",
                         help="merge manifests produced by a different "
                              "compiler version (hashes must still agree "
                              "between shards)")

    p_work = sub.add_parser(
        "worker",
        help="attach an elastic worker to a queue:DIR pool (claims "
             "dispatch chunks and serve compile-requests until the "
             "queue is stopped)")
    p_work.add_argument("dir", help="the queue directory given to "
                                    "`dispatch --workers queue:DIR` or "
                                    "`serve --pool queue:DIR`")
    p_work.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="seconds between empty-queue scans "
                             "(default 0.5)")
    p_work.add_argument("--max-chunks", type=int, default=None, metavar="N",
                        help="detach after completing N chunks")
    p_work.add_argument("--jobs", type=int, default=None,
                        help="thread count per chunk (default: the task's "
                             "own setting, else REPRO_JOBS or 1)")
    p_work.add_argument("--quiet", action="store_true",
                        help="suppress per-chunk progress on stderr")

    p_formats = sub.add_parser(
        "formats", help="list registered whole-tensor formats")
    p_formats.add_argument("--json", action="store_true",
                           help="machine-readable JSON output")

    p_conv = sub.add_parser(
        "convert", help="convert a matrix dataset between formats")
    p_conv.add_argument("source", help="source format name (see `formats`)")
    p_conv.add_argument("target", help="target format name (see `formats`)")
    p_conv.add_argument("--dataset", default="Trefethen_20000",
                        help="matrix dataset name (default: Trefethen_20000)")
    p_conv.add_argument("--scale", type=float, default=0.05)
    p_conv.add_argument("--seed", type=int, default=7)
    p_conv.add_argument("--plan", action="store_true",
                        help="print the synthesized plan without running it")
    p_conv.add_argument("--verify", action="store_true",
                        help="round-trip back to the source format and "
                             "check dense equality")
    p_conv.add_argument("--no-cache", action="store_true",
                        help="bypass the dataset/conversion cache")

    p_pipe = sub.add_parser(
        "pipeline",
        help="plan and run a fused expression pipeline (FuseFlow): "
             "producer levels stream into consumer co-iterators with "
             "automatic materializing cuts; prints the cut report and "
             "modeled traffic")
    p_pipe.add_argument("name", nargs="?", default=None,
                        help="pipeline name (see --all for the registry)")
    p_pipe.add_argument("--all", action="store_true",
                        help="run every registered pipeline")
    p_pipe.add_argument("--dataset", default=None,
                        help="matrix dataset (default: each pipeline's "
                             "full dataset list)")
    p_pipe.add_argument("--scale", type=float, default=0.25)
    p_pipe.add_argument("--seed", type=int, default=7)
    p_pipe.add_argument("--engine", choices=["interp", "cpu", "numpy"],
                        default=None,
                        help="execution engine for every stage (default: "
                             "REPRO_ENGINE or numpy); each stage is "
                             "validated against the interpreter oracle")
    p_pipe.add_argument("--no-fuse", action="store_true",
                        help="force a materializing cut at every "
                             "connection (the equivalence baseline)")
    p_pipe.add_argument("--out", default=None, metavar="FILE",
                        help="write the numeric outputs (shapes + "
                             "checksums) as JSON; fused and --no-fuse "
                             "runs must byte-match")
    p_pipe.add_argument("--no-cache", action="store_true",
                        help="bypass the compilation/result cache")

    p_serve = sub.add_parser(
        "serve",
        help="run the compile-as-a-service daemon: HTTP/JSON requests "
             "answered from the staged cache, coalesced, and fed to a "
             "worker pool on miss")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8757,
                         help="listen port (0 picks an ephemeral port; the "
                              "banner reports it)")
    p_serve.add_argument("--pool", default="inline:2", metavar="SPEC",
                         help="miss backend: inline:N in-process threads "
                              "(default inline:2) or queue:DIR (elastic "
                              "pool; attach `repro worker DIR` processes "
                              "at any time)")
    p_serve.add_argument("--max-inflight", type=int, default=32, metavar="N",
                         help="bound on concurrently running jobs; beyond "
                              "it new work is rejected with 429 "
                              "(default 32)")
    p_serve.add_argument("--timeout", type=float, default=120.0, metavar="S",
                         help="per-request wall-clock bound; 504 on expiry "
                              "(default 120)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         metavar="S",
                         help="hard deadline for the SIGTERM graceful "
                              "drain (default 30)")
    p_serve.add_argument("--lease-timeout", type=float, default=60.0,
                         metavar="S",
                         help="queue:DIR pool: seconds before a silent "
                              "worker's request is re-enqueued (default 60)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="workers bypass the compilation/result cache "
                              "(the daemon's hot path still serves "
                              "pre-existing entries)")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress pool events on stderr")

    p_cache = sub.add_parser("cache", help="inspect or clear the cache")
    p_cache.add_argument("action", nargs="?", choices=["info", "clear"],
                         default="info")
    p_cache.add_argument("--json", action="store_true",
                         help="print cache stats as JSON — the same "
                              "payload as the serve daemon's /stats "
                              "cache section")

    p_trace = sub.add_parser(
        "trace",
        help="inspect structured span traces written under "
             "REPRO_TRACE_DIR (or --trace DIR on the producing command)")
    p_trace.add_argument("action", choices=["summary", "export"],
                         help="summary: per-stage totals, cache hit "
                              "ratios, worker utilization, critical path; "
                              "export: Chrome trace-viewer JSON")
    p_trace.add_argument("dir", nargs="?", default=None,
                         help="trace directory (default: $REPRO_TRACE_DIR)")
    p_trace.add_argument("--chrome", metavar="OUT.json", default=None,
                         help="export target (open in chrome://tracing or "
                              "https://ui.perfetto.dev)")
    p_trace.add_argument("--strict", action="store_true",
                         help="exit 1 on malformed lines or orphaned "
                              "spans (expected only after worker kills)")

    for p in (p_tab, p_batch, p_disp, p_dist, p_work, p_serve, p_pipe):
        _add_trace_flag(p)

    args = parser.parse_args(argv)
    _apply_trace(args)

    if getattr(args, "dataset", "unset") is None and hasattr(args, "kernel"):
        from repro.data import datasets_for

        args.dataset = datasets_for(args.kernel)[0].name

    handlers = {
        "kernels": _cmd_kernels,
        "compile": _cmd_compile,
        "simulate": _cmd_simulate,
        "tables": _cmd_tables,
        "batch": _cmd_batch,
        "dispatch": _cmd_dispatch,
        "spmm-dist": _cmd_spmm_dist,
        "worker": _cmd_worker,
        "merge": _cmd_merge,
        "formats": _cmd_formats,
        "convert": _cmd_convert,
        "pipeline": _cmd_pipeline,
        "serve": _cmd_serve,
        "cache": _cmd_cache,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piping into `head` etc. is fine
        sys.exit(0)
