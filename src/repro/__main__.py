"""Command-line interface: ``python -m repro``.

Subcommands:

* ``compile``  — compile an evaluation kernel on a dataset; print the
  generated Spatial, the memory analysis, and (optionally) CPU C code.
* ``simulate`` — predict runtime across platforms for a kernel+dataset.
* ``kernels``  — list the evaluation kernels and their datasets.
* ``tables``   — regenerate a table or figure of the paper.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_kernels(_args) -> int:
    from repro.data import datasets_for
    from repro.kernels import KERNEL_ORDER, KERNELS

    print(f"{'kernel':14s}{'expression':50s}datasets")
    for name in KERNEL_ORDER:
        spec = KERNELS[name]
        ds = ", ".join(d.name for d in datasets_for(name))
        print(f"{name:14s}{spec.expression:50s}{ds}")
    return 0


def _cmd_compile(args) -> int:
    from repro.backends import lower_cpu
    from repro.eval.harness import build_kernel

    kernel = build_kernel(args.kernel, args.dataset, args.scale)
    if args.memory_report:
        print(kernel.memory_report())
        print()
    print(kernel.source)
    print(f"// generated Spatial LoC: {kernel.spatial_loc}",
          file=sys.stderr)
    if args.cpu:
        print()
        print(lower_cpu(kernel.stmt, args.kernel.lower()))
    return 0


def _cmd_simulate(args) -> int:
    from repro.eval.harness import evaluate

    times = evaluate(args.kernel, args.dataset, args.scale)
    base = times.seconds["Capstan (HBM2E)"]
    print(f"{args.kernel} on {args.dataset} (scale {args.scale}):")
    for platform, seconds in times.seconds.items():
        print(f"  {platform:34s}{seconds * 1e6:14.2f} us"
              f"{seconds / base:10.2f}x")
    return 0


def _cmd_tables(args) -> int:
    from repro.eval import harness

    artefact = args.artifact
    if artefact == "table3":
        print(harness.format_table3(harness.table3()))
    elif artefact == "table5":
        print(harness.format_table5(harness.table5()))
    elif artefact == "table6":
        print(harness.format_table6(harness.table6(args.scale)))
    elif artefact == "figure12":
        print(harness.format_figure12(harness.figure12(args.scale)))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Stardust reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list evaluation kernels")

    p_compile = sub.add_parser("compile", help="compile a kernel")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--dataset", default=None)
    p_compile.add_argument("--scale", type=float, default=0.05)
    p_compile.add_argument("--cpu", action="store_true",
                           help="also print TACO-style CPU C code")
    p_compile.add_argument("--memory-report", action="store_true",
                           help="print the Section 6 memory analysis")

    p_sim = sub.add_parser("simulate", help="predict cross-platform runtime")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--dataset", default=None)
    p_sim.add_argument("--scale", type=float, default=0.25)

    p_tab = sub.add_parser("tables", help="regenerate a table/figure")
    p_tab.add_argument("artifact",
                       choices=["table3", "table5", "table6", "figure12"])
    p_tab.add_argument("--scale", type=float, default=0.25)

    args = parser.parse_args(argv)

    if getattr(args, "dataset", "unset") is None:
        from repro.data import datasets_for

        args.dataset = datasets_for(args.kernel)[0].name

    handlers = {
        "kernels": _cmd_kernels,
        "compile": _cmd_compile,
        "simulate": _cmd_simulate,
        "tables": _cmd_tables,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piping into `head` etc. is fine
        sys.exit(0)
