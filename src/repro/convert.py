"""The format-conversion compiler (``repro convert``).

TACO-style compilers derive conversion routines between tensor formats
from the same level abstraction that drives kernel compilation (Chou et
al., "Format Abstraction for Sparse Tensor Algebra Compilers"). This
module reproduces that facility for the registered whole-tensor formats:
:func:`plan_conversion` synthesizes a :class:`ConversionPlan` — an
ordered list of primitive coordinate-space transformations — between any
two registered formats, and :func:`convert` executes the plan on packed
:class:`~repro.tensor.storage.TensorStorage`.

The primitive vocabulary:

* ``unpack``   — expand level storage to sorted COO entries;
* ``sparsify`` — drop explicit zeros materialised by trailing dense or
  block levels (so blocked→compressed round trips are lossless);
* ``block``    — split each mode ``c`` into ``(c // b, c % b)`` tile
  coordinates (matrix → BCSR's blocked 4-D space, padding dimensions up
  to tile multiples);
* ``unblock``  — the inverse merge of tile coordinates;
* ``pack``     — rank coordinates into the target's level structure (the
  target's mode ordering re-sorts entries as part of packing).

Conversions compose: CSR↔COO↔DCSR are direct re-rankings of the same
coordinate space, while CSR↔BCSR route through the block/unblock steps.
The evaluation harness stages converted datasets once per (dataset,
format) through the pipeline's staged cache, so a format sweep converts
each matrix at most once per format.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable

import numpy as np

from repro.formats.format import Format
from repro.formats.memory import MemoryRegion
from repro.tensor.storage import TensorStorage, pack, unpack
from repro.tensor.tensor import Tensor


class ConversionError(ValueError):
    """The requested conversion cannot be synthesized."""


# ---------------------------------------------------------------------------
# Coordinate-space primitives
# ---------------------------------------------------------------------------


def blocked_dims(dims: tuple[int, ...], sizes: tuple[int, ...]) -> tuple[int, ...]:
    """The blocked dimensions ``(d0/b0, ..., b0, ...)`` of a dense space.

    Each mode is padded up to the next multiple of its tile size; the
    result lists all block-index extents first, then the tile extents —
    matching BCSR's (I/b, J/b, b, b) level order.
    """
    if len(sizes) != len(dims):
        raise ConversionError(
            f"blocking needs one tile size per mode: {len(dims)} mode(s), "
            f"{len(sizes)} size(s)"
        )
    outer = tuple(math.ceil(d / b) for d, b in zip(dims, sizes))
    return outer + tuple(sizes)


def block_coords(coords: np.ndarray, sizes: tuple[int, ...]) -> np.ndarray:
    """Split each coordinate column into (block index, intra-tile offset)."""
    order = coords.shape[1] if coords.size else len(sizes)
    cols = [coords[:, m] // sizes[m] for m in range(order)]
    cols += [coords[:, m] % sizes[m] for m in range(order)]
    return np.stack(cols, axis=1) if cols else coords


def unblock_coords(coords: np.ndarray, sizes: tuple[int, ...]) -> np.ndarray:
    """Merge (block index, intra-tile offset) columns back into coordinates."""
    order = len(sizes)
    cols = [coords[:, m] * sizes[m] + coords[:, order + m] for m in range(order)]
    return np.stack(cols, axis=1)


def _block_sizes(fmt: Format) -> tuple[int, ...]:
    return tuple(
        mf.size for mf in fmt.mode_formats if mf.is_block
    )


def _stores_explicit_zeros(fmt: Format) -> bool:
    """Trailing dense/block levels materialise zeros inside each segment."""
    return bool(fmt.mode_formats) and fmt.mode_formats[-1].is_dense


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ConversionStep:
    """One primitive of a synthesized conversion routine."""

    op: str  # unpack | sparsify | block | unblock | pack
    detail: str
    apply: Callable[[dict], dict] = dataclasses.field(compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.op}: {self.detail}"


@dataclasses.dataclass
class ConversionPlan:
    """A synthesized source→target conversion routine.

    The plan is a pipeline of :class:`ConversionStep` functions over a
    state dict ``{coords, vals, dims}``; :meth:`run` executes it and packs
    the result into the target format's level structure.
    """

    source: Format
    target: Format
    steps: tuple[ConversionStep, ...]

    def describe(self) -> str:
        lines = [f"convert {self.source} -> {self.target}"]
        lines.extend(f"  {k + 1}. {step}" for k, step in enumerate(self.steps))
        return "\n".join(lines)

    def run(self, storage: TensorStorage) -> TensorStorage:
        state = {"storage": storage, "coords": None, "vals": None,
                 "dims": tuple(storage.dims)}
        for step in self.steps:
            state = step.apply(state)
        result = state.get("result")
        if result is None:  # pragma: no cover - plans always end in pack
            raise ConversionError("plan did not produce a packed result")
        return result


def _step_unpack() -> ConversionStep:
    def apply(state: dict) -> dict:
        coords, vals = unpack(state["storage"])
        state.update(coords=coords, vals=vals)
        return state

    return ConversionStep("unpack", "expand level storage to COO entries",
                          apply)


def _step_sparsify() -> ConversionStep:
    def apply(state: dict) -> dict:
        keep = state["vals"] != 0.0
        state.update(coords=state["coords"][keep], vals=state["vals"][keep])
        return state

    return ConversionStep(
        "sparsify", "drop explicit zeros from dense/block segments", apply
    )


def _step_block(sizes: tuple[int, ...]) -> ConversionStep:
    def apply(state: dict) -> dict:
        state["coords"] = block_coords(state["coords"], sizes)
        state["dims"] = blocked_dims(state["dims"], sizes)
        return state

    tiles = "x".join(map(str, sizes))
    return ConversionStep(
        "block", f"split modes into {tiles} tile coordinates (pad to "
        f"tile multiples)", apply
    )


def _step_unblock(sizes: tuple[int, ...], dims: tuple[int, ...] | None
                  ) -> ConversionStep:
    def apply(state: dict) -> dict:
        order = len(sizes)
        state["coords"] = unblock_coords(state["coords"], sizes)
        if dims is not None:
            merged = dims
        else:
            merged = tuple(
                state["dims"][m] * sizes[m] for m in range(order)
            )
        state["dims"] = merged
        return state

    return ConversionStep("unblock", "merge tile coordinates back into "
                          "flat modes", apply)


def _step_pack(target: Format) -> ConversionStep:
    def apply(state: dict) -> dict:
        state["result"] = pack(state["coords"], state["vals"], state["dims"],
                               target)
        return state

    ordering = ""
    if target.mode_ordering != tuple(range(target.order)):
        ordering = f" (mode ordering {list(target.mode_ordering)})"
    return ConversionStep(
        "pack", f"rank coordinates into {{{', '.join(str(m) for m in target.mode_formats)}}}{ordering}",
        apply,
    )


def plan_conversion(
    source: Format,
    target: Format,
    dims: tuple[int, ...] | None = None,
) -> ConversionPlan:
    """Synthesize the conversion routine from ``source`` to ``target``.

    ``dims`` optionally pins the target's tensor dimensions for
    blocked→flat conversions (otherwise tile multiples are kept).
    """
    src_blocks = _block_sizes(source)
    dst_blocks = _block_sizes(target)
    steps: list[ConversionStep] = [_step_unpack()]
    if _stores_explicit_zeros(source) and not target.is_all_dense:
        steps.append(_step_sparsify())
    if src_blocks and not dst_blocks:
        if source.order != 2 * len(src_blocks):
            raise ConversionError(
                f"unblocking expects one tile level per flat mode; format "
                f"{source} has order {source.order} with "
                f"{len(src_blocks)} block level(s)"
            )
        steps.append(_step_unblock(src_blocks, dims))
    elif dst_blocks and not src_blocks:
        if target.order != source.order + len(dst_blocks) or (
            len(dst_blocks) != source.order
        ):
            raise ConversionError(
                f"blocking splits every source mode once: source order "
                f"{source.order} cannot block into {target}"
            )
        steps.append(_step_block(dst_blocks))
    elif src_blocks and dst_blocks and src_blocks != dst_blocks:
        # Re-tile through the flat coordinate space.
        steps.append(_step_unblock(src_blocks, None))
        steps.append(_step_block(dst_blocks))
    elif source.order != target.order:
        raise ConversionError(
            f"cannot convert order-{source.order} format {source} to "
            f"order-{target.order} format {target} without block levels"
        )
    steps.append(_step_pack(target))
    return ConversionPlan(source, target, tuple(steps))


def convert(
    storage: TensorStorage,
    target: Format,
    dims: tuple[int, ...] | None = None,
) -> TensorStorage:
    """Convert packed storage to ``target`` via a synthesized plan."""
    return plan_conversion(storage.fmt, target, dims).run(storage)


def convert_tensor(
    tensor: Tensor,
    target: Format,
    name: str | None = None,
    dims: tuple[int, ...] | None = None,
) -> Tensor:
    """A new tensor holding ``tensor``'s data in ``target`` format."""
    storage = convert(tensor.storage, target, dims)
    out = Tensor(name or tensor.name, storage.dims, target)
    out._storage = storage
    return out


# ---------------------------------------------------------------------------
# Coordinate-range slicing (single-kernel partitioning)
# ---------------------------------------------------------------------------


def slice_rows(
    storage: TensorStorage,
    lo: int,
    hi: int,
    axis: int = 0,
) -> TensorStorage:
    """The sub-tensor with mode-``axis`` coordinates in ``[lo, hi)``.

    Routes through the same coordinate space as the conversion
    primitives: unpack to sorted COO, keep entries whose ``axis``
    coordinate falls in the half-open range, rebase them to zero, and
    re-pack into the *same* format with the sliced dimension shrunk to
    ``hi - lo``. The row-block partitioner cuts per-worker operand
    slices this way (CSR/DCSR row ranges for ``axis=0``, contraction
    ranges for ``axis=1``); concatenating consecutive slices is lossless
    because packing preserves the row-major entry order, including
    through empty blocks and blocks ending on empty rows.
    """
    if not 0 <= axis < storage.order:
        raise ConversionError(
            f"slice axis {axis} out of range for order-{storage.order} "
            f"storage"
        )
    if not 0 <= lo <= hi <= storage.dims[axis]:
        raise ConversionError(
            f"slice [{lo}, {hi}) out of bounds for dimension "
            f"{storage.dims[axis]} of mode {axis}"
        )
    if _block_sizes(storage.fmt):
        raise ConversionError(
            "cannot range-slice a blocked format; convert to a flat "
            "format first"
        )
    coords, vals = unpack(storage)
    if _stores_explicit_zeros(storage.fmt):
        keep_nz = vals != 0.0
        coords, vals = coords[keep_nz], vals[keep_nz]
    keep = (coords[:, axis] >= lo) & (coords[:, axis] < hi)
    coords = coords[keep].copy()
    vals = vals[keep]
    if len(coords):
        coords[:, axis] -= lo
    dims = list(storage.dims)
    dims[axis] = hi - lo
    return pack(coords, vals, tuple(dims), storage.fmt)


# ---------------------------------------------------------------------------
# Staged dataset conversion (harness integration)
# ---------------------------------------------------------------------------


def staged_matrix_storage(
    dataset_name: str,
    scale: float,
    seed: int,
    format_name: str,
    use_cache: bool | None = None,
) -> TensorStorage:
    """One matrix dataset converted to a registered format, staged once.

    The raw (dims, coords, vals) triple comes from the ``dataset`` cache
    stage (shared with every kernel using the dataset); the converted
    storage memoizes under the ``convert`` stage keyed by (dataset, scale,
    seed, format), so a sweep over many kernels converts each matrix at
    most once per format — cold conversions happen on the first worker to
    ask.
    """
    from repro.data.datasets import load_matrix_coo
    from repro.formats.format import CSR, format_of
    from repro.pipeline.cache import memoize_stage

    def compute() -> TensorStorage:
        dims, coords, vals = load_matrix_coo(dataset_name, scale, seed,
                                             use_cache=use_cache)
        base = pack(coords, vals, dims, CSR(MemoryRegion.OFF_CHIP))
        return convert(base, format_of(format_name))

    return memoize_stage(
        "convert", (dataset_name, scale, seed, format_name), compute,
        use_cache,
    )
