"""The Spatial parallel-pattern IR targeted by Stardust.

Spatial (Koeplinger et al. 2018) is a hardware DSL with a map-reduce
abstraction, counter-indexed ``Foreach``/``Reduce`` patterns with explicit
parallelization factors, and a programmer-managed memory hierarchy (DRAM,
SRAM, FIFOs, registers). Capstan extends it with sparse iterator patterns —
bit-vector ``Scan`` counters for compressed and co-iterated levels
(Figure 9 of the paper).

This module defines the IR as plain dataclasses. Three consumers walk it:

* :mod:`repro.spatial.codegen` renders Figure-11-style Spatial source text,
* :mod:`repro.spatial.interp` executes it functionally, and
* :mod:`repro.capstan.simulator` evaluates its cost on the Capstan model.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class SExpr:
    """Base class of scalar Spatial expressions."""

    def walk(self) -> Iterator["SExpr"]:
        yield self
        for c in self.children():
            yield from c.walk()

    def children(self) -> tuple["SExpr", ...]:
        return ()


@dataclasses.dataclass(frozen=True)
class SLit(SExpr):
    """A numeric literal."""

    value: float | int


@dataclasses.dataclass(frozen=True)
class SVar(SExpr):
    """A named value: loop index, pattern index, symbol, or local `val`."""

    name: str


@dataclasses.dataclass(frozen=True)
class SBin(SExpr):
    """Binary arithmetic (`+ - * / min max`)."""

    op: str
    a: SExpr
    b: SExpr

    def children(self) -> tuple[SExpr, ...]:
        return (self.a, self.b)


@dataclasses.dataclass(frozen=True)
class SSelect(SExpr):
    """``mux(cond, a, b)`` — used for union co-iteration operand gating."""

    cond: SExpr
    a: SExpr
    b: SExpr

    def children(self) -> tuple[SExpr, ...]:
        return (self.cond, self.a, self.b)


@dataclasses.dataclass(frozen=True)
class SValid(SExpr):
    """Whether a scan pattern index is valid (operand present)."""

    var: SVar

    def children(self) -> tuple[SExpr, ...]:
        return (self.var,)


@dataclasses.dataclass(frozen=True)
class SRead(SExpr):
    """Random-access read ``mem(addr)`` from SRAM or sparse DRAM."""

    mem: str
    addr: SExpr

    def children(self) -> tuple[SExpr, ...]:
        return (self.addr,)


@dataclasses.dataclass(frozen=True)
class SDeq(SExpr):
    """FIFO dequeue ``fifo.deq`` (strictly in-order, use-once)."""

    fifo: str


@dataclasses.dataclass(frozen=True)
class SRegRead(SExpr):
    """Register read ``reg.value``."""

    reg: str


def _lit(e: SExpr) -> Optional[float]:
    return e.value if isinstance(e, SLit) else None


def sadd(a: SExpr, b: SExpr) -> SExpr:
    """Build ``a + b`` with constant folding (keeps generated code tidy)."""
    la, lb = _lit(a), _lit(b)
    if la is not None and lb is not None:
        return SLit(la + lb)
    if la == 0:
        return b
    if lb == 0:
        return a
    return SBin("+", a, b)


def smul(a: SExpr, b: SExpr) -> SExpr:
    """Build ``a * b`` with constant folding."""
    la, lb = _lit(a), _lit(b)
    if la is not None and lb is not None:
        return SLit(la * lb)
    if la == 0 or lb == 0:
        return SLit(0)
    if la == 1:
        return b
    if lb == 1:
        return a
    return SBin("*", a, b)


def ssub(a: SExpr, b: SExpr) -> SExpr:
    """Build ``a - b`` with constant folding."""
    la, lb = _lit(a), _lit(b)
    if la is not None and lb is not None:
        return SLit(la - lb)
    if lb == 0:
        return a
    return SBin("-", a, b)


# ---------------------------------------------------------------------------
# Counters (iteration domains of patterns)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DenseCounter:
    """``len by step par p``: an uncompressed (dense) counter."""

    length: SExpr
    step: int = 1
    base: Optional[SExpr] = None  # offset added to the index when binding


@dataclasses.dataclass(frozen=True)
class ScanCounter:
    """``Scan(par=p, len=l, bv_a[, bv_b])``: sparse bit-vector scanner.

    Yields pattern indices per set bit of the (combined) bit vector: one or
    two operand positions, the output position, and the dense coordinate
    (Figure 7). ``op`` is ``and`` (intersection) or ``or`` (union); unused
    for single-vector scans.
    """

    bv_a: str
    bv_b: Optional[str] = None
    op: str = "and"
    length: Optional[SExpr] = None  # dense extent of the scanned space


@dataclasses.dataclass(frozen=True)
class SingletonCounter:
    """``Singleton(crd(parent))``: the singleton-level iterator.

    Yields exactly one iteration per launch, binding the level's single
    coordinate ``crd_mem[pos]`` (one stored coordinate per parent
    position — the COO column/tail levels of Chou et al.). The pattern
    index *is* the coordinate; the position is the parent's position.
    """

    crd_mem: str
    pos: SExpr


Counter = Union[DenseCounter, ScanCounter, SingletonCounter]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class SStmt:
    """Base class of Spatial statements."""

    def body_blocks(self) -> tuple[tuple["SStmt", ...], ...]:
        return ()

    def walk(self) -> Iterator["SStmt"]:
        yield self
        for block in self.body_blocks():
            for s in block:
                yield from s.walk()


@dataclasses.dataclass(frozen=True)
class Comment(SStmt):
    text: str


@dataclasses.dataclass(frozen=True)
class DramDecl(SStmt):
    """Host-visible DRAM array: ``val X_dram = DRAM[T](size)``.

    ``role`` tags what the array stores (``pos``/``crd``/``vals``/``bv``)
    and ``tensor`` which tensor it belongs to — the interpreter and the
    simulator use these to bind actual data and to attribute traffic.
    """

    name: str
    size: SExpr
    tensor: str = ""
    role: str = "vals"
    sparse: bool = False  # SparseDRAM: random single-element access


@dataclasses.dataclass(frozen=True)
class SramDecl(SStmt):
    """On-chip scratchpad: ``val X = SRAM[T](size)``."""

    name: str
    size: SExpr
    sparse: bool = False  # sparse SRAM: random access + atomics


@dataclasses.dataclass(frozen=True)
class FifoDecl(SStmt):
    """Streaming buffer: ``val X = FIFO[T](depth)``."""

    name: str
    depth: int = 16


@dataclasses.dataclass(frozen=True)
class RegDecl(SStmt):
    """On-chip scalar: ``val X = Reg[T](init)``."""

    name: str
    init: float = 0.0


@dataclasses.dataclass(frozen=True)
class BitVectorDecl(SStmt):
    """A packed bit-vector stream over a dense space of ``length`` slots."""

    name: str
    length: SExpr


@dataclasses.dataclass(frozen=True)
class GenBitVector(SStmt):
    """``bv = genBitvector(crd segment)`` — Capstan's Gen BV block.

    Packs the coordinates in ``crd_mem[start:end)`` (an SRAM/FIFO holding a
    coordinate segment) into the declared bit vector.
    """

    dst: str
    crd_mem: str
    count: SExpr  # number of coordinates in the segment


@dataclasses.dataclass(frozen=True)
class BitVectorOp(SStmt):
    """``dst = a AND/OR b``: combine two bit vectors into a third.

    Used when a workspace's sparse structure is materialised on chip (the
    producer side of a ``where``): the combined vector is kept for the
    consumer's scan instead of being re-generated.
    """

    dst: str
    a: str
    b: str
    op: str  # "and" | "or"


@dataclasses.dataclass(frozen=True)
class LoadBulk(SStmt):
    """Bulk DRAM→on-chip transfer: ``dst load src(start::end par p)``."""

    dst: str
    src: str
    start: SExpr
    end: SExpr
    par: int = 1


@dataclasses.dataclass(frozen=True)
class StoreBulk(SStmt):
    """Bulk on-chip→DRAM transfer: ``dst(start::end par p) store src``."""

    dst: str
    src: str
    start: SExpr
    end: SExpr
    par: int = 1


@dataclasses.dataclass(frozen=True)
class StreamStore(SStmt):
    """``dram stream_store_vec(offset, fifo, len)`` (Figure 11, line 42)."""

    dram: str
    fifo: str
    offset: SExpr
    length: SExpr


@dataclasses.dataclass(frozen=True)
class Assign(SStmt):
    """Local immutable binding: ``val name = expr``."""

    name: str
    expr: SExpr


@dataclasses.dataclass(frozen=True)
class Enq(SStmt):
    """FIFO enqueue: ``fifo.enq(expr)``."""

    fifo: str
    expr: SExpr


@dataclasses.dataclass(frozen=True)
class RegWrite(SStmt):
    """Register update; ``accumulate`` adds instead of overwriting."""

    reg: str
    expr: SExpr
    accumulate: bool = False


@dataclasses.dataclass(frozen=True)
class SramWrite(SStmt):
    """SRAM store; ``atomic`` marks read-modify-write accumulation."""

    mem: str
    addr: SExpr
    expr: SExpr
    accumulate: bool = False
    atomic: bool = False


@dataclasses.dataclass(frozen=True)
class DramWrite(SStmt):
    """Single-element (sparse) DRAM store."""

    dram: str
    addr: SExpr
    expr: SExpr


@dataclasses.dataclass(frozen=True)
class Foreach(SStmt):
    """``Foreach(counter par p) { ivars => body }``.

    For a :class:`DenseCounter`, ``ivars`` is the single loop index.
    For a :class:`ScanCounter`, ``ivars`` binds the pattern indices
    ``(pos_a [, pos_b], pos_out, i_dense)`` in that order (Figure 9).
    """

    counter: Counter
    ivars: tuple[str, ...]
    body: tuple[SStmt, ...]
    par: int = 1

    def body_blocks(self) -> tuple[tuple[SStmt, ...], ...]:
        return (self.body,)


@dataclasses.dataclass(frozen=True)
class ReducePat(SStmt):
    """``Reduce(reg)(counter par p) { ivars => body; value } { _ + _ }``.

    The body statements compute auxiliary values; ``value`` is the lane
    contribution combined by ``combine`` into ``reg`` through Capstan's
    intra-PCU reduction tree.
    """

    reg: str
    counter: Counter
    ivars: tuple[str, ...]
    body: tuple[SStmt, ...]
    value: SExpr
    combine: str = "+"
    par: int = 1

    def body_blocks(self) -> tuple[tuple[SStmt, ...], ...]:
        return (self.body,)


@dataclasses.dataclass(frozen=True)
class MemReduce(SStmt):
    """``MemReduce(mem par mp)(counter par p)``: reduction into an SRAM
    buffer (used for blocked dense accumulations)."""

    mem: str
    counter: Counter
    ivars: tuple[str, ...]
    body: tuple[SStmt, ...]
    value_mem: str
    combine: str = "+"
    par: int = 1
    mem_par: int = 1

    def body_blocks(self) -> tuple[tuple[SStmt, ...], ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TensorLayout:
    """How one tensor maps onto DRAM arrays of the program.

    ``arrays`` maps a role key — ``pos{L}``/``crd{L}`` for storage level L,
    or ``vals`` — to the DRAM array name.
    """

    tensor: str
    order: int
    arrays: dict[str, str]
    is_output: bool = False


@dataclasses.dataclass
class SpatialProgram:
    """A complete generated Spatial kernel.

    Attributes:
        name: kernel name.
        env: environment variables emitted at global scope (Table 2).
        symbols: symbolic dimension names the host binds before running
            (e.g. ``B1_dim``, ``nnz_B``); values come from the workload.
        dram: host DRAM array declarations.
        accel: statements inside the ``Accel { ... }`` block.
        layouts: tensor → DRAM array mapping for data binding.
        notes: free-form lowering notes (memory analysis report).
        streams: tensors whose DRAM buffers a fused pipeline elides —
            producer output levels stream straight into the consumer's
            co-iterators over on-fabric FIFOs.
    """

    name: str
    env: dict[str, int]
    symbols: tuple[str, ...]
    dram: tuple[DramDecl, ...]
    accel: tuple[SStmt, ...]
    layouts: dict[str, TensorLayout]
    notes: tuple[str, ...] = ()
    streams: tuple[str, ...] = ()

    def all_statements(self) -> Iterator[SStmt]:
        for d in self.dram:
            yield from d.walk()
        for s in self.accel:
            yield from s.walk()

    def patterns(self) -> list[SStmt]:
        """All Foreach/Reduce/MemReduce patterns (outer to inner)."""
        return [
            s
            for s in self.all_statements()
            if isinstance(s, (Foreach, ReducePat, MemReduce))
        ]

    def decls_of(self, cls) -> list[SStmt]:
        return [s for s in self.all_statements() if isinstance(s, cls)]
