"""The Spatial parallel-pattern IR, code generator, and interpreter."""

from repro.spatial import codegen, interp, ir
from repro.spatial.codegen import count_loc, generate
from repro.spatial.interp import InterpError, Machine, execute
from repro.spatial.ir import SpatialProgram

__all__ = [
    "InterpError",
    "Machine",
    "SpatialProgram",
    "codegen",
    "count_loc",
    "execute",
    "generate",
    "interp",
    "ir",
]
