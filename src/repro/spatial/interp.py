"""Functional interpreter for the Spatial IR.

Executes a generated :class:`~repro.spatial.ir.SpatialProgram` element by
element against numpy-backed memories, faithfully modelling the semantics
the hardware provides: FIFOs are strictly in-order use-once queues,
bit-vector scanners yield Figure 7 pattern-index tuples, ``Reduce``
combines lane values through its operator, and re-executing a declaration
re-initialises the memory (which is how per-iteration workspaces reset).

The interpreter is the correctness oracle for the compiler: every kernel's
generated code is run on small inputs and compared against the dense
reference semantics of :func:`repro.tensor.ops.evaluate_dense`.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.tensor.bitvector import INVALID, BitVector, gen_bitvector, scan
from repro.spatial.ir import (
    Assign,
    BitVectorDecl,
    BitVectorOp,
    Comment,
    DenseCounter,
    DramWrite,
    Enq,
    FifoDecl,
    Foreach,
    GenBitVector,
    LoadBulk,
    MemReduce,
    RegDecl,
    RegWrite,
    ReducePat,
    ScanCounter,
    SBin,
    SDeq,
    SExpr,
    SingletonCounter,
    SLit,
    SRead,
    SRegRead,
    SSelect,
    SStmt,
    SValid,
    SVar,
    SpatialProgram,
    SramDecl,
    SramWrite,
    StoreBulk,
    StreamStore,
)

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, (int, float)) and float(a).is_integer() and float(b).is_integer() else a / b,
    "%": lambda a, b: a % b,
    "min": min,
    "max": max,
}


class InterpError(RuntimeError):
    """The program violated a hardware precondition (e.g. FIFO underflow)."""


class Machine:
    """Execution state: DRAMs, SRAMs, FIFOs, registers, bit vectors."""

    def __init__(
        self,
        program: SpatialProgram,
        dram_data: dict[str, np.ndarray],
        symbols: dict[str, int],
    ) -> None:
        self.program = program
        self.symbols = dict(symbols)
        self.dram: dict[str, np.ndarray] = {}
        self.sram: dict[str, np.ndarray] = {}
        self.fifo: dict[str, deque] = {}
        self.regs: dict[str, float] = {}
        self.bitvec: dict[str, BitVector] = {}
        self.bitvec_len: dict[str, int] = {}
        # Base environment: symbols and environment variables are in scope.
        self.env: dict[str, float] = {}
        self.env.update(symbols)
        self.env.update(program.env)
        for d in program.dram:
            size = int(self.eval(d.size, self.env))
            data = dram_data.get(d.name)
            if data is not None:
                arr = np.zeros(max(size, len(data)), dtype=np.float64)
                arr[: len(data)] = data
            else:
                arr = np.zeros(size, dtype=np.float64)
            self.dram[d.name] = arr

    # -- expression evaluation -------------------------------------------------

    def eval(self, e: SExpr, env: dict[str, float]) -> float:
        if isinstance(e, SLit):
            return e.value
        if isinstance(e, SVar):
            try:
                return env[e.name]
            except KeyError:
                raise InterpError(f"unbound variable {e.name!r}")
        if isinstance(e, SBin):
            return _BINOPS[e.op](self.eval(e.a, env), self.eval(e.b, env))
        if isinstance(e, SSelect):
            # Lazy select: only the chosen branch is evaluated, so invalid
            # scan positions never reach a memory read.
            if self.eval(e.cond, env):
                return self.eval(e.a, env)
            return self.eval(e.b, env)
        if isinstance(e, SValid):
            return 1.0 if env[e.var.name] != INVALID else 0.0
        if isinstance(e, SRead):
            addr = int(self.eval(e.addr, env))
            if e.mem in self.sram:
                mem = self.sram[e.mem]
            elif e.mem in self.dram:
                mem = self.dram[e.mem]
            else:
                raise InterpError(f"read from undeclared memory {e.mem!r}")
            if not 0 <= addr < len(mem):
                raise InterpError(
                    f"out-of-bounds read {e.mem}({addr}), size {len(mem)}"
                )
            return float(mem[addr])
        if isinstance(e, SDeq):
            q = self.fifo.get(e.fifo)
            if q is None:
                raise InterpError(f"dequeue from undeclared FIFO {e.fifo!r}")
            if not q:
                raise InterpError(f"FIFO underflow on {e.fifo!r}")
            return q.popleft()
        if isinstance(e, SRegRead):
            try:
                return self.regs[e.reg]
            except KeyError:
                raise InterpError(f"read of undeclared register {e.reg!r}")
        raise TypeError(f"cannot evaluate {type(e).__name__}")

    # -- statement execution ----------------------------------------------------

    def run(self) -> None:
        env = dict(self.env)
        for s in self.program.accel:
            self.exec(s, env)

    def exec(self, s: SStmt, env: dict[str, float]) -> None:
        if isinstance(s, Comment):
            return
        if isinstance(s, SramDecl):
            size = int(self.eval(s.size, env))
            self.sram[s.name] = np.zeros(size, dtype=np.float64)
        elif isinstance(s, FifoDecl):
            self.fifo[s.name] = deque()
        elif isinstance(s, RegDecl):
            self.regs[s.name] = float(s.init)
        elif isinstance(s, BitVectorDecl):
            length = int(self.eval(s.length, env))
            self.bitvec_len[s.name] = length
            self.bitvec[s.name] = gen_bitvector(np.zeros(0, dtype=np.int64), max(length, 1))
        elif isinstance(s, GenBitVector):
            self.exec_gen_bitvector(s, env)
        elif isinstance(s, BitVectorOp):
            a, b = self.bitvec[s.a], self.bitvec[s.b]
            self.bitvec[s.dst] = (a & b) if s.op == "and" else (a | b)
        elif isinstance(s, LoadBulk):
            self.exec_load(s, env)
        elif isinstance(s, StoreBulk):
            start = int(self.eval(s.start, env))
            end = int(self.eval(s.end, env))
            src = self.sram[s.src]
            self.dram[s.dst][start:end] = src[: end - start]
        elif isinstance(s, StreamStore):
            offset = int(self.eval(s.offset, env))
            length = int(self.eval(s.length, env))
            q = self.fifo[s.fifo]
            if len(q) < length:
                raise InterpError(
                    f"stream store of {length} from {s.fifo!r} holding {len(q)}"
                )
            for k in range(length):
                self.dram[s.dram][offset + k] = q.popleft()
        elif isinstance(s, Assign):
            env[s.name] = self.eval(s.expr, env)
        elif isinstance(s, Enq):
            self.fifo[s.fifo].append(self.eval(s.expr, env))
        elif isinstance(s, RegWrite):
            value = self.eval(s.expr, env)
            if s.accumulate:
                self.regs[s.reg] += value
            else:
                self.regs[s.reg] = value
        elif isinstance(s, SramWrite):
            addr = int(self.eval(s.addr, env))
            mem = self.sram[s.mem]
            if not 0 <= addr < len(mem):
                raise InterpError(
                    f"out-of-bounds write {s.mem}({addr}), size {len(mem)}"
                )
            value = self.eval(s.expr, env)
            if s.accumulate:
                mem[addr] += value
            else:
                mem[addr] = value
        elif isinstance(s, DramWrite):
            addr = int(self.eval(s.addr, env))
            self.dram[s.dram][addr] = self.eval(s.expr, env)
        elif isinstance(s, Foreach):
            for binding in self.iterations(s.counter, s.ivars, env):
                inner = dict(env)
                inner.update(binding)
                for b in s.body:
                    self.exec(b, inner)
        elif isinstance(s, ReducePat):
            # Reduce folds lane values into the register's current value;
            # the canonical idiom declares the register (init 0) just before.
            total = self.regs.get(s.reg, 0.0)
            combine = _BINOPS[s.combine]
            for binding in self.iterations(s.counter, s.ivars, env):
                inner = dict(env)
                inner.update(binding)
                for b in s.body:
                    self.exec(b, inner)
                total = combine(total, self.eval(s.value, inner))
            self.regs[s.reg] = total
        elif isinstance(s, MemReduce):
            for binding in self.iterations(s.counter, s.ivars, env):
                inner = dict(env)
                inner.update(binding)
                for b in s.body:
                    self.exec(b, inner)
                src = self.sram[s.value_mem]
                dst = self.sram[s.mem]
                dst[: len(src)] = _BINOPS[s.combine](dst[: len(src)], src)
        else:
            raise TypeError(f"cannot execute {type(s).__name__}")

    # -- pattern iteration --------------------------------------------------------

    def iterations(self, counter, ivars, env):
        """Yield binder environments for one pattern's counter."""
        if isinstance(counter, DenseCounter):
            length = int(self.eval(counter.length, env))
            base = int(self.eval(counter.base, env)) if counter.base is not None else 0
            trips = max(0, math.ceil(length / counter.step))
            if len(ivars) != 1:
                raise InterpError("dense counters bind exactly one index")
            for k in range(trips):
                yield {ivars[0]: base + k * counter.step}
            return
        if isinstance(counter, SingletonCounter):
            # Exactly one iteration: the coordinate stored at the parent's
            # position (COO-style singleton levels).
            if len(ivars) != 1:
                raise InterpError("singleton counters bind exactly one index")
            pos = int(self.eval(counter.pos, env))
            if counter.crd_mem in self.sram:
                mem = self.sram[counter.crd_mem]
            elif counter.crd_mem in self.dram:
                mem = self.dram[counter.crd_mem]
            else:
                raise InterpError(
                    f"singleton scan of undeclared memory {counter.crd_mem!r}"
                )
            if not 0 <= pos < len(mem):
                raise InterpError(
                    f"singleton position {pos} out of bounds for "
                    f"{counter.crd_mem!r} (size {len(mem)})"
                )
            yield {ivars[0]: int(mem[pos])}
            return
        assert isinstance(counter, ScanCounter)
        bv_a = self.bitvec[counter.bv_a]
        if counter.bv_b is None:
            # Single-vector scan binds (pos_a, pos_out, coord).
            if len(ivars) != 3:
                raise InterpError("single-vector scans bind (pos, out, coord)")
            for entry in scan(bv_a):
                yield {
                    ivars[0]: entry.pos_a,
                    ivars[1]: entry.pos_out,
                    ivars[2]: entry.coord,
                }
            return
        bv_b = self.bitvec[counter.bv_b]
        if len(ivars) != 4:
            raise InterpError("two-vector scans bind (a, b, out, coord)")
        for entry in scan(bv_a, bv_b, counter.op):
            yield {
                ivars[0]: entry.pos_a,
                ivars[1]: entry.pos_b,
                ivars[2]: entry.pos_out,
                ivars[3]: entry.coord,
            }

    # -- memory helpers -------------------------------------------------------------

    def exec_load(self, s: LoadBulk, env: dict[str, float]) -> None:
        start = int(self.eval(s.start, env))
        end = int(self.eval(s.end, env))
        if end < start:
            raise InterpError(f"negative-length load {s.dst} [{start}:{end}]")
        src = self.dram[s.src][start:end]
        if s.dst in self.sram:
            mem = self.sram[s.dst]
            if len(src) > len(mem):
                raise InterpError(
                    f"load of {len(src)} words overflows SRAM {s.dst!r} "
                    f"({len(mem)} words)"
                )
            mem[: len(src)] = src
        elif s.dst in self.fifo:
            self.fifo[s.dst].extend(float(v) for v in src)
        else:
            raise InterpError(f"load into undeclared memory {s.dst!r}")

    def exec_gen_bitvector(self, s: GenBitVector, env: dict[str, float]) -> None:
        count = int(self.eval(s.count, env))
        length = self.bitvec_len[s.dst]
        if s.crd_mem in self.fifo:
            q = self.fifo[s.crd_mem]
            if len(q) < count:
                raise InterpError(
                    f"genBitvector drains {count} from {s.crd_mem!r} holding {len(q)}"
                )
            coords = np.array([q.popleft() for _ in range(count)], dtype=np.int64)
        elif s.crd_mem in self.sram:
            coords = self.sram[s.crd_mem][:count].astype(np.int64)
        else:
            raise InterpError(f"genBitvector from undeclared memory {s.crd_mem!r}")
        self.bitvec[s.dst] = gen_bitvector(coords, max(length, 1))


def execute(
    program: SpatialProgram,
    dram_data: dict[str, np.ndarray],
    symbols: dict[str, int],
) -> Machine:
    """Run a program to completion and return the final machine state."""
    machine = Machine(program, dram_data, symbols)
    machine.run()
    return machine
