"""Structured span tracing with per-process JSONL emission.

The tracer is the repo-wide answer to "where did the time go?".  Any
code can open a span::

    from repro import obs

    with obs.span("lower", kernel="SpMV") as sp:
        ...
        sp.set(loops=4)

and, when tracing is enabled, a JSON record lands in an append-only
per-process file ``trace-<host>-<pid>.jsonl`` under ``REPRO_TRACE_DIR``.
``repro trace summary`` / ``repro trace export --chrome`` merge those
files into one timeline (:mod:`repro.obs.timeline`).

Design constraints (tested in ``tests/test_obs.py``):

* **Zero overhead when off.** ``span()`` returns a module-level no-op
  singleton unless ``REPRO_TRACE_DIR`` is set — no object allocation,
  no clock reads, no I/O.  The env var is read dynamically, so tests
  and the ``--trace DIR`` CLI flag can flip tracing per call.
* **Byte transparency.** Spans only ever append to their own JSONL
  file; stdout/stderr and every artefact byte stay untouched.
* **Crash safety.** One JSON object per line, written at span *exit*
  and flushed immediately.  A process killed mid-write leaves at worst
  one truncated trailing line, which the merger tolerates; spans whose
  parent record never landed are reported as orphans.

Timestamps: ``ts`` is wall-clock (``time.time``) so records from
different hosts/processes merge onto one axis; ``dur`` is measured with
``time.perf_counter`` so individual spans keep monotonic precision.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "TRACE_ENV",
    "Span",
    "event",
    "span",
    "trace_dir",
    "trace_env_knobs",
    "tracing_enabled",
]

#: Environment variable naming the trace output directory.
TRACE_ENV = "REPRO_TRACE_DIR"

#: Per-line schema version stamped into every record.
SCHEMA = 1


def tracing_enabled() -> bool:
    """Whether spans are being recorded (``REPRO_TRACE_DIR`` is set)."""
    return bool(os.environ.get(TRACE_ENV))


def trace_dir() -> Path | None:
    """The configured trace directory, or ``None`` when tracing is off."""
    configured = os.environ.get(TRACE_ENV, "")
    return Path(configured).expanduser() if configured else None


def trace_env_knobs() -> dict[str, str]:
    """Trace env settings a remote worker needs, for transports that
    forward an explicit environment (ssh) rather than inheriting ours."""
    configured = os.environ.get(TRACE_ENV, "")
    return {TRACE_ENV: configured} if configured else {}


class _NullSpan:
    """The do-nothing span handed out when tracing is off.

    A single module-level instance (``span("a") is span("b")``), so the
    disabled path allocates nothing per call.
    """

    __slots__ = ()
    id = None

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> _NullSpan:
        return self


_NULL_SPAN = _NullSpan()


class _Tracer:
    """Per-process JSONL writer shared by every span in the process."""

    def __init__(self, root: Path) -> None:
        root.mkdir(parents=True, exist_ok=True)
        self.proc = f"{socket.gethostname()}-{os.getpid()}"
        self.path = root / f"trace-{self.proc}.jsonl"
        self._fh = None
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._stack = threading.local()

    def next_id(self) -> str:
        return f"{self.proc}:{next(self._seq)}"

    # -- thread-local parent stack -----------------------------------------

    def _frames(self) -> list[str]:
        frames = getattr(self._stack, "frames", None)
        if frames is None:
            frames = self._stack.frames = []
        return frames

    def current_parent(self) -> str | None:
        frames = self._frames()
        return frames[-1] if frames else None

    def push(self, span_id: str) -> None:
        self._frames().append(span_id)

    def pop(self, span_id: str) -> None:
        frames = self._frames()
        if frames and frames[-1] == span_id:
            frames.pop()

    # -- emission -----------------------------------------------------------

    def write(self, record: dict[str, Any]) -> None:
        record["v"] = SCHEMA
        try:
            line = json.dumps(record, separators=(",", ":"), default=str)
        except (TypeError, ValueError):  # non-serializable attr: best effort
            line = json.dumps({k: record[k] for k in ("v", "k", "name", "ts")
                               if k in record}, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def write_event(self, name: str, attrs: dict[str, Any]) -> None:
        record: dict[str, Any] = {
            "k": "event", "name": name, "ts": time.time(),
            "proc": self.proc, "tid": threading.get_ident(),
            "id": self.next_id(),
        }
        parent = self.current_parent()
        if parent is not None:
            record["parent"] = parent
        if attrs:
            record["attrs"] = attrs
        self.write(record)


_tracer_lock = threading.Lock()
_tracer: _Tracer | None = None
_tracer_key: tuple[str, int] | None = None


def _active_tracer() -> _Tracer | None:
    configured = os.environ.get(TRACE_ENV, "")
    if not configured:
        return None
    global _tracer, _tracer_key
    key = (configured, os.getpid())
    tracer = _tracer
    if tracer is not None and _tracer_key == key:
        return tracer
    with _tracer_lock:
        if _tracer is None or _tracer_key != key:  # re-check under the lock
            if _tracer is not None:  # re-keyed (new dir / fork): release it
                _tracer.close()
            _tracer = _Tracer(Path(configured).expanduser())
            _tracer_key = key
        return _tracer


@atexit.register
def _close_tracer() -> None:
    if _tracer is not None:
        _tracer.close()


class Span:
    """A live span; use as a context manager, add attrs via :meth:`set`."""

    __slots__ = ("name", "attrs", "id", "parent", "track",
                 "_tracer", "_nest", "_ts", "_t0")

    def __init__(self, tracer: _Tracer, name: str, attrs: dict[str, Any],
                 nest: bool, track: str | None) -> None:
        self.name = name
        self.attrs = attrs
        self.track = track
        self._tracer = tracer
        self._nest = nest
        self.id = tracer.next_id()
        self.parent = tracer.current_parent() if nest else None
        self._ts = 0.0
        self._t0 = 0.0

    def set(self, **attrs: Any) -> Span:
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> Span:
        self._ts = time.time()
        self._t0 = time.perf_counter()
        if self._nest:
            self._tracer.push(self.id)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        dur = time.perf_counter() - self._t0
        if self._nest:
            self._tracer.pop(self.id)
        record: dict[str, Any] = {
            "k": "span", "name": self.name, "ts": self._ts, "dur": dur,
            "proc": self._tracer.proc, "tid": threading.get_ident(),
            "id": self.id,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.track is not None:
            record["track"] = self.track
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer.write(record)
        return False


def span(name: str, *, _nest: bool = True, _track: str | None = None,
         **attrs: Any):
    """A context-manager span (no-op singleton when tracing is off).

    ``_nest=False`` detaches the span from the thread-local parent
    stack — required in async handlers, where interleaved coroutines on
    one thread would otherwise corrupt each other's ancestry.
    ``_track`` names the Chrome-export lane (defaults to the thread).
    """
    tracer = _active_tracer()
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, attrs, _nest, _track)


def event(name: str, **attrs: Any) -> None:
    """An instant (zero-duration) record — lease grants, claims, etc."""
    tracer = _active_tracer()
    if tracer is not None:
        tracer.write_event(name, attrs)
