"""``repro.obs`` — observability: span tracing and metrics.

The write side every subsystem instruments against::

    from repro import obs

    with obs.span("lower", kernel=name):          # traced stage
        ...
    obs.event("lease.expired", chunk=3)            # instant record
    obs.counter("repro_jobs_total").inc()          # process metric

Spans are no-ops unless ``REPRO_TRACE_DIR`` is set (see
:mod:`repro.obs.trace`); metrics always accumulate in-process and are
rendered by the serve daemon's ``/metrics`` endpoint or folded into
JSON payloads (:mod:`repro.obs.metrics`).  The read side —
``repro trace summary`` / ``export`` — lives in
:mod:`repro.obs.timeline`.
"""

from repro.obs.metrics import (
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.trace import (
    TRACE_ENV,
    event,
    span,
    trace_dir,
    trace_env_knobs,
    tracing_enabled,
)

__all__ = [
    "TRACE_ENV",
    "counter",
    "event",
    "gauge",
    "histogram",
    "registry",
    "span",
    "trace_dir",
    "trace_env_knobs",
    "tracing_enabled",
]
