"""Process-wide metrics registry with Prometheus-text exposition.

Counters, gauges, and log-bucketed histograms shared across the
process, surfaced three ways:

* the serve daemon's ``GET /metrics`` endpoint renders
  :func:`MetricsRegistry.render` (Prometheus text exposition format);
* ``repro cache --json`` and ``/stats`` fold :func:`MetricsRegistry.
  snapshot` into the shared cache payload;
* ``dispatch_summary_payload`` carries the dispatch counters.

Everything is stdlib-only and thread-safe (one lock per metric; the
serve daemon's event loop and worker threads both record freely).
Label values are escaped per the exposition format; metric names are
validated at registration.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram bounds: log-spaced (doubling) latency buckets from
#: 0.25 ms to ~128 s — wide enough for a cache peek and a cold sweep.
LATENCY_BUCKETS = tuple(0.00025 * 2 ** i for i in range(20))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(f'{n}="{_escape(v)}"' for n, v in zip(names, values))
    return "{" + pairs + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = threading.Lock()

    def _values(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}")
        return tuple(str(labels[n]) for n in self.labelnames)

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {_escape(self.help)}",
                f"# TYPE {self.name} {self.kind}"]


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._counts: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._values(labels)
        with self._lock:
            self._counts[key] = self._counts.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        """Mirror an externally tracked total (scrape-time sync)."""
        key = self._values(labels)
        with self._lock:
            self._counts[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._counts.get(self._values(labels), 0.0)

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._counts.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for values, count in items:
            lines.append(f"{self.name}"
                         f"{_label_str(self.labelnames, values)} {count:g}")
        return lines

    def snapshot(self) -> Any:
        with self._lock:
            if not self.labelnames:
                return self._counts.get((), 0.0)
            return {",".join(v) or "": c
                    for v, c in sorted(self._counts.items())}


class Gauge(_Metric):
    """A value that goes up and down (inflight jobs, uptime)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values_map: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._values(labels)
        with self._lock:
            self._values_map[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values_map.get(self._values(labels), 0.0)

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values_map.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for values, val in items:
            lines.append(f"{self.name}"
                         f"{_label_str(self.labelnames, values)} {val:g}")
        return lines

    def snapshot(self) -> Any:
        with self._lock:
            if not self.labelnames:
                return self._values_map.get((), 0.0)
            return {",".join(v) or "": x
                    for v, x in sorted(self._values_map.items())}


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics), unlabelled."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text, ())
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._total = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._total += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            counts, total, acc = list(self._counts), self._total, self._sum
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            lines.append(f'{self.name}_bucket{{le="{bound:g}"}} {running}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {acc:g}")
        lines.append(f"{self.name}_count {total}")
        return lines

    def snapshot(self) -> Any:
        with self._lock:
            counts, total, acc = list(self._counts), self._total, self._sum
        payload = {"count": total, "sum": acc, "buckets": {}}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            if count:
                payload["buckets"][f"{bound:g}"] = running
        if total:
            payload["buckets"]["+Inf"] = total
        return payload

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds (for summaries)."""
        with self._lock:
            counts, total = list(self._counts), self._total
        if not total:
            return math.nan
        target = max(1, math.ceil(q * total))
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1]


class MetricsRegistry:
    """Named metrics, registered once and shared process-wide."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str,
                       **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text,
                                   labelnames=labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text,
                                   labelnames=labelnames)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline)."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly dump, grouped by metric kind."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            out[metric.kind + "s"][name] = metric.snapshot()
        return out


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help_text: str = "",
            labelnames: tuple[str, ...] = ()) -> Counter:
    return _REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str = "",
          labelnames: tuple[str, ...] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help_text, labelnames)


def histogram(name: str, help_text: str = "",
              buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
    return _REGISTRY.histogram(name, help_text, buckets)
