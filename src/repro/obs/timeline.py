"""Merge per-process trace JSONL files into one timeline.

The tracer (:mod:`repro.obs.trace`) writes one append-only
``trace-<host>-<pid>.jsonl`` per process.  This module is the read
side, behind ``repro trace``:

* :func:`load_trace_dir` — parse every trace file in a directory,
  tolerating the crash artefacts the format promises to survive (a
  truncated trailing line from a killed process) while still flagging
  real corruption (malformed *interior* lines) and orphaned spans
  (a ``parent`` id whose record never landed — a process died before
  the enclosing span could be written);
* :func:`render_summary` — the ``repro trace summary`` table:
  per-span-name totals, cache hit ratios from the ``stage:*`` spans,
  per-process worker utilization, and the critical path through the
  longest top-level span;
* :func:`to_chrome` — Chrome ``chrome://tracing`` / Perfetto JSON with
  one track per process thread (workers are separate processes, so a
  sweep renders one lane per worker; serve request spans carry their
  own ``track``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "TraceData",
    "load_trace_dir",
    "render_summary",
    "to_chrome",
]


class TraceData:
    """Parsed records plus the problems found while parsing them."""

    def __init__(self, records: list[dict[str, Any]],
                 malformed: list[tuple[str, int, bool]],
                 files: list[str]) -> None:
        self.records = records
        #: ``(file, lineno, is_trailing_line)`` per unparseable line.
        self.malformed = malformed
        self.files = files
        self.spans = [r for r in records if r.get("k") == "span"]
        self.events = [r for r in records if r.get("k") == "event"]
        known = {r.get("id") for r in records if r.get("id")}
        self.orphans = [r for r in records
                        if r.get("parent") and r["parent"] not in known]

    def problems(self) -> list[str]:
        """Hard problems: corrupt interior lines and orphaned spans.

        A truncated *trailing* line is the documented crash artefact of
        the append-only format and is not reported here.
        """
        out = [f"{name}:{lineno}: unparseable trace line"
               for name, lineno, trailing in self.malformed if not trailing]
        out.extend(
            f"{r.get('proc', '?')}: {r.get('k', '?')} {r.get('name', '?')!r} "
            f"(id {r.get('id')}) references missing parent {r['parent']}"
            for r in self.orphans)
        return out

    def truncated_tails(self) -> int:
        return sum(1 for _n, _l, trailing in self.malformed if trailing)


def _parse_file(path: Path, records: list[dict[str, Any]],
                malformed: list[tuple[str, int, bool]]) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":  # complete final newline
        lines.pop()
    last = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            malformed.append((path.name, i + 1, i == last))
            continue
        if not isinstance(record, dict) or "k" not in record \
                or "name" not in record or "ts" not in record:
            malformed.append((path.name, i + 1, i == last))
            continue
        records.append(record)


def load_trace_dir(root: Path | str) -> TraceData:
    """Parse every ``trace-*.jsonl`` under ``root`` into one timeline."""
    root = Path(root)
    records: list[dict[str, Any]] = []
    malformed: list[tuple[str, int, bool]] = []
    files = sorted(root.glob("trace-*.jsonl"))
    for path in files:
        _parse_file(path, records, malformed)
    records.sort(key=lambda r: (r.get("ts", 0.0), str(r.get("id", ""))))
    return TraceData(records, malformed, [p.name for p in files])


# ---------------------------------------------------------------------------
# Summary rendering
# ---------------------------------------------------------------------------


def _union_seconds(intervals: Iterable[tuple[float, float]]) -> float:
    """Total covered time of possibly-overlapping ``(start, end)`` spans."""
    merged = 0.0
    current_start = current_end = None
    for start, end in sorted(intervals):
        if current_end is None or start > current_end:
            if current_end is not None:
                merged += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        merged += current_end - current_start
    return merged


def _stage_table(spans: list[dict[str, Any]]) -> list[str]:
    by_name: dict[str, list[float]] = {}
    for rec in spans:
        by_name.setdefault(rec["name"], []).append(float(rec.get("dur", 0.0)))
    lines = [f"{'span':<24} {'count':>6} {'total_s':>9} {'mean_ms':>9} "
             f"{'max_ms':>9}"]
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = by_name[name]
        total = sum(durs)
        lines.append(f"{name:<24} {len(durs):>6} {total:>9.3f} "
                     f"{1e3 * total / len(durs):>9.2f} "
                     f"{1e3 * max(durs):>9.2f}")
    return lines


def _cache_table(spans: list[dict[str, Any]]) -> list[str]:
    stages: dict[str, list[bool]] = {}
    for rec in spans:
        name = rec["name"]
        if name.startswith("stage:") and "hit" in rec.get("attrs", {}):
            stages.setdefault(name[len("stage:"):], []).append(
                bool(rec["attrs"]["hit"]))
    if not stages:
        return ["(no cache-staged spans recorded)"]
    lines = [f"{'stage':<14} {'lookups':>8} {'hits':>6} {'ratio':>7}"]
    all_hits = all_total = 0
    for stage in sorted(stages):
        hits, total = sum(stages[stage]), len(stages[stage])
        all_hits += hits
        all_total += total
        lines.append(f"{stage:<14} {total:>8} {hits:>6} {hits / total:>7.1%}")
    lines.append(f"{'overall':<14} {all_total:>8} {all_hits:>6} "
                 f"{all_hits / all_total:>7.1%}")
    return lines


def _utilization_table(spans: list[dict[str, Any]]) -> list[str]:
    """Per-process busy ratio: union of top-level span time over the
    process's observed window (first span start to last span end)."""
    by_proc: dict[str, list[dict[str, Any]]] = {}
    for rec in spans:
        by_proc.setdefault(rec.get("proc", "?"), []).append(rec)
    lines = [f"{'process':<32} {'spans':>6} {'busy_s':>8} {'window_s':>9} "
             f"{'util':>6}"]
    for proc in sorted(by_proc):
        recs = by_proc[proc]
        starts = [float(r["ts"]) for r in recs]
        ends = [float(r["ts"]) + float(r.get("dur", 0.0)) for r in recs]
        window = max(max(ends) - min(starts), 1e-9)
        top = [(float(r["ts"]), float(r["ts"]) + float(r.get("dur", 0.0)))
               for r in recs if not r.get("parent")]
        busy = _union_seconds(top)
        lines.append(f"{proc:<32} {len(recs):>6} {busy:>8.3f} "
                     f"{window:>9.3f} {busy / window:>6.1%}")
    return lines


def _critical_path(spans: list[dict[str, Any]]) -> list[str]:
    """The max-duration child chain under the longest top-level span."""
    if not spans:
        return ["(no spans)"]
    children: dict[str, list[dict[str, Any]]] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent:
            children.setdefault(parent, []).append(rec)
    root = max((r for r in spans if not r.get("parent")),
               key=lambda r: float(r.get("dur", 0.0)), default=None)
    if root is None:  # every span is a crash orphan
        root = max(spans, key=lambda r: float(r.get("dur", 0.0)))
    lines = []
    node, depth = root, 0
    while node is not None:
        label = node["name"]
        attrs = node.get("attrs", {})
        detail = attrs.get("kernel") or attrs.get("task") \
            or attrs.get("artifact") or attrs.get("key") or ""
        suffix = f" [{detail}]" if detail else ""
        lines.append(f"{'  ' * depth}{label}{suffix}  "
                     f"{1e3 * float(node.get('dur', 0.0)):.2f}ms")
        kids = children.get(node.get("id"), [])
        node = max(kids, key=lambda r: float(r.get("dur", 0.0))) \
            if kids else None
        depth += 1
    return lines


def render_summary(data: TraceData) -> str:
    """The ``repro trace summary`` report."""
    if not data.records:
        return (f"no trace records found "
                f"({len(data.files)} file(s) scanned)")
    procs = {r.get("proc", "?") for r in data.records}
    head = (f"{len(data.records)} record(s) ({len(data.spans)} span(s), "
            f"{len(data.events)} event(s)) from {len(data.files)} file(s) / "
            f"{len(procs)} process(es)")
    notes = []
    if data.truncated_tails():
        notes.append(f"{data.truncated_tails()} truncated trailing line(s) "
                     f"(killed process; tolerated)")
    if data.orphans:
        notes.append(f"{len(data.orphans)} orphaned record(s) "
                     f"(parent span never landed)")
    interior = [m for m in data.malformed if not m[2]]
    if interior:
        notes.append(f"{len(interior)} malformed interior line(s)")
    sections = [head]
    if notes:
        sections.append("; ".join(notes))
    sections.append("\n== per-span totals ==")
    sections.extend(_stage_table(data.spans) if data.spans
                    else ["(no spans)"])
    sections.append("\n== cache hit ratio (staged lookups) ==")
    sections.extend(_cache_table(data.spans))
    sections.append("\n== worker utilization ==")
    sections.extend(_utilization_table(data.spans) if data.spans
                    else ["(no spans)"])
    sections.append("\n== critical path ==")
    sections.extend(_critical_path(data.spans))
    return "\n".join(sections)


# ---------------------------------------------------------------------------
# Chrome tracing export
# ---------------------------------------------------------------------------


def to_chrome(data: TraceData) -> dict[str, Any]:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Processes map to Chrome pids; a span's lane is its explicit
    ``track`` if it carries one (serve requests), its thread otherwise.
    """
    if not data.records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(r["ts"]) for r in data.records)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []

    def pid_for(proc: str) -> int:
        if proc not in pids:
            pids[proc] = len(pids) + 1
            events.append({"name": "process_name", "ph": "M",
                           "pid": pids[proc], "tid": 0,
                           "args": {"name": proc}})
        return pids[proc]

    def tid_for(proc: str, lane: str) -> int:
        key = (proc, lane)
        if key not in tids:
            tids[key] = sum(1 for p, _l in tids if p == proc) + 1
            events.append({"name": "thread_name", "ph": "M",
                           "pid": pid_for(proc), "tid": tids[key],
                           "args": {"name": lane}})
        return tids[key]

    for rec in data.records:
        proc = rec.get("proc", "?")
        lane = str(rec.get("track") or f"thread-{rec.get('tid', 0)}")
        entry = {
            "name": rec.get("name", "?"),
            "pid": pid_for(proc),
            "tid": tid_for(proc, lane),
            "ts": (float(rec["ts"]) - t0) * 1e6,
            "args": {**rec.get("attrs", {}), "id": rec.get("id"),
                     "parent": rec.get("parent")},
        }
        if rec.get("k") == "span":
            entry["ph"] = "X"
            entry["dur"] = float(rec.get("dur", 0.0)) * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
