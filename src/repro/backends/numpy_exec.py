"""Vectorized NumPy execution backend.

Where the Spatial interpreter and :class:`~repro.backends.cpu_exec.CpuExecutor`
walk the iteration space coordinate by coordinate in Python, this backend
executes an index-notation statement as a handful of whole-array NumPy
operations, following the DaCe-style decomposition of a sparse kernel into
explicit per-level-array operations:

* **dense** levels become implicit array axes (``np.einsum`` contractions);
* **compressed** levels become ``pos``/``crd`` segment arithmetic — entry
  counts via ``pos[p+1] - pos[p]``, per-entry offsets via ``np.repeat``,
  and reductions via ``np.add.reduceat`` over sorted scatter keys;
* **singleton** levels gather their single coordinate per parent position
  (``crd[positions]``);
* **block** levels validate their static extent and then expand like dense
  levels (a BCSR tile is a fixed-size dense sub-axis).

Each additive term of the assignment is classified by how many *sparse*
(non-all-dense) factors it multiplies:

* zero sparse factors → one ``einsum`` over the dense operands;
* one sparse factor → enumerate its stored entries per level format,
  gather the dense operands at the entry coordinates, contract over the
  entry axis, and scatter-add into the output (``np.add.reduceat`` over
  sorted linearized output keys);
* two sparse factors over the *same* index-variable set (the InnerProd
  shape) → intersect their linearized coordinate keys (``np.intersect1d``)
  and proceed as one merged sparse factor.

Anything else — nested unions inside a product, three or more sparse
factors, sparse-sparse joins over differing variable sets — raises
:class:`VectorizeFallback`, and :func:`execute_numpy` transparently falls
back to the :class:`CpuExecutor` merge-lattice interpreter, which handles
those shapes (n-ary unions included) at Python speed.

Like ``CpuExecutor``, this backend executes the *algorithm* (the original
assignment), not the schedule: schedules are semantics-preserving, so the
result is engine-independent up to floating-point summation order.
"""

from __future__ import annotations

import numpy as np

from repro.ir.index_notation import (
    Access,
    Add,
    Assignment,
    IndexExpr,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
    additive_terms,
)
from repro.schedule.stmt import IndexStmt
from repro.tensor.ops import infer_dimensions
from repro.tensor.storage import (
    CompressedLevel,
    DenseLevel,
    SingletonLevel,
    TensorStorage,
)

__all__ = [
    "NumpyExecutor",
    "VectorizeFallback",
    "enumerate_entries",
    "execute_numpy",
]

#: einsum subscript letters; ``e`` is reserved for the entry axis.
_LETTERS = "abcdfghijklmnopqrstuvwxyz"


class VectorizeFallback(Exception):
    """The vectorizer cannot handle this statement shape.

    Raised (and caught by :meth:`NumpyExecutor.run` unless ``strict``)
    for nested additions inside a product, more than two sparse factors
    in one term, or a sparse-sparse join over differing index-variable
    sets — the shapes the merge-lattice ``CpuExecutor`` exists for.
    """


# ---------------------------------------------------------------------------
# Per-level-format entry enumeration (the vectorized level emitters)
# ---------------------------------------------------------------------------


def _emit_dense(lvl: DenseLevel, positions, coord_cols):
    """Dense level: every parent position expands to ``size`` children."""
    dim = lvl.size
    new_coord = np.tile(np.arange(dim, dtype=np.int64), len(positions))
    positions = np.repeat(positions, dim) * dim + new_coord
    coord_cols = [np.repeat(c, dim) for c in coord_cols]
    coord_cols.append(new_coord)
    return positions, coord_cols


def _emit_block(lvl: DenseLevel, positions, coord_cols, static_size: int):
    """Block level: a dense sub-axis whose extent is fixed by the format."""
    if lvl.size != static_size:
        raise VectorizeFallback(
            f"block level extent {lvl.size} != static size {static_size}"
        )
    return _emit_dense(lvl, positions, coord_cols)


def _emit_compressed(lvl: CompressedLevel, positions, coord_cols):
    """Compressed level: pos/crd segment arithmetic, fully vectorized."""
    counts = lvl.pos[positions + 1] - lvl.pos[positions]
    starts = lvl.pos[positions]
    total = int(counts.sum())
    # offsets[e] = starts[parent of e] + (rank of e within its segment)
    prefix = np.concatenate(([0], np.cumsum(counts)))[: len(counts)]
    seg_base = np.repeat(prefix, counts)
    offsets = np.repeat(starts, counts) + (np.arange(total) - seg_base)
    coord_cols = [np.repeat(c, counts) for c in coord_cols]
    coord_cols.append(lvl.crd[offsets].astype(np.int64))
    return offsets, coord_cols


def _emit_singleton(lvl: SingletonLevel, positions, coord_cols):
    """Singleton level: one gathered coordinate per parent position."""
    coord_cols.append(lvl.crd[positions].astype(np.int64))
    return positions, coord_cols


def enumerate_entries(storage: TensorStorage) -> tuple[np.ndarray, np.ndarray]:
    """All stored entries as ``(coords, vals)``, coords in **mode** order.

    Walks the levels outermost-first with one emitter per level format —
    the vectorized analogue of a generated per-level loop nest. Formats
    with trailing dense levels enumerate explicit zeros; they multiply
    out harmlessly.
    """
    order = storage.order
    if order == 0:
        return np.zeros((1, 0), dtype=np.int64), storage.vals.copy()
    positions = np.zeros(1, dtype=np.int64)
    coord_cols: list[np.ndarray] = []
    for lvl_idx in range(order):
        lvl = storage.levels[lvl_idx]
        lf = storage.fmt.level_format(lvl_idx)
        if isinstance(lvl, DenseLevel):
            if lf.is_block:
                positions, coord_cols = _emit_block(lvl, positions,
                                                    coord_cols, lf.size)
            else:
                positions, coord_cols = _emit_dense(lvl, positions,
                                                    coord_cols)
        elif isinstance(lvl, SingletonLevel):
            positions, coord_cols = _emit_singleton(lvl, positions,
                                                    coord_cols)
        else:
            positions, coord_cols = _emit_compressed(lvl, positions,
                                                     coord_cols)
    coords = np.empty((len(positions), order), dtype=np.int64)
    for lvl_idx in range(order):
        coords[:, storage.fmt.mode_of_level(lvl_idx)] = coord_cols[lvl_idx]
    return coords, storage.vals[positions]


# ---------------------------------------------------------------------------
# Scatter-add (the reduceat fast path)
# ---------------------------------------------------------------------------


def segment_scatter_add(buffer: np.ndarray, keys: np.ndarray,
                        contrib: np.ndarray) -> None:
    """``buffer[keys] += contrib`` with duplicate keys accumulated.

    Sorts the keys when they are not already non-decreasing, then sums
    each equal-key run with one ``np.add.reduceat`` over the run starts
    (every segment is non-empty by construction, sidestepping reduceat's
    empty-segment pitfall) and adds the per-key sums in one shot.
    """
    if len(keys) == 0:
        return
    if np.all(keys[1:] >= keys[:-1]):
        sorted_keys, sorted_contrib = keys, contrib
    else:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_contrib = contrib[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    buffer[sorted_keys[starts]] += np.add.reduceat(sorted_contrib, starts,
                                                   axis=0)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def _flatten_factors(expr: IndexExpr) -> tuple[float, list[IndexExpr]]:
    """Flatten a product term into ``(scalar sign, [factors])``."""
    if isinstance(expr, Mul):
        sa, fa = _flatten_factors(expr.a)
        sb, fb = _flatten_factors(expr.b)
        return sa * sb, fa + fb
    if isinstance(expr, Neg):
        s, f = _flatten_factors(expr.a)
        return -s, f
    if isinstance(expr, (Add, Sub)):
        raise VectorizeFallback(
            "nested addition inside a product (union under intersection)"
        )
    return 1.0, [expr]


class NumpyExecutor:
    """Vectorized execution of a (scheduled or bare) statement.

    Attributes:
        fell_back: True once :meth:`run` has delegated to the
            ``CpuExecutor`` because the statement shape was not
            vectorizable.
    """

    def __init__(self, stmt: IndexStmt | Assignment) -> None:
        if isinstance(stmt, IndexStmt):
            assignment = stmt.assignment
        else:
            assignment = stmt
        self.assignment = assignment
        self.fell_back = False

    # -- public entry points ------------------------------------------------

    def run(self, strict: bool = False) -> np.ndarray:
        """Execute, returning the dense result array (lhs shape).

        ``strict=True`` raises :class:`VectorizeFallback` instead of
        delegating to the ``CpuExecutor`` interpreter.
        """
        try:
            return self._vectorize()
        except VectorizeFallback:
            if strict:
                raise
            self.fell_back = True
            from repro.backends.cpu_exec import CpuExecutor

            result = CpuExecutor(self.assignment).run()
            return np.asarray(result, dtype=np.float64).reshape(
                self.assignment.lhs.tensor.shape
            )

    # -- vectorization ------------------------------------------------------

    def _vectorize(self) -> np.ndarray:
        a = self.assignment
        dims = infer_dimensions(a)
        lhs_vars = list(a.lhs.indices)
        letters = self._assign_letters(a, dims)
        out_shape = tuple(dims[v] for v in lhs_vars)
        terms = additive_terms(a.rhs)
        accumulate = a.accumulate and a.lhs.tensor._storage is not None
        if len(terms) == 1 and terms[0][0] == 1 and not accumulate:
            # Single positive term: the term buffer *is* the result, so
            # skip the output allocation and the full-size += pass (this
            # is the whole cost for tiny-nnz kernels with dense outputs).
            contrib = self._term(terms[0][1], lhs_vars, dims, letters)
            if contrib.shape == out_shape:
                return contrib
            return np.broadcast_to(contrib, out_shape).copy()
        out = np.zeros(out_shape, dtype=np.float64)
        for sign, term in terms:
            contrib = self._term(term, lhs_vars, dims, letters)
            if sign >= 0:
                np.add(out, contrib, out=out)
            else:
                np.subtract(out, contrib, out=out)
        if accumulate:
            np.add(out, a.lhs.tensor.to_dense(), out=out)
        return out

    @staticmethod
    def _assign_letters(a: Assignment,
                        dims: dict[IndexVar, int]) -> dict[int, str]:
        if len(dims) > len(_LETTERS):
            raise VectorizeFallback(
                f"{len(dims)} index variables exceed the einsum alphabet"
            )
        return {id(v): _LETTERS[k] for k, v in enumerate(dims)}

    def _term(self, term: IndexExpr, lhs_vars: list[IndexVar],
              dims: dict[IndexVar, int],
              letters: dict[int, str]) -> np.ndarray:
        scalar, factors = _flatten_factors(term)
        dense_accs: list[Access] = []
        sparse_accs: list[Access] = []
        for f in factors:
            if isinstance(f, Literal):
                scalar *= float(f.value)
            elif isinstance(f, Access):
                if f.tensor.order == 0:
                    scalar *= f.tensor.scalar_value()
                elif f.tensor.format.is_all_dense:
                    dense_accs.append(f)
                else:
                    sparse_accs.append(f)
            else:  # pragma: no cover - _flatten_factors rejects the rest
                raise VectorizeFallback(f"unexpected factor {type(f).__name__}")

        term_var_ids = {id(v) for v in term.index_vars()}
        present_lhs = [v for v in lhs_vars if id(v) in term_var_ids]

        if not sparse_accs:
            result = self._dense_term(dense_accs, scalar, present_lhs,
                                      dims, letters)
        elif len(sparse_accs) == 1:
            acc = sparse_accs[0]
            coords, vals = enumerate_entries(acc.tensor.storage)
            result = self._sparse_term(acc, coords, vals * scalar,
                                       dense_accs, lhs_vars, present_lhs,
                                       dims, letters)
        elif len(sparse_accs) == 2:
            merged = self._intersect_pair(sparse_accs[0], sparse_accs[1])
            acc, coords, vals = merged
            result = self._sparse_term(acc, coords, vals * scalar,
                                       dense_accs, lhs_vars, present_lhs,
                                       dims, letters)
        else:
            raise VectorizeFallback(
                f"{len(sparse_accs)} sparse factors in one term"
            )

        # Broadcast into full lhs rank: size-1 axes for absent lhs vars.
        shape = [dims[v] if id(v) in term_var_ids else 1 for v in lhs_vars]
        return np.asarray(result, dtype=np.float64).reshape(shape)

    def _dense_term(self, dense_accs: list[Access], scalar: float,
                    present_lhs: list[IndexVar], dims: dict[IndexVar, int],
                    letters: dict[int, str]) -> np.ndarray:
        out_sub = "".join(letters[id(v)] for v in present_lhs)
        if not dense_accs:
            return np.full(tuple(dims[v] for v in present_lhs), scalar)
        subs = ",".join(
            "".join(letters[id(v)] for v in acc.indices)
            for acc in dense_accs
        )
        arrays = [acc.tensor.to_dense() for acc in dense_accs]
        return scalar * np.einsum(f"{subs}->{out_sub}", *arrays)

    def _sparse_term(self, acc: Access, coords: np.ndarray, vals: np.ndarray,
                     dense_accs: list[Access], lhs_vars: list[IndexVar],
                     present_lhs: list[IndexVar], dims: dict[IndexVar, int],
                     letters: dict[int, str]) -> np.ndarray:
        if len(vals) == 0:
            return np.zeros(tuple(dims[v] for v in present_lhs))
        sparse_col = {id(v): m for m, v in enumerate(acc.indices)}
        lhs_s = [v for v in present_lhs if id(v) in sparse_col]
        lhs_d = [v for v in present_lhs if id(v) not in sparse_col]

        # Contract the dense operands against the entry axis: each dense
        # factor is gathered at the entry coordinates along its modes that
        # the sparse factor also indexes; its remaining modes stay as
        # residual axes for einsum to carry or reduce.
        operands: list[np.ndarray] = [vals]
        subs: list[str] = ["e"]
        for dacc in dense_accs:
            shared = [m for m, v in enumerate(dacc.indices)
                      if id(v) in sparse_col]
            residual = [m for m in range(len(dacc.indices))
                        if m not in shared]
            arr = dacc.tensor.to_dense().transpose(shared + residual)
            gathered = arr[tuple(
                coords[:, sparse_col[id(dacc.indices[m])]] for m in shared
            )]
            operands.append(gathered)
            subs.append("e" + "".join(letters[id(dacc.indices[m])]
                                      for m in residual))
        out_sub = ("e" if lhs_s else "") + "".join(
            letters[id(v)] for v in lhs_d
        )
        contrib = np.einsum(f"{','.join(subs)}->{out_sub}", *operands)

        if not lhs_s:
            return contrib  # einsum already reduced the entry axis

        # Scatter-add per linearized output key; entries sharing an output
        # coordinate (reduction vars living in the sparse factor) merge.
        keys = np.zeros(len(vals), dtype=np.int64)
        for v in lhs_s:
            keys = keys * dims[v] + coords[:, sparse_col[id(v)]]
        flat = int(np.prod([dims[v] for v in lhs_s]))
        buffer = np.zeros((flat,) + tuple(dims[v] for v in lhs_d))
        segment_scatter_add(buffer, keys, contrib)
        result = buffer.reshape(tuple(dims[v] for v in lhs_s)
                                + tuple(dims[v] for v in lhs_d))
        # Axes are (lhs_s..., lhs_d...); interleave back into lhs order.
        current = lhs_s + lhs_d
        dest = [present_lhs.index(v) for v in current]
        return np.moveaxis(result, range(len(current)), dest)

    def _intersect_pair(self, a: Access, b: Access):
        """Merge two sparse factors over one shared index-variable set."""
        ids_a = {id(v) for v in a.indices}
        ids_b = {id(v) for v in b.indices}
        if ids_a != ids_b:
            raise VectorizeFallback(
                "sparse-sparse join over differing index-variable sets"
            )
        coords_a, vals_a = enumerate_entries(a.tensor.storage)
        coords_b, vals_b = enumerate_entries(b.tensor.storage)
        col_b = {id(v): m for m, v in enumerate(b.indices)}
        shape = a.tensor.shape
        keys_a = np.zeros(len(vals_a), dtype=np.int64)
        keys_b = np.zeros(len(vals_b), dtype=np.int64)
        for m, v in enumerate(a.indices):
            keys_a = keys_a * shape[m] + coords_a[:, m]
            keys_b = keys_b * shape[m] + coords_b[:, col_b[id(v)]]
        if (len(np.unique(keys_a)) != len(keys_a)
                or len(np.unique(keys_b)) != len(keys_b)):
            raise VectorizeFallback(
                "duplicate stored coordinates in a sparse-sparse join"
            )
        _, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True,
                                   return_indices=True)
        return a, coords_a[ia], vals_a[ia] * vals_b[ib]


def execute_numpy(stmt: IndexStmt | Assignment,
                  strict: bool = False) -> np.ndarray:
    """Execute a statement with the vectorized NumPy backend.

    Falls back to :func:`repro.backends.cpu_exec.execute_cpu` for
    non-vectorizable shapes unless ``strict`` is set.
    """
    return NumpyExecutor(stmt).run(strict=strict)
