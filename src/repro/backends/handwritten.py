"""Handwritten Spatial SpMV kernels (Section 8.3, Table 6 "Compiled = No").

SpMV is the only kernel with pre-existing handwritten Spatial
implementations: the Capstan paper's hand-tuned kernel and Plasticine's.
The paper compares them against Stardust-compiled code:

* the **handwritten Capstan** kernel duplicates the input vector across
  PMUs instead of coordinating accesses through the shuffle network, which
  removes shuffle contention and lets it outer-parallelise beyond 16 —
  about 1.5x faster than the compiled kernel (0.65 in Table 6);
* the **handwritten Plasticine** kernel has no sparse iteration support
  (no bit-vector scanners, no sparse fetch units), so compressed streams
  are walked with scalar address arithmetic — about 8.7x slower.

The handwritten Capstan source below is the LoC comparison artefact for
Section 8.3 (52 lines of Spatial vs. 10 lines of Stardust input).
"""

from __future__ import annotations

import dataclasses

from repro.capstan.arch import DEFAULT_CONFIG, CapstanConfig
from repro.capstan.calibration import DEFAULT_COST, CapstanCostModel
from repro.capstan.dram import HBM2E, DramModel
from repro.capstan.stats import WorkloadStats
from repro.spatial.codegen import count_loc

#: Hand-tuned Capstan SpMV (Rucker et al.): the input vector is duplicated
#: into every outer-parallel partition's PMUs, so gathers stay lane-local.
HANDWRITTEN_CAPSTAN_SPMV = """\
// Handwritten Capstan SpMV (Rucker et al., MICRO '21 artefact style)
import spatial.dsl._
val ip = 16
val op = 32
val N = args("N").to[Int]
val nnz = args("nnz").to[Int]
val A_pos_dram = DRAM[T](N + 1)
val A_crd_dram = DRAM[T](nnz)
val A_vals_dram = DRAM[T](nnz)
val x_dram = DRAM[T](N)
val y_dram = DRAM[T](N)
Accel {
  val A_pos = SRAM[T](N + 1)
  A_pos load A_pos_dram(0 :: N + 1 par ip)
  Foreach(N by 1 par op) { i =>
    // Every partition keeps a private duplicate of x: no shuffle network,
    // so outer parallelism is not capped at 16.
    val x_dup = SRAM[T](N)
    x_dup load x_dram(0 :: N par ip)
    val row_start = A_pos(i)
    val row_end = A_pos(i + 1)
    val row_len = row_end - row_start
    val crd = FIFO[T](16)
    crd load A_crd_dram(row_start :: row_end par 1)
    val vals = FIFO[T](16)
    vals load A_vals_dram(row_start :: row_end par 1)
    val acc = Reg[T](0.to[T])
    Reduce(acc)(row_len by 1 par ip) { p =>
      val j = crd.deq
      val v = vals.deq
      v * x_dup(j)
    } { _ + _ }
    val y_out = FIFO[T](16)
    y_out.enq(acc.value)
    y_dram stream_store_vec(i, y_out, 1)
  }
}
// Host-side driver
val y = getMem(y_dram)
val A_pos_h = loadCSR(args("matrix"))._1
val A_crd_h = loadCSR(args("matrix"))._2
val A_vals_h = loadCSR(args("matrix"))._3
setMem(A_pos_dram, A_pos_h)
setMem(A_crd_dram, A_crd_h)
setMem(A_vals_dram, A_vals_h)
setMem(x_dram, x_h)
assert(checkGold(y))
"""


def handwritten_capstan_loc() -> int:
    """LoC of the handwritten kernel (the paper reports 52)."""
    return count_loc(HANDWRITTEN_CAPSTAN_SPMV)


@dataclasses.dataclass
class HandwrittenCapstanSpMV:
    """Performance model of the hand-tuned Capstan SpMV.

    Same machine model as the compiled kernel, but vector duplication
    removes the gather term and lifts the outer-parallel cap to the full
    PCU budget (the paper's kernel uses 32 partitions).
    """

    config: CapstanConfig = dataclasses.field(default=DEFAULT_CONFIG)
    cost: CapstanCostModel = dataclasses.field(default=DEFAULT_COST)
    outer_par: int = 32

    def predict_seconds(self, stats: WorkloadStats, dram: DramModel = HBM2E) -> float:
        par = self.outer_par
        ii = self.cost.segment_ii_cycles
        compute_cycles = 0.0
        for loop in stats.loops:
            lanes = max(1, loop.vector_par) if loop.is_innermost else 1
            per_elem = 1.0 / lanes if loop.is_innermost else self.cost.mid_loop_cycles
            compute_cycles += max(loop.iters * per_elem, loop.launches * ii) / par
            compute_cycles += self.cost.pattern_fill_cycles
        compute_s = compute_cycles / self.config.clock_hz
        # Duplicated vectors turn shuffle gathers into pure streams, which
        # also raises sustained DRAM efficiency.
        better = dataclasses.replace(
            dram, stream_efficiency=min(0.75, dram.stream_efficiency * 1.45)
        )
        dram_s = better.transfer_seconds(stats.dram_total_bytes, stats.dram_bursts)
        return max(compute_s, dram_s) * (1.0 + self.cost.serial_fraction)


@dataclasses.dataclass
class HandwrittenPlasticineSpMV:
    """Performance model of the Plasticine (MICRO '17) handwritten SpMV.

    Plasticine predates Capstan's sparse support: no bit-vector scanners
    and no vectorised sparse fetch, so compressed streams advance with
    scalar address arithmetic on the pattern units.
    """

    config: CapstanConfig = dataclasses.field(default=DEFAULT_CONFIG)
    cost: CapstanCostModel = dataclasses.field(default=DEFAULT_COST)
    outer_par: int = 16
    #: Cycles per sparse element without sparse fetch units (calibrated).
    cycles_per_elem: float = 2.0

    def predict_seconds(self, stats: WorkloadStats, dram: DramModel = HBM2E) -> float:
        par = self.outer_par
        compute_cycles = 0.0
        for loop in stats.loops:
            if loop.is_innermost:
                compute_cycles += loop.iters * self.cycles_per_elem / par
            else:
                compute_cycles += loop.iters * self.cost.mid_loop_cycles / par
            # Without sparse fetch units, each segment restart stalls the
            # scalar address pipeline.
            compute_cycles += loop.launches * 4.0 / par
            compute_cycles += self.cost.pattern_fill_cycles
        compute_s = compute_cycles / self.config.clock_hz
        dram_s = dram.transfer_seconds(stats.dram_total_bytes, stats.dram_bursts)
        return max(compute_s, dram_s) * (1.0 + self.cost.serial_fraction)
