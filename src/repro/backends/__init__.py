"""Comparison backends: CPU (TACO), GPU (TACO-CUDA), handwritten Spatial."""

from repro.backends.cpu import CpuBackend, CpuCodegen, lower_cpu
from repro.backends.cpu_exec import CpuExecutor, execute_cpu
from repro.backends.gpu import GpuBackend
from repro.backends.handwritten import (
    HANDWRITTEN_CAPSTAN_SPMV,
    HandwrittenCapstanSpMV,
    HandwrittenPlasticineSpMV,
    handwritten_capstan_loc,
)

__all__ = [
    "CpuBackend",
    "CpuCodegen",
    "CpuExecutor",
    "GpuBackend",
    "HANDWRITTEN_CAPSTAN_SPMV",
    "HandwrittenCapstanSpMV",
    "HandwrittenPlasticineSpMV",
    "execute_cpu",
    "handwritten_capstan_loc",
    "lower_cpu",
]
