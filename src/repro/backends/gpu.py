"""GPU baseline: a V100 model of TACO-generated CUDA (Section 8.1).

TACO's GPU backend does not support sparse tensor outputs, so result
tensors are fully dense on the device; the paper observes that "most of
the time is spent zero initializing the fully dense result tensor — which
is often extremely large — in device memory" (Section 8.4). The model
therefore charges:

* a slow dense-output initialisation for kernels whose result format is
  compressed (what TACO must densify),
* memory traffic at HBM2 bandwidth with a sparse-efficiency factor,
* irregular-access time for gathers/merges (warp divergence, atomics), and
* kernel launch overhead.

Kernels with naturally dense (and small) outputs — SpMV, MatTransMul,
Residual, MTTKRP, InnerProd — avoid the initialisation penalty, which is
why their GPU slowdowns in Table 6 are single-digit.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.capstan.calibration import DEFAULT_GPU, GpuModel
from repro.capstan.stats import WorkloadStats
from repro.core.compiler import CompiledKernel


@dataclasses.dataclass
class GpuBackend:
    """Performance model of TACO-generated CUDA on a V100."""

    model: GpuModel = dataclasses.field(default_factory=lambda: DEFAULT_GPU)

    def dense_output_bytes(self, kernel: CompiledKernel) -> int:
        """Size of the densified result TACO's GPU backend materialises."""
        out = kernel.analysis.output
        if out.order == 0:
            return 4
        return int(np.prod(out.shape)) * 4

    def output_needs_densify(self, kernel: CompiledKernel) -> bool:
        return kernel.analysis.output.format.has_compressed_level

    def predict_seconds(self, kernel: CompiledKernel, stats: WorkloadStats) -> float:
        m = self.model
        dense_out = self.dense_output_bytes(kernel)
        densify = self.output_needs_densify(kernel)
        if densify:
            init_s = dense_out / (m.dense_init_gb_s * 1e9)
        else:
            # Naturally dense output: initialised at full memset bandwidth.
            init_s = dense_out / (m.bandwidth_gb_s * 1e9)
        traffic = stats.dram_read_bytes + dense_out
        mem_s = traffic / (m.bandwidth_gb_s * 1e9 * m.efficiency)
        irr_s = stats.gather_elems * m.irregular_seconds
        # Sparse innermost loops writing a densified result take TACO's
        # warp-serial merge/scatter path; co-iterations pay a two-way merge
        # over both operands' coordinates; nested sparse traversal pays a
        # warp-divergence cost.
        serial_s = 0.0
        for loop in stats.loops:
            if loop.kind == "scan":
                serial_s += loop.bv_coords * m.merge_seconds
                if densify:
                    serial_s += loop.iters * m.serial_sparse_seconds
            elif loop.kind == "compressed":
                if densify and loop.is_innermost:
                    serial_s += loop.iters * m.serial_sparse_seconds
                elif not loop.is_innermost:
                    serial_s += loop.iters * m.divergence_seconds
        flop_s = stats.flops / (m.peak_flops * m.efficiency)
        return max(mem_s, irr_s, flop_s) + serial_s + init_s + m.launch_seconds
