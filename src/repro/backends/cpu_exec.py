"""Executable CPU backend: direct interpretation of scheduled CIN.

Where :func:`repro.backends.cpu.lower_cpu` *generates* TACO-style C, this
module *executes* the same semantics in Python, iterating the packed
sparse storage the way the generated merge loops would: dense loops walk
the dimension, compressed loops walk position segments, and co-iteration
visits exactly the coordinates of the merge lattice
(:mod:`repro.ir.lattice`). Unlike the Capstan path it has no two-operand
scanner restriction — n-ary unions (Plus3 without its workspace schedule)
execute directly, as TACO's multi-way merges do.

This gives the test suite a third independent implementation to compare
against the Spatial interpreter and the dense reference, and its per-loop
visit counters cross-check the workload statistics the simulator uses.
"""

from __future__ import annotations

import collections
from typing import Optional

import numpy as np

from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    MapCall,
    SuchThat,
    Where,
)
from repro.ir.index_notation import (
    Access,
    Add,
    Assignment,
    IndexExpr,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
)
from repro.ir.lattice import MergeLattice, build_lattice, iteration_space
from repro.schedule.stmt import IndexStmt
from repro.tensor.storage import CompressedLevel
from repro.tensor.tensor import Tensor


class CpuExecutor:
    """Interprets a (scheduled or bare) statement over packed storage."""

    def __init__(self, stmt: IndexStmt | Assignment) -> None:
        if isinstance(stmt, Assignment):
            stmt = IndexStmt.from_assignment(stmt)
        self.stmt = stmt
        self.cin = stmt.cin
        assigns = self.cin.assignments()
        if not assigns:
            raise ValueError("statement has no assignment")
        ws_ids = {id(a.lhs.tensor) for a in assigns if a.lhs.tensor.is_on_chip}
        self.output: Tensor = next(
            a.lhs.tensor for a in assigns if id(a.lhs.tensor) not in ws_ids
        )
        # Execution state.
        self.coord: dict[int, int] = {}  # id(ivar) -> coordinate
        self.segpos: dict[int, Optional[int]] = {}  # id(access) -> position
        self.dense_vals: dict[int, np.ndarray] = {}
        self.workspaces: dict[int, np.ndarray] = {}
        self.out = np.zeros(self.output.shape or (1,), dtype=np.float64)
        self.visits: collections.Counter[str] = collections.Counter()
        self._lattice_cache: dict[tuple[int, int], MergeLattice] = {}

    # -- values -----------------------------------------------------------------

    def _dense(self, tensor: Tensor) -> np.ndarray:
        arr = self.dense_vals.get(id(tensor))
        if arr is None:
            arr = tensor.to_dense()
            self.dense_vals[id(tensor)] = arr
        return arr

    def value(self, access: Access) -> float:
        t = access.tensor
        if t.is_on_chip:
            buf = self.workspaces.get(id(t))
            if buf is None:
                return 0.0
            if t.order == 0:
                return float(buf[0])
            idx = tuple(self.coord[id(v)] for v in access.indices)
            return float(buf[idx])
        if id(access) in self.segpos and self.segpos[id(access)] is None:
            return 0.0  # absent at this coordinate (union gap)
        if t.order == 0:
            return t.scalar_value()
        idx = tuple(self.coord[id(v)] for v in access.indices)
        return float(self._dense(t)[idx])

    def eval(self, expr: IndexExpr) -> float:
        if isinstance(expr, Literal):
            return float(expr.value)
        if isinstance(expr, Access):
            return self.value(expr)
        if isinstance(expr, Add):
            return self.eval(expr.a) + self.eval(expr.b)
        if isinstance(expr, Sub):
            return self.eval(expr.a) - self.eval(expr.b)
        if isinstance(expr, Mul):
            return self.eval(expr.a) * self.eval(expr.b)
        if isinstance(expr, Neg):
            return -self.eval(expr.a)
        raise TypeError(type(expr).__name__)

    # -- iteration ----------------------------------------------------------------

    def _dim_of(self, ivar: IndexVar) -> int:
        for asg in self.cin.assignments():
            for acc in (asg.lhs, *asg.rhs.accesses()):
                mode = acc.mode_of(ivar)
                if mode is not None:
                    return acc.tensor.shape[mode]
        raise KeyError(f"no dimension for {ivar}")

    def _segment_coords(self, access: Access, ivar: IndexVar):
        """(coords array, coord -> position map) of the access's segment at
        ``ivar``, or None for dense/unpositioned levels."""
        t = access.tensor
        if t.is_on_chip:
            buf = self.workspaces.get(id(t))
            if buf is None:
                return np.zeros(0, dtype=np.int64), {}
            coords = np.nonzero(buf)[0]
            return coords, {int(c): int(c) for c in coords}
        mode = access.mode_of(ivar)
        level = t.format.level_of_mode(mode)
        lvl = t.storage.levels[level]
        if not isinstance(lvl, CompressedLevel):
            return None
        parent = self._parent_position(access, level)
        if parent is None:
            return np.zeros(0, dtype=np.int64), {}
        start, end = lvl.segment(parent)
        coords = lvl.crd[start:end].astype(np.int64)
        return coords, {int(c): start + k for k, c in enumerate(coords)}

    def _parent_position(self, access: Access, level: int) -> Optional[int]:
        """Position of the level's parent from bound coordinates."""
        t = access.tensor
        fmt = t.format
        pos = 0
        for L in range(level):
            lvl = t.storage.levels[L]
            c = self.coord.get(id(access.indices[fmt.mode_of_level(L)]))
            if c is None:
                raise KeyError(
                    f"{t.name} level {L} coordinate unbound at level {level}"
                )
            if isinstance(lvl, CompressedLevel):
                start, end = lvl.segment(pos)
                sub = lvl.crd[start:end]
                k = np.searchsorted(sub, c)
                if k == len(sub) or sub[k] != c:
                    return None  # fiber absent
                pos = start + int(k)
            else:
                pos = pos * lvl.size + c
        return pos

    # -- statement walk --------------------------------------------------------------

    def run(self) -> np.ndarray:
        self.walk(self.cin)
        return self.out.reshape(self.output.shape) if self.output.order else self.out

    def walk(self, stmt: CinStmt) -> None:
        if isinstance(stmt, SuchThat):
            self.walk(stmt.body)
        elif isinstance(stmt, MapCall):
            self.walk(stmt.original)
        elif isinstance(stmt, CinSequence):
            for s in stmt.stmts:
                self.walk(s)
        elif isinstance(stmt, Where):
            # A fresh workspace per where evaluation.
            for asg in stmt.producer.assignments():
                t = asg.lhs.tensor
                if t.is_on_chip:
                    shape = t.shape or (1,)
                    self.workspaces[id(t)] = np.zeros(shape, dtype=np.float64)
            self.walk(stmt.producer)
            self.walk(stmt.consumer)
        elif isinstance(stmt, Forall):
            self.walk_forall(stmt)
        elif isinstance(stmt, CinAssign):
            self.assign(stmt)
        else:  # pragma: no cover - defensive
            raise TypeError(type(stmt).__name__)

    def walk_forall(self, forall: Forall) -> None:
        ivar = forall.ivar
        dim = self._dim_of(ivar)
        assigns = forall.assignments()
        # Gather sparse segments per access and build the merge lattice of
        # the combined expression(s).
        seg: dict[int, tuple] = {}
        coords_of: dict[int, np.ndarray] = {}
        lattice = None
        for asg in assigns:
            lat = self._lattice_for(asg.rhs, ivar)
            if lat.is_neutral:
                continue  # this statement does not involve ivar
            lattice = lat if lattice is None else self._join(lattice, lat)
            for acc in asg.rhs.accesses():
                if acc.mode_of(ivar) is None:
                    continue
                got = self._segment_coords(acc, ivar)
                if got is not None:
                    seg[id(acc)] = got
                    coords_of[id(acc.tensor)] = got[0]
        if lattice is None or lattice.has_universe or not lattice.points:
            space = np.arange(dim, dtype=np.int64)
        else:
            space = iteration_space(lattice, coords_of, dim)
        for c in space:
            c = int(c)
            self.coord[id(ivar)] = c
            self.visits[ivar.name] += 1
            for asg in assigns:
                for acc in asg.rhs.accesses():
                    if id(acc) in seg:
                        self.segpos[id(acc)] = seg[id(acc)][1].get(c)
            self.walk(forall.body)
        self.coord.pop(id(ivar), None)

    def _lattice_for(self, expr: IndexExpr, ivar: IndexVar) -> MergeLattice:
        key = (id(expr), id(ivar))
        lat = self._lattice_cache.get(key)
        if lat is None:
            lat = build_lattice(expr, ivar)
            self._lattice_cache[key] = lat
        return lat

    @staticmethod
    def _join(a: MergeLattice, b: MergeLattice) -> MergeLattice:
        """Union of two statements' iteration requirements."""
        if a.has_universe or b.has_universe:
            return MergeLattice(a.ivar, a.sparse + b.sparse, True, ())
        points = tuple(dict.fromkeys(a.points + b.points))
        return MergeLattice(a.ivar, a.sparse + b.sparse, False, points)

    def assign(self, asg: CinAssign) -> None:
        # Reduction semantics apply per additive term: terms whose segment
        # positions are absent contribute zero (handled by `value`).
        total = self.eval(asg.rhs)
        t = asg.lhs.tensor
        if t.is_on_chip:
            buf = self.workspaces.setdefault(
                id(t), np.zeros(t.shape or (1,), dtype=np.float64)
            )
            idx = tuple(self.coord[id(v)] for v in asg.lhs.indices) or (0,)
            if asg.accumulate:
                buf[idx] += total
            else:
                buf[idx] = total
            return
        idx = tuple(self.coord[id(v)] for v in asg.lhs.indices) or (0,)
        if asg.accumulate:
            self.out[idx] += total
        else:
            self.out[idx] = total


def execute_cpu(stmt: IndexStmt | Assignment) -> np.ndarray:
    """Execute a statement with the CPU interpreter; returns the dense
    result array."""
    return CpuExecutor(stmt).run()
