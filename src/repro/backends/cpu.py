"""CPU baseline: TACO-style imperative lowering and a Xeon cost model.

The paper's CPU baseline is TACO-generated C++ (OpenMP, 128 threads on a
four-socket Xeon E7-8890 v3). This module provides both halves of that
baseline:

* :func:`lower_cpu` — an imperative code generator that lowers the same
  scheduled CIN to C-like nested loops (Figure 4a's programming model:
  for-loops from foralls, one element per access, computation in the
  innermost loop, temporally repeated accumulation). Compressed-compressed
  co-iteration lowers to TACO's two-way merge ``while`` loops, in contrast
  to Stardust's bit-vector scanners (Section 9 discusses exactly this
  difference).
* :class:`CpuBackend` — an analytic performance model over the same
  workload statistics the Capstan simulator consumes, calibrated to the
  Section 8.1 machine.
"""

from __future__ import annotations

import dataclasses

from repro.capstan.calibration import DEFAULT_CPU, CpuModel
from repro.capstan.stats import WorkloadStats
from repro.core.compiler import CompiledKernel
from repro.core.coiteration import LoweringError
from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    MapCall,
    SuchThat,
    Where,
)
from repro.ir.index_notation import (
    Access,
    Add,
    IndexExpr,
    Literal,
    Mul,
    Neg,
    Sub,
)
from repro.schedule.stmt import IndexStmt

_INDENT = "  "


class CpuCodegen:
    """Emits TACO-style imperative C for a scheduled statement."""

    def __init__(self, stmt: IndexStmt, name: str) -> None:
        from repro.core.memory_analysis import analyze

        self.stmt = stmt
        self.name = name
        self.analysis = analyze(stmt)
        self.lines: list[str] = []
        self.depth = 0
        self._pos: dict[tuple[int, int], str] = {}

    def emit(self, text: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text}")

    def generate(self) -> str:
        out = self.analysis.output
        args = sorted({t.name for t in (out, *self.analysis.inputs)})
        self.emit(f"// TACO-style CPU kernel: {self.name}")
        self.emit(f"int compute_{self.name}({', '.join('taco_tensor_t *' + a for a in args)}) {{")
        self.depth += 1
        self.lower(self._strip(self.stmt.cin))
        self.emit("return 0;")
        self.depth -= 1
        self.emit("}")
        return "\n".join(self.lines) + "\n"

    @staticmethod
    def _strip(stmt: CinStmt) -> CinStmt:
        while isinstance(stmt, SuchThat):
            stmt = stmt.body
        return stmt

    # -- statements -----------------------------------------------------------

    def lower(self, stmt: CinStmt) -> None:
        if isinstance(stmt, SuchThat):
            self.lower(stmt.body)
        elif isinstance(stmt, Forall):
            self.lower_forall(stmt)
        elif isinstance(stmt, Where):
            for asg in stmt.producer.assignments():
                t = asg.lhs.tensor
                if t.is_on_chip and t.order == 0:
                    self.emit(f"double {t.name} = 0.0;")
            self.lower(stmt.producer)
            self.lower(stmt.consumer)
        elif isinstance(stmt, CinSequence):
            for s in stmt.stmts:
                self.lower(s)
        elif isinstance(stmt, MapCall):
            # The CPU has no accelerated patterns: lower the original loop.
            self.lower(stmt.original)
        elif isinstance(stmt, CinAssign):
            self.lower_assign(stmt)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"cannot lower {type(stmt).__name__}")

    def lower_forall(self, forall: Forall) -> None:
        info = self.analysis.info(forall.ivar)
        strategy = info.strategy
        v = forall.ivar.name
        if strategy.kind == "dense":
            dim = self._dim_of(forall.ivar)
            omp = "  // #pragma omp parallel for" if info.depth == 0 else ""
            self.emit(f"for (int {v} = 0; {v} < {dim}; {v}++) {{{omp}")
            self.depth += 1
            self.lower(forall.body)
            self.depth -= 1
            self.emit("}")
        elif strategy.kind == "compressed":
            it = strategy.driving[0]
            t, L = it.tensor.name, it.level + 1
            parent = self._parent_pos(it)
            p = f"p{t}{L}"
            self.emit(
                f"for (int {p} = {t}{L}_pos[{parent}]; "
                f"{p} < {t}{L}_pos[{parent} + 1]; {p}++) {{"
            )
            self.depth += 1
            self.emit(f"int {v} = {t}{L}_crd[{p}];")
            self._pos[(id(it.tensor), it.level)] = p
            self.lower(forall.body)
            self.depth -= 1
            self.emit("}")
        else:  # scan -> two-way merge while loops (TACO lowering)
            self._lower_merge(forall, strategy)

    def _lower_merge(self, forall: Forall, strategy) -> None:
        v = forall.ivar.name
        its = strategy.driving
        if len(its) != 2:
            raise LoweringError("CPU merge lowering expects two operands")
        names = []
        for it in its:
            t, L = it.tensor.name, it.level + 1
            parent = self._parent_pos(it)
            p = f"p{t}{L}"
            self.emit(f"int {p} = {t}{L}_pos[{parent}];")
            self.emit(f"int {p}_end = {t}{L}_pos[{parent} + 1];")
            names.append((p, t, L, it))
        (pa, ta, La, ita), (pb, tb, Lb, itb) = names
        union = strategy.op == "or"
        cond = f"{pa} < {pa}_end && {pb} < {pb}_end"
        self.emit(f"while ({cond}) {{")
        self.depth += 1
        self.emit(f"int {v}_a = {ta}{La}_crd[{pa}];")
        self.emit(f"int {v}_b = {tb}{Lb}_crd[{pb}];")
        self.emit(f"int {v} = {v}_a < {v}_b ? {v}_a : {v}_b;")
        self._pos[(id(ita.tensor), ita.level)] = pa
        self._pos[(id(itb.tensor), itb.level)] = pb
        if union:
            self.emit(f"if ({v}_a == {v} && {v}_b == {v}) {{")
            self.depth += 1
            self.lower(forall.body)
            self.depth -= 1
            self.emit(f"}} else if ({v}_a == {v}) {{")
            self.depth += 1
            self.emit("// b absent: its operand contributes zero")
            self.lower(forall.body)
            self.depth -= 1
            self.emit("} else {")
            self.depth += 1
            self.emit("// a absent: its operand contributes zero")
            self.lower(forall.body)
            self.depth -= 1
            self.emit("}")
        else:
            self.emit(f"if ({v}_a == {v} && {v}_b == {v}) {{")
            self.depth += 1
            self.lower(forall.body)
            self.depth -= 1
            self.emit("}")
        self.emit(f"{pa} += (int)({v}_a == {v});")
        self.emit(f"{pb} += (int)({v}_b == {v});")
        self.depth -= 1
        self.emit("}")
        if union:
            for p, t, L, it in names:
                self.emit(f"while ({p} < {p}_end) {{")
                self.depth += 1
                self.emit(f"int {v} = {t}{L}_crd[{p}];")
                self.lower(forall.body)
                self.emit(f"{p}++;")
                self.depth -= 1
                self.emit("}")

    def lower_assign(self, asg: CinAssign) -> None:
        lhs = self._lhs_ref(asg.lhs)
        op = "+=" if asg.accumulate else "="
        self.emit(f"{lhs} {op} {self._expr(asg.rhs)};")

    # -- expressions / addressing -----------------------------------------------

    def _dim_of(self, ivar) -> str:
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                mode = acc.mode_of(ivar)
                if mode is not None:
                    level = acc.tensor.format.level_of_mode(mode)
                    return f"{acc.tensor.name}{level + 1}_dim"
        raise LoweringError(f"no dimension for {ivar}")

    def _parent_pos(self, it) -> str:
        if it.level == 0:
            return "0"
        prior = self._pos.get((id(it.tensor), it.level - 1))
        if prior is not None:
            return prior
        # Dense parent: linearised position expression.
        return self._dense_pos(it.tensor, it.level - 1)

    def _dense_pos(self, tensor, level: int) -> str:
        fmt = tensor.format
        access = self._access_for(tensor)
        expr = "0"
        for L in range(level + 1):
            p = self._pos.get((id(tensor), L))
            if p is not None:
                expr = p
                continue
            var = access.indices[fmt.mode_of_level(L)].name
            dim = f"{tensor.name}{L + 1}_dim"
            expr = var if expr == "0" else f"({expr} * {dim} + {var})"
        return expr

    def _access_for(self, tensor):
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                if acc.tensor is tensor:
                    return acc
        raise LoweringError(f"no access for {tensor.name}")

    def _lhs_ref(self, access: Access) -> str:
        t = access.tensor
        if t.order == 0:
            return f"{t.name}_val" if not t.is_on_chip else t.name
        return f"{t.name}_vals[{self._vals_pos(access)}]"

    def _vals_pos(self, access: Access) -> str:
        t = access.tensor
        fmt = t.format
        last = fmt.order - 1
        if fmt.level_format(last).is_compressed:
            p = self._pos.get((id(t), last))
            if p is not None:
                return p
        return self._dense_pos(t, last)

    def _expr(self, e: IndexExpr) -> str:
        if isinstance(e, Literal):
            return repr(float(e.value))
        if isinstance(e, Access):
            t = e.tensor
            if t.order == 0:
                return t.name if t.is_on_chip else f"{t.name}_val"
            return f"{t.name}_vals[{self._vals_pos(e)}]"
        if isinstance(e, Add):
            return f"({self._expr(e.a)} + {self._expr(e.b)})"
        if isinstance(e, Sub):
            return f"({self._expr(e.a)} - {self._expr(e.b)})"
        if isinstance(e, Mul):
            return f"({self._expr(e.a)} * {self._expr(e.b)})"
        if isinstance(e, Neg):
            return f"(-{self._expr(e.a)})"
        raise LoweringError(f"cannot lower expression {type(e).__name__}")


def lower_cpu(stmt: IndexStmt, name: str = "kernel") -> str:
    """Generate TACO-style imperative C for a scheduled statement."""
    return CpuCodegen(stmt, name).generate()


@dataclasses.dataclass
class CpuBackend:
    """Performance model of TACO-generated OpenMP code on the Xeon."""

    model: CpuModel = dataclasses.field(default_factory=lambda: DEFAULT_CPU)

    def predict_seconds(self, kernel: CompiledKernel, stats: WorkloadStats) -> float:
        m = self.model
        work_cycles = 0.0
        miss_elems = 0
        merge_elems = 0
        for loop in stats.loops:
            if loop.kind == "scan":
                # TACO lowers co-iteration to branchy two-way merges; the
                # merge visits the union of coordinates regardless of op,
                # and merge branches are latency-bound (tracked apart).
                merge_elems += loop.iters
            elif loop.kind == "compressed":
                work_cycles += loop.iters * m.cycles_per_sparse_elem
                if not loop.is_innermost:
                    # Nested fiber traversal: cold-cache pointer chasing.
                    miss_elems += loop.iters
            elif loop.is_innermost:
                work_cycles += loop.iters / m.dense_elems_per_cycle
            else:
                work_cycles += loop.iters * 2.0
        threads_eff = m.threads * m.parallel_efficiency
        from repro.ir.cin import CinSequence

        if any(isinstance(s, CinSequence) for s in kernel.stmt.cin.walk()):
            # TACO emits compound kernels (init + accumulate statements)
            # without a parallel outer loop.
            threads_eff = m.compound_threads
        work_s = work_cycles / (m.clock_hz * threads_eff)
        gather_s = stats.gather_elems * m.gather_seconds / threads_eff
        # Latency-bound irregular work does not scale across sockets.
        miss_s = miss_elems * m.cache_miss_seconds / m.irregular_threads
        merge_s = (merge_elems * m.cycles_per_merge_elem
                   / (m.clock_hz * m.irregular_threads))
        # Strided slice traffic (e.g. SDDMM's per-nonzero factor columns)
        # does not stream on the CPU: it is a random-access pattern.
        slice_bytes = stats.slice_read_bytes
        stream_bytes = stats.dram_total_bytes - slice_bytes
        bw_s = stream_bytes / (m.bandwidth_gb_s * 1e9) + slice_bytes / (
            m.bandwidth_gb_s * 1e9 * m.slice_bandwidth_fraction
        )
        return max(work_s + gather_s + miss_s + merge_s, bw_s) + m.launch_seconds
