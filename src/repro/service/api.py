"""The typed compile-request API: one entry point for every caller.

Historically each caller reached into ``eval/harness.py`` through
positional ``(kernel_name, dataset_name, scale, ...)`` functions, which
made a serving layer impossible: there was no request object to put on
the wire, no canonical form to key a cache on, and no single result type
to compare across execution paths. This module is that entry point now:

* :class:`CompileRequest` — a frozen dataclass naming *what* to do
  (``action``: compile or evaluate) and *on what* (kernel, dataset,
  scale, seed, platform filter, execution engine). Its
  :meth:`~CompileRequest.canonical_json` form — defaults resolved, keys
  sorted, compact separators — **is** the cache-key derivation: the
  staged result entry is keyed on exactly that string, so the CLI, the
  batch runner, a dispatch worker, and the ``repro serve`` daemon all
  hit the same entry for the same request no matter how it was spelled.
* :class:`CompileResult` — the matching result dataclass with a
  deterministic :meth:`~CompileResult.to_json` rendering (sorted keys,
  no volatile fields), so a daemon response is byte-identical to a
  serial :func:`evaluate` of the same request.
* :func:`build` / :func:`compile` / :func:`evaluate` /
  :func:`execute` — the verbs, each memoized through the staged cache
  (:mod:`repro.pipeline.cache`); :func:`cached` peeks for a finished
  result without computing (the daemon's hot path).

``eval/harness.py`` keeps thin back-compat wrappers over these verbs
(the old positional signatures emit ``DeprecationWarning``); the
artefact orchestration (tables/figures) stays there and in
``pipeline/batch.py``, now expressed on top of this module.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any

from repro.core.compiler import ENGINES
from repro.obs import trace as _trace

__all__ = [
    "ACTIONS",
    "BASELINE_PLATFORM",
    "CompileRequest",
    "CompileResult",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "EngineMismatchError",
    "PLATFORMS",
    "PlatformTimes",
    "build",
    "cached",
    "compile",
    "evaluate",
    "exec_check",
    "execute",
    "first_dataset",
    "load_dataset",
    "partition",
    "pipeline",
]

#: Default dataset scale; override with REPRO_SCALE (1.0 = full Table 4).
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

#: Default dataset-generation seed (the Table 4 synthetic datasets).
DEFAULT_SEED = 7

#: Request verbs: ``compile`` renders the kernel (source, LoC, memory
#: plan); ``evaluate`` predicts per-platform runtimes (Table 6 cells);
#: ``pipeline`` plans and runs a fused expression pipeline (the
#: ``kernel`` field carries the pipeline name); ``partition`` row-blocks
#: one kernel into ``partition`` sub-kernels and reduces the partials
#: (SpDISTAL-style single-kernel distribution).
ACTIONS = ("compile", "evaluate", "pipeline", "partition")

PLATFORMS = (
    "Capstan (Ideal)",
    "Capstan (HBM2E)",
    "Capstan (DDR4)",
    "V100 GPU",
    "128-Thread CPU",
)

#: The normalisation baseline of Table 6 / Figure 13.
BASELINE_PLATFORM = "Capstan (HBM2E)"


def first_dataset(kernel_name: str) -> str:
    """The kernel's first Table 4 dataset (used for structural artefacts)."""
    from repro.data.datasets import datasets_for

    return datasets_for(kernel_name)[0].name


class EngineMismatchError(AssertionError):
    """A functional execution engine disagreed with the interpreter oracle."""


# ---------------------------------------------------------------------------
# The request
# ---------------------------------------------------------------------------

_REQUEST_FIELDS = ("action", "kernel", "dataset", "scale", "seed",
                   "platforms", "engine", "fuse", "partition", "split")


@dataclasses.dataclass(frozen=True)
class CompileRequest:
    """One unit of compiler work, in canonical, wire-ready form.

    ``dataset=None`` and ``scale=None`` resolve to the kernel's first
    Table 4 dataset and :data:`DEFAULT_SCALE`; ``platforms`` restricts
    an evaluate to those platform names; ``engine`` (one of
    :data:`~repro.core.compiler.ENGINES`) additionally executes the
    kernel functionally and validates it against the interpreter oracle.
    Two requests with the same :meth:`canonical_json` are the same work
    and share one staged-cache entry.
    """

    kernel: str
    dataset: str | None = None
    scale: float | None = None
    seed: int = DEFAULT_SEED
    platforms: tuple[str, ...] | None = None
    engine: str | None = None
    action: str = "evaluate"
    fuse: bool = True
    partition: int = 1
    split: str = "row"

    def resolved(self) -> CompileRequest:
        """Defaults filled in and every field validated.

        Raises ``ValueError`` for an unknown action, kernel, dataset, or
        engine, and for a non-positive scale. Platform names are checked
        later, against the evaluated kernel's model set (SpMV has extra
        handwritten baselines).
        """
        from repro.data.datasets import datasets_for
        from repro.kernels.suite import KERNELS

        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; choose from {ACTIONS}")
        if self.action == "pipeline":
            return self._resolved_pipeline()
        if self.action == "partition":
            return self._resolved_partition()
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from "
                f"{sorted(KERNELS)}")
        specs = datasets_for(self.kernel)
        dataset = self.dataset if self.dataset is not None else specs[0].name
        if dataset not in {d.name for d in specs}:
            raise ValueError(
                f"unknown dataset {dataset!r} for {self.kernel}; choose "
                f"from {[d.name for d in specs]}")
        scale = DEFAULT_SCALE if self.scale is None else float(self.scale)
        if not scale > 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}")
        platforms = self.platforms
        if platforms is not None:
            platforms = tuple(str(p) for p in platforms)
        # A compile renders the kernel only: platform filters and engine
        # checks do not change its result, so canonicalise them away —
        # every spelling of "compile SpMV on bcsstk30" shares one entry.
        if self.action == "compile":
            platforms = None
        engine = None if self.action == "compile" else self.engine
        return dataclasses.replace(self, dataset=dataset, scale=scale,
                                   seed=int(self.seed), platforms=platforms,
                                   engine=engine, fuse=True)

    def _resolved_pipeline(self) -> CompileRequest:
        """Resolution for pipeline requests: ``kernel`` names a pipeline
        from the :data:`repro.pipeline.fusion.PIPELINES` registry and the
        dataset comes from the pipeline's own evaluation set."""
        from repro.pipeline.fusion import PIPELINES

        spec = PIPELINES.get(self.kernel)
        if spec is None:
            raise ValueError(
                f"unknown pipeline {self.kernel!r}; choose from "
                f"{sorted(PIPELINES)}")
        dataset = self.dataset if self.dataset is not None else spec.datasets[0]
        if dataset not in spec.datasets:
            raise ValueError(
                f"unknown dataset {dataset!r} for pipeline {self.kernel}; "
                f"choose from {list(spec.datasets)}")
        scale = DEFAULT_SCALE if self.scale is None else float(self.scale)
        if not scale > 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}")
        return dataclasses.replace(self, dataset=dataset, scale=scale,
                                   seed=int(self.seed), platforms=None,
                                   fuse=bool(self.fuse))

    def _resolved_partition(self) -> CompileRequest:
        """Resolution for partition requests: the kernel must be
        row-partitionable and the dataset one of its matrix datasets;
        ``partition`` is the block count and ``split`` the iteration-
        space dimension (``row`` or ``sum``)."""
        from repro.data.datasets import datasets_for
        from repro.pipeline.partition import PARTITION_FORMATS, PARTITION_MODES

        if self.kernel not in PARTITION_FORMATS:
            raise ValueError(
                f"kernel {self.kernel!r} is not partitionable; choose from "
                f"{sorted(PARTITION_FORMATS)}")
        specs = datasets_for(self.kernel)
        dataset = self.dataset if self.dataset is not None else specs[0].name
        if dataset not in {d.name for d in specs}:
            raise ValueError(
                f"unknown dataset {dataset!r} for {self.kernel}; choose "
                f"from {[d.name for d in specs]}")
        scale = DEFAULT_SCALE if self.scale is None else float(self.scale)
        if not scale > 0:
            raise ValueError(f"scale must be positive, got {scale}")
        try:
            count = int(self.partition)
        except (TypeError, ValueError):
            raise ValueError("'partition' must be an integer") from None
        if count < 1:
            raise ValueError(f"partition count must be >= 1, got {count}")
        if self.split not in PARTITION_MODES:
            raise ValueError(
                f"unknown split {self.split!r}; choose from "
                f"{PARTITION_MODES}")
        if int(self.seed) != DEFAULT_SEED:
            raise ValueError(
                f"partition requests run on the fixed evaluation seed "
                f"{DEFAULT_SEED}, got {self.seed}")
        # The block product is its own vectorized path: engine and
        # platform filters do not change its result, so canonicalise
        # them away like compile does.
        return dataclasses.replace(self, dataset=dataset, scale=scale,
                                   seed=DEFAULT_SEED, platforms=None,
                                   engine=None, fuse=True,
                                   partition=count)

    def canonical(self) -> dict[str, Any]:
        """The defaults-resolved request as a plain JSON-able dict."""
        r = self.resolved()
        out = {
            "action": r.action,
            "kernel": r.kernel,
            "dataset": r.dataset,
            "scale": r.scale,
            "seed": r.seed,
            "platforms": list(r.platforms) if r.platforms is not None else None,
            "engine": r.engine,
        }
        # Only pipeline requests carry a fuse flag on the wire, and only
        # partition requests carry a block count and split, so the
        # canonical form (and hence every cache key) of the other
        # actions is byte-identical to what it was before each feature.
        if r.action == "pipeline":
            out["fuse"] = r.fuse
        if r.action == "partition":
            out["partition"] = r.partition
            out["split"] = r.split
        return out

    def canonical_json(self) -> str:
        """The canonical wire form — and the cache-key derivation.

        Sorted keys and compact separators make this byte-stable across
        processes; :func:`evaluate`/:func:`compile` key their staged
        result entry on exactly this string.
        """
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def stage(self) -> str:
        """The cache stage the request's result is memoized under."""
        if self.action == "pipeline":
            return "pipeline"
        if self.action == "partition":
            return "partition"
        return "evaluate" if self.action == "evaluate" else "compile"

    @classmethod
    def from_dict(cls, data: Any) -> CompileRequest:
        """Parse a wire dict, rejecting unknown fields (typed API)."""
        if not isinstance(data, dict):
            raise ValueError("request must be a JSON object")
        unknown = sorted(set(data) - set(_REQUEST_FIELDS))
        if unknown:
            raise ValueError(f"unknown request field(s) {unknown}; "
                             f"expected {sorted(_REQUEST_FIELDS)}")
        if "kernel" not in data or not data["kernel"]:
            raise ValueError("request needs a 'kernel'")
        platforms = data.get("platforms")
        if platforms is not None:
            if isinstance(platforms, str):
                raise ValueError("'platforms' must be a list of names")
            platforms = tuple(str(p) for p in platforms)
        scale = data.get("scale")
        seed = data.get("seed", DEFAULT_SEED)
        try:
            scale = float(scale) if scale is not None else None
            seed = int(seed)
        except (TypeError, ValueError):
            raise ValueError("'scale' must be a number and 'seed' an "
                             "integer") from None
        fuse = data.get("fuse", True)
        if not isinstance(fuse, bool):
            raise ValueError("'fuse' must be a boolean")
        partition = data.get("partition", 1)
        if isinstance(partition, bool) or not isinstance(partition, int):
            raise ValueError("'partition' must be an integer block count")
        split = data.get("split", "row")
        if not isinstance(split, str):
            raise ValueError("'split' must be a string")
        return cls(
            kernel=str(data["kernel"]),
            dataset=(str(data["dataset"])
                     if data.get("dataset") is not None else None),
            scale=scale,
            seed=seed,
            platforms=platforms,
            engine=(str(data["engine"])
                    if data.get("engine") is not None else None),
            action=str(data.get("action", "evaluate")),
            fuse=fuse,
            partition=partition,
            split=split,
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> CompileRequest:
        try:
            data = json.loads(text or "{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"request is not valid JSON: {exc}") from None
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# The result
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class PlatformTimes:
    """Predicted seconds per platform for one kernel+dataset."""

    kernel: str
    dataset: str
    seconds: dict[str, float]

    def normalised(self) -> dict[str, float]:
        base = self.seconds[BASELINE_PLATFORM]
        return {p: s / base for p, s in self.seconds.items()}


@dataclasses.dataclass(frozen=True)
class CompileResult:
    """The result of one :class:`CompileRequest`, wire-ready.

    Evaluate requests fill ``seconds`` (and ``exec_summary`` when an
    engine check ran); compile requests fill ``source`` /
    ``spatial_loc`` / ``input_loc`` / ``memory_report``.
    :meth:`to_json` is deterministic — sorted keys, no timestamps — so
    any two paths that computed the same request (serial call, batch
    cell, daemon response, queue worker) render identical bytes.
    """

    request: CompileRequest
    seconds: dict[str, float] | None = None
    exec_summary: dict[str, Any] | None = None
    source: str | None = None
    spatial_loc: int | None = None
    input_loc: int | None = None
    memory_report: str | None = None
    pipeline: dict[str, Any] | None = None
    partition: dict[str, Any] | None = None

    def platform_times(self) -> PlatformTimes:
        """The evaluate payload as the harness's :class:`PlatformTimes`."""
        if self.seconds is None:
            raise ValueError(f"no platform times on a "
                             f"{self.request.action!r} result")
        return PlatformTimes(self.request.kernel, self.request.dataset,
                             dict(self.seconds))

    def to_dict(self) -> dict[str, Any]:
        return {
            "request": self.request.canonical(),
            "seconds": dict(self.seconds) if self.seconds is not None else None,
            "exec": (dict(self.exec_summary)
                     if self.exec_summary is not None else None),
            "source": self.source,
            "spatial_loc": self.spatial_loc,
            "input_loc": self.input_loc,
            "memory_report": self.memory_report,
            "pipeline": (dict(self.pipeline)
                         if self.pipeline is not None else None),
            "partition": (dict(self.partition)
                          if self.partition is not None else None),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> CompileResult:
        if not isinstance(data, dict) or "request" not in data:
            raise ValueError("not a CompileResult payload")
        return cls(
            request=CompileRequest.from_dict(data["request"]),
            seconds=data.get("seconds"),
            exec_summary=data.get("exec"),
            source=data.get("source"),
            spatial_loc=data.get("spatial_loc"),
            input_loc=data.get("input_loc"),
            memory_report=data.get("memory_report"),
            pipeline=data.get("pipeline"),
            partition=data.get("partition"),
        )


# ---------------------------------------------------------------------------
# The verbs
# ---------------------------------------------------------------------------


def load_dataset(request: CompileRequest,
                 use_cache: bool | None = None) -> dict:
    """Dataset-generation **stage**: the kernel's packed operand tensors.

    Generating and packing the synthetic Table 4 datasets dominates cold
    build time but involves no compiler code, so this stage is keyed by a
    hash of only the data/format/tensor sources and — uniquely — stays
    warm under ``--no-cache``: a forced recompile reuses the generated
    datasets while every later stage recomputes.
    """
    from repro.data.datasets import load
    from repro.pipeline.cache import memoize_stage

    req = request.resolved()
    return memoize_stage(
        "dataset", (req.kernel, req.dataset, req.scale, req.seed),
        lambda: load(req.kernel, req.dataset, scale=req.scale, seed=req.seed),
        use_cache,
    )


def build(request: CompileRequest, use_cache: bool | None = None):
    """Materialise the dataset and compile the kernel, staged.

    Three separately-keyed cache stages compose: the ``dataset`` stage
    survives ``--no-cache`` and compiler edits, the ``kernel`` stage is
    memoized by statement fingerprint inside ``compile_stmt``, and the
    whole build is memoized under the ``build`` stage on the evaluation
    coordinates — a warm hit skips even statement construction.
    Returns the :class:`~repro.core.compiler.CompiledKernel`.
    """
    from repro.core.compiler import compile_stmt
    from repro.kernels.suite import KERNELS
    from repro.pipeline.cache import memoize_stage

    req = request.resolved()

    def compute():
        spec = KERNELS[req.kernel]
        tensors = load_dataset(req, use_cache=use_cache)
        with _trace.span("parse", kernel=req.kernel, dataset=req.dataset):
            stmt, _out = spec.build(tensors)
        return compile_stmt(stmt, req.kernel, cache=use_cache)

    return memoize_stage(
        "build", (req.kernel, req.dataset, req.scale, req.seed),
        compute, use_cache,
    )


def _platform_models(kernel, stats, sim, resources) -> dict[str, Any]:
    """Per-platform runtime predictors (lazily evaluated thunks)."""
    from repro.backends.cpu import CpuBackend
    from repro.backends.gpu import GpuBackend
    from repro.backends.handwritten import (
        HandwrittenCapstanSpMV,
        HandwrittenPlasticineSpMV,
    )
    from repro.capstan.dram import DDR4, HBM2E, IDEAL

    models = {
        "Capstan (Ideal)": lambda: sim.simulate(
            kernel, dram=IDEAL, stats=stats, resources=resources).seconds,
        "Capstan (HBM2E)": lambda: sim.simulate(
            kernel, dram=HBM2E, stats=stats, resources=resources).seconds,
        "Capstan (DDR4)": lambda: sim.simulate(
            kernel, dram=DDR4, stats=stats, resources=resources).seconds,
        "V100 GPU": lambda: GpuBackend().predict_seconds(kernel, stats),
        "128-Thread CPU": lambda: CpuBackend().predict_seconds(kernel, stats),
    }
    if kernel.name == "SpMV":
        models["Capstan (HBM2E, handwritten)"] = (
            lambda: HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
        )
        models["Plasticine (HBM2E, handwritten)"] = (
            lambda: HandwrittenPlasticineSpMV().predict_seconds(stats, HBM2E)
        )
    return models


def exec_check(request: CompileRequest,
               use_cache: bool | None = None) -> dict[str, Any]:
    """Functional-execution **stage**: run one cell with the request's engine.

    Executes the kernel's statement with the selected engine and checks
    the dense result against the Spatial interpreter
    (``CompiledKernel.run_dense`` — the oracle: it executes the lowered
    program and handles every format, and unlike the dense broadcast
    reference it never materializes the full iteration-space product,
    which is intractable at sweep scales for contractions like SDDMM).
    Raises :class:`EngineMismatchError` on disagreement — so an artefact
    job that embeds this check genuinely gates engine equivalence. Keyed
    by the evaluation coordinates **plus the engine name** (the ``exec``
    cache stage), so results for different engines never collide. For
    ``engine="interp"`` the check is the oracle run itself.
    """
    from repro.core.compiler import default_engine
    from repro.pipeline.cache import memoize_stage

    req = request.resolved()
    engine = req.engine if req.engine is not None else default_engine()

    def compute() -> dict:
        import numpy as np

        kernel = build(req, use_cache=use_cache)
        with _trace.span("interp", kernel=req.kernel, dataset=req.dataset):
            expected = np.asarray(kernel.run_dense(), dtype=np.float64)
        fell_back = False
        if engine == "interp":
            got = expected
        elif engine == "numpy":
            from repro.backends.numpy_exec import NumpyExecutor

            with _trace.span("exec", kernel=req.kernel, engine="numpy"):
                executor = NumpyExecutor(kernel.stmt)
                got = executor.run()
            fell_back = executor.fell_back
        else:
            got = kernel.run_engine(engine)
        got = np.asarray(got, dtype=np.float64).reshape(expected.shape)
        magnitude = max(1.0, float(np.max(np.abs(expected))) if expected.size
                        else 1.0)
        maxerr = (float(np.max(np.abs(got - expected)))
                  if expected.size else 0.0)
        if maxerr > 1e-8 * magnitude:
            raise EngineMismatchError(
                f"{engine} engine disagrees with the interpreter oracle on "
                f"{req.kernel}/{req.dataset} (scale={req.scale}): "
                f"max abs error {maxerr:.3e}"
            )
        return {
            "kernel": req.kernel,
            "dataset": req.dataset,
            "engine": engine,
            "maxerr": maxerr,
            "elements": int(expected.size),
            "fell_back": fell_back,
        }

    return memoize_stage(
        "exec", (req.kernel, req.dataset, req.scale, req.seed, engine),
        compute, use_cache,
    )


def evaluate(request: CompileRequest,
             use_cache: bool | None = None) -> CompileResult:
    """Predict runtimes on every platform for one request.

    The result is memoized under the ``evaluate`` stage, keyed on the
    request's :meth:`~CompileRequest.canonical_json` — the typed request
    *is* the cache key. When the request names an engine, the cell is
    first executed functionally and validated against the interpreter
    oracle (:func:`exec_check`); a disagreeing engine fails the request.
    """
    from repro.capstan.resources import estimate_resources_cached
    from repro.capstan.simulator import CapstanSimulator
    from repro.capstan.stats import compute_stats_cached
    from repro.pipeline.cache import memoize_stage

    req = dataclasses.replace(request, action="evaluate").resolved()

    def compute() -> CompileResult:
        summary = (exec_check(req, use_cache=use_cache)
                   if req.engine is not None else None)
        coords = (req.kernel, req.dataset, req.scale, req.seed)
        kernel = build(req, use_cache=use_cache)
        stats = compute_stats_cached(kernel, coords, use_cache)
        sim = CapstanSimulator()
        resources = estimate_resources_cached(kernel, coords, use_cache)
        models = _platform_models(kernel, stats, sim, resources)
        if req.platforms is not None:
            unknown = [p for p in req.platforms if p not in models]
            if unknown:
                raise ValueError(
                    f"unknown platform(s) {unknown} for {req.kernel}; "
                    f"choose from {sorted(models)}"
                )
        seconds = {}
        for name, model in models.items():
            if req.platforms is not None and name not in req.platforms:
                continue
            with _trace.span("simulate", kernel=req.kernel, platform=name):
                seconds[name] = model()
        return CompileResult(request=req, seconds=seconds,
                             exec_summary=summary)

    return memoize_stage("evaluate", (req.canonical_json(),), compute,
                         use_cache)


def compile(request: CompileRequest,  # noqa: A001 - the API verb
            use_cache: bool | None = None) -> CompileResult:
    """Compile one request and render the kernel (Table 3 material).

    Memoized under the ``compile`` stage on the request's canonical
    JSON, like :func:`evaluate`. The heavyweight compilation itself is
    shared with every other path through the ``build`` stage; this entry
    only renders the wire-ready summary (source text, generated and
    input LoC, memory report).
    """
    from repro.kernels.suite import KERNELS
    from repro.pipeline.cache import memoize_stage

    req = dataclasses.replace(request, action="compile").resolved()

    def compute() -> CompileResult:
        kernel = build(req, use_cache=use_cache)
        return CompileResult(
            request=req,
            source=kernel.source,
            spatial_loc=int(kernel.spatial_loc),
            input_loc=int(KERNELS[req.kernel].input_loc()),
            memory_report=kernel.memory_report(),
        )

    return memoize_stage("compile", (req.canonical_json(),), compute,
                         use_cache)


def pipeline(request: CompileRequest,
             use_cache: bool | None = None) -> CompileResult:
    """Plan and run one fused expression pipeline (FuseFlow).

    The request's ``kernel`` field names the pipeline; ``fuse=False``
    forces materializing cuts at every connection (the equivalence
    baseline). Memoized under the ``pipeline`` stage on the request's
    canonical JSON, like the other verbs.
    """
    from repro.pipeline.cache import memoize_stage
    from repro.pipeline.fusion import run_pipeline

    req = dataclasses.replace(request, action="pipeline").resolved()

    def compute() -> CompileResult:
        row = run_pipeline(req.kernel, req.dataset, req.scale, req.seed,
                           fuse=req.fuse, engine=req.engine or "interp",
                           use_cache=use_cache)
        return CompileResult(request=req, pipeline=row)

    return memoize_stage("pipeline", (req.canonical_json(),), compute,
                         use_cache)


def partition(request: CompileRequest,
              use_cache: bool | None = None) -> CompileResult:
    """Row-block one kernel into sub-kernels and reduce the partials.

    The request's ``partition`` field is the block count and ``split``
    the dimension to cut (``row`` concatenates output blocks, ``sum``
    splits the contraction and sums partials). Blocks run inline on the
    executor's thread pool; the dispatcher offers the same plan over any
    transport as the ``partition:*`` pseudo-artifact. Memoized under the
    ``partition`` stage on the request's canonical JSON.
    """
    from repro.pipeline.cache import memoize_stage
    from repro.pipeline.executor import run_jobs
    from repro.pipeline.partition import (
        PartitionPlan,
        format_partition,
        reduce_partials,
    )

    req = dataclasses.replace(request, action="partition").resolved()

    def compute() -> CompileResult:
        plan = PartitionPlan(req.kernel, req.dataset, req.partition,
                             req.split)
        results = run_jobs(plan.jobs(req.scale, use_cache=use_cache))
        data = reduce_partials(plan.artifact, results)
        summary = dict(data, blocks=req.partition,
                       text=format_partition(data))
        return CompileResult(request=req, partition=summary)

    return memoize_stage("partition", (req.canonical_json(),), compute,
                         use_cache)


def execute(request: CompileRequest,
            use_cache: bool | None = None) -> CompileResult:
    """Run one request, whatever its action (the worker entry point)."""
    req = request.resolved()
    if req.action == "compile":
        return compile(req, use_cache=use_cache)
    if req.action == "pipeline":
        return pipeline(req, use_cache=use_cache)
    if req.action == "partition":
        return partition(req, use_cache=use_cache)
    return evaluate(req, use_cache=use_cache)


def cached(request: CompileRequest) -> CompileResult | None:
    """Peek for a finished result without computing (the serve hot path).

    Returns ``None`` on a miss or when caching is disabled. The lookup
    is tallied in the per-stage hit/miss counters, so ``/stats`` and
    ``repro cache --json`` show daemon cache traffic per stage.
    """
    from repro.pipeline.cache import peek_stage

    req = request.resolved()
    return peek_stage(req.stage, (req.canonical_json(),))
