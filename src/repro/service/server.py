"""``repro serve`` — the compile-as-a-service daemon.

A small asyncio HTTP/1.1 server (stdlib only; the HTTP layer is
handwritten over ``asyncio.start_server`` streams) that accepts typed
compile/evaluate requests and answers them through exactly the same
staged pipeline every other caller uses:

* **Hot path** — a request whose result is already in the staged cache
  (:func:`repro.service.api.cached`) is answered immediately, without
  touching the worker pool.
* **Coalescing** — identical in-flight requests (same
  :meth:`~repro.service.api.CompileRequest.canonical_json`) share one
  underlying job; joiners await the first request's future.
* **Admission control** — at most ``max_inflight`` *underlying* jobs run
  at once (joiners ride free); beyond that the daemon answers 429.
* **Worker pools** — ``inline:N`` runs misses on an in-process thread
  pool; ``queue:DIR`` feeds them to the elastic filesystem queue
  (:mod:`repro.pipeline.fsqueue`), where any number of ``repro worker
  DIR`` processes — on any host sharing the directory — claim and
  compute them, reporting results back through the queue directory.
* **Timeouts and drain** — every request is bounded by a per-request
  timeout (504 on expiry; the underlying job keeps running and lands in
  the cache for the retry). SIGTERM/SIGINT begin a graceful drain:
  the listener closes, in-flight requests finish, idle keep-alive
  connections get a short window for a request already on the wire,
  and the process exits 0.

Endpoints::

    POST /evaluate   {"kernel": ..., "dataset": ..., "scale": ..., ...}
    POST /compile    same body; renders source/LoC/memory report
    POST /pipeline   {"kernel": <pipeline>, "fuse": ..., ...}; runs a
                     fused expression pipeline (FuseFlow cut report)
    POST /partition  {"kernel": ..., "partition": P, "split": ...};
                     row-blocks one kernel and reduces the partials
    GET  /stats      serve counters + the shared cache-stats payload
    GET  /healthz    liveness

Responses to ``/evaluate`` and ``/compile`` are the deterministic
``CompileResult.to_json()`` bytes — byte-identical to a serial
``repro.api.evaluate(request)`` of the same request.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import dataclasses
import functools
import json
import os
import signal
import threading
import time
from typing import Any, Callable

from repro import obs
from repro.service import api
from repro.service.stats import cache_stats_payload

__all__ = [
    "CompileService",
    "ServeConfig",
    "ServeError",
    "ServiceThread",
    "run_service",
]


class ServeError(RuntimeError):
    """Configuration or backend failure of the serve daemon."""


#: Seconds an idle keep-alive connection gets, once draining starts, to
#: deliver a request that was already on the wire when the signal hit.
DRAIN_READ_WINDOW = 0.5

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclasses.dataclass
class ServeConfig:
    """Daemon configuration (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8757
    #: ``inline:N`` (in-process thread pool) or ``queue:DIR`` (elastic
    #: ``repro worker`` pool over the filesystem queue).
    pool: str = "inline:2"
    #: Bound on concurrently *running* jobs; more distinct cold requests
    #: than this are rejected with 429 (coalesced joiners are not jobs).
    max_inflight: int = 32
    #: Per-request wall-clock bound; 504 on expiry. A request body may
    #: carry ``"timeout": seconds`` to lower (never raise) it.
    request_timeout: float = 120.0
    #: Hard deadline for graceful drain after SIGTERM.
    drain_grace: float = 30.0
    #: ``queue:`` pool: result-poll interval / worker lease / re-enqueues.
    queue_poll: float = 0.1
    queue_lease: float = 60.0
    queue_retries: int = 2
    use_cache: bool | None = None
    #: Coalesce identical in-flight requests (off only for benchmarks
    #: measuring the coalescing win).
    coalesce: bool = True
    #: Test hook: replaces :func:`repro.service.api.execute` for the
    #: inline pool. Signature ``(request, use_cache) -> CompileResult``.
    execute: Callable[..., Any] | None = None
    on_event: Callable[[str], None] | None = None


class ServeStats:
    """Daemon counters surfaced by ``/stats`` (event-loop-only writes)."""

    __slots__ = ("requests", "cache_hits", "coalesced", "computed",
                 "rejected", "timeouts", "errors", "started",
                 "responses", "status_codes")

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.computed = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.started = time.time()
        #: Every HTTP response sent (all endpoints), total and by code.
        self.responses = 0
        self.status_codes: dict[int, int] = {}

    def count_response(self, status: int) -> None:
        self.responses += 1
        self.status_codes[status] = self.status_codes.get(status, 0) + 1

    def as_dict(self, inflight: int, draining: bool,
                pool: str) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "responses": self.responses,
            "status_codes": {str(code): n for code, n
                             in sorted(self.status_codes.items())},
            "inflight": inflight,
            "draining": draining,
            "pool": pool,
            "uptime_s": time.time() - self.started,
        }


# ---------------------------------------------------------------------------
# Worker-pool backends
# ---------------------------------------------------------------------------


class _ThreadPoolBackend:
    """``inline:N`` — misses run on an in-process thread pool."""

    def __init__(self, slots: int, use_cache: bool | None,
                 execute: Callable[..., Any] | None) -> None:
        if slots < 1:
            raise ServeError(f"inline pool needs >= 1 slot, got {slots}")
        self.name = f"inline:{slots}"
        self._use_cache = use_cache
        self._execute = execute if execute is not None else (
            lambda req, use_cache: api.execute(req, use_cache=use_cache))
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="repro-serve")

    def start(self) -> None:
        pass

    async def submit(self, request: api.CompileRequest) -> api.CompileResult:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            functools.partial(self._execute, request, self._use_cache))

    async def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


@dataclasses.dataclass
class _PendingRequest:
    future: asyncio.Future
    request: api.CompileRequest
    attempts: int = 1


class _QueueBackend:
    """``queue:DIR`` — misses are fed to the elastic filesystem queue.

    The daemon owns enqueue, lease expiry, and collect (exactly the
    dispatcher's share of the protocol); ``repro worker DIR`` processes
    on any host sharing the directory claim request tasks, run them
    through :func:`repro.service.api.execute`, and write result files
    the poll loop folds back into waiting futures. A worker that dies
    mid-request loses its lease and the request is re-enqueued up to
    ``retries`` times. Closing the backend raises the queue's stop
    sentinel, releasing attached workers.
    """

    def __init__(self, root: str, use_cache: bool | None, poll: float,
                 lease_timeout: float, retries: int,
                 on_event: Callable[[str], None]) -> None:
        from repro.pipeline.fsqueue import QueueError, QueueTransport

        try:
            self.transport = QueueTransport(root)
        except QueueError as exc:
            raise ServeError(str(exc)) from None
        self.name = f"queue:{self.transport.root}"
        self._use_cache = use_cache
        self._poll = poll
        self._lease_timeout = lease_timeout
        self._retries = retries
        self._events = on_event
        self._waiting: dict[str, _PendingRequest] = {}
        self._seq = 0
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        self.transport.prepare()
        self._task = asyncio.get_running_loop().create_task(self._poll_loop())

    def _payload(self, request: api.CompileRequest) -> dict[str, Any]:
        payload: dict[str, Any] = {"request": request.canonical(),
                                   "lease_timeout": self._lease_timeout}
        if self._use_cache is not None:
            payload["use_cache"] = self._use_cache
        return payload

    async def submit(self, request: api.CompileRequest) -> api.CompileResult:
        self._seq += 1
        rid = f"{self._seq:06d}"
        future = asyncio.get_running_loop().create_future()
        self._waiting[rid] = _PendingRequest(future, request)
        self.transport.enqueue_request(rid, self._payload(request))
        return await future

    def _resolve(self, rid: str, payload: dict[str, Any]) -> None:
        pending = self._waiting.pop(rid, None)
        if pending is None or pending.future.done():
            return
        if payload.get("ok"):
            try:
                result = api.CompileResult.from_dict(payload["result"])
            except (KeyError, ValueError) as exc:
                pending.future.set_exception(ServeError(
                    f"malformed queue result for request {rid}: {exc}"))
                return
            pending.future.set_result(result)
        else:
            pending.future.set_exception(ServeError(
                f"queue worker failed: {payload.get('error', 'unknown')}"))

    def _scan(self) -> None:
        for rid, payload, path in self.transport.collect_requests():
            try:
                path.unlink()
            except OSError:
                pass
            self.transport.withdraw_request(rid)
            self._resolve(rid, payload)
        for rid in self.transport.expired_requests(self._lease_timeout):
            pending = self._waiting.get(rid)
            if pending is None:
                continue
            if pending.attempts > self._retries:
                self._waiting.pop(rid)
                if not pending.future.done():
                    pending.future.set_exception(ServeError(
                        f"request {rid} lost its worker "
                        f"{pending.attempts} time(s); giving up"))
                continue
            pending.attempts += 1
            self._events(f"request {rid} lease expired; re-enqueueing "
                         f"(attempt {pending.attempts})")
            self.transport.enqueue_request(rid, self._payload(pending.request))

    async def _poll_loop(self) -> None:
        while True:
            try:
                self._scan()
            except OSError as exc:  # pragma: no cover - transient fs races
                self._events(f"queue scan error: {exc}")
            await asyncio.sleep(self._poll)

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
        for rid, pending in list(self._waiting.items()):
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError("server shutting down"))
        self._waiting.clear()
        self.transport.shutdown()


def _parse_pool(config: ServeConfig,
                on_event: Callable[[str], None]):
    kind, sep, arg = config.pool.strip().partition(":")
    if kind == "inline":
        try:
            slots = int(arg) if sep else 2
        except ValueError:
            raise ServeError(
                f"invalid pool {config.pool!r}; expected inline:N") from None
        return _ThreadPoolBackend(slots, config.use_cache, config.execute)
    if kind == "queue":
        return _QueueBackend(arg, config.use_cache, config.queue_poll,
                             config.queue_lease, config.queue_retries,
                             on_event)
    raise ServeError(f"unknown pool {config.pool!r}; expected inline:N "
                     f"or queue:DIR")


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class CompileService:
    """The serve daemon: HTTP front, coalescing map, worker-pool back."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.stats = ServeStats()
        self._events = config.on_event if config.on_event else (lambda _m: None)
        self._backend = _parse_pool(config, self._events)
        self._requests_total = obs.counter(
            "repro_requests_total", "HTTP responses by path and status.",
            ("path", "status"))
        self._request_seconds = obs.histogram(
            "repro_request_seconds",
            "HTTP request handling latency (seconds).")
        self._inflight: dict[str, asyncio.Future] = {}
        #: inflight key -> the compute span id joiners reference.
        self._inflight_spans: dict[str, str | None] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._drain_event: asyncio.Event | None = None
        self._done: asyncio.Event | None = None
        self._draining = False
        self.port: int | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._drain_event = asyncio.Event()
        self._done = asyncio.Event()
        self._backend.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def pool_name(self) -> str:
        return self._backend.name

    def begin_drain(self) -> None:
        """Stop accepting, finish in-flight work, then shut down.

        Idempotent; callable from a signal handler. New connections are
        refused immediately; open connections get
        :data:`DRAIN_READ_WINDOW` seconds for a request already on the
        wire and are closed after their response.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_event.set()
        if self._server is not None:
            self._server.close()
        asyncio.get_running_loop().create_task(self._finish_drain())

    async def _finish_drain(self) -> None:
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace
        # A connection accepted just before the listener closed may not
        # have registered its handler task yet; give every open
        # connection its read window before sampling the task set, and
        # keep sampling until no handler remains (a handler observed
        # mid-request must finish, and its response may admit no more).
        await asyncio.sleep(max(0.0, min(DRAIN_READ_WINDOW,
                                         deadline - loop.time())))
        while True:
            pending = [t for t in self._conn_tasks if not t.done()]
            if not pending:
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                for task in pending:
                    task.cancel()
                await asyncio.wait(pending)
                break
            await asyncio.wait(pending, timeout=remaining)
        await self._backend.close()
        self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    # -- HTTP layer ---------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            request = await self._next_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            t0 = time.perf_counter()
            content_type = "application/json"
            try:
                status, payload, content_type = await self._route(
                    method, path, body)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defense: never drop the response
                self.stats.errors += 1
                status, payload = 500, _error_body(
                    f"{type(exc).__name__}: {exc}")
            self.stats.count_response(status)
            self._requests_total.inc(path=path, status=str(status))
            self._request_seconds.observe(time.perf_counter() - t0)
            keep = (not self._draining
                    and headers.get("connection", "").lower() != "close")
            writer.write(_render_response(status, payload, keep,
                                          content_type))
            await writer.drain()
            if not keep:
                return

    async def _next_request(self, reader: asyncio.StreamReader):
        """The next parsed request, honouring the drain protocol."""
        read = asyncio.ensure_future(_read_request(reader))
        if not self._draining:
            drain = asyncio.ensure_future(self._drain_event.wait())
            try:
                await asyncio.wait({read, drain},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                drain.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await drain
        if not read.done() and self._draining:
            # Drain began while this connection was idle: allow a short
            # window for a request that was already on the wire.
            try:
                return await asyncio.wait_for(read, DRAIN_READ_WINDOW)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return None
        try:
            return await read
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            return None

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, bytes, str]:
        json_ct = "application/json"
        if path == "/healthz":
            return 200, json.dumps({"ok": True}).encode(), json_ct
        if path == "/stats":
            return 200, (json.dumps(self.stats_payload(), indent=2,
                                    sort_keys=True)).encode(), json_ct
        if path == "/metrics":
            return (200, self.metrics_text().encode(),
                    "text/plain; version=0.0.4; charset=utf-8")
        if path in ("/compile", "/evaluate", "/pipeline", "/partition"):
            if method != "POST":
                return 405, _error_body(f"{path} expects POST"), json_ct
            status, payload = await self._handle_work(path.lstrip("/"), body)
            return status, payload, json_ct
        return 404, _error_body(
            f"unknown path {path!r}; try /compile, /evaluate, /pipeline, "
            f"/partition, /stats, /metrics"), json_ct

    def stats_payload(self) -> dict[str, Any]:
        """The ``/stats`` body: serve counters + shared cache payload."""
        return {
            "serve": self.stats.as_dict(len(self._inflight), self._draining,
                                        self.pool_name),
            "cache": cache_stats_payload(),
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` body: Prometheus text exposition.

        Request counts and the latency histogram accumulate live in the
        process registry; the serve/cache counters are mirrored into it
        at scrape time so every series shares one exposition.
        """
        reg = obs.registry()
        stats = self.stats
        serve_totals = {
            "requests": "Work requests admitted (compile/evaluate).",
            "cache_hits": "Requests answered from the staged cache.",
            "coalesced": "Requests that joined an in-flight compile.",
            "computed": "Underlying jobs computed by the pool.",
            "rejected": "Requests rejected by admission control (429).",
            "timeouts": "Requests that hit their deadline (504).",
            "errors": "Requests that failed (500).",
        }
        for field, help_text in serve_totals.items():
            reg.counter(f"repro_serve_{field}_total",
                        help_text).set_total(getattr(stats, field))
        reg.gauge("repro_serve_inflight",
                  "Underlying jobs currently running."
                  ).set(len(self._inflight))
        reg.gauge("repro_serve_uptime_seconds",
                  "Seconds since the daemon started."
                  ).set(time.time() - stats.started)
        cache_counters = cache_stats_payload().get("counters", {})
        stage_counter = reg.counter(
            "repro_cache_stage_total",
            "Staged-cache lookups by stage and outcome.",
            ("stage", "outcome"))
        for stage, entry in cache_counters.get("stages", {}).items():
            stage_counter.set_total(entry.get("hits", 0),
                                    stage=stage, outcome="hit")
            stage_counter.set_total(entry.get("misses", 0),
                                    stage=stage, outcome="miss")
        return reg.render()

    # -- request handling ---------------------------------------------------

    async def _handle_work(self, action: str,
                           body: bytes) -> tuple[int, bytes]:
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return 400, _error_body(f"request is not valid JSON: {exc}")
        timeout = self.config.request_timeout
        if isinstance(data, dict) and "timeout" in data:
            # Transport-level field: bounds *this* request, capped by the
            # server's own limit; never part of the canonical request.
            try:
                timeout = min(timeout, float(data.pop("timeout")))
            except (TypeError, ValueError):
                return 400, _error_body("'timeout' must be a number")
        try:
            request = api.CompileRequest.from_dict(
                {**data, "action": action} if isinstance(data, dict) else data)
            request = request.resolved()
        except ValueError as exc:
            return 400, _error_body(str(exc))

        self.stats.requests += 1
        # Request spans do not nest on the thread-local stack: handler
        # coroutines interleave on the one event-loop thread, so stack
        # discipline would attach spans to whichever request last
        # yielded. Each span is its own top-level track instead.
        with obs.span("request", _nest=False,
                      _track=f"req-{self.stats.requests}",
                      action=action, kernel=request.kernel,
                      dataset=request.dataset) as sp:
            hit = api.cached(request)
            if hit is not None:
                self.stats.cache_hits += 1
                sp.set(outcome="hit", status=200)
                return 200, hit.to_json().encode()

            key = request.canonical_json()
            if not self.config.coalesce:
                key = f"{key}#{self.stats.requests}"
            future = self._inflight.get(key)
            if future is None:
                if len(self._inflight) >= self.config.max_inflight:
                    self.stats.rejected += 1
                    sp.set(outcome="rejected", status=429)
                    return 429, _error_body(
                        f"{len(self._inflight)} requests already in flight "
                        f"(max {self.config.max_inflight}); retry shortly")
                future = self._launch(key, request)
                sp.set(outcome="computed")
            else:
                self.stats.coalesced += 1
                sp.set(outcome="joined")
            # N coalesced joiners all reference the one compute span.
            sp.set(compute_span=self._inflight_spans.get(key))
            try:
                result = await asyncio.wait_for(asyncio.shield(future),
                                                timeout)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                sp.set(outcome="timeout", status=504)
                return 504, _error_body(
                    f"request timed out after {timeout:g}s; the job keeps "
                    f"running and a retry will hit the cache once it lands")
            except Exception as exc:
                sp.set(outcome="error", status=500)
                return 500, _error_body(f"{type(exc).__name__}: {exc}")
            sp.set(status=200)
            return 200, result.to_json().encode()

    def _launch(self, key: str, request: api.CompileRequest) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        # Waiters may all time out before completion; retrieve the
        # exception so the loop never logs "exception was never retrieved".
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = future
        compute_span = obs.span("compute", _nest=False, _track="compute",
                                kernel=request.kernel,
                                dataset=request.dataset,
                                action=request.action)
        self._inflight_spans[key] = compute_span.id

        async def run() -> None:
            try:
                with compute_span:
                    result = await self._backend.submit(request)
            except asyncio.CancelledError:
                if not future.done():
                    future.set_exception(ServeError("server shutting down"))
                raise
            except Exception as exc:
                self.stats.errors += 1
                if not future.done():
                    future.set_exception(exc)
            else:
                self.stats.computed += 1
                if not future.done():
                    future.set_result(result)
            finally:
                self._inflight.pop(key, None)
                self._inflight_spans.pop(key, None)

        loop.create_task(run())
        return future


def _error_body(message: str) -> bytes:
    return json.dumps({"error": message}, sort_keys=True).encode()


def _render_response(status: int, body: bytes, keep_alive: bool,
                     content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; None on clean EOF before a start line."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return method, path.split("?", 1)[0], headers, body


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _announce_default(message: str) -> None:
    print(message, flush=True)  # subprocess callers parse the banner live


def run_service(config: ServeConfig,
                announce: Callable[[str], None] = _announce_default) -> int:
    """Run the daemon until SIGTERM/SIGINT drains it; returns 0.

    ``announce`` receives the one-line startup banner (tests and the
    bench parse the bound port out of it, so ``--port 0`` works).
    """

    async def main() -> None:
        service = CompileService(config)
        await service.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, service.begin_drain)
        announce(f"serving on http://{config.host}:{service.port} "
                 f"(pool {service.pool_name}; pid {os.getpid()})")
        await service.wait_done()
        stats = service.stats
        announce(f"drained: {stats.requests} request(s), "
                 f"{stats.cache_hits} cache hit(s), "
                 f"{stats.coalesced} coalesced, {stats.computed} computed")

    asyncio.run(main())
    return 0


class ServiceThread:
    """An in-process daemon on a private event-loop thread.

    The embedding surface for tests and benchmarks::

        with ServiceThread(ServeConfig(port=0)) as svc:
            requests.post(f"http://127.0.0.1:{svc.port}/evaluate", ...)

    ``stop()`` (also the context-manager exit) begins a graceful drain
    and joins the thread.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service: CompileService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self.service = CompileService(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self.service.port
        self._started.set()
        await self.service.wait_done()

    def start(self) -> ServiceThread:
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServeError("serve thread did not start within 30s")
        if self._startup_error is not None:
            raise ServeError(
                f"serve thread failed to start: {self._startup_error}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.service is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.service.begin_drain)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> ServiceThread:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
