"""One cache-stats payload, two surfaces.

The ``/stats`` endpoint of ``repro serve`` and the ``repro cache
--json`` subcommand must agree — same keys, same meanings — so both
render :func:`cache_stats_payload` and nothing else. Tests diff the two
surfaces against each other.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["cache_stats_payload", "render_cache_stats"]


def cache_stats_payload() -> dict[str, Any]:
    """The process's cache state as one JSON-able dict.

    ``disk`` describes the on-disk store (location, entry count, byte
    size); ``counters`` is the in-process hit/miss tally including the
    per-stage breakdown (``dataset``/``build``/``evaluate``/...);
    ``compiler`` is the cache-invalidation hash of the checkout;
    ``metrics`` is the process metrics registry
    (:func:`repro.obs.registry`) snapshot.
    """
    from repro import obs
    from repro.pipeline.cache import compiler_version, default_cache

    cache = default_cache()
    return {
        "compiler": compiler_version(),
        "disk": cache.disk_info(),
        "counters": cache.stats.as_dict(),
        "metrics": obs.registry().snapshot(),
    }


def render_cache_stats(payload: dict[str, Any] | None = None) -> str:
    """The payload as deterministic JSON text (both CLIs print this)."""
    if payload is None:
        payload = cache_stats_payload()
    return json.dumps(payload, indent=2, sort_keys=True)
