"""Compilation-as-a-service: the typed request API and the daemon.

* :mod:`repro.service.api` — :class:`CompileRequest` /
  :class:`CompileResult` and the verbs every caller (CLI, batch,
  dispatch, serve) constructs work through.
* :mod:`repro.service.server` — the ``repro serve`` asyncio HTTP/JSON
  daemon (staged-cache hot path, request coalescing, admission control,
  graceful drain).
* :mod:`repro.service.stats` — the shared cache-stats formatter behind
  ``/stats`` and ``repro cache --json``.
"""

from repro.service.api import (
    ACTIONS,
    CompileRequest,
    CompileResult,
    EngineMismatchError,
    PlatformTimes,
    build,
    cached,
    compile,
    evaluate,
    exec_check,
    execute,
)
from repro.service.stats import cache_stats_payload

__all__ = [
    "ACTIONS",
    "CompileRequest",
    "CompileResult",
    "EngineMismatchError",
    "PlatformTimes",
    "build",
    "cache_stats_payload",
    "cached",
    "compile",
    "evaluate",
    "exec_check",
    "execute",
]
