"""Evaluation datasets (Table 4) and synthetic generators."""

from repro.data.datasets import (
    DATASETS,
    DATASETS_BY_NAME,
    FACTOR_RANK,
    SDDMM_K,
    DatasetSpec,
    datasets_for,
    load,
)

__all__ = [
    "DATASETS",
    "DATASETS_BY_NAME",
    "DatasetSpec",
    "FACTOR_RANK",
    "SDDMM_K",
    "datasets_for",
    "load",
]
