"""Synthetic sparse tensor generators.

The paper's datasets (Table 4) come from the SuiteSparse collection and
the facebook interaction tensor; neither is reachable offline, so this
module generates structural stand-ins with identical dimensions and
densities (see DESIGN.md's substitution table). The kernels' cost
behaviour depends on dimensions, nnz, and the row-length distribution,
which each generator matches to its original's character:

* ``banded_symmetric`` — FEM stiffness structure (bcsstk30): a dense-ish
  band around the diagonal;
* ``circuit`` — circuit simulation structure (ckt11752_dc_1): diagonal
  plus a few power-law-distributed off-diagonals per row;
* ``trefethen`` — diagonal plus |i−j| ∈ {powers of two and primes} within
  a budget, Trefethen's construction;
* ``uniform_matrix`` / ``uniform_tensor3`` — i.i.d. random fill at a
  target density (the paper's ``random`` datasets);
* ``hub_tensor3`` — power-law mode skew (facebook-like interactions);
* ``rotate_columns`` / ``rotate_even_coords`` — the paper's derived
  datasets for Plus3/Plus2/InnerProd.
"""

from __future__ import annotations

import numpy as np


def _dedupe(coords: np.ndarray) -> np.ndarray:
    """Unique rows (stable order not required)."""
    if coords.shape[0] == 0:
        return coords
    return np.unique(coords, axis=0)


def uniform_matrix(
    n_rows: int, n_cols: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly random sparse matrix as (coords, vals)."""
    nnz = int(round(n_rows * n_cols * density))
    nnz = max(1, min(nnz, n_rows * n_cols))
    if density > 0.05:
        mask = rng.random((n_rows, n_cols)) < density
        coords = np.argwhere(mask)
    else:
        flat = rng.choice(n_rows * n_cols, size=nnz, replace=False) if (
            n_rows * n_cols < 1 << 31
        ) else np.unique(rng.integers(0, n_rows * n_cols, size=int(nnz * 1.05)))
        coords = np.stack([flat // n_cols, flat % n_cols], axis=1)
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def banded_symmetric(
    n: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """FEM-stiffness-like structure: a dense band around the diagonal."""
    per_row = max(1, int(round(n * density)))
    half = max(1, per_row // 2)
    rows = np.repeat(np.arange(n), 2 * half + 1)
    offsets = np.tile(np.arange(-half, half + 1), n)
    cols = rows + offsets
    keep = (cols >= 0) & (cols < n)
    coords = _dedupe(np.stack([rows[keep], cols[keep]], axis=1))
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def circuit(
    n: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Circuit-matrix structure: diagonal + power-law off-diagonals."""
    target = int(round(n * n * density))
    diag = np.stack([np.arange(n), np.arange(n)], axis=1)
    extra = max(0, target - n)
    # Power-law row weights: a few hub rows, many near-empty rows.
    weights = rng.pareto(1.5, size=n) + 1.0
    weights /= weights.sum()
    rows = rng.choice(n, size=extra, p=weights)
    cols = rng.integers(0, n, size=extra)
    coords = _dedupe(np.concatenate([diag, np.stack([rows, cols], axis=1)]))
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def _primes_up_to(n: int) -> np.ndarray:
    sieve = np.ones(n + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(n ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return np.nonzero(sieve)[0]


def trefethen(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Trefethen-style matrix: diagonal plus |i-j| in powers of two and a
    prime budget chosen to land near the published density (1.39e-3)."""
    offsets = [0]
    k = 1
    while k < n:
        offsets.append(k)
        k *= 2
    primes = _primes_up_to(min(n - 1, 64))
    offsets.extend(int(p) for p in primes)
    offsets = sorted(set(offsets))
    rows_list, cols_list = [], []
    for off in offsets:
        r = np.arange(0, n - off)
        rows_list.append(r)
        cols_list.append(r + off)
        if off:
            rows_list.append(r + off)
            cols_list.append(r)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    coords = _dedupe(np.stack([rows, cols], axis=1))
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def uniform_tensor3(
    dims: tuple[int, int, int], density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random 3-tensor as (coords, vals)."""
    total = dims[0] * dims[1] * dims[2]
    nnz = max(1, int(round(total * density)))
    if density > 0.05:
        mask = rng.random(dims) < density
        coords = np.argwhere(mask)
    else:
        flat = np.unique(rng.integers(0, total, size=int(nnz * 1.05)))[:nnz]
        c0 = flat // (dims[1] * dims[2])
        rem = flat % (dims[1] * dims[2])
        coords = np.stack([c0, rem // dims[2], rem % dims[2]], axis=1)
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def hub_tensor3(
    dims: tuple[int, int, int], nnz: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Power-law-skewed 3-tensor (facebook-interaction-like structure)."""
    w0 = rng.pareto(1.2, size=dims[0]) + 1.0
    w1 = rng.pareto(1.2, size=dims[1]) + 1.0
    c0 = rng.choice(dims[0], size=nnz, p=w0 / w0.sum())
    c1 = rng.choice(dims[1], size=nnz, p=w1 / w1.sum())
    c2 = rng.integers(0, dims[2], size=nnz)
    coords = _dedupe(np.stack([c0, c1, c2], axis=1))
    vals = rng.random(len(coords)) + 0.1
    return coords, vals


def rotate_columns(
    coords: np.ndarray, vals: np.ndarray, n_cols: int, shift: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate a matrix's columns right by ``shift`` (Plus3 derived data)."""
    out = coords.copy()
    out[:, 1] = (out[:, 1] + shift) % n_cols
    order = np.lexsort((out[:, 1], out[:, 0]))
    return out[order], vals[order]


def rotate_even_coords(
    coords: np.ndarray, vals: np.ndarray, last_dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate even coordinates of the last mode by one (Plus2/InnerProd
    derived datasets)."""
    out = coords.copy()
    even = out[:, -1] % 2 == 0
    out[even, -1] = (out[even, -1] + 1) % last_dim
    key = [out[:, k] for k in range(out.shape[1])][::-1]
    order = np.lexsort(tuple(key))
    out = out[order]
    vals = vals[order]
    # Rotation can collide coordinates; keep the first of each.
    if len(out) > 1:
        keep = np.concatenate(([True], np.any(out[1:] != out[:-1], axis=1)))
        out, vals = out[keep], vals[keep]
    return out, vals
