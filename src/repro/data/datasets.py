"""The Table 4 evaluation datasets (synthetic substitutes).

Each :class:`DatasetSpec` names one paper dataset, its dimensions and
density, and which kernels consume it. :func:`load` materialises the
tensors for a kernel at an optional ``scale`` (dimensions shrink by the
factor; densities are preserved), so tests can run miniature versions of
the exact evaluation configurations.

Dense operand dimensions the paper leaves unspecified: SDDMM's factor
rank ``K`` defaults to 256, TTM/MTTKRP's factor rank to 16 (typical for
the ALS workloads the paper cites).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.data import generators as gen
from repro.kernels.suite import KERNELS
from repro.tensor.tensor import Tensor

#: Dense factor rank for SDDMM's C/D matrices.
SDDMM_K = 256

#: Dense factor rank for TTM's C and MTTKRP's C/D matrices.
FACTOR_RANK = 16


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One Table 4 dataset."""

    name: str
    kind: str  # matrix | tensor3
    dims: tuple[int, ...]
    density: float
    kernels: tuple[str, ...]
    generator: str  # generator function name
    paper_source: str

    def scaled_dims(self, scale: float) -> tuple[int, ...]:
        if scale >= 1.0:
            return self.dims
        return tuple(max(8, int(round(d * scale))) for d in self.dims)

    def nnz_estimate(self, scale: float = 1.0) -> int:
        dims = self.scaled_dims(scale)
        return max(1, int(round(math.prod(dims) * self.density)))


#: Format-sweep kernels: the same matrix workloads under COO/DCSR/BCSR
#: storage; their sparse operand stages through the ``convert`` cache.
FORMAT_KERNELS = ("COO-SpMV", "DCSR-SpMM", "BCSR-SpMV")

MATRIX_KERNELS = ("SpMV", "SDDMM", "MatTransMul", "Residual") + FORMAT_KERNELS
PLUS3_KERNELS = ("Plus3",)
TENSOR_KERNELS = ("TTV", "TTM", "MTTKRP")
TENSOR2_KERNELS = ("InnerProd", "Plus2")

DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec("bcsstk30", "matrix", (28924, 28924), 2.48e-3,
                MATRIX_KERNELS, "banded_symmetric", "SuiteSparse [10]"),
    DatasetSpec("ckt11752_dc_1", "matrix", (49702, 49702), 1.35e-4,
                MATRIX_KERNELS, "circuit", "SuiteSparse [10]"),
    DatasetSpec("Trefethen_20000", "matrix", (20000, 20000), 1.39e-3,
                MATRIX_KERNELS, "trefethen", "SuiteSparse [10]"),
    DatasetSpec("random-1pct", "matrix", (800, 800), 0.01,
                PLUS3_KERNELS, "uniform_matrix", "random (Table 4)"),
    DatasetSpec("random-10pct", "matrix", (800, 800), 0.10,
                PLUS3_KERNELS, "uniform_matrix", "random (Table 4)"),
    DatasetSpec("random-50pct", "matrix", (800, 800), 0.50,
                PLUS3_KERNELS, "uniform_matrix", "random (Table 4)"),
    DatasetSpec("facebook", "tensor3", (1591, 63891, 63890), 1.14e-7,
                TENSOR_KERNELS, "hub_tensor3", "Viswanath et al. [36]"),
    DatasetSpec("random3-1pct", "tensor3", (200, 200, 200), 0.01,
                TENSOR2_KERNELS, "uniform_tensor3", "random (Table 4)"),
    DatasetSpec("random3-10pct", "tensor3", (200, 200, 200), 0.10,
                TENSOR2_KERNELS, "uniform_tensor3", "random (Table 4)"),
    DatasetSpec("random3-50pct", "tensor3", (200, 200, 200), 0.50,
                TENSOR2_KERNELS, "uniform_tensor3", "random (Table 4)"),
)

DATASETS_BY_NAME = {d.name: d for d in DATASETS}


def datasets_for(kernel: str) -> list[DatasetSpec]:
    return [d for d in DATASETS if kernel in d.kernels]


def _generate(spec: DatasetSpec, scale: float, rng: np.random.Generator):
    dims = spec.scaled_dims(scale)
    if spec.generator == "banded_symmetric":
        return dims, gen.banded_symmetric(dims[0], spec.density, rng)
    if spec.generator == "circuit":
        return dims, gen.circuit(dims[0], spec.density, rng)
    if spec.generator == "trefethen":
        return dims, gen.trefethen(dims[0], rng)
    if spec.generator == "uniform_matrix":
        return dims, gen.uniform_matrix(dims[0], dims[1], spec.density, rng)
    if spec.generator == "uniform_tensor3":
        return dims, gen.uniform_tensor3(dims, spec.density, rng)
    if spec.generator == "hub_tensor3":
        return dims, gen.hub_tensor3(dims, spec.nnz_estimate(scale), rng)
    raise KeyError(spec.generator)


def load_matrix_coo(
    dataset_name: str,
    scale: float = 1.0,
    seed: int = 7,
    use_cache: bool | None = None,
) -> tuple[tuple[int, ...], np.ndarray, np.ndarray]:
    """The raw ``(dims, coords, vals)`` of one matrix dataset.

    Staged under the ``dataset`` cache key, so the format-conversion
    stage (and the ``repro convert`` CLI) share one generated matrix per
    (dataset, scale, seed) with every kernel that consumes it.
    """
    from repro.pipeline.cache import memoize_stage

    dspec = DATASETS_BY_NAME[dataset_name]
    if dspec.kind != "matrix":
        raise ValueError(f"{dataset_name} is not a matrix dataset")

    def compute():
        rng = np.random.default_rng(seed)
        dims, (coords, vals) = _generate(dspec, scale, rng)
        return dims, coords, vals

    return memoize_stage(
        "dataset", ("matrix-coo", dataset_name, scale, seed), compute,
        use_cache,
    )


def load(
    kernel_name: str,
    dataset_name: str,
    scale: float = 1.0,
    seed: int = 7,
) -> dict[str, Tensor]:
    """Materialise a kernel's operand tensors for one dataset.

    Sparse operands take the dataset's structure (with the paper's derived
    variants for multi-operand kernels); dense operands are random; output
    tensors are left empty.
    """
    spec = KERNELS[kernel_name]
    dspec = DATASETS_BY_NAME[dataset_name]
    if kernel_name not in dspec.kernels:
        raise ValueError(f"{dataset_name} is not evaluated with {kernel_name}")
    rng = np.random.default_rng(seed)
    dims, (coords, vals) = _generate(dspec, scale, rng)

    tensors: dict[str, Tensor] = {}
    sparse_seen = 0
    for ts in spec.tensor_specs:
        shape = _shape_for(kernel_name, ts.name, ts.role, ts.order, dims)
        t = ts.make(shape)
        if ts.role == "scalar":
            t.insert((), 2.0 if "alpha" in ts.name else 3.0)
        elif ts.role == "dense":
            t.from_dense(rng.random(shape))
        elif ts.role == "sparse":
            if kernel_name in FORMAT_KERNELS:
                # Format-sweep kernels stage their converted operand once
                # per (dataset, format) through the conversion compiler.
                from repro.convert import staged_matrix_storage

                t._storage = staged_matrix_storage(
                    dataset_name, scale, seed, _FORMAT_OF_KERNEL[kernel_name]
                )
                t._pending.clear()
            else:
                c, v = _variant(kernel_name, sparse_seen, coords, vals,
                                shape, rng)
                t.from_coo(c, v)
            sparse_seen += 1
        tensors[ts.name] = t
    return tensors


#: Registered format of each format-sweep kernel's sparse operand.
_FORMAT_OF_KERNEL = {
    "COO-SpMV": "coo",
    "DCSR-SpMM": "dcsr",
    "BCSR-SpMV": "bcsr",
}


def _variant(kernel: str, index: int, coords, vals, shape, rng):
    """Derived datasets for multi-sparse-operand kernels (Section 8.1)."""
    if index == 0:
        return coords, vals
    if kernel == "Plus3":
        # Rotate the columns right by one and two.
        return gen.rotate_columns(coords, vals, shape[1], index)
    if kernel in ("Plus2", "InnerProd"):
        return gen.rotate_even_coords(coords, vals, shape[-1])
    return coords, vals


def _shape_for(kernel: str, name: str, role: str, order: int, dims) -> tuple:
    """Operand shapes per kernel convention."""
    if order == 0:
        return ()
    if kernel in ("SpMV", "COO-SpMV"):
        return {"A": (dims[0], dims[1]), "x": (dims[1],), "y": (dims[0],)}[name]
    if kernel == "DCSR-SpMM":
        r = max(4, min(FACTOR_RANK, dims[0]))
        return {"A": (dims[0], dims[1]), "B": (dims[1], r),
                "C": (dims[0], r)}[name]
    if kernel == "BCSR-SpMV":
        from repro.convert import blocked_dims
        from repro.formats.format import DEFAULT_BLOCK as b

        nb0, nb1, _, _ = blocked_dims((dims[0], dims[1]), (b, b))
        return {"A": (nb0, nb1, b, b), "x": (nb1, b), "y": (nb0, b)}[name]
    if kernel == "Plus3":
        return (dims[0], dims[1])
    if kernel == "SDDMM":
        k = max(8, min(SDDMM_K, dims[0]))
        return {"A": (dims[0], dims[1]), "B": (dims[0], dims[1]),
                "C": (dims[0], k), "D": (k, dims[1])}[name]
    if kernel == "MatTransMul":
        return {"A": (dims[0], dims[1]), "x": (dims[0],),
                "z": (dims[1],), "y": (dims[1],)}[name]
    if kernel == "Residual":
        return {"A": (dims[0], dims[1]), "x": (dims[1],),
                "b": (dims[0],), "y": (dims[0],)}[name]
    if kernel == "TTV":
        return {"B": dims, "c": (dims[2],), "A": (dims[0], dims[1])}[name]
    if kernel == "TTM":
        r = max(4, min(FACTOR_RANK, dims[0]))
        return {"B": dims, "C": (r, dims[2]),
                "A": (dims[0], dims[1], r)}[name]
    if kernel == "MTTKRP":
        r = max(4, min(FACTOR_RANK, dims[0]))
        return {"B": dims, "C": (r, dims[1]), "D": (r, dims[2]),
                "A": (dims[0], r)}[name]
    if kernel in ("InnerProd", "Plus2"):
        return dims
    raise KeyError(kernel)
