"""The Stardust compiler facade.

Combines the whole pipeline of Figure 1: a scheduled statement (tensor
algebra expression + formats + schedule) is analysed, memory-planned,
lowered through the co-iteration rewrite system to Spatial, and packaged
as a :class:`CompiledKernel` that can render source text (Figure 11),
execute functionally, or be handed to the Capstan simulator.
"""

from __future__ import annotations

import dataclasses
import functools
import os

import numpy as np

from repro.core.lowering import Lowerer
from repro.obs import trace as _trace
from repro.core.memory_analysis import KernelAnalysis, MemoryPlan
from repro.core.runner import run_program
from repro.schedule.stmt import IndexStmt
from repro.spatial import codegen
from repro.spatial.ir import SpatialProgram
from repro.tensor.storage import TensorStorage, to_dense
from repro.tensor.tensor import Tensor

#: Execution engines for running a compiled kernel functionally.
#:
#: * ``interp`` — the Spatial program interpreter (:func:`run_program`),
#:   the semantic oracle: handles every format in the registry.
#: * ``cpu``    — the merge-lattice walker (``repro.backends.cpu_exec``),
#:   a second, independent Python implementation.
#: * ``numpy``  — the vectorized backend (``repro.backends.numpy_exec``);
#:   orders of magnitude faster, falls back to ``cpu`` for shapes it
#:   cannot vectorize.
ENGINES = ("interp", "cpu", "numpy")

#: Default engine for artefact generation (functional execution checks).
DEFAULT_ENGINE = "numpy"


def default_engine() -> str:
    """The engine to use when none is requested (``REPRO_ENGINE`` env)."""
    engine = os.environ.get("REPRO_ENGINE", DEFAULT_ENGINE)
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


@dataclasses.dataclass
class CompiledKernel:
    """A Stardust compilation result."""

    name: str
    stmt: IndexStmt
    program: SpatialProgram
    analysis: KernelAnalysis
    plan: MemoryPlan

    @functools.cached_property
    def source(self) -> str:
        """Generated Spatial source text (Figure 11 style)."""
        with _trace.span("codegen", kernel=self.name):
            return codegen.generate(self.program)

    @property
    def spatial_loc(self) -> int:
        """Lines of generated Spatial (the Table 3 metric)."""
        return codegen.count_loc(self.source)

    @property
    def tensors(self) -> dict[str, Tensor]:
        named = {}
        for t in (self.analysis.output, *self.analysis.inputs,
                  *self.analysis.workspaces):
            named[t.name] = t
        return named

    def run(self, **overrides: Tensor) -> TensorStorage:
        """Execute the kernel functionally on the bound tensor data.

        Keyword arguments replace input tensors by name (they must have
        identical shapes and formats).
        """
        tensors = dict(self.tensors)
        for name, t in overrides.items():
            if name not in tensors:
                raise KeyError(f"kernel has no tensor named {name!r}")
            tensors[name] = t
        return run_program(self.program, tensors, self.analysis.output.name)

    def run_dense(self, **overrides: Tensor) -> np.ndarray:
        """Execute and densify the result (convenience for tests)."""
        return to_dense(self.run(**overrides))

    def run_engine(self, engine: str | None = None) -> np.ndarray:
        """Execute functionally with the selected engine, densified.

        ``engine`` is one of :data:`ENGINES` (``None`` asks
        :func:`default_engine`). All engines return the dense result in
        the output tensor's shape; they agree up to floating-point
        summation order, with ``interp`` as the oracle.
        """
        engine = default_engine() if engine is None else engine
        if engine == "interp":
            with _trace.span("interp", kernel=self.name):
                return self.run_dense()
        out_shape = self.analysis.output.shape
        if engine == "cpu":
            from repro.backends.cpu_exec import CpuExecutor

            with _trace.span("exec", kernel=self.name, engine="cpu"):
                result = CpuExecutor(self.stmt).run()
            return np.asarray(result, dtype=np.float64).reshape(out_shape)
        if engine == "numpy":
            from repro.backends.numpy_exec import NumpyExecutor

            with _trace.span("exec", kernel=self.name, engine="numpy"):
                result = NumpyExecutor(self.stmt).run()
            return np.asarray(result, dtype=np.float64).reshape(out_shape)
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")

    def memory_report(self) -> str:
        return self.plan.report()


def _compile(
    stmt: IndexStmt, name: str, streamed: frozenset = frozenset()
) -> CompiledKernel:
    """The uncached compilation pipeline (analysis → plan → lowering)."""
    with _trace.span("lower", kernel=name):
        lowerer = Lowerer(stmt, name, streamed=streamed)
        program = lowerer.lower()
    return CompiledKernel(
        name=name,
        stmt=stmt,
        program=program,
        analysis=lowerer.analysis,
        plan=lowerer.plan,
    )


def compile_stmt(
    stmt: IndexStmt,
    name: str = "kernel",
    *,
    cache: bool | None = None,
    streamed: frozenset = frozenset(),
) -> CompiledKernel:
    """Compile a scheduled statement to a Spatial kernel.

    Compilation is memoized through :mod:`repro.pipeline.cache`, keyed by
    a content hash of the statement, its tensor formats and data, the
    schedule, and the compiler version — so repeated harness runs and CLI
    invocations reuse prior results (including across processes via the
    on-disk store).

    Args:
        stmt: the scheduled statement.
        name: kernel name (appears in generated code, so it is part of
            the cache key).
        cache: ``None`` uses the process default (honouring the
            ``REPRO_NO_CACHE`` environment knob); ``False`` bypasses the
            cache; ``True`` forces it on.
        streamed: fused-pipeline connections — tensors whose DRAM
            materialization is elided. Extends the cache key (only when
            non-empty, so plain compiles keep their existing keys).
    """
    from repro.pipeline import cache as cache_mod

    streamed = frozenset(streamed)
    use_cache = cache_mod.cache_enabled() if cache is None else bool(cache)
    if not use_cache:
        return _compile(stmt, name, streamed)
    key = cache_mod.fingerprint_stmt(stmt, name)
    if streamed:
        key = cache_mod.make_key("kernel-streamed", key, *sorted(streamed))
    return cache_mod.default_cache().get_or_compute(
        key, lambda: _compile(stmt, name, streamed), stage="kernel"
    )


def compile_tensor(result: Tensor, name: str | None = None) -> CompiledKernel:
    """Compile the assignment recorded on a tensor with no schedule."""
    return compile_stmt(result.get_index_stmt(), name or result.name)
