"""Memory analysis: fine-grained array binding and transfer placement.

Section 6 of the paper: the user pins tensors coarsely (on-/off-chip via
the format language); the compiler then binds every format sub-array —
positions, coordinates, values — to a physical memory type and decides
where allocations and inter-memory transfers are emitted.

The binding preconditions implemented here follow Section 6.1:

* every off-chip tensor's arrays live in host-initialised **dense DRAM**
  (or **sparse DRAM** when accessed randomly with no working set);
* **position arrays** have affine ``addr, addr+1`` access → dense SRAM,
  loaded at kernel start;
* **coordinate arrays** are traversed strictly in order → FIFOs; when the
  level participates in a compressed-compressed co-iteration, the stream
  feeds a generated **bit vector** instead;
* **values arrays** are FIFOs when consumed in order at the innermost mode,
  sparse SRAM when accessed by scan positions (co-iteration) or gathered by
  sparse coordinates (which also engages the shuffle network), and dense
  SRAM when staged as an affine slice of a dense tensor;
* **scalars** are registers.

Transfer placement follows Section 6.2: each array is allocated at the
loop level just above its first use, with its load immediately after the
allocation (``alloc_depth`` below; depth ``k`` means the statement sits in
the body of loop ``k-1``, i.e. alongside loop ``k``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.formats.memory import MemoryType
from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    MapCall,
    SuchThat,
    Where,
    strip_suchthat,
)
from repro.ir.index_notation import Access, IndexVar
from repro.core.coiteration import (
    IterationStrategy,
    LoweringError,
    build_strategy,
)
from repro.schedule.provenance import Provenance
from repro.schedule.stmt import IndexStmt


# ---------------------------------------------------------------------------
# Kernel analysis: loop structure and per-forall strategies
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ForallInfo:
    """Analysis record for one forall."""

    forall: Forall
    depth: int
    strategy: IterationStrategy
    mapped: Optional[MapCall] = None  # the MapCall wrapping it, if any

    @property
    def ivar(self) -> IndexVar:
        return self.forall.ivar


@dataclasses.dataclass
class KernelAnalysis:
    """Loop structure, strategies, and tensor roles for one kernel."""

    stmt: IndexStmt
    foralls: list[ForallInfo]
    by_ivar: dict[int, ForallInfo]
    assignments: list[CinAssign]
    output: object  # Tensor
    inputs: list[object]
    workspaces: list[object]
    provenance: Provenance
    max_depth: int

    def info(self, ivar: IndexVar) -> ForallInfo:
        found = self.by_ivar.get(id(ivar))
        if found is not None:
            return found
        # Derived-variable fallback: after split/fuse, accesses still index
        # with the root variable; its coordinate is bound by the deepest
        # forall derived from it.
        candidates = [
            f for f in self.foralls
            if any(r is ivar for r in self.provenance.roots(f.ivar))
        ]
        if not candidates:
            raise KeyError(f"no forall binds {ivar}")
        return max(candidates, key=lambda f: f.depth)

    def strategy(self, ivar: IndexVar) -> IterationStrategy:
        return self.info(ivar).strategy


def analyze(stmt: IndexStmt) -> KernelAnalysis:
    """Analyse a scheduled statement: loop depths and iteration strategies."""
    cin, relations = strip_suchthat(stmt.cin)
    provenance = Provenance(relations)
    foralls: list[ForallInfo] = []
    by_ivar: dict[int, ForallInfo] = {}

    def visit(s: CinStmt, depth: int, mapped: Optional[MapCall]) -> None:
        if isinstance(s, SuchThat):
            visit(s.body, depth, mapped)
        elif isinstance(s, Forall):
            assigns = s.assignments()
            rhs_exprs = [a.rhs for a in assigns]
            lhs_accesses = [a.lhs for a in assigns]
            strategy = build_strategy(s.ivar, rhs_exprs, lhs_accesses)
            info = ForallInfo(s, depth, strategy, mapped)
            foralls.append(info)
            by_ivar[id(s.ivar)] = info
            visit(s.body, depth + 1, mapped)
        elif isinstance(s, Where):
            visit(s.producer, depth, mapped)
            visit(s.consumer, depth, mapped)
        elif isinstance(s, CinSequence):
            for sub in s.stmts:
                visit(sub, depth, mapped)
        elif isinstance(s, MapCall):
            visit(s.original, depth, s)
        elif isinstance(s, CinAssign):
            pass
        else:  # pragma: no cover - defensive
            raise LoweringError(f"cannot analyse {type(s).__name__}")

    visit(cin, 0, None)

    assignments = list(cin.assignments())
    if not assignments:
        raise LoweringError("statement contains no assignment")
    tensors = cin.tensors()
    output = assignments[0].lhs.tensor
    # The root output is the lhs that is not consumed as a workspace.
    workspace_ids = set()
    for asg in assignments:
        if asg.lhs.tensor.is_on_chip:
            workspace_ids.add(id(asg.lhs.tensor))
    for asg in assignments:
        if id(asg.lhs.tensor) not in workspace_ids:
            output = asg.lhs.tensor
            break
    inputs = [
        t
        for t in tensors
        if id(t) != id(output) and id(t) not in workspace_ids
    ]
    workspaces = [t for t in tensors if id(t) in workspace_ids]
    max_depth = max((f.depth for f in foralls), default=-1)
    return KernelAnalysis(
        stmt=stmt,
        foralls=foralls,
        by_ivar=by_ivar,
        assignments=assignments,
        output=output,
        inputs=inputs,
        workspaces=workspaces,
        provenance=provenance,
        max_depth=max_depth,
    )


# ---------------------------------------------------------------------------
# Memory plan
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ArrayBinding:
    """The physical binding of one tensor sub-array."""

    tensor: str
    array: str  # 'pos{L}', 'crd{L}', 'bv{L}', 'vals', or 'scalar'
    memory: MemoryType
    alloc_depth: int
    reason: str
    uses_shuffle: bool = False
    staged_full: bool = False  # whole array staged on chip (vs. a slice)

    def __str__(self) -> str:
        shuf = ", shuffle" if self.uses_shuffle else ""
        return (
            f"{self.tensor}.{self.array} -> {self.memory} "
            f"(alloc@L{self.alloc_depth}{shuf}): {self.reason}"
        )


@dataclasses.dataclass
class MemoryPlan:
    """Complete fine-grained binding table for one kernel."""

    bindings: dict[tuple[str, str], ArrayBinding]
    analysis: KernelAnalysis
    #: Tensors whose DRAM buffer a fused pipeline elides: the producer's
    #: level streams feed the consumer's co-iterators over on-fabric FIFOs,
    #: so the bindings above describe the *shape* of the traffic while the
    #: backing store is a stream, not DRAM.
    streamed: frozenset = frozenset()

    def binding(self, tensor_name: str, array: str) -> ArrayBinding:
        return self.bindings[(tensor_name, array)]

    def get(self, tensor_name: str, array: str) -> Optional[ArrayBinding]:
        return self.bindings.get((tensor_name, array))

    def of_tensor(self, tensor_name: str) -> list[ArrayBinding]:
        return [b for (t, _), b in self.bindings.items() if t == tensor_name]

    def shuffle_levels(self) -> int:
        """Number of distinct loop levels engaging the shuffle network."""
        depths = {
            b.alloc_depth
            for b in self.bindings.values()
            if b.uses_shuffle
        }
        return len(depths)

    def report(self) -> str:
        lines = ["Memory analysis (Section 6.1 bindings):"]
        for key in sorted(self.bindings):
            lines.append(f"  {self.bindings[key]}")
        for name in sorted(self.streamed):
            lines.append(
                f"  {name}.* -> {MemoryType.FIFO} (fused pipeline stream; "
                "DRAM buffer elided)"
            )
        return "\n".join(lines)


def _add(plan: dict, binding: ArrayBinding) -> None:
    key = (binding.tensor, binding.array)
    existing = plan.get(key)
    if existing is None:
        plan[key] = binding
        return
    # Keep the stronger requirement: random access beats streaming.
    rank = {
        MemoryType.FIFO: 0,
        MemoryType.BIT_VECTOR: 1,
        MemoryType.SRAM_DENSE: 2,
        MemoryType.SRAM_SPARSE: 3,
    }
    if rank.get(binding.memory, -1) > rank.get(existing.memory, -1):
        plan[key] = dataclasses.replace(
            binding, uses_shuffle=binding.uses_shuffle or existing.uses_shuffle
        )
    elif binding.uses_shuffle and not existing.uses_shuffle:
        plan[key] = dataclasses.replace(existing, uses_shuffle=True)


def plan_memory(
    analysis: KernelAnalysis, streamed: frozenset = frozenset()
) -> MemoryPlan:
    """Bind every tensor sub-array to a physical memory type.

    ``streamed`` names tensors whose materialization a fused pipeline
    elides (producer output / consumer operand connections); their array
    bindings are still derived — they describe the stream's shape — but
    the plan records that the backing buffer is an on-fabric FIFO.
    """
    plan: dict[tuple[str, str], ArrayBinding] = {}
    out = analysis.output

    for asg in analysis.assignments:
        _plan_access(plan, analysis, asg.lhs, is_output=asg.lhs.tensor is out)
        for acc in asg.rhs.accesses():
            _plan_access(plan, analysis, acc, is_output=False)
    return MemoryPlan(plan, analysis, streamed=frozenset(streamed))


def _loop_depth(analysis: KernelAnalysis, ivar: IndexVar) -> int:
    return analysis.info(ivar).depth


def _plan_access(
    plan: dict,
    analysis: KernelAnalysis,
    access: Access,
    is_output: bool,
) -> None:
    tensor = access.tensor
    fmt = tensor.format
    name = tensor.name

    if tensor.order == 0:
        if tensor.is_on_chip or is_output:
            _add(plan, ArrayBinding(
                name, "scalar", MemoryType.REGISTER, 0,
                "on-chip scalar workspaces and results live in registers",
            ))
        else:
            _add(plan, ArrayBinding(
                name, "scalar", MemoryType.REGISTER, 0,
                "scalar input broadcast from the host as a configuration value",
            ))
        return

    # Depth at which each storage level's variable binds.
    level_vars = [access.indices[fmt.mode_of_level(L)] for L in range(fmt.order)]
    level_depths = [_loop_depth(analysis, v) for v in level_vars]
    innermost_level = max(range(fmt.order), key=lambda L: level_depths[L])

    for L in range(fmt.order):
        lf = fmt.level_format(L)
        v = level_vars[L]
        strategy = analysis.strategy(v)
        if lf.is_singleton:
            # One coordinate per parent position, read at the parent's
            # (monotone) position: affine access -> dense SRAM, staged at
            # kernel start alongside the pos arrays.
            _add(plan, ArrayBinding(
                name, f"crd{L}", MemoryType.SRAM_DENSE, 0,
                "singleton coordinates read by parent position (affine) "
                "-> dense SRAM",
            ))
            continue
        if not lf.is_compressed:
            continue
        d = level_depths[L]
        if is_output:
            _add(plan, ArrayBinding(
                name, f"pos{L}", MemoryType.SRAM_DENSE, 0,
                "result positions accumulate in affine-addressed dense SRAM",
            ))
            _add(plan, ArrayBinding(
                name, f"crd{L}", MemoryType.FIFO, d,
                "result coordinates enqueue in order and stream to DRAM",
            ))
            continue
        _add(plan, ArrayBinding(
            name, f"pos{L}", MemoryType.SRAM_DENSE, 0,
            "position arrays are addressed addr,addr+1 (affine) -> dense SRAM",
        ))
        drives_scan = (
            strategy.kind == "scan"
            and any(it.tensor is tensor and it.level == L for it in strategy.driving)
        )
        if drives_scan:
            _add(plan, ArrayBinding(
                name, f"crd{L}", MemoryType.FIFO, d,
                "coordinate segment streams into the bit-vector generator",
            ))
            _add(plan, ArrayBinding(
                name, f"bv{L}", MemoryType.BIT_VECTOR, d,
                "compressed-compressed co-iteration packs occupancy bit vectors",
            ))
        else:
            _add(plan, ArrayBinding(
                name, f"crd{L}", MemoryType.FIFO, d,
                "coordinates are traversed in order, used once -> FIFO",
            ))

    # -- values array ---------------------------------------------------------
    vals_depth = level_depths[innermost_level]
    inner_fmt = fmt.level_format(innermost_level)
    inner_var = level_vars[innermost_level]
    strategy = analysis.strategy(inner_var)

    if is_output:
        if inner_fmt.is_compressed or fmt.is_all_dense:
            _add(plan, ArrayBinding(
                name, "vals", MemoryType.FIFO, vals_depth,
                "result values enqueue in order and stream-store to DRAM",
            ))
        else:
            _add(plan, ArrayBinding(
                name, "vals", MemoryType.SRAM_DENSE, vals_depth,
                "dense result slice accumulates in SRAM, bulk-stored per tile",
            ))
        return

    if tensor.is_on_chip:
        # Workspace values: random access with reuse -> sparse SRAM
        # (bit-vector structure carries the coordinates).
        mem = MemoryType.SRAM_SPARSE if fmt.has_compressed_level else MemoryType.SRAM_DENSE
        _add(plan, ArrayBinding(
            name, "vals", mem, vals_depth,
            "on-chip workspace values: small fixed-size array with reuse",
        ))
        return

    if inner_fmt.is_singleton:
        # Values align 1:1 with the parent compressed level's positions
        # and stream through its traversal in order (the COO layout).
        _add(plan, ArrayBinding(
            name, "vals", MemoryType.FIFO, vals_depth,
            "values consumed in order through singleton positions -> FIFO",
        ))
        return

    if inner_fmt.is_compressed:
        in_scan = strategy.kind == "scan" and any(
            it.tensor is tensor for it in strategy.driving
        )
        if in_scan:
            _add(plan, ArrayBinding(
                name, "vals", MemoryType.SRAM_SPARSE, vals_depth,
                "scan pattern indices address values randomly -> sparse SRAM",
                uses_shuffle=(strategy.op == "or"),
            ))
        else:
            _add(plan, ArrayBinding(
                name, "vals", MemoryType.FIFO, vals_depth,
                "values consumed in order at the innermost mode -> FIFO",
            ))
        return

    if fmt.has_compressed_level:
        # Trailing block/dense levels under a compressed level (BCSR):
        # values are addressed by storage position, not affine coordinates,
        # so the whole array stages once and reads positionally.
        _add(plan, ArrayBinding(
            name, "vals", MemoryType.SRAM_DENSE, 0,
            "positional values of a sparse tensor with trailing "
            "block/dense levels: whole array staged once",
            staged_full=True,
        ))
        return

    # Dense tensor: staged slice or coordinate gather. What matters is the
    # *deepest-bound* mode: if its coordinates are produced by a sparse
    # iterator, per-lane addresses are data-dependent (a gather through the
    # shuffle network); otherwise the access is an affine slice whose other
    # coordinates are already bound by enclosing loops.
    deepest_var = level_vars[innermost_level]
    deepest_strategy = analysis.strategy(deepest_var)
    if deepest_strategy.kind in ("compressed", "scan"):
        _add(plan, ArrayBinding(
            name, "vals", MemoryType.SRAM_SPARSE, 0,
            "gathered by sparse coordinates: random access with reuse "
            "-> sparse SRAM via the shuffle network",
            uses_shuffle=True,
            staged_full=True,
        ))
    elif innermost_level == fmt.order - 1:
        # The deepest-bound mode is the trailing storage mode: each slice
        # is contiguous in DRAM and stages per iteration of the loop that
        # binds the other coordinates (SDDMM's C/D row loads, Figure 11).
        other_depths = [
            level_depths[L] for L in range(fmt.order) if L != innermost_level
        ]
        alloc = max(other_depths) + 1 if other_depths else 0
        _add(plan, ArrayBinding(
            name, "vals", MemoryType.SRAM_DENSE, alloc,
            "affine slice of a dense tensor staged to dense SRAM",
        ))
    else:
        # Slices along the deepest mode would be strided in DRAM; stage the
        # whole tensor once and address it affinely (no shuffle needed: the
        # data-dependent coordinate is constant across vector lanes).
        _add(plan, ArrayBinding(
            name, "vals", MemoryType.SRAM_DENSE, 0,
            "strided slices: whole dense tensor staged once, affine access",
            staged_full=True,
        ))
