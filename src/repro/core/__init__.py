"""The Stardust compiler core: analysis, memory planning, lowering."""

from repro.core.coiteration import (
    IterationStrategy,
    LevelIterator,
    LoweringError,
    build_strategy,
    iteration_algebra,
)
from repro.core.compiler import CompiledKernel, compile_stmt, compile_tensor
from repro.core.lowering import Lowerer, lower
from repro.core.memory_analysis import (
    ArrayBinding,
    KernelAnalysis,
    MemoryPlan,
    analyze,
    plan_memory,
)
from repro.core.runner import bind_dram, bind_symbols, run_program

__all__ = [
    "ArrayBinding",
    "CompiledKernel",
    "IterationStrategy",
    "KernelAnalysis",
    "LevelIterator",
    "Lowerer",
    "LoweringError",
    "MemoryPlan",
    "analyze",
    "bind_dram",
    "bind_symbols",
    "build_strategy",
    "compile_stmt",
    "compile_tensor",
    "iteration_algebra",
    "lower",
    "plan_memory",
    "run_program",
]
