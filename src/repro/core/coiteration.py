"""The co-iteration lowering rewrite system (Section 7, Figure 10).

For every CIN ``forall``, the lowerer must decide how the hardware iterates
the variable's slice of the sparse iteration space. The paper expresses
this as a rewrite system over *iterator contraction sets*::

    I = T1 ◦ T2 ◦ ... ◦ Tn,   ◦ ∈ {∪, ∩}

where each ``Ti`` is the tensor level indexed by the forall variable and
``◦`` comes from the expression structure (multiplication contributes ∩,
addition ∪). Iterator formats are ``U`` (dense / universe), ``C``
(compressed), and ``B`` (bit vector).

This module builds the contraction set from the expression, then applies
the Figure 10 rules — universe elimination, compressed-versus-universe
locate, compressed→bit-vector conversion, two-vector scanners, and the
largest-prefix base rule — producing an :class:`IterationStrategy` the
Spatial lowerer turns into ``Foreach``/``Reduce``/``Scan`` patterns. Rule
applications are recorded in :attr:`IterationStrategy.trace` so tests can
assert which rewrites fired.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.ir.index_notation import (
    Access,
    Add,
    IndexExpr,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
)


class LoweringError(ValueError):
    """The statement cannot be lowered to the declarative-sparse model."""


@dataclasses.dataclass(frozen=True)
class LevelIterator:
    """One tensor level participating in a forall's iteration."""

    access: Access
    mode: int  # tensor mode indexed by the forall variable
    level: int  # storage level holding that mode

    @property
    def tensor(self):
        return self.access.tensor

    @property
    def level_format(self):
        return self.tensor.format.level_format(self.level)

    @property
    def symbol(self) -> str:
        """Figure 10 iterator-format symbol (U, C, B, or S)."""
        if self.tensor.is_on_chip and self.level_format.is_compressed:
            # On-chip workspaces keep compressed structure as bit vectors.
            return "B"
        return self.level_format.iterator_symbol

    def __str__(self) -> str:
        return f"{self.tensor.name}{self.level + 1}:{self.symbol}"


# -- iteration algebra -------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class IterTerm:
    """A node of the contraction-set algebra: leaf or ∪/∩ combination."""

    op: Optional[str]  # None for leaves, "union" or "intersect" otherwise
    leaf: Optional[LevelIterator] = None
    a: Optional["IterTerm"] = None
    b: Optional["IterTerm"] = None

    def leaves(self) -> tuple[LevelIterator, ...]:
        if self.op is None:
            return (self.leaf,)
        return self.a.leaves() + self.b.leaves()

    def __str__(self) -> str:
        if self.op is None:
            return str(self.leaf)
        sym = "∪" if self.op == "union" else "∩"
        return f"({self.a} {sym} {self.b})"


def _level_iterator(access: Access, ivar: IndexVar) -> Optional[LevelIterator]:
    mode = access.mode_of(ivar)
    if mode is None:
        return None
    level = access.tensor.format.level_of_mode(mode)
    return LevelIterator(access, mode, level)


def iteration_algebra(expr: IndexExpr, ivar: IndexVar) -> Optional[IterTerm]:
    """Build the contraction-set expression of ``ivar`` over ``expr``.

    Multiplication intersects its operands' iteration spaces; addition and
    subtraction union them. Operands that do not involve ``ivar`` are
    neutral and drop out (they are loop-invariant at this level).
    """
    if isinstance(expr, Access):
        it = _level_iterator(expr, ivar)
        return IterTerm(None, leaf=it) if it is not None else None
    if isinstance(expr, Literal):
        return None
    if isinstance(expr, Neg):
        return iteration_algebra(expr.a, ivar)
    if isinstance(expr, (Add, Sub, Mul)):
        a = iteration_algebra(expr.a, ivar)
        b = iteration_algebra(expr.b, ivar)
        if a is None:
            return b
        if b is None:
            return a
        op = "intersect" if isinstance(expr, Mul) else "union"
        return IterTerm(op, a=a, b=b)
    raise LoweringError(f"cannot analyse iteration of {type(expr).__name__}")


# -- the rewrite result ---------------------------------------------------------


@dataclasses.dataclass
class IterationStrategy:
    """How one forall lowers to the declarative-sparse model.

    Attributes:
        ivar: the forall variable.
        kind: ``dense`` (counter loop over the universe), ``compressed``
            (single compressed iterator), ``singleton`` (one coordinate
            derived positionally from the parent level), or ``scan``
            (bit-vector co-iteration of two sparse operands).
        driving: the compressed/bit-vector iterators that drive iteration
            (empty for dense; one for compressed; two for scan).
        located: dense-level accesses resolved by coordinate (random access
            / locate) rather than iterated.
        op: ``and``/``or`` for scans, None otherwise.
        result_iterator: the lhs iterator at this level, if the output has
            a mode here (determines whether result positions are counted).
        trace: rewrite-rule applications, in order (for tests and debug).
    """

    ivar: IndexVar
    kind: str
    driving: tuple[LevelIterator, ...]
    located: tuple[LevelIterator, ...]
    op: Optional[str] = None
    result_iterator: Optional[LevelIterator] = None
    trace: tuple[str, ...] = ()

    @property
    def result_compressed(self) -> bool:
        return (
            self.result_iterator is not None
            and self.result_iterator.level_format.is_compressed
        )

    def describe(self) -> str:
        names = ", ".join(str(d) for d in self.driving) or "U"
        out = f" -> {self.result_iterator}" if self.result_iterator else ""
        return f"forall {self.ivar.name}: {self.kind}[{names}]{out}"


def _op_symbol(op: str) -> str:
    return "and" if op == "intersect" else "or"


def build_strategy(
    ivar: IndexVar,
    rhs_exprs: list[IndexExpr],
    lhs_accesses: list[Access],
) -> IterationStrategy:
    """Apply the Figure 10 rewrite system for one forall variable.

    ``rhs_exprs`` are the right-hand sides of every assignment dominated by
    the forall (normally one); ``lhs_accesses`` the corresponding results.
    """
    trace: list[str] = []

    terms = [t for e in rhs_exprs if (t := iteration_algebra(e, ivar)) is not None]
    if len(terms) > 1:
        # Multiple assignments under one forall co-iterate the union of
        # their spaces; supported only when everything is dense below.
        combined = terms[0]
        for t in terms[1:]:
            combined = IterTerm("union", a=combined, b=t)
        term = combined
    elif terms:
        term = terms[0]
    else:
        term = None

    result_iterator = None
    for lhs in lhs_accesses:
        it = _level_iterator(lhs, ivar)
        if it is not None and not it.tensor.is_on_chip:
            result_iterator = it
            break
        if it is not None and result_iterator is None:
            result_iterator = it

    if term is None:
        # Only the result involves ivar: iterate its dense space.
        trace.append("lowerIter[U] => Foreach/Reduce (result-only)")
        return IterationStrategy(
            ivar, "dense", (), (), None, result_iterator, tuple(trace)
        )

    leaves = term.leaves()
    universes = tuple(l for l in leaves if l.symbol == "U")
    sparse = tuple(l for l in leaves if l.symbol in ("C", "B"))
    singles = tuple(l for l in leaves if l.symbol == "S")

    # -- Singleton rule: S ∩ U => S (bind the parent's coordinate) ---------------
    if singles:
        if len(singles) > 1 or sparse:
            raise LoweringError(
                f"forall {ivar.name} co-iterates a singleton level with "
                f"other sparse operands ({term}); singleton levels derive "
                f"one coordinate per parent position and cannot drive "
                f"Capstan scanners. Convert the operands to compressed "
                f"formats (repro convert) or reshape the computation."
            )
        if _has_union(term):
            raise LoweringError(
                f"forall {ivar.name} unions a singleton level with the "
                f"universe ({term}); COO-style levels only support "
                f"intersection (multiplication) with dense operands."
            )
        it = singles[0]
        if universes:
            trace.append("lowerIter[S1 ∩ U] => lowerIter(S1) (locate U)")
        trace.append("lowerIter[S1] => emit Singleton(crd(parent pos)) bind")
        return IterationStrategy(
            ivar, "singleton", (it,), universes, None, result_iterator,
            tuple(trace),
        )

    # -- Universe rules: U ∪ _ => U ; U ∩ U => U --------------------------------
    if not sparse:
        trace.append("lowerIter[U ∩/∪ U] => lowerIter(U) => Foreach/Reduce")
        return IterationStrategy(
            ivar, "dense", (), universes, None, result_iterator, tuple(trace)
        )
    if _has_union_with_universe(term):
        # A union with the universe iterates the whole dimension; sparse
        # operands become located (tested per-coordinate via bit vectors).
        trace.append("lowerIter[U ∪ _] => lowerIter(U)")
        return IterationStrategy(
            ivar, "dense", (), leaves, None, result_iterator, tuple(trace)
        )

    # -- Compression rules: C ∩ U => C (locate the dense side) -------------------
    if len(sparse) == 1:
        it = sparse[0]
        if universes:
            trace.append(f"lowerIter[{it.symbol}1 ∩ U] => lowerIter({it.symbol}1)")
        if it.symbol == "B":
            trace.append("lowerIter[B1] => emit scanner, Foreach(pos)")
            return IterationStrategy(
                ivar, "scan", (it,), universes, "and", result_iterator, tuple(trace)
            )
        trace.append("lowerIter[C1] => emit Foreach(pos)")
        return IterationStrategy(
            ivar, "compressed", (it,), universes, None, result_iterator, tuple(trace)
        )

    # -- Co-iteration: C1 ◦ C2 => genBitvector; B1 ◦ B2 => scanner ---------------
    if len(sparse) == 2:
        op = _root_sparse_op(term)
        for it in sparse:
            if it.symbol == "C":
                trace.append(f"lowerIter[C1 ◦ C2] => emit B = genBitvector({it.tensor.name})")
        sym = _op_symbol(op)
        trace.append(f"lowerIter[B1 {'∪' if sym == 'or' else '∩'} B2] => emit Foreach(Scan(..{sym}..))")
        return IterationStrategy(
            ivar, "scan", sparse, universes, sym, result_iterator, tuple(trace)
        )

    # -- Base rule: largest matching prefix ---------------------------------------
    trace.append(
        "lowerIter[_] base rule: no two-input match; schedule the expression "
        "as iterated two-input contractions (the paper's Plus3 strategy)"
    )
    raise LoweringError(
        f"forall {ivar.name} co-iterates {len(sparse)} sparse operands "
        f"({term}); Capstan scanners combine at most two. Reshape the "
        "computation with precompute into iterated two-input contractions."
    )


def _has_union(term: IterTerm) -> bool:
    if term.op is None:
        return False
    if term.op == "union":
        return True
    return _has_union(term.a) or _has_union(term.b)


def _has_union_with_universe(term: IterTerm) -> bool:
    if term.op is None:
        return False
    if term.op == "union":
        for side in (term.a, term.b):
            if side.op is None and side.leaf.symbol == "U":
                return True
            if side.op is not None and _has_union_with_universe(side):
                return True
        return False
    return _has_union_with_universe(term.a) or _has_union_with_universe(term.b)


def _root_sparse_op(term: IterTerm) -> str:
    """The operator combining the two sparse leaves (after U-elimination)."""
    if term.op is None:
        raise LoweringError("expected a combination node")
    a_sparse = any(l.symbol in ("C", "B") for l in term.a.leaves())
    b_sparse = any(l.symbol in ("C", "B") for l in term.b.leaves())
    if a_sparse and b_sparse:
        return term.op
    inner = term.a if a_sparse else term.b
    if inner.op is None:
        raise LoweringError("expected two sparse operands")
    return _root_sparse_op(inner)


# ---------------------------------------------------------------------------
# Fused-pipeline stream compatibility (FuseFlow cut rule)
# ---------------------------------------------------------------------------


def stream_compatible(producer_fmt, consumer_fmt) -> str | None:
    """Can a producer's output levels stream into a consumer co-iterator?

    Returns ``None`` when the connection can stream level-by-level, or a
    human-readable cut reason when the formats force materialization.
    Following Chou et al.'s capability records, streaming requires the two
    sides to agree structurally (same level kinds and mode ordering) and
    every produced level to be *ordered* and *unique*: a consumer iterator
    merges streams positionally, so out-of-order or duplicated coordinates
    would need a materialized sort/dedup pass in between.
    """
    if (producer_fmt.mode_formats != consumer_fmt.mode_formats
            or producer_fmt.mode_ordering != consumer_fmt.mode_ordering):
        return (
            f"format mismatch (producer stores {producer_fmt}, consumer "
            f"iterates {consumer_fmt}); conversion requires materialization"
        )
    for level, mf in enumerate(producer_fmt.mode_formats):
        if not mf.ordered:
            return (
                f"unordered producer (level {level} is {mf}); the consumer "
                "co-iterator needs coordinates in order"
            )
        if not mf.unique:
            return (
                f"non-unique producer (level {level} is {mf}); duplicate "
                "coordinates would double-count in the consumer"
            )
    return None
