"""Host-side runtime: bind tensor data to a generated program and run it.

The host (in the paper, the CPU driving Capstan) initialises DRAM from the
packed tensor storages, binds the program's symbolic dimensions, launches
the accelerator, and reassembles the result tensor from the output DRAM
arrays. This module implements that contract around the functional Spatial
interpreter; the Capstan simulator reuses the same symbol binding for its
cost evaluation.
"""

from __future__ import annotations


import numpy as np

from repro.spatial.interp import Machine, execute
from repro.spatial.ir import SpatialProgram
from repro.tensor.storage import (
    CompressedLevel,
    DenseLevel,
    SingletonLevel,
    TensorStorage,
)
from repro.tensor.tensor import Tensor

#: Name of the staging-capacity symbol emitted by the lowerer.
from repro.core.lowering import NNZ_ACCEL_MAX


def bind_symbols(
    program: SpatialProgram,
    tensors: dict[str, Tensor],
    output_name: str,
) -> dict[str, int]:
    """Compute values for every symbol the program declares.

    Dimension symbols come from tensor shapes; nnz symbols from packed
    storage (for the output, a safe upper bound: the dense size, capped by
    the total input nnz budget when all inputs are sparse is not sound for
    unions, so the dense size is used).
    """
    values: dict[str, int] = {}
    max_extent = 1
    for t in tensors.values():
        fmt = t.format
        for level in range(fmt.order):
            dim = t.shape[fmt.mode_of_level(level)]
            values[f"{t.name}{level + 1}_dim"] = dim
            max_extent = max(max_extent, dim)
        if t.name == output_name:
            continue
        if t.order == 0:
            values[t.name] = t.scalar_value()
            continue
        storage = t.storage
        for level, lvl in enumerate(storage.levels):
            if isinstance(lvl, (CompressedLevel, SingletonLevel)):
                values[f"{t.name}{level + 1}_nnz"] = lvl.nnz
                max_extent = max(max_extent, lvl.nnz)
        max_extent = max(max_extent, len(storage.vals))
    # Output nnz bounds: dense size per level prefix.
    out = tensors.get(output_name)
    if out is not None and out.order > 0:
        prefix = 1
        fmt = out.format
        for level in range(fmt.order):
            prefix *= out.shape[fmt.mode_of_level(level)]
            if fmt.level_format(level).is_compressed:
                values.setdefault(f"{out.name}{level + 1}_nnz", prefix)
            max_extent = max(max_extent, prefix)
    values[NNZ_ACCEL_MAX] = max_extent + 1
    # Only expose symbols the program asked for (plus any extras is fine,
    # but keep the environment clean).
    return {k: v for k, v in values.items() if k in set(program.symbols)} | {
        k: v for k, v in values.items() if k not in set(program.symbols)
    }


def bind_dram(program: SpatialProgram, tensors: dict[str, Tensor]) -> dict[str, np.ndarray]:
    """DRAM initial contents from packed input storages."""
    data: dict[str, np.ndarray] = {}
    for layout in program.layouts.values():
        if layout.is_output:
            continue
        t = tensors[layout.tensor]
        if t.order == 0:
            continue
        storage = t.storage
        for role, dram_name in layout.arrays.items():
            if role == "vals":
                data[dram_name] = storage.vals.astype(np.float64)
            elif role.startswith("pos"):
                level = int(role[3:])
                data[dram_name] = storage.array(level, "pos").astype(np.float64)
            elif role.startswith("crd"):
                level = int(role[3:])
                data[dram_name] = storage.array(level, "crd").astype(np.float64)
    return data


def assemble_output(
    machine: Machine, program: SpatialProgram, output: Tensor
) -> TensorStorage:
    """Rebuild the output tensor's storage from the final DRAM state."""
    layout = program.layouts[output.name]
    fmt = output.format
    if output.order == 0:
        vals = machine.dram[layout.arrays["vals"]][:1].copy()
        return TensorStorage(fmt, (), [], vals)
    levels: list[DenseLevel | CompressedLevel] = []
    num_parents = 1
    for level in range(fmt.order):
        dim = output.shape[fmt.mode_of_level(level)]
        if fmt.level_format(level).is_dense:
            levels.append(DenseLevel(dim))
            num_parents *= dim
        else:
            pos_arr = machine.dram[layout.arrays[f"pos{level}"]]
            pos = pos_arr[: num_parents + 1].astype(np.int64)
            nnz = int(pos[num_parents])
            crd = machine.dram[layout.arrays[f"crd{level}"]][:nnz].astype(np.int32)
            levels.append(CompressedLevel(pos=pos, crd=crd))
            num_parents = nnz
    vals = machine.dram[layout.arrays["vals"]][:num_parents].copy()
    return TensorStorage(fmt, output.shape, levels, vals)


def run_program(
    program: SpatialProgram,
    tensors: dict[str, Tensor],
    output_name: str,
) -> TensorStorage:
    """Bind data, execute functionally, and assemble the result."""
    symbols = bind_symbols(program, tensors, output_name)
    dram = bind_dram(program, tensors)
    machine = execute(program, dram, symbols)
    return assemble_output(machine, program, tensors[output_name])
