"""Scheduled-CIN → Spatial lowering (Section 7.2).

The lowerer recursively traverses the scheduled CIN tree and emits Spatial
parallel patterns, driven by two analyses computed up front:

* the per-forall :class:`~repro.core.coiteration.IterationStrategy`
  (Figure 10 rewrite system), deciding dense counters vs. compressed
  position loops vs. bit-vector scanners; and
* the :class:`~repro.core.memory_analysis.MemoryPlan`, deciding which
  physical memory each tensor sub-array occupies and at which loop level
  its allocation and transfer are emitted (Section 6.2).

Naming follows the paper's generated code (Figure 11): ``B2_pos`` is the
position array of B's second storage level, ``B_vals`` its values array,
``*_dram`` the off-chip copies, ``B1_dim`` the dimension of B's first
storage level. Scan pattern-index binders end in ``_p`` (operand
positions), which the segment-gating logic uses to recognise possibly
invalid (union) parents.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.formats.memory import MemoryType
from repro.ir.cin import (
    CinAssign,
    CinSequence,
    CinStmt,
    Forall,
    FuseRel,
    MapCall,
    SplitDown,
    SplitUp,
    SuchThat,
    Where,
)
from repro.ir.index_notation import (
    Access,
    Add,
    IndexExpr,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
)
from repro.core.coiteration import LevelIterator, LoweringError
from repro.core.memory_analysis import (
    KernelAnalysis,
    MemoryPlan,
    analyze,
    plan_memory,
)
from repro.schedule.stmt import INNER_PAR, OUTER_PAR, IndexStmt
from repro.spatial.ir import (
    Assign,
    BitVectorDecl,
    BitVectorOp,
    DenseCounter,
    DramDecl,
    DramWrite,
    Enq,
    FifoDecl,
    Foreach,
    GenBitVector,
    LoadBulk,
    RegDecl,
    RegWrite,
    ReducePat,
    SBin,
    ScanCounter,
    SDeq,
    SExpr,
    SingletonCounter,
    SLit,
    SRead,
    SRegRead,
    SSelect,
    SStmt,
    SValid,
    SVar,
    SpatialProgram,
    SramDecl,
    SramWrite,
    StoreBulk,
    StreamStore,
    TensorLayout,
    sadd,
    smul,
    ssub,
)

#: Default FIFO depth in generated code (matches Figure 11).
FIFO_DEPTH = 16

#: On-chip staging capacity symbol used for SRAM declarations (Figure 11).
NNZ_ACCEL_MAX = "nnz_accel_max"


class Lowerer:
    """Lowers one scheduled statement to a :class:`SpatialProgram`."""

    def __init__(
        self,
        stmt: IndexStmt,
        name: str = "kernel",
        streamed: frozenset = frozenset(),
    ) -> None:
        self.stmt = stmt
        self.name = name
        # Fused-pipeline connections: tensors whose DRAM materialization is
        # elided because a producer stage streams directly into this
        # kernel's co-iterators (or this kernel streams into a consumer).
        self.streamed = frozenset(streamed)
        self.analysis: KernelAnalysis = analyze(stmt)
        self.plan: MemoryPlan = plan_memory(self.analysis, self.streamed)
        self.env = dict(stmt.environment_vars)
        self.symbols: dict[str, None] = {}
        self.dram: list[DramDecl] = []
        self.layouts: dict[str, TensorLayout] = {}
        self.notes: list[str] = []
        self._body_stack: list[list[SStmt]] = []
        self._uid = itertools.count()
        self.coord: dict[int, SExpr] = {}  # id(ivar) -> coordinate value
        self.position: dict[tuple[int, int], SExpr] = {}  # (tensor, level) -> pos
        self.value_of: dict[int, SExpr] = {}  # id(tensor) -> value expr
        self.ws_bitvector: dict[int, str] = {}  # id(tensor) -> bv name
        self.out_pos: dict[int, SExpr] = {}  # output level -> out position
        self.seg_start: dict[tuple[int, int], SExpr] = {}  # scan segment bases
        self.ws_out_pos: Optional[SExpr] = None
        self._declared_regs: set[str] = set()
        self._declared: set[str] = set()
        self._dense_out_full = False
        self._dim_symbol_cache: dict[int, str] = {}
        # Non-unique driving levels (COO roots) repeat output coordinates,
        # so dense outputs must scatter-accumulate instead of streaming.
        self._scatter_out = self._output_scatters()

    def _output_scatters(self) -> bool:
        """True when the dense output's coordinates may repeat (COO-style
        non-unique driving levels), forcing scatter accumulation."""
        out = self.analysis.output
        if out.is_on_chip or out.order == 0 or not out.format.is_all_dense:
            return False
        for info in self.analysis.foralls:
            st = info.strategy
            if st.result_iterator is None or st.result_iterator.tensor is not out:
                continue
            if any(not it.level_format.unique for it in st.driving):
                return True
        return False

    # -- small helpers --------------------------------------------------------

    def fresh(self, base: str) -> str:
        return f"{base}_{next(self._uid)}"

    def emit(self, stmt: SStmt) -> None:
        self._body_stack[-1].append(stmt)

    def emit_parent(self, stmt: SStmt) -> None:
        """Emit into the enclosing buffer (before the pattern being built)."""
        self._body_stack[-2].append(stmt)

    def sym(self, name: str) -> SVar:
        self.symbols[name] = None
        return SVar(name)

    def dim_symbol(self, tensor, level: int) -> SVar:
        return self.sym(f"{tensor.name}{level + 1}_dim")

    def nnz_symbol(self, tensor, level: int) -> SVar:
        return self.sym(f"{tensor.name}{level + 1}_nnz")

    def ivar_dim(self, ivar: IndexVar) -> SVar:
        """Symbolic dimension of an index variable's iteration space."""
        cached = self._dim_symbol_cache.get(id(ivar))
        if cached is not None:
            return SVar(cached)
        candidates: list[tuple[bool, SVar]] = []
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                mode = acc.mode_of(ivar)
                if mode is not None:
                    level = acc.tensor.format.level_of_mode(mode)
                    candidates.append(
                        (acc.tensor.is_on_chip, self.dim_symbol(acc.tensor, level))
                    )
        if not candidates:
            raise LoweringError(f"no access binds a dimension for {ivar}")
        candidates.sort(key=lambda c: c[0])  # prefer off-chip tensors
        sym = candidates[0][1]
        self._dim_symbol_cache[id(ivar)] = sym.name
        return sym

    # -- array / memory names ---------------------------------------------------

    @staticmethod
    def pos_name(tensor, level: int) -> str:
        return f"{tensor.name}{level + 1}_pos"

    @staticmethod
    def crd_name(tensor, level: int) -> str:
        return f"{tensor.name}{level + 1}_crd"

    @staticmethod
    def vals_name(tensor) -> str:
        return f"{tensor.name}_vals"

    @staticmethod
    def bv_name(tensor, level: int) -> str:
        return f"{tensor.name}{level + 1}_bv"

    @staticmethod
    def dram_name(onchip_name: str) -> str:
        return f"{onchip_name}_dram"

    # -- DRAM layout ----------------------------------------------------------

    def _level_count_expr(self, tensor, level: int) -> SExpr:
        """Symbolic number of positions at a storage level (-1 = root)."""
        if level < 0:
            return SLit(1)
        fmt = tensor.format
        lf = fmt.level_format(level)
        if lf.is_dense:
            parent = self._level_count_expr(tensor, level - 1)
            return smul(parent, self.dim_symbol(tensor, level))
        if lf.is_singleton:
            # One child per parent position: the count passes through.
            return self._level_count_expr(tensor, level - 1)
        return self.nnz_symbol(tensor, level)

    def declare_tensor_dram(self, tensor, is_output: bool) -> None:
        if tensor.is_on_chip:
            return
        layout = TensorLayout(tensor.name, tensor.order, {}, is_output)
        if tensor.order == 0:
            if is_output:
                name = self.dram_name(self.vals_name(tensor))
                self.dram.append(DramDecl(name, SLit(1), tensor.name, "vals"))
                layout.arrays["vals"] = name
            else:
                self.sym(tensor.name)  # scalar inputs bind as host symbols
            self.layouts[tensor.name] = layout
            return
        fmt = tensor.format
        for level in range(fmt.order):
            lf = fmt.level_format(level)
            if lf.is_singleton:
                crd_dram = self.dram_name(self.crd_name(tensor, level))
                self.dram.append(
                    DramDecl(crd_dram, self._level_count_expr(tensor, level),
                             tensor.name, f"crd{level}")
                )
                layout.arrays[f"crd{level}"] = crd_dram
                continue
            if not lf.is_compressed:
                continue
            parent = self._level_count_expr(tensor, level - 1)
            pos_dram = self.dram_name(self.pos_name(tensor, level))
            crd_dram = self.dram_name(self.crd_name(tensor, level))
            self.dram.append(
                DramDecl(pos_dram, sadd(parent, SLit(1)), tensor.name, f"pos{level}")
            )
            self.dram.append(
                DramDecl(crd_dram, self._level_count_expr(tensor, level),
                         tensor.name, f"crd{level}")
            )
            layout.arrays[f"pos{level}"] = pos_dram
            layout.arrays[f"crd{level}"] = crd_dram
        vals_dram = self.dram_name(self.vals_name(tensor))
        self.dram.append(
            DramDecl(vals_dram, self._level_count_expr(tensor, fmt.order - 1),
                     tensor.name, "vals")
        )
        layout.arrays["vals"] = vals_dram
        self.layouts[tensor.name] = layout

    # -- top level --------------------------------------------------------------

    def lower(self) -> SpatialProgram:
        out = self.analysis.output
        if not out.is_on_chip and out.format.has_singleton_level:
            raise LoweringError(
                f"output {out.name} uses a singleton (COO-style) format; "
                "assembling COO outputs on the accelerator is not "
                "supported — give the result a compressed or dense format"
            )
        self.declare_tensor_dram(out, is_output=True)
        for t in self.analysis.inputs:
            self.declare_tensor_dram(t, is_output=False)

        accel: list[SStmt] = []
        self._body_stack.append(accel)
        self.emit_prelude()
        self.lower_stmt(self._strip(self.stmt.cin))
        self.emit_epilogue()
        self._body_stack.pop()

        self.notes.extend(self.plan.report().splitlines())
        for name in sorted(self.streamed):
            self.notes.append(
                f"fused stream: {name} levels stream over on-fabric FIFOs "
                "(DRAM materialization elided)"
            )
        for info in self.analysis.foralls:
            self.notes.extend(f"  {t}" for t in info.strategy.trace)
        return SpatialProgram(
            name=self.name,
            env=dict(self.env),
            symbols=tuple(self.symbols),
            dram=tuple(self.dram),
            accel=tuple(accel),
            layouts=self.layouts,
            notes=tuple(self.notes),
            streams=tuple(sorted(self.streamed)),
        )

    @staticmethod
    def _strip(stmt: CinStmt) -> CinStmt:
        while isinstance(stmt, SuchThat):
            stmt = stmt.body
        return stmt

    def emit_prelude(self) -> None:
        """Kernel-start allocations: position SRAMs, full stages, outputs."""
        out = self.analysis.output
        ip = self.env.get(INNER_PAR, 1)
        for tensor in self.analysis.inputs:
            if tensor.order == 0 or tensor.is_on_chip:
                continue
            fmt = tensor.format
            for level in range(fmt.order):
                if (fmt.level_format(level).is_singleton
                        and self.plan.get(tensor.name, f"crd{level}")
                        is not None):
                    # Singleton coordinates are read by parent position
                    # (affine): stage the whole crd array like a pos array.
                    name = self.crd_name(tensor, level)
                    size = self._level_count_expr(tensor, level)
                    self.emit(SramDecl(name, size))
                    self.emit(LoadBulk(name, self.dram_name(name), SLit(0),
                                       size, par=ip))
                    self._declared.add(name)
                    continue
                if self.plan.get(tensor.name, f"pos{level}") is None:
                    continue
                name = self.pos_name(tensor, level)
                size = sadd(self._level_count_expr(tensor, level - 1), SLit(1))
                self.emit(SramDecl(name, size))
                self.emit(LoadBulk(name, self.dram_name(name), SLit(0), size, par=ip))
                self._declared.add(name)
            vb = self.plan.get(tensor.name, "vals")
            if vb is not None and vb.staged_full and vb.memory in (
                MemoryType.SRAM_DENSE, MemoryType.SRAM_SPARSE
            ):
                name = self.vals_name(tensor)
                size = self._level_count_expr(tensor, fmt.order - 1)
                self.emit(SramDecl(name, size,
                                   sparse=vb.memory is MemoryType.SRAM_SPARSE))
                self.emit(LoadBulk(name, self.dram_name(name), SLit(0), size, par=ip))
                self._declared.add(name)
        if out.order > 0 and not out.is_on_chip:
            fmt = out.format
            for level in range(fmt.order):
                if not fmt.level_format(level).is_compressed:
                    continue
                name = self.pos_name(out, level)
                size = sadd(self._out_count_expr(level - 1), SLit(1))
                self.emit(SramDecl(name, size))
                self._declared.add(name)
        if out.order == 0:
            self._declare_reg(f"{out.name}_reg")
        if (out.order == 1 and out.format.is_all_dense
                and not self._scatter_out):
            name = self.vals_name(out)
            self.emit(FifoDecl(name, FIFO_DEPTH))
            self._declared.add(name)

    def _declare_reg(self, reg: str) -> None:
        self.emit(RegDecl(reg, 0.0))
        self._declared_regs.add(reg)

    def _out_count_expr(self, level: int) -> SExpr:
        out = self.analysis.output
        if level < 0:
            return SLit(1)
        fmt = out.format
        if fmt.level_format(level).is_dense:
            return smul(self._out_count_expr(level - 1), self.dim_symbol(out, level))
        return self.nnz_symbol(out, level)

    def emit_epilogue(self) -> None:
        out = self.analysis.output
        if out.is_on_chip:
            return
        if out.order == 0:
            self.emit(DramWrite(self.dram_name(self.vals_name(out)), SLit(0),
                                SRegRead(f"{out.name}_reg")))
            return
        fmt = out.format
        ip = self.env.get(INNER_PAR, 1)
        for level in range(fmt.order):
            if not fmt.level_format(level).is_compressed:
                continue
            name = self.pos_name(out, level)
            size = sadd(self._out_count_expr(level - 1), SLit(1))
            self.emit(StoreBulk(self.dram_name(name), name, SLit(0), size, par=ip))
        if self._dense_out_full:
            # Scatter-accumulated (or derived-variable) outputs bulk-store
            # the whole buffer once at kernel end.
            size = self._out_count_expr(fmt.order - 1)
            self.emit(StoreBulk(self.dram_name(self.vals_name(out)),
                                self.vals_name(out), SLit(0), size, par=ip))
        elif out.order == 1 and fmt.is_all_dense:
            self.emit(StreamStore(self.dram_name(self.vals_name(out)),
                                  self.vals_name(out), SLit(0),
                                  self.dim_symbol(out, 0)))

    # -- recursive statement lowering ---------------------------------------------

    def lower_stmt(self, stmt: CinStmt) -> None:
        if isinstance(stmt, SuchThat):
            self.lower_stmt(stmt.body)
        elif isinstance(stmt, Forall):
            self.lower_forall(stmt)
        elif isinstance(stmt, Where):
            # Scalar workspaces produced on the right reset per evaluation
            # of the where node: declare their registers in this scope.
            for asg in stmt.producer.assignments():
                t = asg.lhs.tensor
                if t.is_on_chip and t.order == 0:
                    reg = f"{t.name}_reg"
                    self._declare_reg(reg)
                    self.value_of[id(t)] = SRegRead(reg)
            self.lower_stmt(stmt.producer)
            self.lower_stmt(stmt.consumer)
        elif isinstance(stmt, CinSequence):
            for s in stmt.stmts:
                self.lower_stmt(s)
        elif isinstance(stmt, MapCall):
            self.lower_mapcall(stmt)
        elif isinstance(stmt, CinAssign):
            self.lower_assign(stmt)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"cannot lower {type(stmt).__name__}")

    def lower_mapcall(self, node: MapCall) -> None:
        if node.func == "BulkTransfer":
            self._lower_bulk_transfer(node)
            return
        if node.func not in ("Reduction", "Reduce"):
            raise LoweringError(
                f"backend function {node.func!r} has no Spatial lowering rule"
            )
        inner = self._strip(node.original)
        if not isinstance(inner, Forall):
            raise LoweringError("Reduction maps a forall with an accumulation")
        assigns = inner.assignments()
        if len(assigns) != 1 or not assigns[0].accumulate:
            raise LoweringError("Reduction requires a single accumulating body")
        target = assigns[0].lhs.tensor
        if not (target.is_on_chip and target.order == 0):
            raise LoweringError(
                "Reduction accumulates into an on-chip scalar workspace"
            )
        reg = f"{target.name}_reg"
        if reg not in self._declared_regs:
            self._declare_reg(reg)
        self.value_of[id(target)] = SRegRead(reg)
        self.lower_forall(inner, reduce_into=reg, reduce_par=node.par)

    def _lower_bulk_transfer(self, node: MapCall) -> None:
        """A ``forall(i) t1(i) = t2(i)`` copy mapped to a bulk load.

        The Section 5.2 automatic pass: instead of a one-element-per-cycle
        loop, emit an SRAM allocation plus a single LoadBulk covering the
        slice (the coordinates above the copied mode are already bound).
        """
        inner = self._strip(node.original)
        if not isinstance(inner, Forall) or not isinstance(
            self._strip(inner.body), CinAssign
        ):
            raise LoweringError("BulkTransfer maps a single-assignment loop")
        asg = self._strip(inner.body)
        dst, src = asg.lhs.tensor, asg.rhs.tensor
        dim = self.dim_symbol(src, src.format.order - 1)
        name = self.vals_name(dst)
        if name not in self._declared:
            self.emit(SramDecl(name, dim))
            self._declared.add(name)
        self.emit(LoadBulk(name, self.dram_name(self.vals_name(src)),
                           SLit(0), dim, par=self.env.get(INNER_PAR, 1)))
        # Consumer reads address the SRAM by the copied mode's coordinate
        # through the normal lower_access slice path.

    # -- foralls -------------------------------------------------------------------

    def _pattern_par(self, info) -> int:
        if info.depth == 0:
            return self.env.get(OUTER_PAR, 1)
        if info.depth == self.analysis.max_depth:
            return self.env.get(INNER_PAR, 1)
        return 1

    def lower_forall(self, forall: Forall, reduce_into: Optional[str] = None,
                     reduce_par: Optional[int] = None) -> None:
        info = self.analysis.info(forall.ivar)
        par = reduce_par if reduce_par is not None else self._pattern_par(info)
        kind = info.strategy.kind
        if kind == "dense":
            self._lower_dense_loop(forall, info, par, reduce_into)
        elif kind == "compressed":
            self._lower_compressed_loop(forall, info, par, reduce_into)
        elif kind == "singleton":
            self._lower_singleton_loop(forall, info, reduce_into)
        elif kind == "scan":
            self._lower_scan_loop(forall, info, par, reduce_into)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unknown strategy kind {kind}")

    # .. dense ....................................................................

    def _lower_dense_loop(self, forall, info, par, reduce_into) -> None:
        ivar = forall.ivar
        strategy = info.strategy
        length = self._dense_trip_count(ivar)
        idx = ivar.name
        counter = DenseCounter(length)
        self._stage_slices_for_depth(info.depth)

        out = self.analysis.output
        elem_reg = None
        result_it = strategy.result_iterator

        out_var = None
        if (out.order == 1 and out.format.is_all_dense
                and not out.is_on_chip and not self._scatter_out):
            for asg in self.analysis.assignments:
                if asg.lhs.tensor is out:
                    out_var = asg.lhs.indices[0]
                    break
        had_out_coord = out_var is not None and id(out_var) in self.coord

        body: list[SStmt] = []
        self._body_stack.append(body)
        self.coord[id(ivar)] = SVar(idx)
        self._recombine_derived_coords(ivar)
        # The element register streams out at the loop that completes the
        # output coordinate binding (the root var's loop, or the innermost
        # loop derived from it after split/fuse).
        stream_elem = out_var is not None and not had_out_coord and (
            id(out_var) in self.coord
        )
        for it in strategy.located:
            self._bind_dense_position(it, SVar(idx))
        row = None
        if result_it is not None:
            self._bind_output_dense(result_it, SVar(idx))
            row = self._stage_output_row(result_it.level)
        if stream_elem:
            elem_reg = f"{out.name}_elem"
            self.emit(RegDecl(elem_reg, 0.0))
            self._declared_regs.add(elem_reg)
        if reduce_into is None:
            self.lower_stmt(forall.body)
            if elem_reg is not None:
                self.emit(Enq(self.vals_name(out), SRegRead(elem_reg)))
            if row is not None:
                self._store_output_row(result_it.level, row)
            self._body_stack.pop()
            self.emit(Foreach(counter, (idx,), tuple(body), par=par))
        else:
            value = self._reduce_value(forall.body)
            self._body_stack.pop()
            self.emit(ReducePat(reduce_into, counter, (idx,), tuple(body),
                                value, "+", par=par))

    def _recombine_derived_coords(self, ivar: IndexVar) -> None:
        """Recover root coordinates from split/fuse-derived loop variables.

        After ``split_up(i, io, ii, c)``, tensor accesses still index with
        ``i``; once both ``io`` and ``ii`` are bound, ``i = io * c + ii``.
        After ``fuse(io, ii, f)``, ``io = f / trip(ii)`` and
        ``ii = f % trip(ii)``. Applied transitively.
        """
        prov = self.analysis.provenance
        changed = True
        while changed:
            changed = False
            for rel in prov.relations:
                if isinstance(rel, (SplitUp, SplitDown)):
                    outer = self.coord.get(id(rel.outer))
                    inner = self.coord.get(id(rel.inner))
                    if (outer is not None and inner is not None
                            and id(rel.parent) not in self.coord):
                        # The outer loop strides by the inner trip count:
                        # the split factor for split_up, ceil(N/factor)
                        # for split_down.
                        stride = self._dense_trip_count(rel.inner)
                        self.coord[id(rel.parent)] = sadd(
                            smul(outer, stride), inner
                        )
                        changed = True
                elif isinstance(rel, FuseRel):
                    fused = self.coord.get(id(rel.fused))
                    if fused is not None and id(rel.outer) not in self.coord:
                        inner_trip = self._dense_trip_count(rel.inner)
                        self.coord[id(rel.outer)] = SBin("/", fused, inner_trip)
                        self.coord[id(rel.inner)] = SBin("%", fused, inner_trip)
                        changed = True

    def _static_extent(self, ivar: IndexVar) -> Optional[int]:
        """Compile-time extent for variables bound to fixed-size block
        levels (the trip count is a literal, not a host symbol)."""
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                mode = acc.mode_of(ivar)
                if mode is None:
                    continue
                fmt = acc.tensor.format
                lf = fmt.level_format(fmt.level_of_mode(mode))
                if lf.is_block:
                    return int(lf.size)
        return None

    def _dense_trip_count(self, ivar: IndexVar) -> SExpr:
        prov = self.analysis.provenance
        rel = prov.recombine(ivar)
        if rel is None:
            static = self._static_extent(ivar)
            if static is not None:
                return SLit(static)
            return self.ivar_dim(ivar)
        relation, role = rel
        if isinstance(relation, SplitUp):
            if role == "inner":
                return SLit(relation.factor)
            parent = self._dense_trip_count(relation.parent)
            return SBin("/", sadd(parent, SLit(relation.factor - 1)),
                        SLit(relation.factor))
        if isinstance(relation, SplitDown):
            if role == "outer":
                return SLit(relation.factor)
            parent = self._dense_trip_count(relation.parent)
            return SBin("/", sadd(parent, SLit(relation.factor - 1)),
                        SLit(relation.factor))
        assert isinstance(relation, FuseRel)
        return smul(self._dense_trip_count(relation.outer),
                    self._dense_trip_count(relation.inner))

    def _bind_dense_position(self, it: LevelIterator, coord: SExpr) -> None:
        tensor = it.tensor
        parent = self.position.get((id(tensor), it.level - 1), SLit(0))
        pos = sadd(smul(parent, self.dim_symbol(tensor, it.level)), coord)
        self.position[(id(tensor), it.level)] = pos

    def _bind_output_dense(self, it: LevelIterator, coord: SExpr) -> None:
        parent = self.out_pos.get(it.level - 1, SLit(0))
        self.out_pos[it.level] = sadd(
            smul(parent, self.dim_symbol(it.tensor, it.level)), coord
        )

    # .. output row buffers (dense innermost level of a >=2-D output) ..............

    def _stage_output_row(self, level: int) -> Optional[str]:
        """If the output's next level is a trailing dense level, allocate a
        row buffer in the current body; returns its name."""
        out = self.analysis.output
        fmt = out.format
        if out.is_on_chip or out.order < 2:
            return None
        if level + 1 != fmt.order - 1:
            return None
        if not fmt.level_format(level + 1).is_dense:
            return None
        name = f"{out.name}_row"
        self.emit(SramDecl(name, self.dim_symbol(out, level + 1)))
        self._declared.add(name)
        return name

    def _store_output_row(self, level: int, row: str) -> None:
        out = self.analysis.output
        dim = self.dim_symbol(out, level + 1)
        base = self.out_pos.get(level, SLit(0))
        start = smul(base, dim)
        end = smul(sadd(base, SLit(1)), dim)
        self.emit(StoreBulk(self.dram_name(self.vals_name(out)), row,
                            start, end, par=self.env.get(INNER_PAR, 1)))

    # .. compressed (single driving iterator) .....................................

    def _parent_position(self, it: LevelIterator) -> SExpr:
        """Position of the parent level, recovering dense chains from bound
        coordinates when no loop recorded them (split/fused loops)."""
        recorded = self.position.get((id(it.tensor), it.level - 1))
        if recorded is not None or it.level == 0:
            return recorded if recorded is not None else SLit(0)
        tensor = it.tensor
        fmt = tensor.format
        access = self._access_of_any(tensor)
        pos: SExpr = SLit(0)
        for level in range(it.level):
            prior = self.position.get((id(tensor), level))
            if prior is not None:
                pos = prior
                continue
            if not fmt.level_format(level).is_dense:
                raise LoweringError(
                    f"compressed level {level} of {tensor.name} has no "
                    "bound position"
                )
            coord = self.coord.get(id(access.indices[fmt.mode_of_level(level)]))
            if coord is None:
                raise LoweringError(
                    f"coordinate for {tensor.name} level {level} unbound"
                )
            pos = sadd(smul(pos, self.dim_symbol(tensor, level)), coord)
        return pos

    def _access_of_any(self, tensor) -> Access:
        for asg in self.analysis.assignments:
            for acc in (asg.lhs, *asg.rhs.accesses()):
                if acc.tensor is tensor:
                    return acc
        raise LoweringError(f"tensor {tensor.name} is never accessed")

    def _segment(self, it: LevelIterator) -> tuple[SExpr, SExpr, SExpr]:
        """(start, end, len) of the driving iterator's current segment."""
        tensor = it.tensor
        parent = self._parent_position(it)
        pos_mem = self.pos_name(tensor, it.level)
        prefix = f"{tensor.name}{it.level + 1}"
        start_name = self.fresh(f"{prefix}_start")
        len_name = self.fresh(f"{prefix}_len")
        invalid = self._parent_may_be_invalid(parent)
        gated = self._gate_parent(parent) if invalid else parent
        self.emit(Assign(start_name, SRead(pos_mem, gated)))
        raw_len = ssub(SRead(pos_mem, sadd(gated, SLit(1))), SVar(start_name))
        if invalid:
            raw_len = SSelect(self._parent_valid(parent), raw_len, SLit(0))
        self.emit(Assign(len_name, raw_len))
        start = SVar(start_name)
        length = SVar(len_name)
        return start, sadd(start, length), length

    def _gate_parent(self, parent: SExpr) -> SExpr:
        return SSelect(self._parent_valid(parent), parent, SLit(0))

    @staticmethod
    def _parent_may_be_invalid(parent: SExpr) -> bool:
        return any(
            isinstance(e, SVar) and e.name.endswith("_p") for e in parent.walk()
        )

    @staticmethod
    def _parent_valid(parent: SExpr) -> SExpr:
        for e in parent.walk():
            if isinstance(e, SVar) and e.name.endswith("_p"):
                return SValid(e)
        raise LoweringError("no scan position in parent expression")

    def _load_segment_stream(
        self, it: LevelIterator, start: SExpr, end: SExpr, want_vals: bool
    ) -> tuple[str, Optional[str]]:
        """Allocate + load the crd (and optionally vals) segment arrays."""
        tensor = it.tensor
        crd = self.crd_name(tensor, it.level)
        self.emit(FifoDecl(crd, FIFO_DEPTH))
        self.emit(LoadBulk(crd, self.dram_name(crd), start, end, par=1))
        vals = None
        if want_vals:
            vals = self.vals_name(tensor)
            vb = self.plan.get(tensor.name, "vals")
            if vb is not None and vb.memory is MemoryType.FIFO:
                self.emit(FifoDecl(vals, FIFO_DEPTH))
            else:
                self.emit(SramDecl(vals, self.sym(NNZ_ACCEL_MAX),
                                   sparse=vb is not None
                                   and vb.memory is MemoryType.SRAM_SPARSE))
            self.emit(LoadBulk(vals, self.dram_name(vals), start, end, par=1))
        return crd, vals

    @staticmethod
    def _is_innermost_level(tensor, level: int) -> bool:
        return level == tensor.format.order - 1

    def _lower_compressed_loop(self, forall, info, par, reduce_into) -> None:
        ivar = forall.ivar
        it = info.strategy.driving[0]
        tensor = it.tensor
        self._stage_slices_for_depth(info.depth)
        start, end, seg_len = self._segment(it)
        want_vals = tensor.format.streams_vals_at(it.level)
        crd_mem, vals_mem = self._load_segment_stream(it, start, end, want_vals)
        out_state = self._begin_output_level(info)

        idx = self.fresh(f"{ivar.name}q")
        body: list[SStmt] = []
        self._body_stack.append(body)
        coord_name = ivar.name
        self.emit(Assign(coord_name, SDeq(crd_mem)))
        self.coord[id(ivar)] = SVar(coord_name)
        if it.level + 1 < tensor.format.order:
            pos_name = self.fresh(f"{tensor.name}{it.level + 1}_abs")
            self.emit(Assign(pos_name, sadd(start, SVar(idx))))
            self.position[(id(tensor), it.level)] = SVar(pos_name)
        if vals_mem is not None:
            vb = self.plan.get(tensor.name, "vals")
            if vb is not None and vb.memory is MemoryType.FIFO:
                hoist = f"{tensor.name}_hoisted"
                self.emit(Assign(hoist, SDeq(vals_mem)))
                self.value_of[id(tensor)] = SVar(hoist)
            else:
                self.value_of[id(tensor)] = SRead(vals_mem, SVar(idx))
        for located in info.strategy.located:
            self._bind_dense_position(located, SVar(coord_name))
        row = None
        result_it = info.strategy.result_iterator
        if result_it is not None:
            if result_it.level_format.is_compressed and out_state is not None:
                self._bind_output_compressed(out_state, SVar(idx),
                                             SVar(coord_name))
            elif result_it.level_format.is_dense:
                self._bind_output_dense(result_it, SVar(coord_name))
            row = self._stage_output_row(result_it.level)

        if reduce_into is None:
            self.lower_stmt(forall.body)
            if row is not None:
                self._store_output_row(result_it.level, row)
            self._body_stack.pop()
            self.emit(Foreach(DenseCounter(seg_len), (idx,), tuple(body), par=par))
        else:
            value = self._reduce_value(forall.body)
            self._body_stack.pop()
            self.emit(ReducePat(reduce_into, DenseCounter(seg_len), (idx,),
                                tuple(body), value, "+", par=par))
        self._end_output_level(out_state, seg_len)

    # .. singleton (one coordinate per parent position) ............................

    def _lower_singleton_loop(self, forall, info, reduce_into) -> None:
        """Lower a singleton-level forall (COO column/tail levels).

        No counter loop runs: the ``Singleton`` scanner yields the one
        coordinate stored at the parent's position, and the position
        passes through unchanged (1:1 with the parent level).
        """
        ivar = forall.ivar
        it = info.strategy.driving[0]
        tensor = it.tensor
        self._stage_slices_for_depth(info.depth)
        parent = self._parent_position(it)
        counter = SingletonCounter(self.crd_name(tensor, it.level), parent)
        idx = ivar.name

        body: list[SStmt] = []
        self._body_stack.append(body)
        self.coord[id(ivar)] = SVar(idx)
        self.position[(id(tensor), it.level)] = parent
        if (self.value_of.get(id(tensor)) is None
                and self._is_innermost_level(tensor, it.level)):
            # Parent loops normally hoist the value stream; fall back to a
            # positional read when the values sit in random-access SRAM.
            vb = self.plan.get(tensor.name, "vals")
            if vb is not None and vb.memory in (MemoryType.SRAM_DENSE,
                                                MemoryType.SRAM_SPARSE):
                self.value_of[id(tensor)] = SRead(self.vals_name(tensor),
                                                  parent)
        for located in info.strategy.located:
            self._bind_dense_position(located, SVar(idx))
        result_it = info.strategy.result_iterator
        row = None
        if result_it is not None:
            if not result_it.level_format.is_dense:
                raise LoweringError(
                    "singleton loops cannot produce compressed output levels"
                )
            self._bind_output_dense(result_it, SVar(idx))
            row = self._stage_output_row(result_it.level)
        if reduce_into is None:
            self.lower_stmt(forall.body)
            if row is not None:
                self._store_output_row(result_it.level, row)
            self._body_stack.pop()
            self.emit(Foreach(counter, (idx,), tuple(body), par=1))
        else:
            value = self._reduce_value(forall.body)
            self._body_stack.pop()
            self.emit(ReducePat(reduce_into, counter, (idx,), tuple(body),
                                value, "+", par=1))

    # .. scans (co-iteration) ......................................................

    def _lower_scan_loop(self, forall, info, par, reduce_into) -> None:
        ivar = forall.ivar
        strategy = info.strategy
        self._stage_slices_for_depth(info.depth)
        dim = self.ivar_dim(ivar)

        bv_names: list[str] = []
        operands: list[tuple[LevelIterator, str]] = []
        for it in strategy.driving:
            if it.symbol == "B" and id(it.tensor) in self.ws_bitvector:
                bv_names.append(self.ws_bitvector[id(it.tensor)])
                operands.append((it, "ws"))
                continue
            start, end, seg_len = self._segment(it)
            want_vals = self._is_innermost_level(it.tensor, it.level)
            crd_mem, _vals = self._load_segment_stream(it, start, end, want_vals)
            bv = self.bv_name(it.tensor, it.level)
            self.emit(BitVectorDecl(bv, dim))
            self.emit(GenBitVector(bv, crd_mem, seg_len))
            bv_names.append(bv)
            operands.append((it, "seg"))
            self.seg_start[(id(it.tensor), it.level)] = start

        op = strategy.op or "and"
        result_it = strategy.result_iterator
        result_ws = result_it is not None and result_it.tensor.is_on_chip
        if result_ws and len(bv_names) == 2:
            out_t = result_it.tensor
            ws_bv = self.bv_name(out_t, result_it.level)
            self.emit(BitVectorDecl(ws_bv, dim))
            self.emit(BitVectorOp(ws_bv, bv_names[0], bv_names[1], op))
            self.ws_bitvector[id(out_t)] = ws_bv

        out_state = self._begin_output_level(info)
        count_reg = None
        counter = ScanCounter(bv_names[0],
                              bv_names[1] if len(bv_names) > 1 else None,
                              op, dim)
        ivars = self._scan_binders(ivar, len(bv_names))
        if strategy.result_compressed and not result_ws:
            # First scanner loop: count result positions (Section 7.2).
            count_reg = self.fresh(f"{ivar.name}_cnt")
            self.emit(RegDecl(count_reg, 0.0))
            self.emit(ReducePat(count_reg, counter, ivars, (), SLit(1),
                                "+", par=par))

        body: list[SStmt] = []
        self._body_stack.append(body)
        coord_var = SVar(ivars[-1])
        self.coord[id(ivar)] = coord_var
        saved_ws_out = self.ws_out_pos
        for k, (it, kind) in enumerate(operands):
            pvar = SVar(ivars[k])
            if kind == "ws" or self._is_innermost_level(it.tensor, it.level):
                self.value_of[id(it.tensor)] = self._gated_value(it, pvar, op)
            if kind == "seg" and it.level + 1 < it.tensor.format.order:
                base = self.seg_start[(id(it.tensor), it.level)]
                self.position[(id(it.tensor), it.level)] = sadd(base, pvar)
        for located in strategy.located:
            self._bind_dense_position(located, coord_var)
        row = None
        if result_it is not None and not result_ws:
            if result_it.level_format.is_compressed and out_state is not None:
                self._bind_output_compressed(out_state, SVar(ivars[-2]), coord_var)
            elif result_it.level_format.is_dense:
                self._bind_output_dense(result_it, coord_var)
            row = self._stage_output_row(result_it.level)
        if result_ws:
            self.ws_out_pos = SVar(ivars[-2])

        if reduce_into is None:
            self.lower_stmt(forall.body)
            if row is not None:
                self._store_output_row(result_it.level, row)
            self._body_stack.pop()
            self.emit(Foreach(counter, ivars, tuple(body), par=par))
        else:
            value = self._reduce_value(forall.body)
            self._body_stack.pop()
            self.emit(ReducePat(reduce_into, counter, ivars, tuple(body),
                                value, "+", par=par))
        self.ws_out_pos = saved_ws_out
        cnt = SRegRead(count_reg) if count_reg is not None else None
        self._end_output_level(out_state, cnt)

    @staticmethod
    def _scan_binders(ivar: IndexVar, n_ops: int) -> tuple[str, ...]:
        base = ivar.name
        if n_ops == 1:
            return (f"{base}a_p", f"{base}_out", base)
        return (f"{base}a_p", f"{base}b_p", f"{base}_out", base)

    def _gated_value(self, it: LevelIterator, pvar: SVar, op: str) -> SExpr:
        read = SRead(self.vals_name(it.tensor), pvar)
        if op == "or":
            return SSelect(SValid(pvar), read, SLit(0))
        return read

    # -- output handling ------------------------------------------------------------

    def _begin_output_level(self, info) -> Optional[dict]:
        """Prepare counters/FIFOs for a compressed output level."""
        strategy = info.strategy
        if not strategy.result_compressed:
            return None
        out = strategy.result_iterator.tensor
        if out.is_on_chip:
            return None
        level = strategy.result_iterator.level
        cnt_reg = f"{out.name}{level + 1}_cnt"
        if cnt_reg not in self._declared_regs:
            # Global running counter, declared once at the accel root.
            self._body_stack[0].insert(0, RegDecl(cnt_reg, 0.0))
            self._declared_regs.add(cnt_reg)
        start_name = self.fresh(f"{out.name}{level + 1}_ostart")
        self.emit(Assign(start_name, SRegRead(cnt_reg)))
        crd_fifo = self.crd_name(out, level)
        self.emit(FifoDecl(crd_fifo, FIFO_DEPTH))
        vals_fifo = None
        if self._is_innermost_level(out, level):
            vals_fifo = self.vals_name(out)
            self.emit(FifoDecl(vals_fifo, FIFO_DEPTH))
        return {
            "tensor": out,
            "level": level,
            "cnt_reg": cnt_reg,
            "start": SVar(start_name),
            "crd_fifo": crd_fifo,
            "vals_fifo": vals_fifo,
        }

    def _bind_output_compressed(self, out_state: dict, seg_idx: SExpr,
                                coord: SExpr) -> None:
        level = out_state["level"]
        self.out_pos[level] = sadd(out_state["start"], seg_idx)
        self.emit(Enq(out_state["crd_fifo"], coord))

    def _end_output_level(self, out_state: Optional[dict],
                          cnt: Optional[SExpr]) -> None:
        """After the loop: update the pos array, stream segments to DRAM."""
        if out_state is None:
            return
        if cnt is None:
            raise LoweringError("compressed output level without a count")
        out = out_state["tensor"]
        level = out_state["level"]
        start = out_state["start"]
        end_name = self.fresh(f"{out.name}{level + 1}_oend")
        self.emit(Assign(end_name, sadd(start, cnt)))
        parent = self.out_pos.get(level - 1, SLit(0))
        self.emit(SramWrite(self.pos_name(out, level), sadd(parent, SLit(1)),
                            SVar(end_name)))
        self.emit(RegWrite(out_state["cnt_reg"], SVar(end_name)))
        crd_dram = self.dram_name(self.crd_name(out, level))
        self.emit(StreamStore(crd_dram, out_state["crd_fifo"], start, cnt))
        if out_state["vals_fifo"] is not None:
            vals_dram = self.dram_name(self.vals_name(out))
            self.emit(StreamStore(vals_dram, out_state["vals_fifo"], start, cnt))

    # -- staged dense slices -----------------------------------------------------------

    def _stage_slices_for_depth(self, depth: int) -> None:
        """Emit SRAM staging for dense-slice operands allocated here."""
        for tensor in self.analysis.inputs:
            if tensor.order == 0 or tensor.is_on_chip:
                continue
            vb = self.plan.get(tensor.name, "vals")
            if vb is None or vb.memory is not MemoryType.SRAM_DENSE:
                continue
            if vb.staged_full or vb.alloc_depth != depth:
                continue
            name = self.vals_name(tensor)
            fmt = tensor.format
            access = self._access_of(tensor)
            trailing_level = fmt.order - 1
            trailing_dim = self.dim_symbol(tensor, trailing_level)
            base: SExpr = SLit(0)
            for level in range(trailing_level):
                mode = fmt.mode_of_level(level)
                coord = self.coord.get(id(access.indices[mode]))
                if coord is None:
                    raise LoweringError(
                        f"slice of {tensor.name} staged before its "
                        f"coordinates are bound"
                    )
                base = sadd(smul(base, self.dim_symbol(tensor, level)), coord)
            start = smul(base, trailing_dim)
            end = smul(sadd(base, SLit(1)), trailing_dim)
            self.emit(SramDecl(name, trailing_dim))
            self.emit(LoadBulk(name, self.dram_name(name), start, end,
                               par=self.env.get(INNER_PAR, 1)))
            self._declared.add(name)

    def _access_of(self, tensor) -> Access:
        for asg in self.analysis.assignments:
            for acc in asg.rhs.accesses():
                if acc.tensor is tensor:
                    return acc
        raise LoweringError(f"tensor {tensor.name} is never accessed")

    # -- assignments -----------------------------------------------------------------

    def _reduce_value(self, body: CinStmt) -> SExpr:
        body = self._strip(body)
        if not isinstance(body, CinAssign):
            raise LoweringError("Reduce pattern bodies must be assignments")
        return self.lower_expr(body.rhs)

    def lower_assign(self, asg: CinAssign) -> None:
        out = asg.lhs.tensor
        value = self.lower_expr(asg.rhs)
        if out.order == 0:
            reg = f"{out.name}_reg"
            if reg not in self._declared_regs:
                self._declare_reg(reg)
            self.emit(RegWrite(reg, value, accumulate=asg.accumulate))
            self.value_of[id(out)] = SRegRead(reg)
            return
        if out.is_on_chip:
            addr = self.ws_out_pos
            if addr is None:
                mode = out.format.mode_of_level(out.format.order - 1)
                addr = self.coord.get(id(asg.lhs.indices[mode]))
            if addr is None:
                raise LoweringError("workspace write without a bound position")
            name = self.vals_name(out)
            if name not in self._declared:
                dim = self.dim_symbol(out, out.order - 1)
                self.emit_parent(SramDecl(
                    name, dim, sparse=out.format.has_compressed_level))
                self._declared.add(name)
            self.emit(SramWrite(name, addr, value, accumulate=asg.accumulate))
            return
        fmt = out.format
        inner_level = fmt.order - 1
        if fmt.level_format(inner_level).is_compressed:
            self.emit(Enq(self.vals_name(out), value))
            return
        if self._scatter_out:
            # Non-unique (COO) driving levels revisit output coordinates:
            # accumulate into the whole-tensor buffer, stored at the end.
            self._assign_dense_full(asg, out, fmt, value)
            return
        if out.order == 1 and fmt.is_all_dense:
            # Per-element register, enqueued once per outer iteration (the
            # enclosing dense loop emits the enq).
            reg = f"{out.name}_elem"
            self.emit(RegWrite(reg, value, accumulate=asg.accumulate))
            return
        # Row-buffer accumulation (dense trailing level of a >=2-D output).
        name = f"{out.name}_row"
        if name in self._declared:
            mode = fmt.mode_of_level(inner_level)
            coordv = self.coord.get(id(asg.lhs.indices[mode]))
            if coordv is None:
                raise LoweringError("dense output coordinate unbound")
            self.emit(SramWrite(name, coordv, value,
                                accumulate=asg.accumulate,
                                atomic=asg.accumulate))
            return
        # Fallback (derived loop variables, fused outputs): a whole-tensor
        # buffer written at the flattened coordinate, bulk-stored at the end.
        self._assign_dense_full(asg, out, fmt, value)

    def _assign_dense_full(self, asg: CinAssign, out, fmt, value: SExpr) -> None:
        """Write a dense output through a whole-tensor on-chip buffer."""
        full = self.vals_name(out)
        if full not in self._declared:
            size = self._out_count_expr(fmt.order - 1)
            self._body_stack[0].insert(0, SramDecl(full, size))
            self._declared.add(full)
            self._dense_out_full = True
        addr: SExpr = SLit(0)
        for level in range(fmt.order):
            mode = fmt.mode_of_level(level)
            coordv = self.coord.get(id(asg.lhs.indices[mode]))
            if coordv is None:
                raise LoweringError("dense output coordinate unbound")
            addr = sadd(smul(addr, self.dim_symbol(out, level)), coordv)
        self.emit(SramWrite(full, addr, value, accumulate=asg.accumulate,
                            atomic=asg.accumulate))

    # -- expressions --------------------------------------------------------------------

    def lower_expr(self, expr: IndexExpr) -> SExpr:
        if isinstance(expr, Literal):
            return SLit(expr.value)
        if isinstance(expr, Neg):
            return ssub(SLit(0), self.lower_expr(expr.a))
        if isinstance(expr, Add):
            return sadd(self.lower_expr(expr.a), self.lower_expr(expr.b))
        if isinstance(expr, Sub):
            return ssub(self.lower_expr(expr.a), self.lower_expr(expr.b))
        if isinstance(expr, Mul):
            return smul(self.lower_expr(expr.a), self.lower_expr(expr.b))
        if isinstance(expr, Access):
            return self.lower_access(expr)
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def lower_access(self, access: Access) -> SExpr:
        tensor = access.tensor
        hoisted = self.value_of.get(id(tensor))
        if hoisted is not None:
            return hoisted
        if tensor.order == 0:
            return self.sym(tensor.name)
        vb = self.plan.get(tensor.name, "vals")
        if vb is None:
            raise LoweringError(f"no memory binding for {tensor.name}.vals")
        name = self.vals_name(tensor)
        fmt = tensor.format
        if vb.memory is MemoryType.SRAM_DENSE and not vb.staged_full:
            mode = fmt.mode_of_level(fmt.order - 1)
            coord = self.coord.get(id(access.indices[mode]))
            if coord is None:
                raise LoweringError(f"coordinate for {tensor.name} slice unbound")
            return SRead(name, coord)
        if vb.staged_full:
            if fmt.has_compressed_level:
                # Sparse tensors with trailing block/dense levels address
                # values by storage position, not by affine coordinates.
                pos = self.position.get((id(tensor), fmt.order - 1))
                if pos is None:
                    raise LoweringError(
                        f"positional access to {tensor.name} values before "
                        f"its innermost position is bound"
                    )
                return SRead(name, pos)
            addr: SExpr = SLit(0)
            for level in range(fmt.order):
                mode = fmt.mode_of_level(level)
                coord = self.coord.get(id(access.indices[mode]))
                if coord is None:
                    raise LoweringError(
                        f"coordinate {access.indices[mode]} for "
                        f"{tensor.name} unbound"
                    )
                addr = sadd(smul(addr, self.dim_symbol(tensor, level)), coord)
            return SRead(name, addr)
        raise LoweringError(
            f"access {access} has no value binding at this point "
            f"(vals in {vb.memory})"
        )


def lower(
    stmt: IndexStmt, name: str = "kernel", streamed: frozenset = frozenset()
) -> SpatialProgram:
    """Lower a scheduled statement to a Spatial program."""
    return Lowerer(stmt, name, streamed=streamed).lower()
