"""A simple auto-scheduler for the Capstan backend.

Section 8.3 of the paper: "With the use of an auto-scheduler, the number
[of input lines] could be cut down from 10 to 6 LOC due to the removal of
the user-provided schedule." This module implements the obvious rule-based
auto-scheduler the paper anticipates:

1. **environment defaults** — vectorize the innermost loop at the full lane
   width; outer-parallelize to the shuffle-network limit when the kernel
   gathers through it (Table 5's par column), otherwise to a compute-
   balanced factor;
2. **scalar-reduction acceleration** — when the innermost loops are pure
   reductions, precompute them into an on-chip scalar workspace and map
   them onto Spatial's ``Reduce`` pattern (the Figure 5 recipe);
3. **bulk-transfer detection** (Section 5.2's automatic pass) — sub-
   statements of the form ``forall(i) t1(i) = t2(i)`` are flagged as bulk
   memory transfers.

The auto-scheduler is deliberately conservative: anything it cannot
pattern-match is left to the default lowering, which is always correct.
"""

from __future__ import annotations

from repro.core.coiteration import LoweringError
from repro.formats.memory import MemoryRegion
from repro.ir.cin import CinAssign, Forall
from repro.ir.index_notation import Access, Assignment, IndexVar
from repro.schedule.stmt import (
    BULK_TRANSFER,
    INNER_PAR,
    OUTER_PAR,
    REDUCTION,
    SPATIAL,
    IndexStmt,
)
from repro.tensor.tensor import Tensor


def _innermost_reduction_var(stmt: IndexStmt) -> IndexVar | None:
    """The innermost forall variable if it is a pure reduction loop."""
    cin = stmt.cin
    loops = []
    s = cin
    while isinstance(s, Forall):
        loops.append(s)
        s = s.body
    if not loops or not isinstance(s, CinAssign):
        return None
    inner = loops[-1]
    if not s.accumulate:
        return None
    lhs_vars = {id(v) for v in s.lhs.indices}
    if id(inner.ivar) in lhs_vars:
        return None
    return inner.ivar


def _kernel_gathers(stmt: IndexStmt) -> bool:
    """Whether any dense operand is indexed by sparse-produced coordinates
    at its deepest-bound mode (the shuffle-network criterion)."""
    from repro.core.memory_analysis import analyze, plan_memory

    try:
        plan = plan_memory(analyze(stmt))
    except LoweringError:
        return False
    return any(b.uses_shuffle for b in plan.bindings.values())


def detect_bulk_transfers(stmt: IndexStmt) -> IndexStmt:
    """Mark ``forall(i) t1(i) = t2(i)`` copies as bulk transfers.

    Implements the automatic pass of Section 5.2 ("detects CIN sub-
    statements that loop over an array transferring a single element of
    data at a time and maps them to bulk memory load or store functions").
    """
    out = stmt
    for node in list(stmt.cin.walk()):
        if not isinstance(node, Forall):
            continue
        body = node.body
        if not isinstance(body, CinAssign) or body.accumulate:
            continue
        if not isinstance(body.rhs, Access):
            continue
        lhs, rhs = body.lhs, body.rhs
        if (
            len(lhs.indices) == 1
            and len(rhs.indices) == 1
            and lhs.indices[0] is node.ivar
            and rhs.indices[0] is node.ivar
            and lhs.tensor.format.is_all_dense
            and rhs.tensor.format.is_all_dense
        ):
            try:
                out = out.map(node.ivar, SPATIAL, BULK_TRANSFER)
            except Exception:
                continue
    return out


def auto_schedule(
    assignment_or_tensor,
    lanes: int = 16,
    shuffle_networks: int = 16,
) -> IndexStmt:
    """Derive a complete Capstan schedule for a bare assignment.

    Accepts a :class:`~repro.ir.index_notation.Assignment` or a tensor with
    a recorded assignment. Returns a scheduled :class:`IndexStmt`
    equivalent to the hand-written recipes of the evaluation kernels.
    """
    if isinstance(assignment_or_tensor, Tensor):
        assignment = assignment_or_tensor.get_assignment()
    elif isinstance(assignment_or_tensor, Assignment):
        assignment = assignment_or_tensor
    else:
        raise TypeError("auto_schedule takes a Tensor or an Assignment")

    stmt = IndexStmt.from_assignment(assignment)

    # Rule 1: environment defaults.
    stmt = stmt.environment(INNER_PAR, lanes)
    outer = shuffle_networks if _kernel_gathers(stmt) else lanes
    stmt = stmt.environment(OUTER_PAR, outer)

    # Rule 2: accelerate a pure innermost scalar reduction.
    red_var = _innermost_reduction_var(stmt)
    if red_var is not None:
        target = [a for a in stmt.cin.assignments()][0]
        ws = Tensor("ws", (), None, MemoryRegion.ON_CHIP)
        try:
            stmt = stmt.precompute(target.rhs, [], [], ws)
            stmt = stmt.accelerate(red_var, SPATIAL, REDUCTION, par=INNER_PAR)
        except Exception:
            # The pattern did not apply cleanly; fall back unscheduled.
            pass

    # Rule 3: bulk-transfer detection on any remaining copy loops.
    stmt = detect_bulk_transfers(stmt)
    return stmt
