"""Index-variable provenance: recovering derived loop bounds.

Split and fuse relations (``s.t.`` clauses) introduce derived index
variables whose iteration spaces are functions of their parents'. The
lowerer queries this module to recover, for any forall variable:

* the *root* variable it derives from (the one tensors are accessed with),
* its trip count given the root dimension, and
* the affine recombination ``root = outer * factor + inner`` for splits.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.ir.cin import FuseRel, IndexVarRel, SplitDown, SplitUp
from repro.ir.index_notation import IndexVar


@dataclasses.dataclass(frozen=True)
class DerivedBounds:
    """Iteration-space information for one (possibly derived) variable."""

    root: IndexVar
    trip_count_of: "TripCountFn"


TripCountFn = object  # callable (root_dim: int) -> int


class Provenance:
    """Query structure over a set of scheduling relations."""

    def __init__(self, relations: Sequence[IndexVarRel] = ()) -> None:
        self.relations = tuple(relations)
        self._parent: dict[int, tuple[IndexVarRel, str]] = {}
        for rel in self.relations:
            if isinstance(rel, (SplitUp, SplitDown)):
                self._parent[id(rel.outer)] = (rel, "outer")
                self._parent[id(rel.inner)] = (rel, "inner")
            elif isinstance(rel, FuseRel):
                self._parent[id(rel.fused)] = (rel, "fused")

    def is_derived(self, ivar: IndexVar) -> bool:
        return id(ivar) in self._parent

    def roots(self, ivar: IndexVar) -> tuple[IndexVar, ...]:
        """Underived ancestor variables of ``ivar`` (fuse has two)."""
        entry = self._parent.get(id(ivar))
        if entry is None:
            return (ivar,)
        rel, _role = entry
        if isinstance(rel, (SplitUp, SplitDown)):
            return self.roots(rel.parent)
        assert isinstance(rel, FuseRel)
        return self.roots(rel.outer) + self.roots(rel.inner)

    def trip_count(self, ivar: IndexVar, dim_of: dict[int, int]) -> int:
        """Trip count of the forall over ``ivar``.

        ``dim_of`` maps ``id(root_var)`` to the root dimension size.
        """
        entry = self._parent.get(id(ivar))
        if entry is None:
            try:
                return dim_of[id(ivar)]
            except KeyError:
                raise KeyError(f"no dimension bound for root variable {ivar}")
        rel, role = entry
        if isinstance(rel, SplitUp):
            parent = self.trip_count(rel.parent, dim_of)
            return math.ceil(parent / rel.factor) if role == "outer" else rel.factor
        if isinstance(rel, SplitDown):
            parent = self.trip_count(rel.parent, dim_of)
            return rel.factor if role == "outer" else math.ceil(parent / rel.factor)
        assert isinstance(rel, FuseRel)
        return self.trip_count(rel.outer, dim_of) * self.trip_count(rel.inner, dim_of)

    def recombine(self, ivar: IndexVar) -> tuple[IndexVarRel, str] | None:
        """The relation and role deriving ``ivar``, or None for roots."""
        return self._parent.get(id(ivar))
