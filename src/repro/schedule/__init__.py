"""The Stardust scheduling language (Tables 1 and 2)."""

from repro.schedule.autoschedule import auto_schedule, detect_bulk_transfers
from repro.schedule.provenance import Provenance
from repro.schedule.stmt import (
    BULK_TRANSFER,
    INNER_PAR,
    MEM_REDUCE,
    OUTER_PAR,
    REDUCTION,
    SPATIAL,
    IndexStmt,
)
from repro.schedule.transform import ScheduleError, find_forall

__all__ = [
    "BULK_TRANSFER",
    "INNER_PAR",
    "IndexStmt",
    "MEM_REDUCE",
    "OUTER_PAR",
    "Provenance",
    "REDUCTION",
    "SPATIAL",
    "ScheduleError",
    "auto_schedule",
    "detect_bulk_transfers",
    "find_forall",
]
