"""CIN-to-CIN scheduling transformations (Tables 1 and 2 of the paper).

Each function takes a CIN tree and returns a new tree; none mutate. The
fluent user API lives in :class:`repro.schedule.stmt.IndexStmt`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ir.cin import (
    CinAssign,
    CinStmt,
    Forall,
    FuseRel,
    MapCall,
    SplitDown,
    SplitUp,
    Where,
    enclosing_foralls,
    replace_stmt,
    strip_suchthat,
    with_relations,
)
from repro.ir.index_notation import Access, IndexExpr, IndexVar


class ScheduleError(ValueError):
    """A scheduling command could not be applied to the statement."""


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def find_forall(stmt: CinStmt, ivar: IndexVar) -> Forall:
    """The (unique) forall over ``ivar`` in ``stmt``."""
    found = [s for s in stmt.walk() if isinstance(s, Forall) and s.ivar is ivar]
    if not found:
        raise ScheduleError(f"no forall over {ivar} in statement")
    if len(found) > 1:
        raise ScheduleError(f"multiple foralls over {ivar}; statement is malformed")
    return found[0]


def _find_target_assign(stmt: CinStmt, expr: IndexExpr) -> CinAssign:
    """The assignment whose rhs contains ``expr`` structurally."""
    for asg in stmt.assignments():
        if asg.rhs.contains(expr):
            return asg
    raise ScheduleError(f"no assignment contains expression {expr}")


def _contains_var_outside(expr: IndexExpr, sub: IndexExpr, ivar: IndexVar) -> bool:
    """Whether ``ivar`` occurs in ``expr`` outside the (removed) ``sub``."""

    def walk(e: IndexExpr) -> bool:
        if e.equals(sub):
            return False
        if isinstance(e, Access) and any(v is ivar for v in e.indices):
            return True
        return any(walk(c) for c in e.children())

    return walk(expr)


# ---------------------------------------------------------------------------
# TACO commands (Table 1)
# ---------------------------------------------------------------------------


def reorder(stmt: CinStmt, order: Sequence[IndexVar]) -> CinStmt:
    """Permute a straight forall chain so listed variables appear in the
    given relative order (Table 1, ``reorder``)."""
    body, rels = strip_suchthat(stmt)
    chain: list[Forall] = []
    s = body
    while isinstance(s, Forall):
        chain.append(s)
        s = s.body
    chain_vars = [f.ivar for f in chain]
    listed = [v for v in order]
    missing = [v for v in listed if v not in chain_vars]
    if missing:
        raise ScheduleError(
            f"reorder: {[v.name for v in missing]} not in forall chain "
            f"{[v.name for v in chain_vars]}"
        )
    queue = iter(listed)
    new_vars = [next(queue) if v in listed else v for v in chain_vars]
    par_of = {id(f.ivar): f.parallel for f in chain}
    inner: CinStmt = s
    for v in reversed(new_vars):
        inner = Forall(v, inner, parallel=par_of[id(v)])
    return with_relations(inner, rels)


def split(
    stmt: CinStmt,
    ivar: IndexVar,
    outer: IndexVar,
    inner: IndexVar,
    factor: int,
    direction: str = "up",
) -> CinStmt:
    """Stripmine ``forall ivar`` into nested ``outer``/``inner`` foralls
    (Table 1, ``split_up``/``split_down``)."""
    if factor <= 0:
        raise ScheduleError("split factor must be positive")
    if direction not in ("up", "down"):
        raise ScheduleError(f"unknown split direction {direction!r}")
    target = find_forall(stmt, ivar)
    nested = Forall(outer, Forall(inner, target.body), parallel=target.parallel)
    new_stmt = replace_stmt(stmt, target, nested)
    rel_cls = SplitUp if direction == "up" else SplitDown
    return with_relations(new_stmt, (rel_cls(ivar, outer, inner, factor),))


def fuse(stmt: CinStmt, outer: IndexVar, inner: IndexVar, fused: IndexVar) -> CinStmt:
    """Collapse directly nested foralls ``outer``/``inner`` into ``fused``
    (Table 1, ``fuse``)."""
    target = find_forall(stmt, outer)
    if not isinstance(target.body, Forall) or target.body.ivar is not inner:
        raise ScheduleError(
            f"fuse: forall({inner}) is not directly nested inside forall({outer})"
        )
    fused_loop = Forall(fused, target.body.body, parallel=target.parallel)
    new_stmt = replace_stmt(stmt, target, fused_loop)
    return with_relations(new_stmt, (FuseRel(outer, inner, fused),))


def precompute(
    stmt: CinStmt,
    expr: IndexExpr,
    i_vars: Sequence[IndexVar],
    iw_vars: Sequence[IndexVar],
    workspace,
) -> CinStmt:
    """Precompute ``expr`` into ``workspace`` (Table 1, ``precompute``).

    Inserts a ``where`` node whose producer computes ``expr`` (with
    ``i_vars`` renamed to ``iw_vars``) into the workspace tensor, and whose
    consumer reads the workspace instead of recomputing. Reduction loops
    whose variable occurs only inside ``expr`` move into the producer as an
    accumulation (the Figure 5 scalar-reduction pattern).
    """
    i_vars = tuple(i_vars)
    iw_vars = tuple(iw_vars)
    if len(i_vars) != len(iw_vars):
        raise ScheduleError("precompute: i_vars and iw_vars must align")
    if workspace.order != len(iw_vars):
        raise ScheduleError(
            f"workspace {workspace.name} has order {workspace.order} but "
            f"{len(iw_vars)} workspace variables were given"
        )
    asg = _find_target_assign(stmt, expr)
    loops = enclosing_foralls(stmt, asg)
    lhs_vars = set(map(id, asg.lhs.indices))
    expr_vars = set(map(id, expr.index_vars()))
    i_var_ids = set(map(id, i_vars))

    # Reduction loops absorbed into the producer: their variable is summed
    # (not free in lhs), occurs in expr, is not a workspace axis, and is not
    # referenced by the rest of the rhs.
    absorbed = [
        f
        for f in loops
        if id(f.ivar) in expr_vars
        and id(f.ivar) not in lhs_vars
        and id(f.ivar) not in i_var_ids
        and not _contains_var_outside(asg.rhs, expr, f.ivar)
    ]
    absorbed_ids = {id(f.ivar) for f in absorbed}

    # Producer: forall(iw_vars) forall(absorbed) ws(iw*) (+)= expr[iw/i]
    rename = dict(zip(i_vars, iw_vars))
    prod_expr = expr.rename(rename)
    prod_assign = CinAssign(
        Access(workspace, iw_vars), prod_expr, accumulate=bool(absorbed)
    )
    producer: CinStmt = prod_assign
    for f in reversed(absorbed):
        producer = Forall(f.ivar, producer, parallel=f.parallel)
    for v in reversed(iw_vars):
        producer = Forall(v, producer)

    # Consumer assignment: expr replaced by a workspace read; it still
    # accumulates only if reduction loops remain around it.
    new_rhs = asg.rhs.substitute(expr, Access(workspace, i_vars))
    remaining_red = [
        f
        for f in loops
        if id(f.ivar) not in absorbed_ids
        and id(f.ivar) not in lhs_vars
        and any(v is f.ivar for v in new_rhs.index_vars())
    ]
    # The consumer keeps accumulating if reduction loops remain around it,
    # or if the lhs is initialised by another statement (sequence-split CIN)
    # so that `+=` carries semantic weight beyond the absorbed loops.
    lhs_initialised_elsewhere = any(
        a is not asg and a.lhs.tensor is asg.lhs.tensor
        for a in stmt.assignments()
    )
    consumer_acc = bool(remaining_red) or (asg.accumulate and lhs_initialised_elsewhere)
    consumer_assign = CinAssign(asg.lhs, new_rhs, accumulate=consumer_acc)

    # Where placement: just above the outermost loop over an i_var; with no
    # i_vars, at the assignment itself. Absorbed reduction loops move into
    # the producer, so the splice must also cover the outermost of them.
    key_level = len(loops)
    for level, f in enumerate(loops):
        if id(f.ivar) in i_var_ids:
            key_level = level
            break
    for level, f in enumerate(loops):
        if id(f.ivar) in absorbed_ids:
            key_level = min(key_level, level)
            break

    def rebuild(level: int) -> CinStmt:
        if level == len(loops):
            return consumer_assign
        f = loops[level]
        if id(f.ivar) in absorbed_ids:
            return rebuild(level + 1)
        return Forall(f.ivar, rebuild(level + 1), parallel=f.parallel)

    consumer = rebuild(key_level)
    where = Where(consumer, producer)

    # Splice: replace the subtree at key_level with the where node.
    old_subtree: CinStmt = loops[key_level] if key_level < len(loops) else asg
    return replace_stmt(stmt, old_subtree, where)


# ---------------------------------------------------------------------------
# Stardust commands (Table 2)
# ---------------------------------------------------------------------------


def map_stmt(
    stmt: CinStmt,
    target: CinStmt | IndexVar,
    backend: str,
    func: str,
    par: int = 1,
) -> CinStmt:
    """Replace ``target`` with a backend function call (Table 2, ``map``)."""
    node = find_forall(stmt, target) if isinstance(target, IndexVar) else target
    if not stmt.contains(node):
        raise ScheduleError("map: target statement not found in tree")
    return replace_stmt(stmt, node, MapCall(node, backend, func, par))


def accelerate(
    stmt: CinStmt,
    target: CinStmt | IndexVar,
    backend: str,
    func: str,
    par: int = 1,
) -> CinStmt:
    """Accelerate a sub-statement (Table 2, ``accelerate``; eq. 5–6).

    The compound command precomputes the operands of the sub-statement into
    on-chip tensors and maps the rewritten statement onto the backend
    function ``func``. In this implementation the on-chip staging of
    operand sub-arrays is carried out by the automatic memory analysis
    (Section 6), so ``accelerate`` reduces to marking the map — matching
    how Figure 5 uses it (the generated Figure 11 code stages C/D values
    into SRAM without explicit per-tensor precomputes).
    """
    return map_stmt(stmt, target, backend, func, par)
