"""The schedulable statement: CIN plus environment and fluent commands.

:class:`IndexStmt` mirrors the paper's user-facing handle (Figure 5)::

    stmt = A.get_index_stmt()
    stmt = stmt.environment("innerPar", 16)
    stmt = stmt.environment("outerPar", 2)
    stmt = stmt.precompute(B[i,j] * C[i,k] * D[k,j], [], [], ws)
    stmt = stmt.accelerate(k, "Spatial", "Reduction", par="innerPar")

Every command returns a *new* IndexStmt; schedules compose functionally.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.ir.cin import CinStmt, make_concrete
from repro.ir.index_notation import Assignment, IndexExpr, IndexVar
from repro.schedule import transform

#: Conventional environment variable names (Figure 5, lines 17–18).
INNER_PAR = "innerPar"
OUTER_PAR = "outerPar"

#: The Spatial backend name used by map/accelerate in this paper.
SPATIAL = "Spatial"

#: Backend function names recognised by the Spatial lowerer.
REDUCTION = "Reduction"
MEM_REDUCE = "MemReduce"
BULK_TRANSFER = "BulkTransfer"


@dataclasses.dataclass(frozen=True)
class IndexStmt:
    """A scheduled tensor algebra statement.

    Attributes:
        cin: the concrete index notation tree.
        assignment: the originating index-notation assignment.
        environment: global hardware configuration variables set by the
            ``environment`` command (Table 2), passed to the backend.
    """

    cin: CinStmt
    assignment: Assignment
    environment_vars: dict[str, int] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_assignment(cls, assignment: Assignment) -> "IndexStmt":
        return cls(make_concrete(assignment), assignment, {})

    def _with(self, cin: CinStmt) -> "IndexStmt":
        return IndexStmt(cin, self.assignment, dict(self.environment_vars))

    # -- TACO scheduling commands (Table 1) ---------------------------------

    def reorder(self, *order: IndexVar) -> "IndexStmt":
        return self._with(transform.reorder(self.cin, order))

    def split_up(
        self, ivar: IndexVar, outer: IndexVar, inner: IndexVar, factor: int
    ) -> "IndexStmt":
        return self._with(
            transform.split(self.cin, ivar, outer, inner, factor, "up")
        )

    def split_down(
        self, ivar: IndexVar, outer: IndexVar, inner: IndexVar, factor: int
    ) -> "IndexStmt":
        return self._with(
            transform.split(self.cin, ivar, outer, inner, factor, "down")
        )

    # ``split`` defaults to split_up, matching common TACO usage.
    split = split_up

    def fuse(self, outer: IndexVar, inner: IndexVar, fused: IndexVar) -> "IndexStmt":
        return self._with(transform.fuse(self.cin, outer, inner, fused))

    def precompute(
        self,
        expr: IndexExpr,
        i_vars: Sequence[IndexVar],
        iw_vars: Sequence[IndexVar],
        workspace,
    ) -> "IndexStmt":
        return self._with(
            transform.precompute(self.cin, expr, i_vars, iw_vars, workspace)
        )

    # -- Stardust scheduling commands (Table 2) ------------------------------

    def environment(self, var: str, value: int) -> "IndexStmt":
        """Set a global hardware configuration variable (Table 2)."""
        env = dict(self.environment_vars)
        env[var] = int(value)
        return IndexStmt(self.cin, self.assignment, env)

    def _resolve_par(self, par: int | str) -> int:
        if isinstance(par, str):
            try:
                return self.environment_vars[par]
            except KeyError:
                raise transform.ScheduleError(
                    f"environment variable {par!r} is not set; call "
                    f".environment({par!r}, value) first"
                )
        return int(par)

    def map(
        self,
        target: CinStmt | IndexVar,
        backend: str,
        func: str,
        par: int | str = 1,
    ) -> "IndexStmt":
        """Map a sub-statement to a backend function (Table 2, ``map``)."""
        return self._with(
            transform.map_stmt(self.cin, target, backend, func, self._resolve_par(par))
        )

    def accelerate(
        self,
        target: CinStmt | IndexVar,
        backend: str = SPATIAL,
        func: str = REDUCTION,
        par: int | str = 1,
    ) -> "IndexStmt":
        """Accelerate a sub-statement (Table 2, ``accelerate``)."""
        return self._with(
            transform.accelerate(
                self.cin, target, backend, func, self._resolve_par(par)
            )
        )

    # -- introspection --------------------------------------------------------

    @property
    def inner_par(self) -> int:
        return self.environment_vars.get(INNER_PAR, 1)

    @property
    def outer_par(self) -> int:
        return self.environment_vars.get(OUTER_PAR, 1)

    def __str__(self) -> str:
        env = ", ".join(f"{k}={v}" for k, v in self.environment_vars.items())
        text = str(self.cin)
        return f"{text} [{env}]" if env else text
