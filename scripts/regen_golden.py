"""Regenerate the golden-file snapshots under tests/golden/.

The golden tests (tests/test_golden_code.py) diff the emitted Spatial and
CPU C code for the reference kernels against these files, so any change
to the lowering, memory analysis, or code generators shows up as a
readable diff. After an *intentional* code-generation change, rerun this
script and commit the updated files; CI's golden-drift job runs it too
and fails if the checked-in files do not match what the compiler emits.

Usage:  python scripts/regen_golden.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.backends import lower_cpu
from repro.core import compile_stmt
from tests.helpers_kernels import build_small_kernel_stmt

GOLDEN = REPO / "tests" / "golden"

#: Kernels with Spatial golden snapshots. COO-SpMV and BCSR-SpMV pin the
#: singleton-scanner and static-block code shapes of the format subsystem.
SPATIAL_KERNELS = ("SpMV", "SDDMM", "Plus3", "COO-SpMV", "BCSR-SpMV")


def regenerate() -> list[Path]:
    """Write all golden files; return the paths written."""
    GOLDEN.mkdir(parents=True, exist_ok=True)
    written = []
    for name in SPATIAL_KERNELS:
        stmt, _, _ = build_small_kernel_stmt(name)
        # Bypass the cache: goldens must reflect the compiler as it is.
        source = compile_stmt(stmt, name.lower(), cache=False).source
        path = GOLDEN / f"{name.lower()}.spatial"
        path.write_text(source)
        written.append(path)
    stmt, _, _ = build_small_kernel_stmt("SpMV")
    path = GOLDEN / "spmv.c"
    path.write_text(lower_cpu(stmt, "spmv"))
    written.append(path)
    return written


def main() -> int:
    for path in regenerate():
        print(f"wrote {path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
