"""Development driver: run every Table 3 kernel on small random data and
compare against the dense reference semantics."""

import sys
import traceback

import numpy as np

from repro.core import compile_stmt
from repro.kernels import KERNELS
from repro.tensor import evaluate_dense, to_dense


def sparse_dense(rng, shape, density=0.4):
    return (rng.random(shape) < density) * rng.random(shape)


def make_tensors(name, rng):
    spec = KERNELS[name]
    dims = {"SpMV": {"A": (7, 9), "x": (9,), "y": (7,)},
            "Plus3": {"A": (6, 8), "B": (6, 8), "C": (6, 8), "D": (6, 8)},
            "SDDMM": {"A": (6, 8), "B": (6, 8), "C": (6, 5), "D": (5, 8)},
            "MatTransMul": {"A": (9, 7), "x": (9,), "z": (7,), "y": (7,),
                            "alpha": (), "beta": ()},
            "Residual": {"A": (7, 9), "x": (9,), "b": (7,), "y": (7,)},
            "TTV": {"A": (4, 5), "B": (4, 5, 6), "c": (6,)},
            "TTM": {"A": (4, 5, 3), "B": (4, 5, 6), "C": (3, 6)},
            "MTTKRP": {"A": (4, 3), "B": (4, 5, 6), "C": (3, 5), "D": (3, 6)},
            "InnerProd": {"alpha_out": (), "B": (4, 5, 6), "C": (4, 5, 6)},
            "Plus2": {"A": (4, 5, 6), "B": (4, 5, 6), "C": (4, 5, 6)}}[name]
    tensors = {}
    for ts in spec.tensor_specs:
        shape = dims[ts.name]
        t = ts.make(shape)
        if ts.role == "scalar":
            t.insert((), 2.0 if ts.name == "alpha" else 3.0)
        elif ts.role in ("sparse",):
            t.from_dense(sparse_dense(rng, shape))
        elif ts.role == "dense" or (ts.role == "output" and False):
            t.from_dense(rng.random(shape))
        tensors[ts.name] = t
    return spec, tensors


def main():
    rng = np.random.default_rng(42)
    failures = []
    only = sys.argv[1:] or list(KERNELS)
    for name in only:
        spec, tensors = make_tensors(name, rng)
        try:
            stmt, out = spec.build(tensors)
            kernel = compile_stmt(stmt, name.lower())
            result = to_dense(kernel.run())
            ref = evaluate_dense(out.get_assignment())
            ok = np.allclose(result, ref)
            print(f"{name:14s} loc={kernel.spatial_loc:4d} "
                  f"{'OK' if ok else 'MISMATCH'}")
            if not ok:
                failures.append(name)
                print("  result:", np.round(np.atleast_1d(result).ravel()[:8], 3))
                print("  ref   :", np.round(np.atleast_1d(ref).ravel()[:8], 3))
        except Exception as e:
            failures.append(name)
            print(f"{name:14s} ERROR: {e}")
            if "-v" in sys.argv or len(only) == 1:
                traceback.print_exc()
    if failures:
        print("FAILURES:", failures)
        sys.exit(1)
    print("all kernels OK")


if __name__ == "__main__":
    main()
