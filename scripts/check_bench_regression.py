#!/usr/bin/env python3
"""CI perf gate: compare a BENCH_*.json result against committed floors.

Reads a benchmark result written through :mod:`benchmarks.bench_utils`
(the uniform schema) and the committed ``benchmarks/baseline.json``,
picks the baseline section matching the result's ``bench`` name, and
fails when the numbers fall below the committed floors:

* ``numpy_exec`` — any kernel's measured speedup drops below
  ``floor * tolerance`` (the tolerance, committed alongside the floors,
  absorbs shared-runner noise so the gate trips on real regressions,
  not scheduler jitter), or the geomean speedup drops below
  ``geomean_floor`` — the acceptance bar, enforced exactly.
* ``pipeline`` — the best fused pipeline's modeled memory-traffic
  reduction drops below ``min_best_reduction_pct``. The traffic model
  is deterministic (no wall clocks involved), so this floor is exact.
* ``partition`` — any row-partitioned merge stops being byte-identical
  to the serial run (``require_merge_exact``) or the blocks lose or
  duplicate nonzeros (``work_inflation`` above ``max_work_inflation``).
  Both invariants are deterministic, so they are enforced exactly; the
  phase wall clocks in the result are printed as context, never gated.

Usage::

    python scripts/check_bench_regression.py BENCH_numpy_exec.json \
        [--baseline benchmarks/baseline.json]
    python scripts/check_bench_regression.py BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _check_numpy_exec(metrics: dict, baseline: dict,
                      result_name: str) -> list[str]:
    tolerance = float(baseline.get("tolerance", 1.0))
    failures: list[str] = []

    for kernel, floor in baseline["floors"].items():
        entry = metrics.get(kernel)
        if entry is None:
            failures.append(f"{kernel}: missing from {result_name}")
            continue
        speedup = float(entry["speedup"])
        effective = float(floor) * tolerance
        status = "ok" if speedup >= effective else "REGRESSION"
        print(f"{kernel:12s} {speedup:8.1f}x  floor {floor:6.1f}x "
              f"(x{tolerance} tolerance -> {effective:.1f}x)  {status}")
        if speedup < effective:
            failures.append(
                f"{kernel}: {speedup:.1f}x < {effective:.1f}x "
                f"(floor {floor} * tolerance {tolerance})"
            )

    geomean = float(metrics["geomean_speedup"])
    geomean_floor = float(baseline["geomean_floor"])
    status = "ok" if geomean >= geomean_floor else "REGRESSION"
    print(f"{'geomean':12s} {geomean:8.1f}x  floor {geomean_floor:6.1f}x "
          f"(exact)  {status}")
    if geomean < geomean_floor:
        failures.append(f"geomean: {geomean:.1f}x < {geomean_floor:.1f}x")
    return failures


def _check_pipeline(metrics: dict, baseline: dict,
                    result_name: str) -> list[str]:
    floor = float(baseline["min_best_reduction_pct"])
    failures: list[str] = []
    for name, entry in sorted(metrics.items()):
        if name == "best" or not isinstance(entry, dict):
            continue
        print(f"{name:12s} {float(entry['reduction_pct']):7.2f}% traffic "
              f"saved  ({float(entry['unfused_mib']):.2f} MiB -> "
              f"{float(entry['fused_mib']):.2f} MiB)")
    best = metrics.get("best")
    if best is None:
        return [f"best: missing from {result_name}"]
    reduction = float(best["reduction_pct"])
    status = "ok" if reduction >= floor else "REGRESSION"
    print(f"{'best':12s} {reduction:7.2f}%  floor {floor:.2f}% "
          f"(exact)  {status}")
    if reduction < floor:
        failures.append(f"best reduction: {reduction:.2f}% < {floor:.2f}%")
    return failures


def _check_partition(metrics: dict, baseline: dict,
                     result_name: str) -> list[str]:
    require_exact = bool(baseline.get("require_merge_exact", True))
    max_inflation = float(baseline.get("max_work_inflation", 1.0))
    failures: list[str] = []
    for kernel, entry in sorted(metrics.items()):
        if kernel == "summary" or not isinstance(entry, dict):
            continue
        for key in sorted(k for k in entry if isinstance(entry[k], dict)):
            timed = entry[key]
            exact = bool(timed.get("merge_exact"))
            inflation = float(timed.get("work_inflation", 0.0))
            bad = (require_exact and not exact) or inflation > max_inflation
            status = "REGRESSION" if bad else "ok"
            print(f"{kernel:12s} {key:4s} "
                  f"slice={float(timed['slice_s']) * 1e3:7.1f}ms "
                  f"compute={float(timed['compute_s']) * 1e3:7.1f}ms "
                  f"reduce={float(timed['reduce_s']) * 1e3:7.1f}ms "
                  f"exact={exact} inflation={inflation:.3f}  {status}")
            if require_exact and not exact:
                failures.append(
                    f"{kernel} {key}: merged output is not byte-identical "
                    f"to the serial run")
            if inflation > max_inflation:
                failures.append(
                    f"{kernel} {key}: work inflation {inflation:.3f} > "
                    f"{max_inflation:.3f} (lost or duplicated nonzeros)")
    summary = metrics.get("summary")
    if summary is None:
        return [f"summary: missing from {result_name}"]
    exact_all = bool(summary.get("merge_exact_all"))
    print(f"{'summary':12s} merge_exact_all={exact_all} "
          f"(exact)  {'ok' if exact_all or not require_exact else 'REGRESSION'}")
    if require_exact and not exact_all:
        failures.append("summary: merge_exact_all is false")
    return failures


_CHECKS = {
    "numpy_exec": _check_numpy_exec,
    "pipeline": _check_pipeline,
    "partition": _check_partition,
}


def check(result_path: Path, baseline_path: Path) -> int:
    result = json.loads(result_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    bench = result.get("bench", "numpy_exec")

    if "benches" in baseline:
        section = baseline["benches"].get(bench)
        if section is None:
            print(f"no baseline section for bench {bench!r} in "
                  f"{baseline_path}", file=sys.stderr)
            return 2
    else:
        # Legacy flat layout: the whole file is one numpy_exec section.
        section = baseline

    checker = _CHECKS.get(bench)
    if checker is None:
        print(f"no gate registered for bench {bench!r}; known: "
              f"{', '.join(sorted(_CHECKS))}", file=sys.stderr)
        return 2

    failures = checker(result["metrics"], section, result_path.name)
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("result", type=Path,
                        help="BENCH_<name>.json to check")
    parser.add_argument("--baseline", type=Path,
                        default=Path("benchmarks/baseline.json"))
    args = parser.parse_args(argv)
    return check(args.result, args.baseline)


if __name__ == "__main__":
    raise SystemExit(main())
