#!/usr/bin/env python3
"""CI perf gate: compare BENCH_numpy_exec.json against committed floors.

Reads a benchmark result written by ``benchmarks/bench_numpy_exec.py``
(the uniform :mod:`benchmarks.bench_utils` schema) and the committed
``benchmarks/baseline.json``, and fails when:

* any kernel's measured speedup drops below ``floor * tolerance`` —
  the tolerance (committed alongside the floors) absorbs shared-runner
  noise so the gate trips on real regressions, not scheduler jitter;
* the geomean speedup drops below ``geomean_floor`` — the acceptance
  bar, enforced exactly (no tolerance).

Usage::

    python scripts/check_bench_regression.py BENCH_numpy_exec.json \
        [--baseline benchmarks/baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(result_path: Path, baseline_path: Path) -> int:
    result = json.loads(result_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    metrics = result["metrics"]
    tolerance = float(baseline.get("tolerance", 1.0))
    failures: list[str] = []

    for kernel, floor in baseline["floors"].items():
        entry = metrics.get(kernel)
        if entry is None:
            failures.append(f"{kernel}: missing from {result_path.name}")
            continue
        speedup = float(entry["speedup"])
        effective = float(floor) * tolerance
        status = "ok" if speedup >= effective else "REGRESSION"
        print(f"{kernel:12s} {speedup:8.1f}x  floor {floor:6.1f}x "
              f"(x{tolerance} tolerance -> {effective:.1f}x)  {status}")
        if speedup < effective:
            failures.append(
                f"{kernel}: {speedup:.1f}x < {effective:.1f}x "
                f"(floor {floor} * tolerance {tolerance})"
            )

    geomean = float(metrics["geomean_speedup"])
    geomean_floor = float(baseline["geomean_floor"])
    status = "ok" if geomean >= geomean_floor else "REGRESSION"
    print(f"{'geomean':12s} {geomean:8.1f}x  floor {geomean_floor:6.1f}x "
          f"(exact)  {status}")
    if geomean < geomean_floor:
        failures.append(f"geomean: {geomean:.1f}x < {geomean_floor:.1f}x")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("result", type=Path,
                        help="BENCH_numpy_exec.json to check")
    parser.add_argument("--baseline", type=Path,
                        default=Path("benchmarks/baseline.json"))
    args = parser.parse_args(argv)
    return check(args.result, args.baseline)


if __name__ == "__main__":
    raise SystemExit(main())
