"""Regenerate every evaluation artefact at full Table 4 scale.

Writes the formatted tables/figures to results/ and prints them. This is
the run recorded in EXPERIMENTS.md. The regeneration routes through
``repro.pipeline``: pass ``--jobs N`` (or set REPRO_JOBS) to fan the
(kernel, dataset) work out over N workers, and ``--no-cache`` to force a
cold recomputation (dataset generation is a separately-staged cache
entry, so even that reuses previously generated datasets); otherwise
repeated runs reuse the on-disk cache under REPRO_CACHE_DIR (default
~/.cache/repro).

For multi-host sweeps, ``--shard I/N`` runs this host's deterministic
slice of every artefact's job list and writes shard manifests to
``--shard-dir`` instead of tables; collect the manifests from all N
hosts and fold each artefact with ``python -m repro merge``.

Usage:  python scripts/run_experiments.py [scale] [--jobs N] [--no-cache]
                                          [--shard I/N [--shard-dir DIR]]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline.batch import run_batch
from repro.pipeline.cache import default_cache

OUT = Path(__file__).resolve().parent.parent / "results"

#: Structural artefacts (LoC, resources) need only a tiny dataset.
TINY = 0.02


#: (artefact, scale attribute) pairs in regeneration order.
def _artifact_scales(scale: float) -> list[tuple[str, float]]:
    return [("table3", TINY), ("table5", TINY),
            ("table6", scale), ("figure12", scale),
            ("format_sweep", scale)]


def _run_shard(args, use_cache) -> int:
    """Write this host's shard manifest for every artefact."""
    from repro.pipeline.shard import ShardSpec, run_shard

    spec = ShardSpec.parse(args.shard)
    shard_dir = args.shard_dir
    shard_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for artifact, at in _artifact_scales(args.scale):
        manifest = run_shard(artifact, at, spec, jobs=args.jobs,
                             use_cache=use_cache)
        out = shard_dir / f"{artifact}.shard{spec.index}of{spec.count}.json"
        manifest.save(out)
        failed = len(manifest.failures())
        failures += failed
        print(f"{artifact:10s} shard {spec}: {len(manifest.jobs)}/"
              f"{manifest.total_jobs} job(s), {failed} failed -> {out}")
    print(f"\nCollect all {spec.count} hosts' manifests, then per artefact:\n"
          f"  python -m repro merge {shard_dir}/<artefact>.shard*.json")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--shard", metavar="I/N", default=None,
                        help="run shard I of N and write manifests "
                             "instead of tables")
    parser.add_argument("--shard-dir", type=Path, default=OUT / "shards",
                        help="manifest output directory for --shard")
    args = parser.parse_args()
    use_cache = False if args.no_cache else None

    if args.shard:
        return _run_shard(args, use_cache)

    OUT.mkdir(exist_ok=True)
    t0 = time.time()
    structural = run_batch(["table3", "table5"], TINY,
                           jobs=args.jobs, use_cache=use_cache)
    scaled = run_batch(["table6", "figure12", "format_sweep"], args.scale,
                       jobs=args.jobs, use_cache=use_cache)

    failures = structural.failures + scaled.failures
    for failure in failures:
        print(f"FAILED {failure.job}:\n{failure.error}", file=sys.stderr)

    artefacts = {f"{name}.txt": text
                 for run in (structural, scaled)
                 for name, text in run.texts.items()}
    for name, text in artefacts.items():
        at = (args.scale if name.startswith(("table6", "figure", "format"))
              else TINY)
        (OUT / name).write_text(text + "\n")
        print(f"\n##### {name} (scale={at})")
        print(text)

    stats = default_cache().stats
    stages = stats.stage_summary()
    print(f"\nTotal time: {time.time() - t0:.1f}s; "
          f"cache: {stats.hits} hits / {stats.misses} misses"
          + (f" [{stages}]" if stages else "")
          + f"; artefacts in {OUT}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
