"""Regenerate every evaluation artefact at full Table 4 scale.

Writes the formatted tables/figures to results/ and prints them. This is
the run recorded in EXPERIMENTS.md. The regeneration routes through
``repro.pipeline``: pass ``--jobs N`` (or set REPRO_JOBS) to fan the
(kernel, dataset) work out over N workers, and ``--no-cache`` to force a
cold recomputation; otherwise repeated runs reuse the on-disk
compilation cache under REPRO_CACHE_DIR (default ~/.cache/repro).

Usage:  python scripts/run_experiments.py [scale] [--jobs N] [--no-cache]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline.batch import run_batch
from repro.pipeline.cache import default_cache

OUT = Path(__file__).resolve().parent.parent / "results"

#: Structural artefacts (LoC, resources) need only a tiny dataset.
TINY = 0.02


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()
    use_cache = False if args.no_cache else None

    OUT.mkdir(exist_ok=True)
    t0 = time.time()
    structural = run_batch(["table3", "table5"], TINY,
                           jobs=args.jobs, use_cache=use_cache)
    scaled = run_batch(["table6", "figure12"], args.scale,
                       jobs=args.jobs, use_cache=use_cache)

    failures = structural.failures + scaled.failures
    for failure in failures:
        print(f"FAILED {failure.job}:\n{failure.error}", file=sys.stderr)

    artefacts = {f"{name}.txt": text
                 for run in (structural, scaled)
                 for name, text in run.texts.items()}
    for name, text in artefacts.items():
        at = args.scale if name.startswith(("table6", "figure")) else TINY
        (OUT / name).write_text(text + "\n")
        print(f"\n##### {name} (scale={at})")
        print(text)

    stats = default_cache().stats
    print(f"\nTotal time: {time.time() - t0:.1f}s; "
          f"cache: {stats.hits} hits / {stats.misses} misses; "
          f"artefacts in {OUT}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
