"""Regenerate every evaluation artefact at full Table 4 scale.

Writes the formatted tables/figures to results/ and prints them. This is
the run recorded in EXPERIMENTS.md. The regeneration routes through
``repro.pipeline``: pass ``--jobs N`` (or set REPRO_JOBS) to fan the
(kernel, dataset) work out over N workers, and ``--no-cache`` to force a
cold recomputation (dataset generation is a separately-staged cache
entry, so even that reuses previously generated datasets); otherwise
repeated runs reuse the on-disk cache under REPRO_CACHE_DIR (default
~/.cache/repro).

For multi-host sweeps, ``--shard I/N`` runs this host's deterministic
slice of every artefact's job list and writes shard manifests to
``--shard-dir`` instead of tables; collect the manifests from all N
hosts and fold each artefact with ``python -m repro merge``.

``--workers SPEC`` replaces static sharding with the fault-tolerant
dispatcher (``repro.pipeline.dispatch``): every artefact's job list is
leased chunk-by-chunk to a pool of workers (``local:N`` subprocesses,
``ssh:host1,host2``, or an elastic ``queue:DIR`` pool that `repro
worker` processes attach to), dead or hung workers lose their lease,
and the merged artefacts — byte-identical to the serial run — land in
results/ alongside the per-chunk manifests (under results/dispatch/),
so an interrupted sweep resumes where it stopped. ``--steal`` plans
cost-balanced chunks from the per-job cost table recorded by previous
runs. Each dispatched artefact also writes a ``summary.json`` (chunk
plan, attempts, faults) and ``costs.json`` (the cost table slice) under
its results/dispatch/<artefact>/ state directory — the nightly CI sweep
uploads these so chunk-balance regressions are inspectable across runs.

Usage:  python scripts/run_experiments.py [scale] [--jobs N] [--no-cache]
                                          [--shard I/N [--shard-dir DIR]]
                                          [--workers SPEC] [--steal]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline.batch import run_batch
from repro.pipeline.cache import default_cache

OUT = Path(__file__).resolve().parent.parent / "results"

#: Structural artefacts (LoC, resources) need only a tiny dataset.
TINY = 0.02


#: (artefact, scale attribute) pairs in regeneration order.
def _artifact_scales(scale: float) -> list[tuple[str, float]]:
    return [("table3", TINY), ("table5", TINY),
            ("table6", scale), ("figure12", scale),
            ("format_sweep", scale), ("pipeline_sweep", scale)]


def _run_shard(args, use_cache) -> int:
    """Write this host's shard manifest for every artefact."""
    from repro.pipeline.shard import ShardSpec, run_shard

    spec = ShardSpec.parse(args.shard)
    shard_dir = args.shard_dir
    shard_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for artifact, at in _artifact_scales(args.scale):
        manifest = run_shard(artifact, at, spec, jobs=args.jobs,
                             use_cache=use_cache, engine=args.engine)
        out = shard_dir / f"{artifact}.shard{spec.index}of{spec.count}.json"
        manifest.save(out)
        failed = len(manifest.failures())
        failures += failed
        print(f"{artifact:10s} shard {spec}: {len(manifest.jobs)}/"
              f"{manifest.total_jobs} job(s), {failed} failed -> {out}")
    print(f"\nCollect all {spec.count} hosts' manifests, then per artefact:\n"
          f"  python -m repro merge {shard_dir}/<artefact>.shard*.json")
    return 1 if failures else 0


def _run_dispatch(args, use_cache) -> int:
    """Dispatch every artefact's sweep over a fault-tolerant worker pool."""
    import json

    from repro.pipeline.batch import artifact_jobs
    from repro.pipeline.dispatch import (
        DispatchError,
        QueueTransport,
        dispatch,
        dispatch_summary_payload,
        parse_transport,
    )
    from repro.pipeline.steal import export_costs

    try:
        transport = parse_transport(args.workers)
    except DispatchError as exc:
        print(f"dispatch error: {exc}", file=sys.stderr)
        return 2
    elastic = isinstance(transport, QueueTransport)

    OUT.mkdir(exist_ok=True)
    state_root = OUT / "dispatch"
    t0 = time.time()
    bad = 0
    try:
        for artifact, at in _artifact_scales(args.scale):
            def event(message, _artifact=artifact):
                print(f"[{_artifact}] {message}", file=sys.stderr)

            state_dir = state_root / artifact
            try:
                result = dispatch(
                    artifact, at, transport,
                    use_cache=use_cache, worker_jobs=args.jobs,
                    state_dir=state_dir, resume=True,
                    steal=args.steal, engine=args.engine,
                    # An elastic pool must survive between artefacts;
                    # the finally below drains it after the last one.
                    stop_queue=not elastic,
                    on_event=event,
                )
            except DispatchError as exc:
                print(f"dispatch error: {exc}", file=sys.stderr)
                return 2
            print(result.summary())
            # Inspectable residue per artefact: the dispatch summary
            # (chunk plan, attempts, faults) and the cost-table slice
            # the next --steal plan would read. The nightly sweep
            # uploads both.
            (state_dir / "summary.json").write_text(
                json.dumps(dispatch_summary_payload(result), indent=2) + "\n")
            keys = [job.key for job in artifact_jobs(artifact, at)]
            (state_dir / "costs.json").write_text(
                json.dumps(export_costs(artifact, at, keys), indent=2) + "\n")
            if result.ok:
                (OUT / f"{artifact}.txt").write_text(result.merged.text + "\n")
                print(f"\n##### {artifact}.txt (scale={at})")
                print(result.merged.text)
            else:
                bad += 1
                for line in result.failure_report():
                    print(line, file=sys.stderr)
    finally:
        if elastic:
            # Raise the stop sentinel exactly once, after the whole
            # sweep (or on any error), so attached workers exit.
            transport.shutdown()
    print(f"\nTotal time: {time.time() - t0:.1f}s; manifests in "
          f"{state_root}/; artefacts in {OUT}/")
    return 1 if bad else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--shard", metavar="I/N", default=None,
                        help="run shard I of N and write manifests "
                             "instead of tables")
    parser.add_argument("--shard-dir", type=Path, default=OUT / "shards",
                        help="manifest output directory for --shard")
    parser.add_argument("--workers", metavar="SPEC", default=None,
                        help="dispatch all artefacts over a worker pool "
                             "(local:N, ssh:host1,host2, or queue:DIR) "
                             "with dynamic leases and automatic resume")
    parser.add_argument("--steal", action="store_true",
                        help="with --workers: plan cost-balanced chunks "
                             "from the recorded per-job cost table")
    parser.add_argument("--engine", choices=["interp", "cpu", "numpy"],
                        default=None,
                        help="functionally execute each table6/format_sweep/"
                             "pipeline_sweep cell with this engine and "
                             "validate it against the interpreter oracle")
    args = parser.parse_args()
    use_cache = False if args.no_cache else None

    if args.shard and args.workers:
        print("--shard and --workers are mutually exclusive: static "
              "slicing and the dispatcher both own the partition",
              file=sys.stderr)
        return 2
    if args.steal and not args.workers:
        print("--steal needs --workers: only the dispatcher plans chunks",
              file=sys.stderr)
        return 2
    if args.workers:
        return _run_dispatch(args, use_cache)
    if args.shard:
        return _run_shard(args, use_cache)

    OUT.mkdir(exist_ok=True)
    t0 = time.time()
    structural = run_batch(["table3", "table5"], TINY,
                           jobs=args.jobs, use_cache=use_cache)
    scaled = run_batch(["table6", "figure12", "format_sweep",
                        "pipeline_sweep"], args.scale,
                       jobs=args.jobs, use_cache=use_cache,
                       engine=args.engine)

    failures = structural.failures + scaled.failures
    for failure in failures:
        print(f"FAILED {failure.job}:\n{failure.error}", file=sys.stderr)

    artefacts = {f"{name}.txt": text
                 for run in (structural, scaled)
                 for name, text in run.texts.items()}
    for name, text in artefacts.items():
        at = (args.scale
              if name.startswith(("table6", "figure", "format", "pipeline"))
              else TINY)
        (OUT / name).write_text(text + "\n")
        print(f"\n##### {name} (scale={at})")
        print(text)

    stats = default_cache().stats
    stages = stats.stage_summary()
    print(f"\nTotal time: {time.time() - t0:.1f}s; "
          f"cache: {stats.hits} hits / {stats.misses} misses"
          + (f" [{stages}]" if stages else "")
          + f"; artefacts in {OUT}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
