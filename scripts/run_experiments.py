"""Regenerate every evaluation artefact at full Table 4 scale.

Writes the formatted tables/figures to results/ and prints them. This is
the run recorded in EXPERIMENTS.md.

Usage:  python scripts/run_experiments.py [scale]
"""

import sys
import time
from pathlib import Path

from repro.eval.harness import (
    figure12,
    format_figure12,
    format_table3,
    format_table5,
    format_table6,
    table3,
    table5,
    table6,
)

OUT = Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    OUT.mkdir(exist_ok=True)
    artefacts = {}

    t0 = time.time()
    artefacts["table3.txt"] = format_table3(table3(0.02))
    artefacts["table5.txt"] = format_table5(table5(0.02))
    artefacts["table6.txt"] = format_table6(table6(scale))
    artefacts["figure12.txt"] = format_figure12(figure12(scale))

    for name, text in artefacts.items():
        (OUT / name).write_text(text + "\n")
        print(f"\n##### {name} (scale={scale if 'table6' in name or 'figure' in name else 'n/a'})")
        print(text)
    print(f"\nTotal time: {time.time() - t0:.1f}s; artefacts in {OUT}/")


if __name__ == "__main__":
    main()
