"""Golden-file snapshots of generated code.

Any change to the lowering, memory analysis, or code generator that alters
the emitted Spatial (or CPU C) for the reference kernels shows up here as
a readable diff. Regenerate intentionally with:

    python scripts/regen_golden.py

and commit the result. CI's golden-drift job runs the same script and
fails on any uncommitted difference.
"""

from pathlib import Path

import pytest

from repro.backends import lower_cpu
from repro.core import compile_stmt
from tests.helpers_kernels import build_small_kernel_stmt

GOLDEN = Path(__file__).resolve().parent / "golden"


def _diff_message(name: str, got: str, want: str) -> str:
    import difflib

    diff = "\n".join(difflib.unified_diff(
        want.splitlines(), got.splitlines(),
        fromfile=f"golden/{name}", tofile="generated", lineterm="",
    ))
    return (f"generated code for {name} changed; if intentional, "
            f"regenerate the golden file (see module docstring)\n{diff}")


@pytest.mark.parametrize("name",
                         ["SpMV", "SDDMM", "Plus3", "COO-SpMV", "BCSR-SpMV"])
def test_spatial_matches_golden(name):
    stmt, _, _ = build_small_kernel_stmt(name)
    got = compile_stmt(stmt, name.lower()).source
    want = (GOLDEN / f"{name.lower()}.spatial").read_text()
    assert got == want, _diff_message(f"{name.lower()}.spatial", got, want)


def test_cpu_code_matches_golden():
    stmt, _, _ = build_small_kernel_stmt("SpMV")
    got = lower_cpu(stmt, "spmv")
    want = (GOLDEN / "spmv.c").read_text()
    assert got == want, _diff_message("spmv.c", got, want)
