"""Unit tests for concrete index notation (construction and rewriting)."""

import pytest

from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.ir import (
    CinAssign,
    CinSequence,
    Forall,
    SuchThat,
    Where,
    enclosing_foralls,
    forall_chain,
    format_stmt,
    format_stmt_tree,
    index_vars,
    make_concrete,
    replace_stmt,
    strip_suchthat,
    with_relations,
)
from repro.ir.cin import FuseRel, SplitUp
from repro.tensor import Tensor, scalar


@pytest.fixture
def spmv():
    A = Tensor("A", (4, 5), CSR(offChip))
    x = Tensor("x", (5,), DENSE_VECTOR(offChip))
    y = Tensor("y", (4,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    return y.get_assignment(), (i, j), (A, x, y)


class TestMakeConcrete:
    def test_spmv_shape(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        # forall(i) forall(j) y(i) += A(i,j)*x(j)
        assert isinstance(cin, Forall) and cin.ivar is i
        assert isinstance(cin.body, Forall) and cin.body.ivar is j
        inner = cin.body.body
        assert isinstance(inner, CinAssign)
        assert inner.accumulate  # implicit reduction over j

    def test_elementwise_no_accumulate(self):
        B = Tensor("B", (3, 3), CSR(offChip))
        C = Tensor("C", (3, 3), CSR(offChip))
        A = Tensor("A", (3, 3), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j]
        cin = make_concrete(A.get_assignment())
        (asg,) = cin.assignments()
        assert not asg.accumulate

    def test_mixed_terms_split_to_sequence(self):
        # y(i) = b(i) - A(i,j)*x(j): the reduction-free term must not be
        # re-added once per j; make_concrete emits an init + accumulate.
        A = Tensor("A", (4, 5), CSR(offChip))
        x = Tensor("x", (5,), DENSE_VECTOR(offChip))
        b = Tensor("b", (4,), DENSE_VECTOR(offChip))
        y = Tensor("y", (4,), DENSE_VECTOR(offChip))
        i, j = index_vars("i j")
        y[i] = b[i] - A[i, j] * x[j]
        cin = make_concrete(y.get_assignment())
        assert isinstance(cin, Forall) and cin.ivar is i
        seq = cin.body
        assert isinstance(seq, CinSequence)
        init, red = seq.stmts
        assert isinstance(init, CinAssign) and not init.accumulate
        assert isinstance(red, Forall) and red.ivar is j
        assert red.body.accumulate

    def test_scalar_output_all_reduction(self):
        B = Tensor("B", (3, 4), CSR(offChip))
        alpha = scalar("alpha")
        i, j = index_vars("i j")
        alpha[()] = B[i, j] * B[i, j]
        cin = make_concrete(alpha.get_assignment())
        loops, inner = forall_chain(cin)
        assert [f.ivar.name for f in loops] == ["i", "j"]
        assert inner.accumulate


class TestTraversal:
    def test_walk_and_assignments(self, spmv):
        asg, _, _ = spmv
        cin = make_concrete(asg)
        assert len(list(cin.walk())) == 3
        assert len(cin.assignments()) == 1

    def test_foralls_and_index_vars(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        assert [f.ivar for f in cin.foralls()] == [i, j]
        assert cin.index_vars() == (i, j)

    def test_tensors(self, spmv):
        asg, _, (A, x, y) = spmv
        cin = make_concrete(asg)
        names = {t.name for t in cin.tensors()}
        assert names == {"A", "x", "y"}

    def test_forall_chain(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        loops, inner = forall_chain(cin)
        assert [f.ivar for f in loops] == [i, j]
        assert isinstance(inner, CinAssign)

    def test_enclosing_foralls(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        target = cin.assignments()[0]
        loops = enclosing_foralls(cin, target)
        assert [f.ivar for f in loops] == [i, j]

    def test_enclosing_foralls_missing_node(self, spmv):
        asg, _, _ = spmv
        cin = make_concrete(asg)
        other = make_concrete(asg)
        with pytest.raises(ValueError):
            enclosing_foralls(cin, other.assignments()[0])


class TestRewriting:
    def test_replace_stmt_identity(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        target = cin.assignments()[0]
        new = CinAssign(target.lhs, target.rhs, False)
        out = replace_stmt(cin, target, new)
        assert out.assignments()[0] is new
        # Original tree untouched.
        assert cin.assignments()[0] is target

    def test_suchthat_helpers(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        io, ii = index_vars("io ii")
        rel = SplitUp(i, io, ii, 4)
        wrapped = with_relations(cin, (rel,))
        assert isinstance(wrapped, SuchThat)
        body, rels = strip_suchthat(wrapped)
        assert rels == (rel,)
        assert body is cin

    def test_with_relations_merges(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        io, ii, f = index_vars("io ii f")
        once = with_relations(cin, (SplitUp(i, io, ii, 4),))
        twice = with_relations(once, (FuseRel(io, ii, f),))
        _, rels = strip_suchthat(twice)
        assert len(rels) == 2


class TestPrinter:
    def test_format_spmv(self, spmv):
        asg, _, _ = spmv
        text = format_stmt(make_concrete(asg))
        assert text == "forall(i) forall(j) y(i) += (A(i, j) * x(j))"

    def test_format_where(self, spmv):
        asg, (i, j), _ = spmv
        cin = make_concrete(asg)
        inner = cin.body.body
        where = Where(inner, inner)
        assert "where" in format_stmt(where)

    def test_format_suchthat(self, spmv):
        asg, (i, j), _ = spmv
        io, ii = index_vars("io ii")
        cin = with_relations(make_concrete(asg), (SplitUp(i, io, ii, 8),))
        assert "s.t. split_up(i, io, ii, 8)" in format_stmt(cin)

    def test_format_tree_multiline(self, spmv):
        asg, _, _ = spmv
        tree = format_stmt_tree(make_concrete(asg))
        lines = tree.splitlines()
        assert lines[0].startswith("forall i")
        assert lines[1].strip().startswith("forall j")

    def test_format_parallel_annotation(self, spmv):
        asg, (i, j), _ = spmv
        cin = Forall(i, make_concrete(asg).body, parallel=16)
        assert "par=16" in format_stmt(cin)
