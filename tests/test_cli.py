"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.__main__ import main


def test_kernels_listing(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "SpMV" in out and "Plus2" in out
    assert "sum_j A(i,j) * x(j)" in out


def test_compile_default_dataset(capsys):
    assert main(["compile", "SpMV", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Accel {" in out
    assert "Reduce(" in out


def test_compile_with_reports(capsys):
    assert main([
        "compile", "SDDMM", "--scale", "0.02", "--cpu", "--memory-report",
    ]) == 0
    out = capsys.readouterr().out
    assert "Memory analysis" in out
    assert "compute_sddmm" in out  # CPU C code present


def test_simulate(capsys):
    assert main(["simulate", "SpMV", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Capstan (HBM2E)" in out
    assert "128-Thread CPU" in out
    assert "1.00x" in out


def test_tables_artifact(capsys):
    assert main(["tables", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
