"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.__main__ import main


def test_kernels_listing(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "SpMV" in out and "Plus2" in out
    assert "sum_j A(i,j) * x(j)" in out


def test_compile_default_dataset(capsys):
    assert main(["compile", "SpMV", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Accel {" in out
    assert "Reduce(" in out


def test_compile_with_reports(capsys):
    assert main([
        "compile", "SDDMM", "--scale", "0.02", "--cpu", "--memory-report",
    ]) == 0
    out = capsys.readouterr().out
    assert "Memory analysis" in out
    assert "compute_sddmm" in out  # CPU C code present


def test_simulate(capsys):
    assert main(["simulate", "SpMV", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Capstan (HBM2E)" in out
    assert "128-Thread CPU" in out
    assert "1.00x" in out


def test_tables_artifact(capsys):
    assert main(["tables", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_formats_listing(capsys):
    assert main(["formats"]) == 0
    out = capsys.readouterr().out
    assert "csr" in out and "coo" in out and "bcsr" in out
    assert "singleton" in out and "block[4]" in out


def test_formats_json(capsys):
    import json

    assert main(["formats", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in payload}
    assert by_name["coo"]["levels"][1]["kind"] == "singleton"
    assert by_name["bcsr"]["levels"][2]["size"] == 4
    assert by_name["csc"]["mode_ordering"] == [1, 0]
    assert all("full" in lvl for e in payload for lvl in e["levels"])


def test_convert_plan_only(capsys):
    assert main(["convert", "csr", "bcsr", "--dataset", "random-1pct",
                 "--scale", "0.05", "--plan"]) == 0
    out = capsys.readouterr().out
    assert "block" in out and "pack" in out


def test_convert_with_verify(capsys):
    assert main(["convert", "csr", "coo", "--dataset", "random-1pct",
                 "--scale", "0.05", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verify: dense round-trip matches" in out


def test_convert_unknown_format_rejected(capsys):
    assert main(["convert", "csr", "nosuch"]) == 2


def test_kernels_listing_includes_format_kernels(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "COO-SpMV" in out and "BCSR-SpMV" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_merge_unmatched_glob_one_line_error(tmp_path, capsys):
    """An unexpanded/unmatched glob is a clear one-line error, never a
    traceback or a complaint about a file literally named ``*.json``."""
    pattern = str(tmp_path / "shards" / "shard*.json")
    assert main(["merge", pattern]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "no manifest files matched" in err
    assert pattern in err


def test_merge_no_arguments_one_line_error(capsys):
    assert main(["merge"]) == 2
    err = capsys.readouterr().err
    assert "no manifest files matched" in err


def test_merge_expands_quoted_glob(tmp_path, capsys, monkeypatch):
    """A quoted glob (no shell expansion) matches manifests itself."""
    from repro.pipeline.shard import ShardSpec, run_shard

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for i in (1, 2):
        run_shard("table3", 0.02, ShardSpec(i, 2)).save(
            tmp_path / f"shard{i}.json")
    assert main(["merge", str(tmp_path / "shard*.json")]) == 0
    assert "Table 3" in capsys.readouterr().out


def test_merge_literal_missing_file_still_named(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["merge", missing]) == 1
    err = capsys.readouterr().err
    assert "cannot read manifest" in err and "nope.json" in err


def test_merge_literal_path_with_brackets(tmp_path, capsys, monkeypatch):
    """An existing path containing glob metacharacters is taken
    literally, not parsed as a character class that matches nothing."""
    from repro.pipeline.shard import ShardSpec, run_shard

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    bracketed = tmp_path / "results[2026]"
    bracketed.mkdir()
    paths = [str(run_shard("table3", 0.02, ShardSpec(i, 2)).save(
        bracketed / f"s{i}.json")) for i in (1, 2)]
    assert main(["merge", *paths]) == 0
    assert "Table 3" in capsys.readouterr().out
