"""The example scripts run to completion (their asserts are the checks)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Functional check vs scipy: OK" in out
    assert "Generated Spatial LoC" in out


def test_sddmm_walkthrough(capsys):
    out = run_example("sddmm_walkthrough.py", capsys)
    assert "Functional check vs dense reference: OK" in out
    assert "lowerIter" in out
    assert "Memory analysis" in out
    assert "stream_store_vec" in out  # Figure 11 anchor


def test_custom_kernel(capsys):
    out = run_example("custom_kernel.py", capsys)
    assert "Functional check: OK" in out
    assert "Predicted Capstan" in out


def test_coiteration_comparison(capsys):
    out = run_example("coiteration_comparison.py", capsys)
    assert "TACO merge lattice" in out
    assert "Capstan rejects the native mapping" in out
    assert "compiles and matches: OK" in out


@pytest.mark.slow
def test_design_space_exploration(capsys):
    out = run_example("design_space_exploration.py", capsys)
    assert "best configuration" in out
