"""Unit and property tests for packed bit vectors and the scanner model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.bitvector import INVALID, gen_bitvector, scan, scan_count


class TestGenBitVector:
    def test_basic(self):
        bv = gen_bitvector(np.array([1, 2, 5]), 9)
        assert bv.n == 9
        assert bv.popcount() == 3
        assert bv.test(1) and bv.test(2) and bv.test(5)
        assert not bv.test(0)

    def test_coordinates_round_trip(self):
        coords = np.array([0, 3, 8, 31, 32, 63])
        bv = gen_bitvector(coords, 64)
        assert bv.coordinates().tolist() == coords.tolist()

    def test_word_packing(self):
        bv = gen_bitvector(np.array([0, 32]), 33)
        assert bv.num_words == 2

    def test_empty(self):
        bv = gen_bitvector(np.zeros(0, dtype=np.int64), 10)
        assert bv.popcount() == 0
        assert bv.coordinates().tolist() == []

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            gen_bitvector(np.array([10]), 10)

    def test_index_error(self):
        bv = gen_bitvector(np.array([1]), 4)
        with pytest.raises(IndexError):
            bv.test(4)


class TestBitVectorOps:
    def test_and(self):
        a = gen_bitvector(np.array([1, 2, 5]), 9)
        b = gen_bitvector(np.array([0, 2, 3, 8]), 9)
        assert (a & b).coordinates().tolist() == [2]

    def test_or(self):
        a = gen_bitvector(np.array([1, 2, 5]), 9)
        b = gen_bitvector(np.array([0, 2, 3, 8]), 9)
        assert (a | b).coordinates().tolist() == [0, 1, 2, 3, 5, 8]

    def test_mismatched_spaces_rejected(self):
        a = gen_bitvector(np.array([1]), 8)
        b = gen_bitvector(np.array([1]), 9)
        with pytest.raises(ValueError):
            _ = a & b


class TestFigure7Example:
    """The exact co-iteration example of Figure 7:

    A crd: 1 2 5 ; B crd: 0 2 3 8 -> union out crd: 0 1 2 3 5 8 with
    pattern indices (A, B, out, dense).
    """

    def setup_method(self):
        self.a = gen_bitvector(np.array([1, 2, 5]), 9)
        self.b = gen_bitvector(np.array([0, 2, 3, 8]), 9)

    def test_union_coords(self):
        entries = list(scan(self.a, self.b, "or"))
        assert [e.coord for e in entries] == [0, 1, 2, 3, 5, 8]

    def test_union_pattern_indices(self):
        entries = list(scan(self.a, self.b, "or"))
        # Figure 7 lists (X,0,0,0) (0,X,1,1) (1,1,2,2) (X,2,3,3) (2,X,4,5)
        # and finally (3,X,5,8); that last tuple is a typo in the paper —
        # coordinate 8 lives in B (crd [0,2,3,8]) at position 3, not in A
        # (crd [1,2,5]) — so the consistent tuple is (X,3,5,8).
        expected = [
            (INVALID, 0, 0, 0),
            (0, INVALID, 1, 1),
            (1, 1, 2, 2),
            (INVALID, 2, 3, 3),
            (2, INVALID, 4, 5),
            (INVALID, 3, 5, 8),
        ]
        got = [(e.pos_a, e.pos_b, e.pos_out, e.coord) for e in entries]
        assert got == expected

    def test_intersection(self):
        entries = list(scan(self.a, self.b, "and"))
        assert [(e.pos_a, e.pos_b, e.coord) for e in entries] == [(1, 1, 2)]

    def test_validity_flags(self):
        entries = list(scan(self.a, self.b, "or"))
        assert not entries[0].a_valid and entries[0].b_valid
        assert entries[2].a_valid and entries[2].b_valid

    def test_scan_count(self):
        assert scan_count(self.a, self.b, "or") == 6
        assert scan_count(self.a, self.b, "and") == 1
        assert scan_count(self.a) == 3


class TestSingleScan:
    def test_single_vector_positions(self):
        bv = gen_bitvector(np.array([3, 7]), 10)
        entries = list(scan(bv))
        assert [(e.pos_a, e.pos_out, e.coord) for e in entries] == [
            (0, 0, 3), (1, 1, 7),
        ]

    def test_position_bases(self):
        bv = gen_bitvector(np.array([1]), 4)
        entries = list(scan(bv, pos_a_base=10, pos_out_base=20))
        assert entries[0].pos_a == 10
        assert entries[0].pos_out == 20

    def test_bad_op_rejected(self):
        a = gen_bitvector(np.array([1]), 4)
        b = gen_bitvector(np.array([2]), 4)
        with pytest.raises(ValueError):
            list(scan(a, b, "xor"))


@given(
    st.lists(st.integers(0, 63), unique=True, max_size=30),
    st.lists(st.integers(0, 63), unique=True, max_size=30),
)
@settings(max_examples=150, deadline=None)
def test_scan_matches_set_semantics(ca, cb):
    """Scan output equals Python-set union/intersection, in order."""
    a = gen_bitvector(np.array(sorted(ca), dtype=np.int64), 64)
    b = gen_bitvector(np.array(sorted(cb), dtype=np.int64), 64)
    union = [e.coord for e in scan(a, b, "or")]
    inter = [e.coord for e in scan(a, b, "and")]
    assert union == sorted(set(ca) | set(cb))
    assert inter == sorted(set(ca) & set(cb))


@given(
    st.lists(st.integers(0, 63), unique=True, max_size=30),
    st.lists(st.integers(0, 63), unique=True, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_scan_positions_index_operand_coords(ca, cb):
    """Valid operand positions are exactly the rank of the coordinate in
    that operand's coordinate list (how value SRAMs are addressed)."""
    sa, sb = sorted(ca), sorted(cb)
    a = gen_bitvector(np.array(sa, dtype=np.int64), 64)
    b = gen_bitvector(np.array(sb, dtype=np.int64), 64)
    for e in scan(a, b, "or"):
        if e.a_valid:
            assert sa[e.pos_a] == e.coord
        if e.b_valid:
            assert sb[e.pos_b] == e.coord


@given(st.lists(st.integers(0, 200), unique=True, max_size=64), st.integers(201, 300))
@settings(max_examples=100, deadline=None)
def test_popcount_equals_len(coords, n):
    bv = gen_bitvector(np.array(sorted(coords), dtype=np.int64), n)
    assert bv.popcount() == len(coords)
    assert bv.coordinates().tolist() == sorted(coords)
