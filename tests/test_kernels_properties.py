"""Property-based end-to-end tests: compiled kernels equal the dense
reference on arbitrary random inputs (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_stmt
from repro.tensor import evaluate_dense, to_dense
from tests.helpers_kernels import build_small_kernel_stmt


def check(name: str, seed: int, density: float) -> None:
    stmt, out, _ = build_small_kernel_stmt(name, seed=seed, density=density)
    kernel = compile_stmt(stmt, name.lower())
    result = to_dense(kernel.run())
    assert np.allclose(result, evaluate_dense(out.get_assignment()))


SEEDS = st.integers(0, 2 ** 31 - 1)
DENSITIES = st.floats(0.0, 1.0)


@given(SEEDS, DENSITIES)
@settings(max_examples=25, deadline=None)
def test_spmv_property(seed, density):
    check("SpMV", seed, density)


@given(SEEDS, DENSITIES)
@settings(max_examples=20, deadline=None)
def test_plus3_property(seed, density):
    """Three-way union through the iterated two-input workspace."""
    check("Plus3", seed, density)


@given(SEEDS, DENSITIES)
@settings(max_examples=20, deadline=None)
def test_innerprod_property(seed, density):
    """Nested intersection scans."""
    check("InnerProd", seed, density)


@given(SEEDS, DENSITIES)
@settings(max_examples=20, deadline=None)
def test_plus2_property(seed, density):
    """Nested union scans with a compressed multi-level output."""
    check("Plus2", seed, density)


@given(SEEDS, DENSITIES)
@settings(max_examples=15, deadline=None)
def test_ttv_property(seed, density):
    """CSF traversal with gather and DCSR output."""
    check("TTV", seed, density)


@given(SEEDS, DENSITIES)
@settings(max_examples=15, deadline=None)
def test_mttkrp_property(seed, density):
    """Dense-inner reduction with row-buffer accumulation."""
    check("MTTKRP", seed, density)


@given(SEEDS)
@settings(max_examples=15, deadline=None)
def test_residual_subtraction_property(seed):
    """Mixed-term assignment: init plus negated reduction."""
    check("Residual", seed, 0.5)
