"""Tests for ``repro.pipeline.dispatch``: leases, faults, resume, CLI.

The contract under test extends the shard/merge guarantee to a
scheduler: a pool of workers driven through dynamic chunked leases must
produce output byte-identical to the serial harness — including when a
worker dies mid-lease, hangs past its lease, or a job fails transiently —
and jobs that keep failing must land in a quarantine list instead of a
silently wrong table.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.pipeline.batch import (
    artifact_jobs,
    format_artifact,
    run_artifact,
)
from repro.pipeline.cache import cache_env_knobs
from repro.pipeline.dispatch import (
    ChunkRequest,
    DispatchError,
    InlineTransport,
    LocalTransport,
    QueueTransport,
    SshTransport,
    chunk_count,
    dispatch,
    dispatch_summary_payload,
    parse_transport,
)
from repro.pipeline.fsqueue import worker_loop
from repro.pipeline.shard import ShardSpec, run_shard

TINY = 0.02

# The shared ``fresh_cache`` fixture (tests/conftest.py) isolates the
# process-wide default cache per test; subprocess workers inherit its
# REPRO_CACHE_DIR through the environment.


def _serial_text(artifact: str, scale: float = TINY) -> str:
    return format_artifact(artifact, run_artifact(artifact, scale))


# ---------------------------------------------------------------------------
# Transport parsing and chunk math
# ---------------------------------------------------------------------------


class TestParseTransport:
    def test_local(self):
        t = parse_transport("local:3")
        assert isinstance(t, LocalTransport)
        assert t.slots == 3 and str(t) == "local:3"

    def test_bare_integer_means_local(self):
        t = parse_transport("4")
        assert isinstance(t, LocalTransport) and t.slots == 4

    def test_inline(self):
        t = parse_transport("inline:2")
        assert isinstance(t, InlineTransport) and t.slots == 2

    def test_ssh(self):
        t = parse_transport("ssh:alice@h1,h2")
        assert isinstance(t, SshTransport)
        assert t.hosts == ["alice@h1", "h2"] and t.slots == 2

    def test_queue(self, tmp_path):
        t = parse_transport(f"queue:{tmp_path}/pool")
        assert isinstance(t, QueueTransport)
        assert t.root == tmp_path / "pool"
        assert str(t) == f"queue:{tmp_path}/pool"

    @pytest.mark.parametrize("spec", ["", "local:", "local:x", "local:0",
                                      "ssh:", "queue:", "redis:h1",
                                      "inline:-1"])
    def test_rejects(self, spec):
        with pytest.raises(DispatchError):
            parse_transport(spec)


class TestChunkMath:
    def test_more_chunks_than_workers(self):
        assert chunk_count(100, 3, 4) == 12

    def test_never_more_chunks_than_jobs(self):
        assert chunk_count(5, 3, 4) == 5

    def test_at_least_one_chunk(self):
        assert chunk_count(0, 3) == 1
        assert chunk_count(10, 0, 0) == 1


class TestChunkRequest:
    def test_batch_args_round_trip_scale(self):
        req = ChunkRequest("table6", 0.1 + 0.2, ShardSpec(2, 8))
        args = req.batch_args()
        assert float(args[args.index("--scale") + 1]) == 0.1 + 0.2
        assert args[args.index("--shard") + 1] == "2/8"
        assert args[args.index("--out") + 1] == "-"

    def test_batch_args_flags(self):
        req = ChunkRequest("table3", TINY, ShardSpec(1, 2),
                           use_cache=False, jobs=3)
        args = req.batch_args()
        assert "--no-cache" in args
        assert args[args.index("--jobs") + 1] == "3"


class TestSshCommand:
    def test_remote_command_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSH_REPO", "/srv/stardust")
        monkeypatch.setenv("REPRO_SSH_PYTHON", "python3.11")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/mnt/shared/cache")
        t = SshTransport(["h1", "h2"])
        req = ChunkRequest("table6", TINY, ShardSpec(3, 8))
        cmd = t.remote_command(req)
        assert cmd.startswith("cd /srv/stardust && env ")
        assert "PYTHONPATH=src" in cmd
        assert "REPRO_CACHE_DIR=/mnt/shared/cache" in cmd
        assert "python3.11 -m repro batch table6" in cmd
        assert "--shard 3/8" in cmd and "--out -" in cmd
        argv = t.argv(req, "h2")
        assert argv[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert argv[3] == "h2"

    def test_cache_knobs_forwarded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/x")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_CACHE_DISK", raising=False)
        knobs = cache_env_knobs()
        assert knobs["REPRO_CACHE_DIR"] == "/tmp/x"
        assert knobs["REPRO_NO_CACHE"] == "1"
        assert "REPRO_CACHE_DISK" not in knobs

    def test_rejects_empty_hosts(self):
        with pytest.raises(DispatchError):
            SshTransport([""])


# ---------------------------------------------------------------------------
# Clean dispatches: byte-identical to serial
# ---------------------------------------------------------------------------


class TestDispatchClean:
    def test_inline_byte_identical(self, fresh_cache):
        result = dispatch("table3", TINY, InlineTransport(2))
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert result.chunks == chunk_count(
            len(artifact_jobs("table3", TINY)), 2)
        assert result.attempts == result.chunks
        assert not result.quarantined and not result.lost_chunks
        assert "ok" in result.summary()

    def test_local_subprocess_byte_identical(self, fresh_cache):
        result = dispatch("table3", TINY, LocalTransport(2),
                          chunks_per_worker=2)
        assert result.ok
        assert result.merged.text == _serial_text("table3")

    def test_no_spool_files_leak(self, fresh_cache, tmp_path, monkeypatch):
        """Every lease's stdout/stderr spool files are removed — on the
        success path and when a lease expires and the worker is killed."""
        monkeypatch.setenv("TMPDIR", str(tmp_path / "spool"))
        (tmp_path / "spool").mkdir()
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            transport = _SabotagedLocal(
                2, [sys.executable, "-c", "import time; time.sleep(600)"])
            result = dispatch("table3", TINY, transport, lease_timeout=2.5,
                              retries=8, chunks_per_worker=2)
            assert result.ok
            leftovers = [p for p in (tmp_path / "spool").iterdir()
                         if p.suffix in (".out", ".err")]
            assert leftovers == []
        finally:
            tempfile.tempdir = None

    @pytest.mark.parametrize("artifact", ["table6", "format_sweep"])
    def test_paper_sweeps_byte_identical(self, fresh_cache, artifact):
        """The acceptance artefacts: dispatched table6/format_sweep with
        >= 2 workers matches the serial run byte for byte."""
        result = dispatch(artifact, TINY, InlineTransport(2))
        assert result.ok
        assert result.merged.text == _serial_text(artifact)

    def test_unknown_artifact_rejected(self):
        with pytest.raises(DispatchError, match="unknown artefact"):
            dispatch("table7", TINY, InlineTransport(1))

    def test_summary_payload_is_json_safe(self, fresh_cache):
        result = dispatch("table3", TINY, InlineTransport(1))
        payload = json.loads(json.dumps(dispatch_summary_payload(result)))
        assert payload["ok"] is True
        assert payload["artifact"] == "table3"
        assert payload["chunks"] == result.chunks


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class _SabotagedLocal(LocalTransport):
    """A local transport whose first ``n_faults`` launches misbehave."""

    def __init__(self, slots: int, dud_argv: list[str], n_faults: int = 1):
        super().__init__(slots)
        self._dud = dud_argv
        self._faults_left = n_faults
        self.faults_injected = 0

    def argv(self, request: ChunkRequest) -> list[str]:
        if self._faults_left > 0:
            self._faults_left -= 1
            self.faults_injected += 1
            return self._dud
        return super().argv(request)


class TestFaultInjection:
    def test_dead_worker_chunk_reassigned(self, fresh_cache):
        """A worker killed mid-lease (exits without a manifest) loses the
        chunk; the reassigned chunk completes and the merge is still
        byte-identical to the serial run."""
        transport = _SabotagedLocal(
            2, [sys.executable, "-c", "import sys; sys.exit(137)"])
        events: list[str] = []
        result = dispatch("table3", TINY, transport, chunks_per_worker=2,
                          on_event=events.append)
        assert transport.faults_injected == 1
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert result.attempts == result.chunks + 1
        assert any("reassigning" in e for e in events)

    def test_hung_worker_lease_expires(self, fresh_cache):
        """A hung worker is killed at lease expiry and its chunk is
        reassigned; the final merge is still byte-identical.

        The lease is short so the dud expires quickly, which means a
        *legitimate* subprocess can also blow it on a loaded machine
        (cold interpreter + numpy import); a generous retry bound keeps
        that from losing chunks — every retry rides the staged cache the
        killed worker already warmed, so attempts converge.
        """
        transport = _SabotagedLocal(
            2, [sys.executable, "-c", "import time; time.sleep(600)"])
        events: list[str] = []
        result = dispatch("table3", TINY, transport, lease_timeout=2.5,
                          retries=8, chunks_per_worker=2,
                          on_event=events.append)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert any("lease expired" in e for e in events)

    def test_stale_compiler_worker_rejected_at_first_chunk(self, fresh_cache,
                                                           monkeypatch):
        """A worker running a different compiler (stale remote checkout)
        is refused at manifest acceptance, not at the final merge."""
        from repro.pipeline.shard import ShardManifest

        real_from_dict = ShardManifest.from_dict

        def staling(cls, data, source="<manifest>"):
            manifest = real_from_dict(data, source)
            manifest.compiler = "0" * 16
            return manifest

        monkeypatch.setattr(ShardManifest, "from_dict",
                            classmethod(staling))
        events: list[str] = []
        result = dispatch("table3", TINY, InlineTransport(1), retries=0,
                          chunks_per_worker=1, on_event=events.append)
        assert not result.ok
        assert result.merge_error is None  # refused before the fold
        assert result.lost_chunks
        assert any("stale remote checkout" in e for e in events)
        assert any("stale remote checkout" in line
                   for line in result.failure_report())

    def test_worker_dead_past_retry_bound_loses_chunk(self, fresh_cache):
        """A chunk whose workers always die is reported lost, not hung
        on forever, and the dispatch reports failure."""
        transport = _SabotagedLocal(
            1, [sys.executable, "-c", "import sys; sys.exit(1)"],
            n_faults=10_000)
        result = dispatch("table3", TINY, transport, retries=1,
                          chunks_per_worker=1)
        assert not result.ok
        assert result.merged is None
        assert result.lost_chunks
        assert "lost" in result.summary()

    def test_failing_job_quarantined_after_retries(self, fresh_cache,
                                                   monkeypatch):
        """A job that fails every attempt lands in the quarantine list —
        with its captured traceback still in the chunk manifest."""
        from repro.pipeline import batch

        calls: list[str] = []
        original = batch.table3_cell

        def flaky(kernel_name, scale, use_cache=None):
            calls.append(kernel_name)
            if kernel_name == "SpMV":
                raise RuntimeError("injected persistent failure")
            return original(kernel_name, scale, use_cache)

        monkeypatch.setattr(batch, "table3_cell", flaky)
        result = dispatch("table3", TINY, InlineTransport(1), retries=2)
        assert not result.ok and result.merged is None
        assert [q["key"][0] for q in result.quarantined] == ["SpMV"]
        assert "injected persistent failure" in result.quarantined[0]["error"]
        assert calls.count("SpMV") == 3  # 1 + retries attempts
        # The quarantined job is still recorded (ok: false) in a manifest.
        failed = [e for m in result.manifests for e in m.failures()]
        assert [tuple(e["key"]) for e in failed] == [("SpMV", "-", "loc")]

    def test_transient_failure_rescued_by_retry(self, fresh_cache,
                                                monkeypatch):
        """A job that fails once then succeeds costs one extra lease and
        still merges byte-identically."""
        from repro.pipeline import batch

        original = batch.table3_cell
        state = {"failed": False}

        def once(kernel_name, scale, use_cache=None):
            if kernel_name == "SpMV" and not state["failed"]:
                state["failed"] = True
                raise RuntimeError("injected transient failure")
            return original(kernel_name, scale, use_cache)

        monkeypatch.setattr(batch, "table3_cell", once)
        result = dispatch("table3", TINY, InlineTransport(1), retries=2)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert result.attempts == result.chunks + 1
        assert not result.quarantined

    def test_table6_byte_identical_under_worker_failure(self, fresh_cache,
                                                        monkeypatch):
        """The acceptance property on the paper's main sweep: a table6
        dispatch with an injected mid-sweep failure still merges
        byte-identically to the serial run."""
        from repro.pipeline import batch

        original = batch.evaluate_cell
        state = {"failed": False}

        def once(kernel_name, dataset_name, scale, use_cache=None):
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("injected worker failure")
            return original(kernel_name, dataset_name, scale, use_cache)

        monkeypatch.setattr(batch, "evaluate_cell", once)
        result = dispatch("table6", TINY, InlineTransport(2))
        assert result.ok
        assert result.attempts == result.chunks + 1
        assert result.merged.text == _serial_text("table6")


# ---------------------------------------------------------------------------
# The elastic queue transport (queue:DIR + `repro worker`)
# ---------------------------------------------------------------------------


class _WorkerPool:
    """In-process `repro worker` threads a test can attach and detach."""

    def __init__(self, root) -> None:
        self.root = root
        self.threads: list = []
        self.exits: list = []

    def attach(self, **kwargs):
        import threading

        stop = {"exit": False}
        thread = threading.Thread(
            target=worker_loop,
            kwargs=dict(root=self.root, poll=0.02,
                        should_exit=lambda: stop["exit"], **kwargs),
            daemon=True,
        )
        thread.start()
        self.threads.append(thread)
        self.exits.append(stop)
        return stop

    def join_all(self, timeout: float = 10.0) -> bool:
        for thread in self.threads:
            thread.join(timeout)
        return all(not t.is_alive() for t in self.threads)


@pytest.fixture
def queue_dir(tmp_path):
    return tmp_path / "pool"


class TestQueueTransport:
    def test_elastic_workers_byte_identical(self, fresh_cache, queue_dir):
        """Workers attach before and *during* the sweep (elastic pool);
        the merged output still matches the serial run byte for byte,
        and the stop sentinel releases every worker."""
        import threading
        import time as time_mod

        pool = _WorkerPool(queue_dir)
        pool.attach()

        def attach_late():
            time_mod.sleep(0.2)
            pool.attach()

        late = threading.Thread(target=attach_late, daemon=True)
        late.start()
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=60)
        late.join(5)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert pool.join_all()
        # The dispatcher cleaned up: no tasks left, stop sentinel raised.
        transport = QueueTransport(queue_dir)
        assert transport.pending_counts() == (0, 0)
        assert transport.stop_path.exists()

    def test_worker_detaches_mid_chunk_lease_reassigned(
            self, fresh_cache, queue_dir):
        """The fault-injection contract for elastic pools: a worker that
        claims a chunk and detaches without finishing stops
        heartbeating, the lease expires, the chunk is re-enqueued, and
        the final artefact is byte-identical."""
        import os
        import threading
        import time as time_mod

        transport = QueueTransport(queue_dir)

        def saboteur():
            # Claim the first task that appears, then vanish (no
            # heartbeat, no result) — a killed worker, from the
            # dispatcher's point of view.
            deadline = time_mod.monotonic() + 30
            while time_mod.monotonic() < deadline:
                if transport.queue_dir.exists():
                    for task in sorted(transport.queue_dir.glob(
                            "chunk-*.json")):
                        try:
                            os.replace(task, transport.claimed_dir /
                                       (task.name + ".saboteur"))
                            return
                        except OSError:
                            pass
                time_mod.sleep(0.01)

        threading.Thread(target=saboteur, daemon=True).start()
        pool = _WorkerPool(queue_dir)

        def attach_honest():
            time_mod.sleep(0.3)
            pool.attach()

        threading.Thread(target=attach_honest, daemon=True).start()
        events: list[str] = []
        result = dispatch("table3", TINY, transport, lease_timeout=1.0,
                          retries=8, on_event=events.append)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert result.attempts > result.chunks  # the stolen lease cost one
        assert any("lease expired" in e for e in events)
        assert any("reassigning" in e for e in events)
        assert pool.join_all()

    def test_worker_discards_revoked_manifest(self, fresh_cache, queue_dir,
                                              monkeypatch):
        """A slow-but-alive worker whose lease was revoked cancels its
        remaining jobs and discards the manifest instead of publishing a
        half-cancelled one; the re-leased chunk completes cleanly."""
        from repro.pipeline import batch

        original = batch.table3_cell
        state = {"slow_once": True}

        def slow(kernel_name, scale, use_cache=None):
            if state["slow_once"]:
                state["slow_once"] = False
                import time as time_mod

                time_mod.sleep(3.0)  # outlive the 1s lease below
            return original(kernel_name, scale, use_cache)

        monkeypatch.setattr(batch, "table3_cell", slow)
        pool = _WorkerPool(queue_dir)
        pool.attach()
        pool.attach()
        events: list[str] = []
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=1.0, retries=8,
                          on_event=events.append)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert pool.join_all()

    def test_stale_compiler_tasks_left_in_queue(self, fresh_cache,
                                                queue_dir, monkeypatch):
        """A worker from a different checkout must not burn a lease on a
        task it cannot answer for: it leaves the task queued (with a
        note) for a matching worker."""
        from repro.pipeline import fsqueue

        transport = QueueTransport(queue_dir)
        transport.prepare()
        transport.enqueue(1, 1, {"artifact": "table3", "scale": TINY,
                                 "shard": "1/1"})
        monkeypatch.setattr(fsqueue, "compiler_version", lambda: "0" * 16)
        events: list[str] = []
        exits = {"count": 0}

        def bail():
            exits["count"] += 1
            return exits["count"] > 20

        completed = worker_loop(queue_dir, poll=0.01, on_event=events.append,
                                should_exit=bail)
        assert completed == 0
        assert any("skipping" in e for e in events)
        assert transport.pending_counts()[0] == 1  # still queued

    def test_worker_max_chunks_detaches(self, fresh_cache, queue_dir):
        """`repro worker --max-chunks N` detaches after N chunks; the
        dispatcher finishes with whoever is left."""
        import threading
        import time as time_mod

        pool = _WorkerPool(queue_dir)
        pool.attach(max_chunks=1)

        def attach_late():
            time_mod.sleep(0.2)
            pool.attach()

        threading.Thread(target=attach_late, daemon=True).start()
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=60)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert pool.join_all()

    @pytest.mark.parametrize("artifact", ["table6", "format_sweep"])
    def test_paper_sweeps_queue_byte_identical(self, fresh_cache, queue_dir,
                                               artifact):
        """The acceptance artefacts over an elastic pool: one worker
        detaches after two chunks, another attaches mid-sweep, and the
        merged table6/format_sweep still matches serial byte for byte."""
        import threading
        import time as time_mod

        pool = _WorkerPool(queue_dir)
        pool.attach(max_chunks=2)  # detaches cleanly mid-sweep

        def attach_late():
            time_mod.sleep(0.3)
            pool.attach()

        threading.Thread(target=attach_late, daemon=True).start()
        result = dispatch(artifact, TINY, QueueTransport(queue_dir),
                          lease_timeout=60)
        assert result.ok
        assert result.merged.text == _serial_text(artifact)
        assert pool.join_all()

    def test_old_queued_task_not_revoked_at_claim(self, fresh_cache,
                                                  queue_dir):
        """A task that waited in the queue longer than the lease must
        not be revoked the moment a worker claims it: the claim rename
        preserves the enqueue-time mtime, so the worker stamps the
        heartbeat immediately on claiming."""
        import threading
        import time as time_mod

        pool = _WorkerPool(queue_dir)

        def attach_late():
            time_mod.sleep(2.0)  # > lease_timeout: every task is "old"
            pool.attach()

        threading.Thread(target=attach_late, daemon=True).start()
        events: list[str] = []
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=1.0, on_event=events.append)
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert not any("lease expired" in e for e in events)
        assert result.attempts == result.chunks
        assert pool.join_all()

    def test_stop_queue_false_keeps_pool_attached(self, fresh_cache,
                                                  queue_dir):
        """A multi-artefact sweep dispatches back-to-back over one queue
        directory: with stop_queue=False the workers survive the first
        dispatch and serve the second; only the final (default) dispatch
        drains them."""
        pool = _WorkerPool(queue_dir)
        pool.attach()
        transport = QueueTransport(queue_dir)
        first = dispatch("table3", TINY, transport, lease_timeout=60,
                         stop_queue=False)
        assert first.ok
        assert not transport.stop_path.exists()
        assert all(t.is_alive() for t in pool.threads)
        second = dispatch("table3", TINY, transport, lease_timeout=60)
        assert second.ok
        assert second.merged.text == first.merged.text
        assert pool.join_all()

    def test_worker_task_error_is_surfaced(self, fresh_cache, queue_dir):
        """A worker that cannot run a task at all (here: a stale
        explicit-positions spec) reports the root cause, and the
        dispatcher's failure report carries it instead of a generic
        'unreadable manifest' refusal."""
        from repro.pipeline.dispatch import _validate_manifest_text
        from repro.pipeline.fsqueue import ERROR_FORMAT

        transport = QueueTransport(queue_dir)
        transport.prepare()
        transport.enqueue(1, 1, {"artifact": "table3", "scale": TINY,
                                 "shard": "1/1=999"})
        exits = {"count": 0}

        def bail():
            exits["count"] += 1
            return exits["count"] > 200

        worker_loop(queue_dir, poll=0.01, should_exit=bail)
        results = transport.collect()
        assert len(results) == 1
        _index, text, _path = results[0]
        assert json.loads(text)["format"] == ERROR_FORMAT
        request = ChunkRequest("table3", TINY, ShardSpec(1, 1, (999,)))
        manifest, why = _validate_manifest_text(text, request)
        assert manifest is None
        assert "stale chunk plan" in why  # the worker's real error

    def test_result_write_failure_leaves_claim_to_expire(self, fresh_cache,
                                                         queue_dir,
                                                         monkeypatch):
        """A worker that cannot deliver its result (full/read-only
        mount) must leave its claim in place: the lease expires and the
        chunk is re-leased — never stranded with no task, no claim, and
        no result (which would hang the dispatch)."""
        from repro.pipeline import fsqueue

        real_write = fsqueue._atomic_write
        state = {"failed": False}

        def flaky_write(path, text):
            if not state["failed"] and path.parent.name == "results":
                state["failed"] = True
                raise OSError("injected: no space left on device")
            real_write(path, text)

        monkeypatch.setattr(fsqueue, "_atomic_write", flaky_write)
        pool = _WorkerPool(queue_dir)
        pool.attach()
        events: list[str] = []
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=1.0, retries=8,
                          on_event=events.append)
        assert state["failed"]
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert any("lease expired" in e for e in events)
        assert pool.join_all()

    def test_prepare_wipes_previous_dispatch_residue(self, tmp_path):
        """A crashed dispatch (shutdown never ran) leaves task/claim/
        result files behind; the next dispatch on the same directory
        must start clean instead of mistaking them for its own chunks."""
        transport = QueueTransport(tmp_path / "pool")
        transport.prepare()
        transport.enqueue(1, 1, {"artifact": "table6", "scale": 0.05,
                                 "shard": "1/2"})
        (transport.claimed_dir / "chunk-0002-a1.json.dead").write_text("{}")
        (transport.results_dir / "chunk-0003-a1.w.json").write_text("{}")
        transport.prepare()
        assert transport.pending_counts() == (0, 0)
        assert list(transport.results_dir.glob("chunk-*")) == []

    def test_queue_reports_summary_payload(self, fresh_cache, queue_dir):
        pool = _WorkerPool(queue_dir)
        pool.attach()
        result = dispatch("table3", TINY, QueueTransport(queue_dir),
                          lease_timeout=60)
        payload = json.loads(json.dumps(dispatch_summary_payload(result)))
        assert payload["ok"] is True
        assert payload["transport"].startswith("queue:")
        assert pool.join_all()


# ---------------------------------------------------------------------------
# Resume
# ---------------------------------------------------------------------------


class TestResume:
    def test_resume_skips_completed_chunks(self, fresh_cache, tmp_path,
                                           monkeypatch):
        from repro.pipeline import batch

        state = tmp_path / "state"
        state.mkdir()
        # A previous dispatch (slots=1 -> 4 chunks) completed chunks 1-2.
        chunks = chunk_count(len(artifact_jobs("table3", TINY)), 1)
        prior_keys: set[tuple] = set()
        for i in (1, 2):
            manifest = run_shard("table3", TINY, ShardSpec(i, chunks))
            manifest.save(state / f"table3.chunk{i}of{chunks}.json")
            prior_keys.update(manifest.job_keys())

        calls: list[str] = []
        original = batch.table3_cell

        def counting(kernel_name, scale, use_cache=None):
            calls.append(kernel_name)
            return original(kernel_name, scale, use_cache)

        monkeypatch.setattr(batch, "table3_cell", counting)
        result = dispatch("table3", TINY, InlineTransport(1),
                          state_dir=state, resume=True)
        ran = {(k, "-", "loc") for k in calls}
        assert result.ok
        assert result.merged.text == _serial_text("table3")
        assert result.resumed_chunks == 2
        assert result.attempts == chunks - 2
        # No job from an already-completed chunk ran again.
        assert not ran & prior_keys

    def test_resume_ignores_stale_compiler_manifests(self, fresh_cache,
                                                     tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        chunks = chunk_count(len(artifact_jobs("table3", TINY)), 1)
        manifest = run_shard("table3", TINY, ShardSpec(1, chunks))
        manifest.compiler = "0" * 16
        manifest.save(state / f"table3.chunk1of{chunks}.json")

        events: list[str] = []
        result = dispatch("table3", TINY, InlineTransport(1),
                          state_dir=state, resume=True,
                          on_event=events.append)
        assert result.ok
        assert result.resumed_chunks == 0
        assert result.attempts == chunks
        assert any("stale" in e for e in events)

    def test_resume_reruns_chunks_with_failures(self, fresh_cache, tmp_path,
                                                monkeypatch):
        from repro.pipeline import batch

        state = tmp_path / "state"
        state.mkdir()
        chunks = chunk_count(len(artifact_jobs("table3", TINY)), 1)
        original = batch.table3_cell

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        bad = run_shard("table3", TINY, ShardSpec(1, chunks))
        assert bad.failures()
        bad.save(state / f"table3.chunk1of{chunks}.json")
        monkeypatch.setattr(batch, "table3_cell", original)

        result = dispatch("table3", TINY, InlineTransport(1),
                          state_dir=state, resume=True)
        assert result.ok
        assert result.resumed_chunks == 0
        assert result.merged.text == _serial_text("table3")

    def test_state_dir_holds_all_manifests(self, fresh_cache, tmp_path):
        state = tmp_path / "state"
        result = dispatch("table3", TINY, InlineTransport(2),
                          state_dir=state)
        assert result.ok
        saved = sorted(state.glob("table3.chunk*.json"))
        assert len(saved) == result.chunks

    def test_resume_requires_state_dir(self):
        with pytest.raises(DispatchError, match="state directory"):
            dispatch("table3", TINY, InlineTransport(1), resume=True)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_dispatch_byte_identical_to_tables(self, fresh_cache, capsys):
        from repro.__main__ import main

        assert main(["dispatch", "table3", "--workers", "inline:2",
                     "--scale", "0.02", "--quiet"]) == 0
        dispatched = capsys.readouterr().out
        assert dispatched == _serial_text("table3") + "\n"

    def test_dispatch_writes_out_file(self, fresh_cache, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "merged.txt"
        assert main(["dispatch", "table3", "--workers", "inline:2",
                     "--scale", "0.02", "--quiet", "--out", str(out)]) == 0
        assert out.read_text() == capsys.readouterr().out

    def test_dispatch_resume_round_trip(self, fresh_cache, tmp_path, capsys):
        from repro.__main__ import main

        state = tmp_path / "state"
        args = ["dispatch", "table3", "--workers", "inline:2",
                "--scale", "0.02", "--quiet", "--resume", str(state)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first
        assert "resumed" in second.err

    def test_dispatch_rejects_bad_transport(self, capsys):
        from repro.__main__ import main

        assert main(["dispatch", "table3", "--workers", "carrier-pigeon:2",
                     "--scale", "0.02"]) == 2
        assert "dispatch error" in capsys.readouterr().err

    def test_dispatch_reports_quarantine(self, fresh_cache, monkeypatch,
                                         capsys):
        from repro.__main__ import main
        from repro.pipeline import batch

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        assert main(["dispatch", "table3", "--workers", "inline:1",
                     "--scale", "0.02", "--quiet", "--retries", "0"]) == 1
        err = capsys.readouterr().err
        assert "QUARANTINED" in err

    def test_worker_cli_exits_on_stopped_queue(self, tmp_path, capsys):
        from repro.__main__ import main

        transport = QueueTransport(tmp_path / "pool")
        transport.prepare()
        transport.shutdown()  # raise the stop sentinel; queue is empty
        assert main(["worker", str(tmp_path / "pool"), "--poll", "0.01",
                     "--quiet"]) == 0
        assert "0 chunk(s) completed" in capsys.readouterr().err

    def test_dispatch_queue_cli_round_trip(self, fresh_cache, tmp_path,
                                           capsys):
        import threading

        from repro.__main__ import main

        qdir = tmp_path / "pool"
        worker = threading.Thread(
            target=main,
            args=(["worker", str(qdir), "--poll", "0.02", "--quiet"],),
            daemon=True)
        worker.start()
        assert main(["dispatch", "table3", "--workers", f"queue:{qdir}",
                     "--scale", "0.02", "--quiet",
                     "--lease-timeout", "60"]) == 0
        assert capsys.readouterr().out == _serial_text("table3") + "\n"
        worker.join(10)
        assert not worker.is_alive()

    def test_batch_shard_accepts_explicit_positions(self, fresh_cache,
                                                    capsys):
        from repro.__main__ import main
        from repro.pipeline.shard import ShardManifest

        assert main(["batch", "table3", "--scale", "0.02",
                     "--shard", "1/2=0,3", "--out", "-"]) == 0
        manifest = ShardManifest.from_dict(
            json.loads(capsys.readouterr().out))
        assert manifest.shard == ShardSpec(1, 2, (0, 3))
        assert len(manifest.jobs) == 2

    def test_batch_out_dash_streams_manifest(self, fresh_cache, capsys):
        from repro.__main__ import main
        from repro.pipeline.shard import ShardManifest

        assert main(["batch", "table3", "--scale", "0.02",
                     "--shard", "1/2", "--out", "-"]) == 0
        captured = capsys.readouterr()
        manifest = ShardManifest.from_dict(json.loads(captured.out))
        assert manifest.artifact == "table3"
        assert manifest.shard == ShardSpec(1, 2)
        assert "shard 1/2 of table3" in captured.err


# ---------------------------------------------------------------------------
# Executor cancellation (the inline lease-revocation mechanism)
# ---------------------------------------------------------------------------


class TestShouldStop:
    def test_cancelled_jobs_do_not_run(self):
        from repro.pipeline.executor import Job, run_jobs

        ran: list[int] = []
        flag = {"stop": False}

        def work(i):
            ran.append(i)
            if i == 1:
                flag["stop"] = True
            return i

        jobs = [Job((i,), work, (i,)) for i in range(5)]
        results = run_jobs(jobs, max_workers=1,
                           should_stop=lambda: flag["stop"])
        assert ran == [0, 1]
        assert [r.ok for r in results] == [True, True, False, False, False]
        assert "cancelled" in results[2].error

    def test_should_stop_rejected_for_process_pools(self):
        from repro.pipeline.executor import Job, run_jobs

        jobs = [Job((i,), int, (i,)) for i in range(4)]
        with pytest.raises(ValueError, match="process pools"):
            run_jobs(jobs, max_workers=2, kind="process",
                     should_stop=lambda: False)
