"""The format_sweep artefact: jobs, assembly, sharding, and merge."""

import numpy as np
import pytest

from repro.eval.harness import FORMAT_SWEEP_KERNELS, format_format_sweep
from repro.pipeline.batch import (
    ARTIFACT_NAMES,
    artifact_jobs,
    assemble_artifact,
    format_sweep_cell,
    run_artifact,
)
from repro.pipeline.executor import run_jobs
from repro.pipeline.shard import (
    ShardSpec,
    decode_result,
    encode_result,
    merge_manifests,
    run_shard,
)

TINY = 0.02


def test_format_sweep_registered():
    assert "format_sweep" in ARTIFACT_NAMES


def test_job_list_covers_kernels_and_datasets():
    jobs = artifact_jobs("format_sweep", TINY)
    kernels = {job.key[0] for job in jobs}
    assert kernels == set(FORMAT_SWEEP_KERNELS)
    assert len(jobs) == 12  # 4 kernels x 3 SuiteSparse matrices


def test_cell_metrics_shape(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cell = format_sweep_cell("COO-SpMV", "ckt11752_dc_1", TINY)
    assert cell["nnz"] > 0
    assert cell["storage_bytes"] > 0
    assert cell["seconds"] > 0
    assert "singleton" in cell["format"]


def test_encode_decode_round_trip():
    cell = {"format": "f", "nnz": 3, "storage_bytes": 12, "spatial_loc": 7,
            "pcu": 1, "pmu": 2, "dram_bytes": 64, "seconds": 1.25e-6}
    assert decode_result("format_sweep",
                         encode_result("format_sweep", cell)) == cell


@pytest.mark.slow
def test_serial_assembly_and_formatting(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    data = run_artifact("format_sweep", TINY)
    assert set(data) == set(FORMAT_SWEEP_KERNELS)
    text = format_format_sweep(data)
    assert "Format sweep" in text
    for kernel in FORMAT_SWEEP_KERNELS:
        assert kernel in text


@pytest.mark.slow
def test_sharded_merge_matches_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    manifests = [run_shard("format_sweep", TINY, ShardSpec(i, 3))
                 for i in (1, 2, 3)]
    # Round-trip each manifest through its JSON file form.
    from repro.pipeline.shard import ShardManifest

    loaded = []
    for k, manifest in enumerate(manifests):
        path = manifest.save(tmp_path / f"shard{k}.json")
        loaded.append(ShardManifest.load(path))
    merged = merge_manifests(loaded)
    serial = run_artifact("format_sweep", TINY)
    assert merged.text == format_format_sweep(serial)
    assert merged.data == serial


def test_format_sweep_rows_monotone_storage(tmp_path, monkeypatch):
    """BCSR materialises zeros inside tiles, so its stored entry count is
    at least CSR's for the same matrix."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    csr = format_sweep_cell("SpMV", "ckt11752_dc_1", TINY)
    bcsr = format_sweep_cell("BCSR-SpMV", "ckt11752_dc_1", TINY)
    assert bcsr["nnz"] >= csr["nnz"]
    assert bcsr["nnz"] % 16 == 0


def test_job_results_deterministic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = artifact_jobs("format_sweep", TINY)
    subset = [j for j in jobs if j.key[0] in ("SpMV", "COO-SpMV")
              and j.key[1] == "ckt11752_dc_1"]
    first = assemble_artifact("format_sweep", run_jobs(subset))
    second = assemble_artifact("format_sweep", run_jobs(subset))
    assert first == second
    assert np.isclose(first["SpMV"]["ckt11752_dc_1"]["seconds"],
                      second["SpMV"]["ckt11752_dc_1"]["seconds"])
