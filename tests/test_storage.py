"""Unit tests for level-based tensor storage (pack/unpack)."""

import numpy as np
import pytest

from repro.formats import (
    CSC,
    CSF,
    CSR,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    compressed,
    dense,
    offChip,
)
from repro.tensor.storage import (
    CompressedLevel,
    DenseLevel,
    from_dense,
    pack,
    to_dense,
    unpack,
)


def figure8_matrix() -> np.ndarray:
    """The example matrix of Figure 8."""
    return np.array([
        [0, 1, 0, 0],
        [2, 0, 3, 0],
        [0, 4, 0, 0],
        [0, 0, 0, 5],
    ], dtype=float)


class TestCsrPacking:
    def test_figure8_arrays(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        lvl = st.levels[1]
        assert isinstance(lvl, CompressedLevel)
        # Figure 8: row positions [0,1,3,4,5], col coords [1,0,2,1,3].
        assert lvl.pos.tolist() == [0, 1, 3, 4, 5]
        assert lvl.crd.tolist() == [1, 0, 2, 1, 3]
        assert st.vals.tolist() == [1, 2, 3, 4, 5]

    def test_dense_level_is_implicit(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        assert isinstance(st.levels[0], DenseLevel)
        assert st.levels[0].size == 4

    def test_round_trip(self):
        m = figure8_matrix()
        assert np.array_equal(to_dense(from_dense(m, CSR(offChip))), m)

    def test_empty_rows(self):
        m = np.zeros((3, 4))
        m[1, 2] = 7.0
        st = from_dense(m, CSR(offChip))
        assert st.levels[1].pos.tolist() == [0, 0, 1, 1]
        assert np.array_equal(to_dense(st), m)

    def test_all_zero_matrix(self):
        st = from_dense(np.zeros((3, 3)), CSR(offChip))
        assert st.nnz == 0
        assert np.array_equal(to_dense(st), np.zeros((3, 3)))


class TestCscPacking:
    def test_column_major_traversal(self):
        m = figure8_matrix()
        st = from_dense(m, CSC(offChip))
        # Level 0 stores mode 1 (columns); level 1 compresses rows.
        assert st.levels[0].size == 4
        lvl = st.levels[1]
        # Column 0: row 1; column 1: rows 0,2; column 2: row 1; column 3: row 3.
        assert lvl.pos.tolist() == [0, 1, 3, 4, 5]
        assert lvl.crd.tolist() == [1, 0, 2, 1, 3]
        assert st.vals.tolist() == [2, 1, 4, 3, 5]

    def test_round_trip(self):
        m = figure8_matrix()
        assert np.array_equal(to_dense(from_dense(m, CSC(offChip))), m)


class TestCsfPacking:
    def test_three_level_structure(self, rng):
        t = (rng.random((3, 4, 5)) < 0.3) * rng.random((3, 4, 5))
        st = from_dense(t, CSF(offChip))
        assert all(isinstance(l, CompressedLevel) for l in st.levels)
        assert np.array_equal(to_dense(st), t)

    def test_level_nnz_monotone(self, rng):
        t = (rng.random((4, 4, 4)) < 0.4) * rng.random((4, 4, 4))
        st = from_dense(t, CSF(offChip))
        n0, n1, n2 = (l.nnz for l in st.levels)
        assert n0 <= n1 <= n2
        assert n2 == np.count_nonzero(t)

    def test_root_pos_spans_level0(self, rng):
        t = (rng.random((4, 4, 4)) < 0.4) * rng.random((4, 4, 4))
        st = from_dense(t, CSF(offChip))
        assert st.levels[0].pos.tolist()[0] == 0
        assert st.levels[0].pos.tolist()[-1] == st.levels[0].nnz


class TestUccPacking:
    def test_dense_then_compressed(self, rng):
        t = (rng.random((3, 4, 5)) < 0.3) * rng.random((3, 4, 5))
        st = from_dense(t, UCC(offChip))
        assert isinstance(st.levels[0], DenseLevel)
        assert isinstance(st.levels[1], CompressedLevel)
        # Level-1 pos has one segment per dense slot of level 0.
        assert len(st.levels[1].pos) == 3 + 1
        assert np.array_equal(to_dense(st), t)


class TestDenseFormats:
    def test_dense_matrix_keeps_zeros(self):
        m = figure8_matrix()
        st = from_dense(m, DENSE_MATRIX(offChip))
        assert st.nnz == 16  # every slot materialised
        assert np.array_equal(to_dense(st), m)

    def test_dense_vector(self):
        v = np.array([0.0, 1.5, 0.0, 2.5])
        st = from_dense(v, DENSE_VECTOR(offChip))
        assert st.vals.tolist() == v.tolist()

    def test_trailing_dense_level(self, rng):
        fmt = Format([compressed, dense], offChip)
        m = np.zeros((4, 3))
        m[1] = [1, 0, 2]
        m[3] = [0, 5, 0]
        st = from_dense(m, fmt)
        # Two stored rows, each materialising all 3 dense slots.
        assert len(st.vals) == 2 * 3
        assert np.array_equal(to_dense(st), m)


class TestPackEdgeCases:
    def test_scalar(self):
        st = pack(np.zeros((1, 0), dtype=np.int64), [4.5], (), Format([], offChip))
        assert st.order == 0
        assert st.vals.tolist() == [4.5]

    def test_duplicate_coordinates_sum(self):
        coords = np.array([[0, 1], [0, 1], [1, 0]])
        vals = np.array([2.0, 3.0, 4.0])
        st = pack(coords, vals, (2, 2), CSR(offChip))
        d = to_dense(st)
        assert d[0, 1] == 5.0
        assert d[1, 0] == 4.0

    def test_unsorted_input(self):
        coords = np.array([[1, 1], [0, 0], [1, 0]])
        vals = np.array([1.0, 2.0, 3.0])
        st = pack(coords, vals, (2, 2), CSR(offChip))
        assert st.levels[1].crd.tolist() == [0, 0, 1]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="out of bounds"):
            pack(np.array([[5, 0]]), [1.0], (2, 2), CSR(offChip))

    def test_order_mismatch_rejected(self):
        with pytest.raises(ValueError, match="order"):
            pack(np.array([[0, 0]]), [1.0], (2, 2), DENSE_VECTOR(offChip))

    def test_coords_vals_mismatch(self):
        with pytest.raises(ValueError, match="entry count"):
            pack(np.array([[0, 0]]), [1.0, 2.0], (2, 2), CSR(offChip))

    def test_empty_input(self):
        st = pack(np.zeros((0, 2), dtype=np.int64), np.zeros(0), (3, 3), CSR(offChip))
        assert st.nnz == 0
        coords, vals = unpack(st)
        assert len(vals) == 0


class TestStorageAccessors:
    def test_array_lookup(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        assert st.array(1, "pos").tolist() == [0, 1, 3, 4, 5]
        assert st.array(1, "crd").tolist() == [1, 0, 2, 1, 3]

    def test_array_on_dense_level_rejected(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        with pytest.raises(KeyError):
            st.array(0, "pos")

    def test_unknown_array_rejected(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        with pytest.raises(KeyError):
            st.array(1, "values")

    def test_level_dim_respects_ordering(self):
        st = from_dense(np.ones((3, 5)), Format([dense, dense], [1, 0], offChip))
        assert st.level_dim(0) == 5
        assert st.level_dim(1) == 3

    def test_bytes_total(self):
        st = from_dense(figure8_matrix(), CSR(offChip))
        # 5 vals + 5 pos entries + 5 crd entries, 4 bytes each.
        assert st.bytes_total() == (5 + 5 + 5) * 4

    def test_sparse_vector(self):
        v = np.array([0.0, 3.0, 0.0, 7.0, 0.0])
        st = from_dense(v, SPARSE_VECTOR(offChip))
        assert st.levels[0].crd.tolist() == [1, 3]
        assert st.vals.tolist() == [3.0, 7.0]
