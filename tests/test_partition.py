"""Single-kernel distribution (repro.pipeline.partition).

Covers the pseudo-artifact naming, the row-block slice primitive
(hypothesis: lossless round-trips through empty blocks and blocks
ending on empty rows), byte-identity of the reducing merge against the
serial run, the shard/dispatch integration, the typed-API ``partition``
action, and the ``part-*`` queue task naming.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convert import ConversionError, slice_rows
from repro.formats.format import format_of
from repro.pipeline.executor import run_jobs
from repro.pipeline.partition import (
    PARTITION_FORMATS,
    PartitionError,
    PartitionPlan,
    block_range,
    format_partition,
    is_partition_artifact,
    parse_partition,
    partition_artifact,
    reduce_partials,
    serial_report,
)
from repro.tensor.storage import pack, unpack

TINY = 0.03
DATASET = "bcsstk30"


# ---------------------------------------------------------------------------
# Naming
# ---------------------------------------------------------------------------


class TestNaming:
    def test_round_trip(self):
        name = partition_artifact("SpMV", DATASET, 4)
        assert name == "partition:SpMV:bcsstk30:p4:row"
        assert is_partition_artifact(name)
        assert parse_partition(name) == PartitionPlan("SpMV", DATASET, 4)

    def test_sum_mode_round_trip(self):
        plan = PartitionPlan("DCSR-SpMM", DATASET, 3, "sum")
        assert parse_partition(plan.artifact) == plan

    def test_rejects_non_partition(self):
        assert not is_partition_artifact("table6")
        with pytest.raises(PartitionError, match="not a partition"):
            parse_partition("table6")

    def test_rejects_malformed(self):
        with pytest.raises(PartitionError, match="malformed"):
            parse_partition("partition:SpMV:bcsstk30:4:row")
        with pytest.raises(PartitionError, match="malformed partition count"):
            parse_partition("partition:SpMV:bcsstk30:pX:row")

    def test_rejects_bad_plans(self):
        with pytest.raises(PartitionError, match="not partitionable"):
            PartitionPlan("Plus3", DATASET, 2)
        with pytest.raises(PartitionError, match="unknown partition mode"):
            PartitionPlan("SpMV", DATASET, 2, "col")
        with pytest.raises(PartitionError, match="count must be >= 1"):
            PartitionPlan("SpMV", DATASET, 0)
        with pytest.raises(PartitionError, match="not a matrix dataset"):
            PartitionPlan("SpMV", "nope", 2)

    def test_block_range_covers_extent(self):
        for extent in (0, 1, 7, 12):
            for count in (1, 3, 5, 13):
                ranges = [block_range(extent, count, i)
                          for i in range(count)]
                assert ranges[0][0] == 0
                assert ranges[-1][1] == extent
                for (_, hi), (nlo, _) in zip(ranges, ranges[1:]):
                    assert hi == nlo


# ---------------------------------------------------------------------------
# Row-block slicing (hypothesis): repro convert's slice primitive
# ---------------------------------------------------------------------------


@st.composite
def sparse_matrices(draw):
    """Small COO matrices with plenty of empty rows in the tail.

    Row coordinates are drawn from the lower half of the row extent, so
    generated matrices routinely end on runs of empty rows — the case
    that makes naive pos-array slicing lose or duplicate entries.
    """
    nrows = draw(st.integers(1, 12))
    ncols = draw(st.integers(1, 8))
    n = draw(st.integers(0, 20))
    cells = draw(st.lists(
        st.tuples(st.integers(0, max(0, (nrows - 1) // 2)),
                  st.integers(0, ncols - 1)),
        min_size=n, max_size=n, unique=True))
    vals = [draw(st.floats(0.5, 10.0, allow_nan=False)) for _ in cells]
    coords = np.array(cells, dtype=np.int64).reshape(len(cells), 2)
    return coords, np.array(vals, dtype=np.float64), (nrows, ncols)


@given(sparse_matrices(), st.sampled_from(sorted(PARTITION_FORMATS.values())),
       st.integers(1, 15), st.data())
@settings(max_examples=120, deadline=None)
def test_slice_rows_round_trips_losslessly(matrix, fmt_name, count, data):
    """Concatenating every block's rebased slice reproduces the matrix.

    ``count`` may exceed the row extent, so empty blocks (lo == hi) and
    blocks that end on empty rows are exercised constantly.
    """
    coords, vals, dims = matrix
    full = pack(coords, vals, dims, format_of(fmt_name))
    ref_coords, ref_vals = unpack(full)

    got_coords, got_vals, nnz_total = [], [], 0
    for index in range(count):
        lo, hi = block_range(dims[0], count, index)
        sliced = slice_rows(full, lo, hi)
        assert sliced.dims == (hi - lo, dims[1])
        nnz_total += int(sliced.nnz)
        c, v = unpack(sliced)
        if len(c):
            assert c[:, 0].min() >= 0 and c[:, 0].max() < hi - lo
            shifted = c.copy()
            shifted[:, 0] += lo  # un-rebase into the full coordinate space
            got_coords.append(shifted)
            got_vals.append(v)

    assert nnz_total == int(full.nnz)
    if got_coords:
        got_c = np.concatenate(got_coords, axis=0)
        got_v = np.concatenate(got_vals)
    else:
        got_c = np.empty((0, 2), dtype=np.int64)
        got_v = np.empty(0)
    np.testing.assert_array_equal(got_c, ref_coords)
    np.testing.assert_array_equal(got_v, ref_vals)


@given(sparse_matrices(), st.data())
@settings(max_examples=60, deadline=None)
def test_slice_rows_axis1_round_trips(matrix, data):
    """Contraction-axis slices partition the entries by column."""
    coords, vals, dims = matrix
    full = pack(coords, vals, dims, format_of("csr"))
    count = data.draw(st.integers(1, dims[1] + 2))
    nnz_total = 0
    for index in range(count):
        lo, hi = block_range(dims[1], count, index)
        sliced = slice_rows(full, lo, hi, axis=1)
        assert sliced.dims == (dims[0], hi - lo)
        nnz_total += int(sliced.nnz)
    assert nnz_total == int(full.nnz)


def test_slice_rows_rejects_bad_ranges():
    full = pack(np.array([[0, 0]]), np.array([1.0]), (2, 2),
                format_of("csr"))
    with pytest.raises(ConversionError, match="out of bounds"):
        slice_rows(full, 0, 3)
    with pytest.raises(ConversionError, match="out of bounds"):
        slice_rows(full, 2, 1)
    with pytest.raises(ConversionError, match="out of range"):
        slice_rows(full, 0, 1, axis=2)


# ---------------------------------------------------------------------------
# Reducing merge: byte-identity and oracle validation
# ---------------------------------------------------------------------------


def _merged_text(kernel: str, count: int, mode: str = "row") -> str:
    plan = PartitionPlan(kernel, DATASET, count, mode)
    results = run_jobs(plan.jobs(TINY))
    return format_partition(reduce_partials(plan.artifact, results))


class TestReduce:
    @pytest.mark.parametrize("kernel", sorted(PARTITION_FORMATS))
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_row_merge_byte_identical_to_serial(self, fresh_cache, kernel,
                                                count):
        serial = serial_report(kernel, DATASET, TINY)
        assert _merged_text(kernel, count) == serial

    @pytest.mark.parametrize("kernel", sorted(PARTITION_FORMATS))
    def test_sum_merge_validates_against_oracle(self, fresh_cache, kernel):
        text = _merged_text(kernel, 3, mode="sum")
        assert "mode sum" in text
        # The oracle check ran and passed inside reduce_partials.
        assert "oracle maxerr" in text

    def test_reduce_rejects_missing_block(self, fresh_cache):
        plan = PartitionPlan("SpMV", DATASET, 3)
        results = run_jobs(plan.jobs(TINY))
        with pytest.raises(PartitionError, match="expected blocks 0..2"):
            reduce_partials(plan.artifact, results[:-1])

    def test_reduce_names_artefact_in_errors(self, fresh_cache):
        plan = PartitionPlan("SpMV", DATASET, 2)
        results = run_jobs(plan.jobs(TINY))
        with pytest.raises(PartitionError,
                           match="partition:SpMV:bcsstk30:p2:row"):
            reduce_partials(plan.artifact, results[:1])


# ---------------------------------------------------------------------------
# Shard/dispatch integration
# ---------------------------------------------------------------------------


class TestShardIntegration:
    def test_run_shard_merge_equals_serial(self, fresh_cache):
        from repro.pipeline.shard import ShardSpec, merge_manifests, run_shard

        artifact = partition_artifact("SpMV", DATASET, 4)
        shards = [run_shard(artifact, TINY, ShardSpec(i, 2))
                  for i in (1, 2)]
        merged = merge_manifests(shards)
        assert merged.text == serial_report("SpMV", DATASET, TINY)

    def test_merge_error_names_partition_artefact(self, fresh_cache):
        from repro.pipeline.shard import (
            MergeError,
            ShardSpec,
            merge_manifests,
            run_shard,
        )

        artifact = partition_artifact("SpMV", DATASET, 4)
        shard = run_shard(artifact, TINY, ShardSpec(1, 2))
        with pytest.raises(MergeError,
                           match=r"missing job\(s\) for artefact "
                                 r"partition:SpMV:bcsstk30:p4:row"):
            merge_manifests([shard])

    def test_dispatch_inline_byte_identical(self, fresh_cache):
        from repro.pipeline.dispatch import dispatch

        artifact = partition_artifact("DCSR-SpMM", DATASET, 3)
        result = dispatch(artifact, TINY, "inline:2",
                          chunks_per_worker=2, lease_timeout=60.0,
                          retries=1, use_cache=None, worker_jobs=None,
                          state_dir=None, resume=False, steal=False,
                          min_chunk=1, on_event=lambda m: None,
                          engine=None)
        assert result.ok
        assert result.merged.text == serial_report("DCSR-SpMM", DATASET,
                                                   TINY)

    def test_dispatch_rejects_unknown_artifact(self, fresh_cache):
        from repro.pipeline.dispatch import DispatchError, dispatch

        with pytest.raises(DispatchError, match="partition:\\*"):
            dispatch("table9", TINY, "inline:1",
                     chunks_per_worker=1, lease_timeout=60.0, retries=1,
                     use_cache=None, worker_jobs=None, state_dir=None,
                     resume=False, steal=False, min_chunk=1,
                     on_event=lambda m: None, engine=None)


# ---------------------------------------------------------------------------
# part-* queue task naming
# ---------------------------------------------------------------------------


class TestQueueTasks:
    def test_partition_payloads_publish_as_part_tasks(self, tmp_path):
        from repro.pipeline.fsqueue import QueueTransport

        queue = QueueTransport(tmp_path / "q")
        queue.prepare()
        queue.enqueue(0, 0, {"artifact": partition_artifact("SpMV", DATASET,
                                                            2),
                             "scale": TINY, "positions": [0]})
        queue.enqueue(1, 0, {"artifact": "table6", "scale": TINY,
                             "positions": [0]})
        names = sorted(p.name for p in queue.queue_dir.glob("*.json"))
        assert names == ["chunk-0001-a0.json", "part-0000-a0.json"]
        assert queue.pending_counts() == (2, 0)
        queue.withdraw(0)
        assert queue.pending_counts() == (1, 0)


# ---------------------------------------------------------------------------
# Typed API action
# ---------------------------------------------------------------------------


class TestApiAction:
    def test_partition_action_matches_serial(self, fresh_cache):
        from repro.api import CompileRequest, execute

        result = execute(CompileRequest(action="partition", kernel="SpMV",
                                        dataset=DATASET, scale=TINY,
                                        partition=2))
        assert result.partition["blocks"] == 2
        assert result.partition["text"] == serial_report("SpMV", DATASET,
                                                         TINY)

    def test_partition_result_round_trips(self, fresh_cache):
        from repro.api import CompileRequest, CompileResult, partition

        result = partition(CompileRequest(action="partition", kernel="SpMV",
                                          dataset=DATASET, scale=TINY,
                                          partition=2))
        clone = CompileResult.from_dict(json.loads(result.to_json()))
        assert clone.partition == result.partition

    def test_partition_request_validation(self):
        from repro.api import CompileRequest

        with pytest.raises(ValueError, match="not partitionable"):
            CompileRequest(action="partition", kernel="Plus3",
                           partition=2).resolved()
        with pytest.raises(ValueError, match="fixed evaluation seed"):
            CompileRequest(action="partition", kernel="SpMV", seed=11,
                           partition=2).resolved()
        with pytest.raises(ValueError):
            CompileRequest(action="partition", kernel="SpMV",
                           partition=0).resolved()

    def test_non_partition_canonical_keys_unchanged(self):
        """Adding the action must not perturb existing cache keys."""
        from repro.api import CompileRequest

        canonical = CompileRequest(kernel="SpMV", dataset=DATASET,
                                   scale=TINY).resolved().canonical()
        assert "partition" not in canonical
        assert "split" not in canonical
