"""Unit tests for the Table 5 resource estimator."""

import pytest

from repro.capstan import DEFAULT_CONFIG, estimate_resources
from repro.core import compile_stmt
from repro.eval.paper_results import TABLE5_RESOURCES
from repro.kernels import KERNEL_ORDER
from tests.helpers_kernels import build_small_kernel_stmt


def estimate(name: str, outer_par=None):
    stmt, _, _ = build_small_kernel_stmt(name, outer_par=outer_par)
    kernel = compile_stmt(stmt, name)
    return estimate_resources(kernel)


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_shuffle_column_matches_table5_exactly(name):
    """The shuffle-network column of Table 5 reproduces exactly: gathers
    and union scans engage the network; intersections and affine accesses
    do not."""
    est = estimate(name)
    paper_shuffle = TABLE5_RESOURCES[name][4]
    assert est.shuffle == paper_shuffle


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_within_chip_capacity(name):
    est = estimate(name)
    assert 0 < est.pcu <= DEFAULT_CONFIG.n_pcu
    assert 0 < est.pmu <= DEFAULT_CONFIG.n_pmu
    assert 0 < est.mc <= DEFAULT_CONFIG.n_mc
    assert 0 <= est.shuffle <= DEFAULT_CONFIG.n_shuffle


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_par_column(name):
    est = estimate(name)
    assert est.par == TABLE5_RESOURCES[name][0]


def test_resources_scale_with_outer_par():
    small = estimate("SpMV", outer_par=2)
    large = estimate("SpMV", outer_par=16)
    assert large.pcu > small.pcu
    assert large.pmu > small.pmu
    assert large.mc >= small.mc


def test_plus2_is_smallest():
    """Plus2 (par=1) uses the least of every compute resource (Table 5)."""
    plus2 = estimate("Plus2")
    for name in KERNEL_ORDER:
        if name == "Plus2":
            continue
        other = estimate(name)
        assert plus2.pcu <= other.pcu
        assert plus2.mc <= other.mc


def test_limiting_resource_identified():
    est = estimate("SpMV")
    assert est.limiting  # non-empty
    utils = est.utilizations()
    for r in est.limiting:
        assert utils[r] == max(utils.values())


def test_shuffle_limits_match_paper_semantics():
    """Kernels using shuffle at par=16 hit 100% (the outer-par cap)."""
    for name in ("SpMV", "MatTransMul", "Residual", "TTV"):
        est = estimate(name)
        assert est.shuffle == 16
        assert est.shuffle_pct == 100.0


def test_no_shuffle_for_affine_kernels():
    for name in ("SDDMM", "TTM", "MTTKRP", "InnerProd"):
        est = estimate(name)
        assert est.shuffle == 0


def test_row_rendering():
    est = estimate("SpMV")
    row = est.row()
    assert "PCU" in row and "limit=" in row


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_pcu_within_3x_of_paper(name):
    """PCU counts land in the paper's band (structural estimate)."""
    est = estimate(name)
    paper = TABLE5_RESOURCES[name][1]
    assert paper / 3 <= est.pcu <= paper * 3
