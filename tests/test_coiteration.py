"""Unit tests for the co-iteration rewrite system (Figure 10)."""

import pytest

from repro.core.coiteration import (
    LoweringError,
    build_strategy,
    iteration_algebra,
)
from repro.formats import (
    CSR,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    offChip,
    onChip,
)
from repro.ir import index_vars
from repro.tensor import Tensor


@pytest.fixture
def vars3():
    return index_vars("i j k")


def csr(name, shape=(4, 5)):
    return Tensor(name, shape, CSR(offChip))


def vec(name, n=5, sparse=False, on=False):
    fmt = (SPARSE_VECTOR if sparse else DENSE_VECTOR)(onChip if on else offChip)
    return Tensor(name, (n,), fmt)


class TestIterationAlgebra:
    def test_multiplication_intersects(self, vars3):
        i, j, _ = vars3
        B, C = csr("B"), csr("C")
        term = iteration_algebra(B[i, j] * C[i, j], j)
        assert term.op == "intersect"
        assert len(term.leaves()) == 2

    def test_addition_unions(self, vars3):
        i, j, _ = vars3
        B, C = csr("B"), csr("C")
        term = iteration_algebra(B[i, j] + C[i, j], j)
        assert term.op == "union"

    def test_uninvolved_operands_drop(self, vars3):
        i, j, _ = vars3
        B = csr("B")
        x = vec("x")
        z = vec("z", 4)
        # z(i) does not involve j: iteration of j is driven by B and x only.
        term = iteration_algebra(B[i, j] * x[j] + z[i], j)
        leaves = term.leaves()
        assert {l.tensor.name for l in leaves} == {"B", "x"}

    def test_literal_is_neutral(self, vars3):
        i, j, _ = vars3
        B = csr("B")
        term = iteration_algebra(B[i, j] * 3, j)
        assert term.op is None
        assert term.leaf.tensor.name == "B"

    def test_none_when_var_absent(self, vars3):
        i, j, k = vars3
        B = csr("B")
        assert iteration_algebra(B[i, j], k) is None

    def test_symbols(self, vars3):
        i, j, _ = vars3
        B = csr("B")
        x = vec("x")
        term = iteration_algebra(B[i, j] * x[j], j)
        symbols = sorted(l.symbol for l in term.leaves())
        assert symbols == ["C", "U"]  # compressed B2, dense x


class TestStrategies:
    def test_dense_loop(self, vars3):
        """lowerIter[U ∩ U] => lowerIter(U)."""
        i, j, _ = vars3
        C = Tensor("C", (4, 5), DENSE_MATRIX(offChip))
        D = Tensor("D", (4, 5), DENSE_MATRIX(offChip))
        A = Tensor("A", (4, 5), DENSE_MATRIX(offChip))
        s = build_strategy(j, [C[i, j] * D[i, j]], [A[i, j]])
        assert s.kind == "dense"
        assert any("lowerIter(U)" in t for t in s.trace)

    def test_single_compressed(self, vars3):
        """lowerIter[C1] => Foreach over positions."""
        i, j, _ = vars3
        B = csr("B")
        y = vec("y", 4)
        s = build_strategy(j, [B[i, j]], [y[i]])
        assert s.kind == "compressed"
        assert s.driving[0].tensor is B
        assert any("Foreach(pos)" in t for t in s.trace)

    def test_compressed_intersect_universe(self, vars3):
        """lowerIter[C1 ∩ U] => lowerIter(C1) with the dense side located."""
        i, j, _ = vars3
        B = csr("B")
        x = vec("x")
        y = vec("y", 4)
        s = build_strategy(j, [B[i, j] * x[j]], [y[i]])
        assert s.kind == "compressed"
        assert [l.tensor.name for l in s.located] == ["x"]
        assert any("C1 ∩ U" in t for t in s.trace)

    def test_compressed_compressed_intersection(self, vars3):
        """lowerIter[C1 ∩ C2] => genBitvector x2 + AND scan."""
        i, j, _ = vars3
        B, C = csr("B"), csr("C")
        alpha = Tensor("alpha", ())
        s = build_strategy(j, [B[i, j] * C[i, j]], [alpha[()]])
        assert s.kind == "scan"
        assert s.op == "and"
        assert len(s.driving) == 2
        assert sum("genBitvector" in t for t in s.trace) == 2
        assert any("∩ B2" in t for t in s.trace)

    def test_compressed_compressed_union(self, vars3):
        """lowerIter[C1 ∪ C2] => OR scan."""
        i, j, _ = vars3
        B, C, A = csr("B"), csr("C"), csr("A")
        s = build_strategy(j, [B[i, j] + C[i, j]], [A[i, j]])
        assert s.kind == "scan"
        assert s.op == "or"
        assert s.result_compressed

    def test_union_with_universe_iterates_universe(self, vars3):
        """lowerIter[U ∪ _] => lowerIter(U)."""
        i, j, _ = vars3
        B = csr("B")
        x = vec("x")
        A = Tensor("A", (4, 5), DENSE_MATRIX(offChip))
        s = build_strategy(j, [B[i, j] + x[j]], [A[i, j]])
        assert s.kind == "dense"
        assert any("U ∪ _" in t for t in s.trace)

    def test_workspace_bitvector_symbol(self, vars3):
        """On-chip compressed workspaces scan as bit vectors (B symbol)."""
        i, j, _ = vars3
        T = vec("T", sparse=True, on=True)
        D, A = csr("D"), csr("A")
        s = build_strategy(j, [T[j] + D[i, j]], [A[i, j]])
        assert s.kind == "scan"
        symbols = {l.symbol for l in s.driving}
        assert symbols == {"B", "C"}

    def test_three_way_coiteration_rejected(self, vars3):
        """Base rule: >2 sparse operands must be rescheduled (Plus3)."""
        i, j, _ = vars3
        B, C, D, A = csr("B"), csr("C"), csr("D"), csr("A")
        with pytest.raises(LoweringError, match="two-input"):
            build_strategy(j, [B[i, j] + C[i, j] + D[i, j]], [A[i, j]])

    def test_result_only_dense(self, vars3):
        i, j, _ = vars3
        y = vec("y", 4)
        ws = Tensor("ws", (), None, onChip)
        s = build_strategy(i, [ws[()]], [y[i]])
        assert s.kind == "dense"
        assert s.result_iterator is not None
        assert not s.result_compressed

    def test_multiple_assignments_union(self, vars3):
        """Sequence statements under one forall co-iterate their union."""
        i, j, _ = vars3
        B = csr("B")
        b = vec("b", 4)
        y = vec("y", 4)
        s = build_strategy(
            i, [b[i], B[i, j] * b[i]], [y[i], y[i]]
        )
        assert s.kind == "dense"

    def test_describe(self, vars3):
        i, j, _ = vars3
        B = csr("B")
        y = vec("y", 4)
        s = build_strategy(j, [B[i, j]], [y[i]])
        assert "forall j" in s.describe()
        assert "compressed" in s.describe()
