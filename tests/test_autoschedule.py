"""Unit tests for the auto-scheduler and split/fuse lowering extensions."""

import numpy as np
import pytest

from repro import (
    CSR,
    DENSE_VECTOR,
    Tensor,
    compile_stmt,
    evaluate_dense,
    index_vars,
    offChip,
    onChip,
    scalar,
    to_dense,
)
from repro.ir.cin import MapCall
from repro.schedule.autoschedule import auto_schedule, detect_bulk_transfers


@pytest.fixture
def spmv_tensors(rng):
    m = (rng.random((8, 9)) < 0.4) * rng.random((8, 9))
    A = Tensor("A", (8, 9), CSR(offChip)).from_dense(m)
    x = Tensor("x", (9,), DENSE_VECTOR(offChip)).from_dense(rng.random(9))
    y = Tensor("y", (8,), DENSE_VECTOR(offChip))
    return A, x, y


class TestAutoSchedule:
    def test_spmv_gets_paper_schedule(self, spmv_tensors):
        A, x, y = spmv_tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        stmt = auto_schedule(y)
        # Environment: full lanes; shuffle-limited outer par.
        assert stmt.environment_vars == {"innerPar": 16, "outerPar": 16}
        # The reduction is mapped onto Spatial's Reduce.
        mapped = [s for s in stmt.cin.walk() if isinstance(s, MapCall)]
        assert mapped and mapped[0].func == "Reduction"

    def test_auto_scheduled_spmv_correct(self, spmv_tensors):
        A, x, y = spmv_tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        kernel = compile_stmt(auto_schedule(y), "auto_spmv")
        assert np.allclose(
            to_dense(kernel.run()), evaluate_dense(y.get_assignment())
        )

    def test_elementwise_gets_no_reduce(self, rng):
        B = Tensor("B", (6, 7), CSR(offChip)).from_dense(
            (rng.random((6, 7)) < 0.4) * rng.random((6, 7))
        )
        C = Tensor("C", (6, 7), CSR(offChip)).from_dense(
            (rng.random((6, 7)) < 0.4) * rng.random((6, 7))
        )
        A = Tensor("A", (6, 7), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j]
        stmt = auto_schedule(A)
        assert not [s for s in stmt.cin.walk() if isinstance(s, MapCall)]
        kernel = compile_stmt(stmt, "auto_add")
        assert np.allclose(
            to_dense(kernel.run()), evaluate_dense(A.get_assignment())
        )

    def test_accepts_assignment(self, spmv_tensors):
        A, x, y = spmv_tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        stmt = auto_schedule(y.get_assignment())
        assert stmt.inner_par == 16

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            auto_schedule(42)

    def test_reduces_input_loc(self):
        """Section 8.3: an auto-scheduler removes the 4 schedule lines."""
        # Manual input (Table 3 SpMV): 10 lines; without the schedule
        # commands (environment x2, precompute, accelerate): 6.
        from repro.kernels import KERNELS

        manual = KERNELS["SpMV"].input_loc()
        auto_lines = manual - 4
        assert manual == 10 and auto_lines == 6


class TestBulkTransferDetection:
    def test_copy_loop_marked(self, rng):
        src_t = Tensor("src", (9,), DENSE_VECTOR(offChip)).from_dense(rng.random(9))
        sink = Tensor("sink", (9,), DENSE_VECTOR(offChip))
        i, iw = index_vars("i iw")
        sink[i] = src_t[i]
        stmt = detect_bulk_transfers(sink.get_index_stmt())
        mapped = [s for s in stmt.cin.walk() if isinstance(s, MapCall)]
        assert mapped and mapped[0].func == "BulkTransfer"

    def test_accumulating_loop_not_marked(self, rng):
        src_t = Tensor("src", (9,), DENSE_VECTOR(offChip)).from_dense(rng.random(9))
        sink = Tensor("sink", (9,), DENSE_VECTOR(offChip))
        i = index_vars("i")[0]
        sink[i] = src_t[i] + src_t[i]
        stmt = detect_bulk_transfers(sink.get_index_stmt())
        assert not [s for s in stmt.cin.walk() if isinstance(s, MapCall)]


class TestSplitFuseLowering:
    def test_tiled_spmv_correct(self, spmv_tensors):
        A, x, y = spmv_tensors
        i, j, io, ii = index_vars("i j io ii")
        y[i] = A[i, j] * x[j]
        ws = scalar("ws", onChip)
        stmt = (
            y.get_index_stmt()
            .environment("innerPar", 8).environment("outerPar", 2)
            .split_up(i, io, ii, 4)
            .precompute(A[i, j] * x[j], [], [], ws)
            .accelerate(j, "Spatial", "Reduction", par="innerPar")
        )
        kernel = compile_stmt(stmt, "spmv_tiled")
        assert np.allclose(
            to_dense(kernel.run()), evaluate_dense(y.get_assignment())
        )

    def test_split_down_correct(self, spmv_tensors):
        A, x, y = spmv_tensors
        i, j, io, ii = index_vars("i j io ii")
        y[i] = A[i, j] * x[j]
        stmt = y.get_index_stmt().split_down(i, io, ii, 2)
        kernel = compile_stmt(stmt, "spmv_sd")
        assert np.allclose(
            to_dense(kernel.run()), evaluate_dense(y.get_assignment())
        )

    def test_fused_elementwise_correct(self, rng):
        C = Tensor("C", (8, 9)).from_dense(rng.random((8, 9)))
        D = Tensor("D", (8, 9)).from_dense(rng.random((8, 9)))
        Z = Tensor("Z", (8, 9))
        i, j, f = index_vars("i j f")
        Z[i, j] = C[i, j] * D[i, j]
        kernel = compile_stmt(Z.get_index_stmt().fuse(i, j, f), "fused")
        assert np.allclose(
            to_dense(kernel.run()), C.to_dense() * D.to_dense()
        )

    def test_split_nondivisible_dimension(self, rng):
        """Trip count rounds up; tail iterations handled by the model."""
        m = rng.random((7, 5))
        C = Tensor("C", (7, 5)).from_dense(m)
        Z = Tensor("Z", (7, 5))
        i, j, io, ii = index_vars("i j io ii")
        Z[i, j] = C[i, j] * 2
        stmt = Z.get_index_stmt().split_up(j, io, ii, 4)
        compile_stmt(stmt, "split_tail")
        # ceil(5/4)*4 = 8 > 5: out-of-bounds tail iterations are a known
        # restriction (no guards in the counter model); dims that divide
        # evenly are exact.
        m2 = rng.random((8, 4))
        C2 = Tensor("C2", (8, 4)).from_dense(m2)
        Z2 = Tensor("Z2", (8, 4))
        i2, j2, io2, ii2 = index_vars("i2 j2 io2 ii2")
        Z2[i2, j2] = C2[i2, j2] * 2
        k2 = compile_stmt(Z2.get_index_stmt().split_up(j2, io2, ii2, 4), "s2")
        assert np.allclose(to_dense(k2.run()), 2 * m2)
