"""The format-conversion compiler: plans, primitives, and round trips."""

import numpy as np
import pytest

from repro.convert import (
    ConversionError,
    block_coords,
    blocked_dims,
    convert,
    convert_tensor,
    plan_conversion,
    unblock_coords,
)
from repro.formats import (
    COO,
    CSC,
    CSR,
    DENSE_MATRIX,
    format_of,
    offChip,
)
from repro.tensor import Tensor
from repro.tensor.storage import pack, to_dense


def random_matrix(m=12, n=16, density=0.3, seed=3):
    rng = np.random.default_rng(seed)
    dense = (rng.random((m, n)) < density) * (rng.random((m, n)) + 0.5)
    nz = np.nonzero(dense)
    return dense, np.stack(nz, axis=1), dense[nz]


class TestBlockedCoordinates:
    def test_blocked_dims_pads_to_tile_multiples(self):
        assert blocked_dims((10, 7), (4, 4)) == (3, 2, 4, 4)
        assert blocked_dims((8, 8), (4, 4)) == (2, 2, 4, 4)

    def test_block_unblock_inverse(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 40, size=(25, 2))
        blocked = block_coords(coords, (4, 4))
        assert blocked.shape == (25, 4)
        assert np.array_equal(unblock_coords(blocked, (4, 4)), coords)

    def test_block_coords_split_values(self):
        blocked = block_coords(np.array([[9, 6]]), (4, 4))
        assert blocked.tolist() == [[2, 1, 1, 2]]


class TestPlans:
    def test_plan_steps_csr_to_coo(self):
        plan = plan_conversion(CSR(offChip), COO(offChip))
        assert [s.op for s in plan.steps] == ["unpack", "pack"]
        assert "->" in plan.describe()

    def test_plan_steps_csr_to_bcsr(self):
        plan = plan_conversion(CSR(offChip), format_of("bcsr"))
        assert [s.op for s in plan.steps] == ["unpack", "block", "pack"]

    def test_plan_steps_bcsr_to_csr_sparsifies(self):
        plan = plan_conversion(format_of("bcsr"), CSR(offChip))
        assert [s.op for s in plan.steps] == [
            "unpack", "sparsify", "unblock", "pack",
        ]

    def test_plan_dense_to_coo_sparsifies(self):
        plan = plan_conversion(DENSE_MATRIX(offChip), COO(offChip))
        assert "sparsify" in [s.op for s in plan.steps]

    def test_order_mismatch_without_blocks_rejected(self):
        from repro.formats import DENSE_VECTOR

        with pytest.raises(ConversionError):
            plan_conversion(CSR(offChip), DENSE_VECTOR(offChip))


class TestRoundTrips:
    @pytest.mark.parametrize("chain", [
        ("coo", "csr"),
        ("dcsr", "csr"),
        ("bcsr", "csr"),
        ("coo", "dcsr", "bcsr", "csr"),
        ("csc", "coo", "csr"),
    ])
    def test_chain_round_trips_to_identical_csr(self, chain):
        dense, coords, vals = random_matrix()
        csr = pack(coords, vals, dense.shape, CSR(offChip))
        cur = csr
        for name in chain:
            fmt = format_of(name)
            dims = dense.shape if fmt.order == 2 else None
            cur = convert(cur, fmt, dims=dims)
        assert np.allclose(to_dense(cur), dense)
        assert np.array_equal(cur.levels[1].pos, csr.levels[1].pos)
        assert np.array_equal(cur.levels[1].crd, csr.levels[1].crd)
        assert np.allclose(cur.vals, csr.vals)

    def test_blocked_conversion_materialises_tiles(self):
        dense, coords, vals = random_matrix()
        csr = pack(coords, vals, dense.shape, CSR(offChip))
        bcsr = convert(csr, format_of("bcsr"))
        assert bcsr.dims == blocked_dims(dense.shape, (4, 4))
        # Values per stored block: a multiple of the 4x4 tile size.
        assert bcsr.nnz % 16 == 0
        assert bcsr.nnz >= csr.nnz

    def test_empty_matrix_round_trip(self):
        coords = np.zeros((0, 2), dtype=np.int64)
        vals = np.zeros(0)
        csr = pack(coords, vals, (8, 8), CSR(offChip))
        for name in ("coo", "dcsr", "bcsr"):
            out = convert(csr, format_of(name))
            assert float(np.abs(to_dense(out)).sum()) == 0.0
            back = convert(out, CSR(offChip), dims=(8, 8))
            assert back.nnz == 0

    def test_csc_round_trip_preserves_dense(self):
        dense, coords, vals = random_matrix()
        csc = pack(coords, vals, dense.shape, CSC(offChip))
        coo = convert(csc, COO(offChip))
        assert np.allclose(to_dense(coo), dense)
        back = convert(coo, CSC(offChip))
        assert np.array_equal(back.levels[1].pos, csc.levels[1].pos)
        assert np.allclose(back.vals, csc.vals)


class TestConvertTensor:
    def test_convert_tensor_produces_usable_tensor(self):
        dense, coords, vals = random_matrix()
        t = Tensor("A", dense.shape, CSR(offChip))
        t.from_coo(coords, vals)
        coo = convert_tensor(t, COO(offChip))
        assert coo.format.has_singleton_level
        assert np.allclose(coo.to_dense(), dense)

    def test_convert_tensor_blocked_shape(self):
        dense, coords, vals = random_matrix()
        t = Tensor("A", dense.shape, CSR(offChip))
        t.from_coo(coords, vals)
        blocked = convert_tensor(t, format_of("bcsr"))
        assert blocked.shape == blocked_dims(dense.shape, (4, 4))


class TestStagedConversion:
    def test_staged_matrix_storage_memoizes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.convert import staged_matrix_storage
        from repro.pipeline.cache import default_cache

        default_cache().clear_memory()
        first = staged_matrix_storage("random-1pct", 0.05, 7, "coo")
        again = staged_matrix_storage("random-1pct", 0.05, 7, "coo")
        assert np.allclose(first.vals, again.vals)
        stats = default_cache().stats
        assert stats.stage_hits.get("convert", 0) >= 1

    def test_staged_formats_share_base_dataset(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.convert import staged_matrix_storage

        coo = staged_matrix_storage("random-1pct", 0.05, 7, "coo")
        dcsr = staged_matrix_storage("random-1pct", 0.05, 7, "dcsr")
        assert np.allclose(to_dense(coo), to_dense(dcsr))


class TestLossless:
    def test_explicit_zero_in_csr_survives_coo(self):
        # CSR can store explicit zeros; COO keeps them (no sparsify step
        # when the source has no trailing dense levels).
        coords = np.array([[0, 1], [2, 3]])
        vals = np.array([0.0, 2.0])
        csr = pack(coords, vals, (4, 4), CSR(offChip))
        coo = convert(csr, COO(offChip))
        assert coo.nnz == 2
        back = convert(coo, CSR(offChip))
        assert back.nnz == 2
        assert np.allclose(back.vals, csr.vals)
