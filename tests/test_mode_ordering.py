"""Column-major / permuted ``mode_ordering`` paths, exercised directly.

CSC and column-major dense formats were previously covered only through
the kernel suite (MatTransMul, SDDMM); these tests drive the permuted
storage orderings through packing, lowering, and the Spatial interpreter
with minimal statements so a regression localises to the ordering logic.
"""

import numpy as np
import pytest

from repro.core import compile_stmt
from repro.formats import (
    CSC,
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    Format,
    compressed,
    dense,
    offChip,
)
from repro.ir import index_vars
from repro.schedule.stmt import INNER_PAR, OUTER_PAR
from repro.tensor import Tensor, evaluate_dense, to_dense
from repro.tensor.storage import pack, unpack


def _env(stmt, ip=4, op=2):
    return stmt.environment(INNER_PAR, ip).environment(OUTER_PAR, op)


def _random_sparse(shape, density=0.4, seed=11):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density) * (rng.random(shape) + 0.5)


class TestStorageOrdering:
    def test_csc_levels_match_scipy_csc(self):
        pytest.importorskip("scipy")
        import scipy.sparse as sp

        dense_a = _random_sparse((9, 7))
        nz = np.nonzero(dense_a)
        coords = np.stack(nz, axis=1)
        storage = pack(coords, dense_a[nz], dense_a.shape, CSC(offChip))
        ref = sp.csc_matrix(dense_a)
        assert np.array_equal(storage.levels[1].pos, ref.indptr)
        assert np.array_equal(storage.levels[1].crd, ref.indices)
        assert np.allclose(storage.vals, ref.data)

    def test_csc_unpack_restores_mode_order(self):
        dense_a = _random_sparse((6, 8))
        nz = np.nonzero(dense_a)
        coords = np.stack(nz, axis=1)
        storage = pack(coords, dense_a[nz], dense_a.shape, CSC(offChip))
        out_coords, out_vals = unpack(storage)
        rebuilt = np.zeros_like(dense_a)
        rebuilt[out_coords[:, 0], out_coords[:, 1]] = out_vals
        assert np.allclose(rebuilt, dense_a)

    def test_column_major_dense_vals_layout(self):
        arr = np.arange(6, dtype=float).reshape(2, 3)
        t = Tensor("B", arr.shape, DENSE_MATRIX_CM(offChip))
        t.from_dense(arr)
        # Column-major storage: vals enumerate columns outermost.
        assert np.allclose(t.storage.vals, arr.T.reshape(-1))
        assert np.allclose(t.to_dense(), arr)

    def test_permuted_3tensor_round_trip(self):
        fmt = Format([dense, compressed, dense], [2, 0, 1], offChip)
        arr = _random_sparse((3, 4, 5), density=0.5)
        t = Tensor("T", arr.shape, fmt)
        t.from_dense(arr)
        assert np.allclose(t.to_dense(), arr)


class TestLoweringAndInterp:
    def test_csc_matvec_through_interpreter(self):
        """y(i) = A(j, i) * x(j) with A in CSC: the column loop drives the
        dense level 0, the compressed row level nests inside."""
        A = Tensor("A", (9, 7), CSC(offChip))
        x = Tensor("x", (9,), DENSE_VECTOR(offChip))
        y = Tensor("y", (7,), DENSE_VECTOR(offChip))
        A.from_dense(_random_sparse((9, 7)))
        x.from_dense(np.random.default_rng(1).random(9))
        i, j = index_vars("i j")
        y[i] = A[j, i] * x[j]
        kernel = compile_stmt(_env(y.get_index_stmt()), "csc_mv", cache=False)
        assert np.allclose(to_dense(kernel.run()),
                           evaluate_dense(y.get_assignment()))

    def test_csc_loop_strategies(self):
        A = Tensor("A", (9, 7), CSC(offChip))
        x = Tensor("x", (9,), DENSE_VECTOR(offChip))
        y = Tensor("y", (7,), DENSE_VECTOR(offChip))
        A.from_dense(_random_sparse((9, 7)))
        x.from_dense(np.ones(9))
        i, j = index_vars("i j")
        y[i] = A[j, i] * x[j]
        kernel = compile_stmt(_env(y.get_index_stmt()), "csc_mv2", cache=False)
        kinds = {f.ivar.name: f.strategy.kind for f in kernel.analysis.foralls}
        # The outer (column) loop is dense; the stored rows are compressed.
        assert kinds == {"i": "dense", "j": "compressed"}

    def test_column_major_operand_through_interpreter(self):
        """y(i) = B(i, j) * x(j) with B column-major: the whole tensor is
        staged once and addressed through the permuted ordering."""
        B = Tensor("B", (6, 8), DENSE_MATRIX_CM(offChip))
        x = Tensor("x", (8,), DENSE_VECTOR(offChip))
        y = Tensor("y", (6,), DENSE_VECTOR(offChip))
        rng = np.random.default_rng(5)
        B.from_dense(rng.random((6, 8)))
        x.from_dense(rng.random(8))
        i, j = index_vars("i j")
        y[i] = B[i, j] * x[j]
        kernel = compile_stmt(_env(y.get_index_stmt()), "cm_mv", cache=False)
        assert np.allclose(to_dense(kernel.run()),
                           evaluate_dense(y.get_assignment()))

    def test_column_major_copy_to_row_major(self):
        B = Tensor("B", (5, 4), DENSE_MATRIX_CM(offChip))
        A = Tensor("A", (5, 4), DENSE_MATRIX(offChip))
        arr = np.random.default_rng(9).random((5, 4))
        B.from_dense(arr)
        i, j = index_vars("i j")
        A[i, j] = B[i, j]
        kernel = compile_stmt(_env(A.get_index_stmt()), "cm_copy",
                              cache=False)
        assert np.allclose(to_dense(kernel.run()), arr)

    def test_csr_vs_csc_same_result(self):
        """The same algebra over row- and column-major storage agrees."""
        dense_a = _random_sparse((8, 8), seed=21)
        x_arr = np.random.default_rng(2).random(8)
        results = {}
        for label, fmt, access_T in (("csr", CSR, False), ("csc", CSC, True)):
            A = Tensor("A", (8, 8), fmt(offChip))
            x = Tensor("x", (8,), DENSE_VECTOR(offChip))
            y = Tensor("y", (8,), DENSE_VECTOR(offChip))
            A.from_dense(dense_a if not access_T else dense_a.T)
            x.from_dense(x_arr)
            i, j = index_vars("i j")
            if access_T:
                y[i] = A[j, i] * x[j]
            else:
                y[i] = A[i, j] * x[j]
            kernel = compile_stmt(_env(y.get_index_stmt()), f"mv_{label}",
                                  cache=False)
            results[label] = to_dense(kernel.run())
        assert np.allclose(results["csr"], results["csc"])
