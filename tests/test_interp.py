"""Unit tests for the Spatial IR interpreter semantics."""

import numpy as np
import pytest

from repro.spatial.interp import InterpError, execute
from repro.spatial.ir import (
    Assign,
    BitVectorDecl,
    BitVectorOp,
    DenseCounter,
    DramDecl,
    DramWrite,
    Enq,
    FifoDecl,
    Foreach,
    GenBitVector,
    LoadBulk,
    RegDecl,
    RegWrite,
    ReducePat,
    SBin,
    ScanCounter,
    SDeq,
    SLit,
    SRead,
    SSelect,
    SValid,
    SVar,
    SpatialProgram,
    SramDecl,
    SramWrite,
    StoreBulk,
    StreamStore,
)


def make_program(accel, dram=(), symbols=(), env=None):
    return SpatialProgram(
        name="t", env=env or {}, symbols=tuple(symbols),
        dram=tuple(dram), accel=tuple(accel), layouts={},
    )


def run(accel, dram_decls=(), data=None, symbols=None):
    program = make_program(accel, dram_decls, symbols or {})
    return execute(program, data or {}, symbols or {})


class TestMemories:
    def test_dram_initialisation(self):
        d = DramDecl("x_dram", SLit(4))
        m = run([], [d], {"x_dram": np.array([1.0, 2.0])})
        assert m.dram["x_dram"].tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_sram_load_and_read(self):
        accel = [
            SramDecl("s", SLit(4)),
            LoadBulk("s", "x_dram", SLit(1), SLit(3)),
            Assign("v", SRead("s", SLit(0))),
            RegDecl("r", 0.0),
            RegWrite("r", SVar("v")),
        ]
        m = run(accel, [DramDecl("x_dram", SLit(4))],
                {"x_dram": np.array([5.0, 6.0, 7.0, 8.0])})
        assert m.regs["r"] == 6.0

    def test_sram_overflow_rejected(self):
        accel = [
            SramDecl("s", SLit(2)),
            LoadBulk("s", "x_dram", SLit(0), SLit(4)),
        ]
        with pytest.raises(InterpError, match="overflows"):
            run(accel, [DramDecl("x_dram", SLit(4))])

    def test_out_of_bounds_read(self):
        accel = [SramDecl("s", SLit(2)), Assign("v", SRead("s", SLit(5)))]
        with pytest.raises(InterpError, match="out-of-bounds"):
            run(accel)

    def test_fifo_order_and_underflow(self):
        accel = [
            FifoDecl("f"),
            Enq("f", SLit(1.0)),
            Enq("f", SLit(2.0)),
            Assign("a", SDeq("f")),
            Assign("b", SDeq("f")),
            RegDecl("r", 0.0),
            RegWrite("r", ssub := SBin("-", SVar("a"), SVar("b"))),
            Assign("c", SDeq("f")),
        ]
        with pytest.raises(InterpError, match="underflow"):
            run(accel)

    def test_redeclaration_resets(self):
        accel = [
            Foreach(DenseCounter(SLit(3)), ("i",), (
                RegDecl("r", 0.0),
                RegWrite("r", SLit(1.0), accumulate=True),
            )),
        ]
        m = run(accel)
        assert m.regs["r"] == 1.0  # reset each iteration

    def test_sram_accumulate_write(self):
        accel = [
            SramDecl("s", SLit(2)),
            SramWrite("s", SLit(0), SLit(2.0)),
            SramWrite("s", SLit(0), SLit(3.0), accumulate=True),
        ]
        m = run(accel)
        assert m.sram["s"][0] == 5.0

    def test_store_bulk_and_dram_write(self):
        accel = [
            SramDecl("s", SLit(3)),
            SramWrite("s", SLit(0), SLit(1.0)),
            SramWrite("s", SLit(1), SLit(2.0)),
            StoreBulk("y_dram", "s", SLit(0), SLit(2)),
            DramWrite("y_dram", SLit(2), SLit(9.0)),
        ]
        m = run(accel, [DramDecl("y_dram", SLit(3))])
        assert m.dram["y_dram"].tolist() == [1.0, 2.0, 9.0]

    def test_stream_store_length_check(self):
        accel = [
            FifoDecl("f"),
            Enq("f", SLit(1.0)),
            StreamStore("y_dram", "f", SLit(0), SLit(2)),
        ]
        with pytest.raises(InterpError, match="stream store"):
            run(accel, [DramDecl("y_dram", SLit(4))])


class TestPatterns:
    def test_foreach_dense_counter(self):
        accel = [
            RegDecl("r", 0.0),
            Foreach(DenseCounter(SLit(5)), ("i",), (
                RegWrite("r", SVar("i"), accumulate=True),
            )),
        ]
        assert run(accel).regs["r"] == 10.0

    def test_foreach_counter_base(self):
        accel = [
            RegDecl("r", 0.0),
            Foreach(DenseCounter(SLit(3), base=SLit(10)), ("i",), (
                RegWrite("r", SVar("i"), accumulate=True),
            )),
        ]
        assert run(accel).regs["r"] == 33.0

    def test_reduce_folds_into_register(self):
        accel = [
            RegDecl("acc", 0.0),
            ReducePat("acc", DenseCounter(SLit(4)), ("i",), (),
                      SVar("i"), "+"),
        ]
        assert run(accel).regs["acc"] == 6.0

    def test_reduce_accumulates_across_invocations(self):
        body = ReducePat("acc", DenseCounter(SLit(2)), ("i",), (), SLit(1.0), "+")
        accel = [
            RegDecl("acc", 0.0),
            Foreach(DenseCounter(SLit(3)), ("o",), (body,)),
        ]
        assert run(accel).regs["acc"] == 6.0  # persists without redecl

    def test_symbolic_trip_count(self):
        accel = [
            RegDecl("r", 0.0),
            Foreach(DenseCounter(SVar("N")), ("i",), (
                RegWrite("r", SLit(1.0), accumulate=True),
            )),
        ]
        m = run(accel, symbols={"N": 7})
        assert m.regs["r"] == 7.0

    def test_unbound_symbol_rejected(self):
        accel = [Foreach(DenseCounter(SVar("N")), ("i",), ())]
        with pytest.raises(InterpError, match="unbound"):
            run(accel)


class TestScanPatterns:
    def _bv(self, name, coords, n=16):
        return [
            BitVectorDecl(name, SLit(n)),
            FifoDecl(name + "_src"),
            *[Enq(name + "_src", SLit(float(c))) for c in coords],
            GenBitVector(name, name + "_src", SLit(len(coords))),
        ]

    def test_two_vector_or_scan(self):
        accel = [
            *self._bv("a", [1, 2, 5]),
            *self._bv("b", [0, 2, 3]),
            FifoDecl("out"),
            Foreach(ScanCounter("a", "b", "or", SLit(16)),
                    ("pa", "pb", "po", "c"), (
                Enq("out", SVar("c")),
            )),
        ]
        m = run(accel)
        assert list(m.fifo["out"]) == [0, 1, 2, 3, 5]

    def test_and_scan_positions(self):
        accel = [
            *self._bv("a", [1, 2, 5]),
            *self._bv("b", [0, 2, 3]),
            RegDecl("r", 0.0),
            Foreach(ScanCounter("a", "b", "and", SLit(16)),
                    ("pa", "pb", "po", "c"), (
                RegWrite("r", SBin("+", SVar("pa"), SVar("pb")),
                         accumulate=True),
            )),
        ]
        # Only coord 2 matches: pa=1, pb=1.
        assert run(accel).regs["r"] == 2.0

    def test_select_gates_invalid_positions(self):
        accel = [
            *self._bv("a", [1]),
            *self._bv("b", [3]),
            SramDecl("va", SLit(4)),
            SramWrite("va", SLit(0), SLit(10.0)),
            RegDecl("r", 0.0),
            Foreach(ScanCounter("a", "b", "or", SLit(16)),
                    ("pa", "pb", "po", "c"), (
                RegWrite("r", SSelect(SValid(SVar("pa")),
                                      SRead("va", SVar("pa")), SLit(0.0)),
                         accumulate=True),
            )),
        ]
        # Only the coord-1 entry has a valid pa; the gated read avoids an
        # out-of-bounds access for coord 3.
        assert run(accel).regs["r"] == 10.0

    def test_single_vector_scan(self):
        accel = [
            *self._bv("a", [4, 9]),
            FifoDecl("out"),
            Foreach(ScanCounter("a", None, "and", SLit(16)),
                    ("pa", "po", "c"), (
                Enq("out", SVar("c")),
            )),
        ]
        assert list(run(accel).fifo["out"]) == [4, 9]

    def test_bitvector_op(self):
        accel = [
            *self._bv("a", [1, 2]),
            *self._bv("b", [2, 3]),
            BitVectorDecl("u", SLit(16)),
            BitVectorOp("u", "a", "b", "or"),
            BitVectorDecl("n", SLit(16)),
            BitVectorOp("n", "a", "b", "and"),
        ]
        m = run(accel)
        assert m.bitvec["u"].coordinates().tolist() == [1, 2, 3]
        assert m.bitvec["n"].coordinates().tolist() == [2]

    def test_genbitvector_from_sram(self):
        accel = [
            SramDecl("crd", SLit(4)),
            SramWrite("crd", SLit(0), SLit(2.0)),
            SramWrite("crd", SLit(1), SLit(7.0)),
            BitVectorDecl("a", SLit(16)),
            GenBitVector("a", "crd", SLit(2)),
        ]
        m = run(accel)
        assert m.bitvec["a"].coordinates().tolist() == [2, 7]

    def test_scan_binder_arity_checked(self):
        accel = [
            *self._bv("a", [1]),
            Foreach(ScanCounter("a", None, "and", SLit(16)), ("x",), ()),
        ]
        with pytest.raises(InterpError, match="bind"):
            run(accel)
