"""Failure injection: the interpreter enforces hardware preconditions.

Section 6.1: "Incorrect analysis — incompatible memory allocations, late
allocations, and missed data transfers — will cause hardware simulation
errors or invalid kernel computations." These tests corrupt generated
programs the way a buggy memory analysis would and assert the functional
interpreter (standing in for the hardware simulator) catches each fault.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import compile_stmt
from repro.core.runner import bind_dram, bind_symbols
from repro.spatial.interp import InterpError, execute
from repro.spatial.ir import FifoDecl, Foreach, LoadBulk, ReducePat, SStmt
from tests.helpers_kernels import build_small_kernel_stmt


def _compiled(name="SpMV"):
    stmt, out, _ = build_small_kernel_stmt(name)
    kernel = compile_stmt(stmt, name.lower())
    symbols = bind_symbols(kernel.program, kernel.tensors,
                           kernel.analysis.output.name)
    data = bind_dram(kernel.program, kernel.tensors)
    return kernel, data, symbols


def _rewrite_accel(program, fn):
    """Return a program with every statement mapped through ``fn`` (which
    may drop statements by returning None), recursively."""

    def rewrite_block(stmts):
        out = []
        for s in stmts:
            s2 = fn(s)
            if s2 is None:
                continue
            if isinstance(s2, Foreach):
                s2 = dataclasses.replace(s2, body=tuple(rewrite_block(s2.body)))
            elif isinstance(s2, ReducePat):
                s2 = dataclasses.replace(s2, body=tuple(rewrite_block(s2.body)))
            out.append(s2)
        return out

    return dataclasses.replace(program, accel=tuple(rewrite_block(program.accel)))


class TestMissedTransfers:
    def test_missing_crd_load_underflows_fifo(self):
        """Dropping the coordinate-segment load starves the FIFO."""
        kernel, data, symbols = _compiled()

        def drop(s: SStmt):
            if isinstance(s, LoadBulk) and s.dst == "A2_crd":
                return None
            return s

        bad = _rewrite_accel(kernel.program, drop)
        with pytest.raises(InterpError, match="underflow"):
            execute(bad, data, symbols)

    def test_missing_vals_load_underflows_fifo(self):
        kernel, data, symbols = _compiled()

        def drop(s: SStmt):
            if isinstance(s, LoadBulk) and s.dst == "A_vals":
                return None
            return s

        bad = _rewrite_accel(kernel.program, drop)
        with pytest.raises(InterpError, match="underflow"):
            execute(bad, data, symbols)


class TestLateAllocations:
    def test_missing_fifo_declaration(self):
        """An allocation dropped entirely: the load targets nothing."""
        kernel, data, symbols = _compiled()

        def drop(s: SStmt):
            if isinstance(s, FifoDecl) and s.name == "A2_crd":
                return None
            return s

        bad = _rewrite_accel(kernel.program, drop)
        with pytest.raises(InterpError, match="undeclared"):
            execute(bad, data, symbols)

    def test_missing_pos_sram(self):
        kernel, data, symbols = _compiled()
        from repro.spatial.ir import SramDecl

        def drop(s: SStmt):
            if isinstance(s, (SramDecl, LoadBulk)) and getattr(
                s, "name", getattr(s, "dst", "")
            ) == "A2_pos":
                return None
            return s

        bad = _rewrite_accel(kernel.program, drop)
        with pytest.raises(InterpError, match="undeclared"):
            execute(bad, data, symbols)


class TestIncompatibleBindings:
    def test_undersized_sram_overflows(self):
        """Shrinking a staged buffer below its transfer size faults."""
        kernel, data, symbols = _compiled()
        from repro.spatial.ir import SLit, SramDecl

        def shrink(s: SStmt):
            if isinstance(s, SramDecl) and s.name == "x_vals":
                return dataclasses.replace(s, size=SLit(1))
            return s

        bad = _rewrite_accel(kernel.program, shrink)
        with pytest.raises(InterpError, match="overflows"):
            execute(bad, data, symbols)

    def test_missing_symbol_binding(self):
        kernel, data, symbols = _compiled()
        symbols = {k: v for k, v in symbols.items() if k != "A2_nnz"}
        with pytest.raises(InterpError, match="unbound"):
            execute(kernel.program, data, symbols)


class TestCorrectProgramStillPasses:
    def test_unmodified_program_runs(self):
        kernel, data, symbols = _compiled()
        machine = execute(kernel.program, data, symbols)
        y = machine.dram["y_vals_dram"]
        assert np.isfinite(y).all()
