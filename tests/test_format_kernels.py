"""End-to-end correctness of the format-sweep kernels.

COO-SpMV (singleton column level), DCSR-SpMM (doubly compressed operand),
and BCSR-SpMV (static block tiles) compile through the full pipeline and
run on the Spatial interpreter against the dense reference semantics.
"""

import numpy as np
import pytest

from repro.core import compile_stmt
from repro.core.coiteration import LoweringError
from repro.kernels import FORMAT_KERNEL_ORDER, KERNELS
from repro.tensor import evaluate_dense, to_dense
from tests.helpers_kernels import build_small_kernel_stmt

FORMAT_KERNELS = list(FORMAT_KERNEL_ORDER)


def run_kernel(name: str, seed: int = 42, density: float = 0.4):
    stmt, out, tensors = build_small_kernel_stmt(name, seed, density)
    kernel = compile_stmt(stmt, name.lower(), cache=False)
    result = to_dense(kernel.run())
    reference = evaluate_dense(out.get_assignment())
    return kernel, result, reference


@pytest.mark.parametrize("name", FORMAT_KERNELS)
def test_kernel_matches_dense_reference(name):
    _, result, reference = run_kernel(name)
    assert np.allclose(result, reference), f"{name} mismatch"


@pytest.mark.parametrize("name", FORMAT_KERNELS)
@pytest.mark.parametrize("seed", [1, 7, 123])
def test_kernel_across_seeds(name, seed):
    _, result, reference = run_kernel(name, seed=seed)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", FORMAT_KERNELS)
@pytest.mark.parametrize("density", [0.05, 0.9])
def test_kernel_across_densities(name, density):
    _, result, reference = run_kernel(name, density=density)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", FORMAT_KERNELS)
def test_kernel_on_empty_operands(name):
    _, result, reference = run_kernel(name, density=0.0)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", FORMAT_KERNELS)
def test_kernel_fully_dense_operands(name):
    _, result, reference = run_kernel(name, density=1.0)
    assert np.allclose(result, reference)


def test_kernels_registered_outside_paper_order():
    from repro.kernels import KERNEL_ORDER

    for name in FORMAT_KERNELS:
        assert name in KERNELS
        assert name not in KERNEL_ORDER  # paper tables stay untouched


class TestGeneratedCodeShape:
    def test_coo_spmv_uses_singleton_scanner(self):
        stmt, _, _ = build_small_kernel_stmt("COO-SpMV")
        src = compile_stmt(stmt, "coo-spmv", cache=False).source
        assert "Foreach(Singleton(A2_crd(" in src
        # Scatter accumulation into the whole dense output buffer.
        assert "y_vals(" in src and ".atomicAdd(" in src
        assert "store y_vals" in src

    def test_coo_spmv_stages_singleton_crd(self):
        stmt, _, _ = build_small_kernel_stmt("COO-SpMV")
        src = compile_stmt(stmt, "coo-spmv", cache=False).source
        assert "A2_crd load A2_crd_dram" in src

    def test_bcsr_spmv_has_static_tile_loops(self):
        stmt, _, _ = build_small_kernel_stmt("BCSR-SpMV")
        src = compile_stmt(stmt, "bcsr-spmv", cache=False).source
        # Block levels lower to literal trip counts, not host symbols.
        assert "Foreach(4 by 1" in src
        # Values of the blocked operand are staged whole and addressed
        # positionally (nnz * b * b words).
        assert "A_vals load A_vals_dram" in src

    def test_dcsr_spmm_streams_both_compressed_levels(self):
        stmt, _, _ = build_small_kernel_stmt("DCSR-SpMM")
        src = compile_stmt(stmt, "dcsr-spmm", cache=False).source
        assert "A1_pos load A1_pos_dram" in src
        assert "A2_pos load A2_pos_dram" in src
        assert "val C_row = SRAM" in src

    def test_strategy_traces_name_singleton_rule(self):
        stmt, _, _ = build_small_kernel_stmt("COO-SpMV")
        kernel = compile_stmt(stmt, "coo-spmv", cache=False)
        notes = "\n".join(kernel.program.notes)
        assert "lowerIter[S1" in notes


class TestSingletonRestrictions:
    def test_singleton_coiteration_rejected(self):
        """Adding two COO matrices would co-iterate singleton levels."""
        from repro.formats import COO, offChip
        from repro.ir import index_vars
        from repro.tensor import Tensor

        A = Tensor("A", (4, 4), COO(offChip))
        B = Tensor("B", (4, 4), COO(offChip))
        C = Tensor("C", (4, 4), COO(offChip))
        for t in (B, C):
            t.from_dense(np.eye(4))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j]
        with pytest.raises(LoweringError):
            compile_stmt(A.get_index_stmt(), "coo_add", cache=False)

    def test_coo_output_rejected(self):
        from repro.formats import COO, CSR, offChip
        from repro.ir import index_vars
        from repro.tensor import Tensor

        A = Tensor("A", (4, 4), COO(offChip))
        B = Tensor("B", (4, 4), CSR(offChip))
        B.from_dense(np.eye(4))
        i, j = index_vars("i j")
        A[i, j] = B[i, j]
        with pytest.raises(LoweringError):
            compile_stmt(A.get_index_stmt(), "coo_out", cache=False)


class TestWorkloadStats:
    def test_coo_spmv_singleton_loop_iters(self):
        from repro.capstan.stats import compute_stats

        stmt, _, tensors = build_small_kernel_stmt("COO-SpMV")
        kernel = compile_stmt(stmt, "coo-spmv", cache=False)
        stats = compute_stats(kernel)
        loops = {l.ivar: l for l in stats.loops}
        nnz = tensors["A"].nnz
        assert loops["i"].kind == "compressed"
        assert loops["i"].iters == nnz
        assert loops["j"].kind == "singleton"
        assert loops["j"].iters == nnz  # one bind per parent position

    def test_bcsr_spmv_resources_estimate(self):
        from repro.capstan.resources import estimate_resources

        stmt, _, _ = build_small_kernel_stmt("BCSR-SpMV")
        kernel = compile_stmt(stmt, "bcsr-spmv", cache=False)
        est = estimate_resources(kernel)
        assert est.pcu > 0 and est.pmu > 0
