"""Structural tests of the Spatial lowering (Section 7.2)."""

import pytest

from repro.core import compile_stmt
from repro.core.coiteration import LoweringError
from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.ir import index_vars
from repro.spatial.ir import (
    BitVectorOp,
    FifoDecl,
    Foreach,
    GenBitVector,
    LoadBulk,
    ReducePat,
    ScanCounter,
    SramDecl,
    StreamStore,
)
from repro.tensor import Tensor
from tests.helpers_kernels import build_small_kernel_stmt


def compiled(name, **kw):
    stmt, _, _ = build_small_kernel_stmt(name, **kw)
    return compile_stmt(stmt, name.lower())


def nodes(kernel, cls):
    return [s for s in kernel.program.all_statements() if isinstance(s, cls)]


class TestProgramStructure:
    def test_dram_decls_cover_operands(self):
        k = compiled("SDDMM")
        names = {d.name for d in k.program.dram}
        assert {"A_vals_dram", "A2_pos_dram", "A2_crd_dram",
                "B_vals_dram", "B2_pos_dram", "B2_crd_dram",
                "C_vals_dram", "D_vals_dram"} <= names

    def test_layouts_distinguish_output(self):
        k = compiled("SDDMM")
        assert k.program.layouts["A"].is_output
        assert not k.program.layouts["B"].is_output

    def test_symbols_include_dims_and_nnz(self):
        k = compiled("SpMV")
        syms = set(k.program.symbols)
        assert {"A1_dim", "A2_nnz", "x1_dim", "y1_dim"} <= syms

    def test_scalar_inputs_become_symbols(self):
        k = compiled("MatTransMul")
        assert {"alpha", "beta"} <= set(k.program.symbols)

    def test_notes_carry_memory_report(self):
        k = compiled("SpMV")
        text = "\n".join(k.program.notes)
        assert "Memory analysis" in text
        assert "lowerIter" in text


class TestPatternShapes:
    def test_spmv_reduce_over_segment(self):
        k = compiled("SpMV")
        reduces = nodes(k, ReducePat)
        assert len(reduces) == 1
        assert reduces[0].par == 16  # innerPar through accelerate

    def test_outer_par_on_outermost_foreach(self):
        k = compiled("SDDMM")
        outer = [s for s in k.program.accel if isinstance(s, Foreach)][0]
        assert outer.par == 12

    def test_plus3_bitvector_pipeline(self):
        k = compiled("Plus3")
        assert len(nodes(k, GenBitVector)) == 3  # B, C, then D
        ops = nodes(k, BitVectorOp)
        assert len(ops) == 1 and ops[0].op == "or"  # T = B | C
        scans = [s for s in nodes(k, Foreach)
                 if isinstance(s.counter, ScanCounter)]
        assert len(scans) == 2  # producer scan + consumer value scan

    def test_plus3_count_then_value_scanners(self):
        """Section 7.2: one scanner counts positions, one computes values."""
        k = compiled("Plus3")
        count_reduces = [
            s for s in nodes(k, ReducePat) if isinstance(s.counter, ScanCounter)
        ]
        assert len(count_reduces) == 1

    def test_innerprod_scan_reduce(self):
        k = compiled("InnerProd")
        scan_reduces = [
            s for s in nodes(k, ReducePat) if isinstance(s.counter, ScanCounter)
        ]
        assert len(scan_reduces) == 1
        assert scan_reduces[0].counter.op == "and"

    def test_ttm_row_buffer(self):
        k = compiled("TTM")
        srams = {s.name for s in nodes(k, SramDecl)}
        assert "A_row" in srams

    def test_mttkrp_accumulates_into_row(self):
        from repro.spatial.ir import SramWrite

        k = compiled("MTTKRP")
        writes = [s for s in nodes(k, SramWrite) if s.mem == "A_row"]
        assert writes and all(w.accumulate for w in writes)

    def test_stream_stores_for_compressed_outputs(self):
        k = compiled("TTV")
        stores = nodes(k, StreamStore)
        targets = {s.dram for s in stores}
        assert "A_vals_dram" in targets
        assert "A2_crd_dram" in targets


class TestTransfers:
    def test_pos_arrays_loaded_once_at_top(self):
        k = compiled("SDDMM")
        top_loads = [s for s in k.program.accel if isinstance(s, LoadBulk)]
        assert any(l.dst == "B2_pos" for l in top_loads)

    def test_segment_fifos_inside_outer_loop(self):
        k = compiled("SpMV")
        outer = [s for s in k.program.accel if isinstance(s, Foreach)][0]
        inner_decls = {
            s.name for s in outer.walk() if isinstance(s, FifoDecl)
        }
        assert {"A2_crd", "A_vals"} <= inner_decls

    def test_gathered_vector_staged_at_top(self):
        k = compiled("SpMV")
        top = [s for s in k.program.accel if isinstance(s, SramDecl)]
        assert any(s.name == "x_vals" and s.sparse for s in top)


class TestErrors:
    def test_unsupported_map_function(self):
        A = Tensor("A", (3, 4), CSR(offChip))
        x = Tensor("x", (4,), DENSE_VECTOR(offChip))
        y = Tensor("y", (3,), DENSE_VECTOR(offChip))
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        stmt = y.get_index_stmt().map(j, "Spatial", "FancyBlock")
        with pytest.raises(LoweringError, match="FancyBlock"):
            compile_stmt(stmt)

    def test_reduction_requires_accumulation(self):
        B = Tensor("B", (3, 4), CSR(offChip))
        A = Tensor("A", (3, 4), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j]
        stmt = A.get_index_stmt().map(j, "Spatial", "Reduction")
        with pytest.raises(LoweringError, match="accumulating"):
            compile_stmt(stmt)

    def test_reduction_requires_scalar_workspace(self):
        A = Tensor("A", (3, 4), CSR(offChip))
        x = Tensor("x", (4,), DENSE_VECTOR(offChip))
        y = Tensor("y", (3,), DENSE_VECTOR(offChip))
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        # Mapping Reduce without the precompute: the target is off-chip y.
        stmt = y.get_index_stmt().map(j, "Spatial", "Reduction")
        with pytest.raises(LoweringError, match="on-chip scalar"):
            compile_stmt(stmt)


class TestDeterminism:
    def test_same_input_same_code(self):
        a = compiled("SDDMM").source
        b = compiled("SDDMM").source
        assert a == b

    def test_loc_property_consistent(self):
        k = compiled("SpMV")
        from repro.spatial.codegen import count_loc

        assert k.spatial_loc == count_loc(k.source)
