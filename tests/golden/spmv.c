// TACO-style CPU kernel: spmv
int compute_spmv(taco_tensor_t *A, taco_tensor_t *x, taco_tensor_t *y) {
  for (int i = 0; i < y1_dim; i++) {  // #pragma omp parallel for
    double ws = 0.0;
    for (int pA2 = A2_pos[i]; pA2 < A2_pos[i + 1]; pA2++) {
      int j = A2_crd[pA2];
      ws += (A_vals[pA2] * x_vals[j]);
    }
    y_vals[i] = ws;
  }
  return 0;
}
