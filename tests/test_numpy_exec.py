"""Tests for the vectorized NumPy execution backend.

Three-way differential testing again, now with the numpy engine in the
loop: for every evaluation kernel and every format in the registry, the
vectorized executor must agree with the dense reference, the Spatial
interpreter (the oracle — it handles every format), and — where the
merge-lattice walker supports the format — the ``CpuExecutor``.
Singleton-bearing formats (COO family) are skipped for the cpu
comparison only: ``CpuExecutor``'s single-parent-position walker cannot
enumerate singleton levels, which is exactly why the interpreter stays
the universal oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.cpu_exec import execute_cpu
from repro.backends.numpy_exec import (
    NumpyExecutor,
    VectorizeFallback,
    enumerate_entries,
    execute_numpy,
    segment_scatter_add,
)
from repro.core import compile_stmt
from repro.core.compiler import ENGINES, default_engine
from repro.formats import (
    CSR,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    format_of,
    offChip,
    registered_formats,
)
from repro.ir import index_vars
from repro.tensor import Tensor, evaluate_dense, to_dense
from tests.conftest import random_sparse
from tests.helpers_kernels import SMALL_DIMS, build_small_kernel_stmt

ALL_KERNELS = tuple(SMALL_DIMS)

#: Small per-order operand shapes for the format-registry sweep. Block
#: formats (BCSR) need the two inner dims to equal the static 4x4 tile.
DIMS_BY_ORDER = {1: (9,), 2: (7, 9), 3: (4, 5, 6), 4: (3, 5, 4, 4)}


def _cpu_walkable(fmt) -> bool:
    """Can ``CpuExecutor``'s merge-lattice walker enumerate this format?

    Two documented structural gaps: singleton levels (the COO family) have
    no per-coordinate segment the walker can seek, and compressed
    column-major layouts (CSC) need the inner mode's coordinate bound
    before the outer one, which a row-major forall nest never does. Both
    are exactly why the Spatial interpreter remains the universal oracle.
    """
    if any(mf.kind.value == "singleton" for mf in fmt.mode_formats):
        return False
    if fmt.is_all_dense:
        return True
    return tuple(fmt.mode_ordering) == tuple(range(fmt.order))


def _registry_stmt(format_name: str, rng):
    """A contraction exercising one registered format as the sparse operand."""
    fmt = format_of(format_name)
    dims = DIMS_BY_ORDER[fmt.order]
    A = Tensor("A", dims, fmt).from_dense(random_sparse(rng, dims))
    if fmt.order == 1:
        (i,) = index_vars("i")
        x = Tensor("x", dims, DENSE_VECTOR(offChip)).from_dense(
            rng.random(dims))
        y = Tensor("y", dims, DENSE_VECTOR(offChip))
        y[i] = A[i] * x[i]
    elif fmt.order == 2:
        i, j = index_vars("i j")
        x = Tensor("x", (dims[1],), DENSE_VECTOR(offChip)).from_dense(
            rng.random(dims[1]))
        y = Tensor("y", (dims[0],), DENSE_VECTOR(offChip))
        y[i] = A[i, j] * x[j]
    elif fmt.order == 3:
        i, j, k = index_vars("i j k")
        c = Tensor("c", (dims[2],), DENSE_VECTOR(offChip)).from_dense(
            rng.random(dims[2]))
        y = Tensor("y", dims[:2], DENSE_MATRIX(offChip))
        y[i, j] = A[i, j, k] * c[k]
    else:  # order 4: the BCSR-SpMV shape
        I, J, bi, bj = index_vars("I J bi bj")
        x = Tensor("x", (dims[1], dims[3]), DENSE_MATRIX(offChip)).from_dense(
            rng.random((dims[1], dims[3])))
        y = Tensor("y", (dims[0], dims[2]), DENSE_MATRIX(offChip))
        y[I, bi] = A[I, J, bi, bj] * x[J, bj]
    return y


# ---------------------------------------------------------------------------
# Differential testing: every kernel, every engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_matches_dense_reference(name):
    """Vectorized (strict: no fallback) vs the dense reference."""
    stmt, out, _ = build_small_kernel_stmt(name)
    executor = NumpyExecutor(stmt)
    result = executor.run(strict=True)
    assert not executor.fell_back
    reference = np.atleast_1d(evaluate_dense(out.get_assignment()))
    assert np.allclose(result.reshape(reference.shape), reference)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_matches_spatial_interpreter(name):
    """Differential: numpy engine vs Spatial interpreter, same statement."""
    stmt, _, _ = build_small_kernel_stmt(name, seed=9, density=0.35)
    result = execute_numpy(stmt, strict=True)
    spatial = np.atleast_1d(to_dense(compile_stmt(stmt, name.lower()).run()))
    assert np.allclose(result.reshape(spatial.shape), spatial)


@pytest.mark.parametrize("format_name", sorted(registered_formats()))
def test_format_registry_cross_validation(format_name, rng):
    """Every registered format: numpy vs dense reference vs CpuExecutor."""
    y = _registry_stmt(format_name, rng)
    executor = NumpyExecutor(y.get_index_stmt())
    result = executor.run(strict=True)
    assert not executor.fell_back
    reference = np.atleast_1d(evaluate_dense(y.get_assignment()))
    assert np.allclose(result.reshape(reference.shape), reference)
    if _cpu_walkable(format_of(format_name)):
        cpu = execute_cpu(y.get_index_stmt())
        assert np.allclose(np.asarray(cpu).reshape(reference.shape),
                           reference)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16), density=st.floats(0.05, 0.9))
def test_property_spmv_three_way(seed, density):
    """Property: numpy == cpu == dense reference on random CSR SpMV."""
    rng = np.random.default_rng(seed)
    A = Tensor("A", (6, 8), CSR(offChip)).from_dense(
        random_sparse(rng, (6, 8), density))
    x = Tensor("x", (8,), DENSE_VECTOR(offChip)).from_dense(rng.random(8))
    y = Tensor("y", (6,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    stmt = y.get_index_stmt()
    reference = evaluate_dense(y.get_assignment())
    assert np.allclose(execute_numpy(stmt, strict=True), reference)
    assert np.allclose(execute_cpu(stmt).reshape(reference.shape), reference)


# ---------------------------------------------------------------------------
# The fall-back path
# ---------------------------------------------------------------------------


def _sparse_vec(name: str, rng, n: int = 8) -> Tensor:
    return Tensor(name, (n,), SPARSE_VECTOR(offChip)).from_dense(
        random_sparse(rng, (n,)))


def test_fallback_three_sparse_factors(rng):
    """Three sparse factors exceed the vectorizer; CpuExecutor takes over."""
    B, C, D = (_sparse_vec(n, rng) for n in "BCD")
    y = Tensor("y", (8,), DENSE_VECTOR(offChip))
    (i,) = index_vars("i")
    y[i] = B[i] * C[i] * D[i]
    stmt = y.get_index_stmt()
    with pytest.raises(VectorizeFallback):
        NumpyExecutor(stmt).run(strict=True)
    executor = NumpyExecutor(stmt)
    result = executor.run()
    assert executor.fell_back
    assert np.allclose(result, evaluate_dense(y.get_assignment()))


def test_fallback_sparse_join_differing_vars(rng):
    """Sparse-sparse join over differing index-variable sets falls back."""
    A = Tensor("A", (6, 8), CSR(offChip)).from_dense(
        random_sparse(rng, (6, 8)))
    b = _sparse_vec("b", rng)
    y = Tensor("y", (6,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * b[j]
    stmt = y.get_index_stmt()
    with pytest.raises(VectorizeFallback):
        NumpyExecutor(stmt).run(strict=True)
    executor = NumpyExecutor(stmt)
    result = executor.run()
    assert executor.fell_back
    assert np.allclose(result, evaluate_dense(y.get_assignment()))


def test_fallback_nested_union_in_product(rng):
    """A union nested inside an intersection is the CpuExecutor's domain."""
    A = _sparse_vec("A", rng)
    b = Tensor("b", (8,), DENSE_VECTOR(offChip)).from_dense(rng.random(8))
    c = Tensor("c", (8,), DENSE_VECTOR(offChip)).from_dense(rng.random(8))
    y = Tensor("y", (8,), DENSE_VECTOR(offChip))
    (i,) = index_vars("i")
    y[i] = A[i] * (b[i] + c[i])
    stmt = y.get_index_stmt()
    with pytest.raises(VectorizeFallback):
        NumpyExecutor(stmt).run(strict=True)
    executor = NumpyExecutor(stmt)
    result = executor.run()
    assert executor.fell_back
    assert np.allclose(result, evaluate_dense(y.get_assignment()))


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("format_name", sorted(registered_formats()))
def test_enumerate_entries_round_trip(format_name, rng):
    """Per-level-format emitters reconstruct the dense tensor exactly."""
    fmt = format_of(format_name)
    dims = DIMS_BY_ORDER[fmt.order]
    dense = random_sparse(rng, dims)
    storage = Tensor("A", dims, fmt).from_dense(dense).storage
    coords, vals = enumerate_entries(storage)
    rebuilt = np.zeros(dims)
    np.add.at(rebuilt, tuple(coords[:, m] for m in range(len(dims))), vals)
    assert np.allclose(rebuilt, dense)


def test_segment_scatter_add_matches_add_at(rng):
    """Duplicate and unsorted keys accumulate exactly like np.add.at."""
    keys = rng.integers(0, 20, size=200)
    contrib = rng.random((200, 3))
    buffer = np.zeros((20, 3))
    segment_scatter_add(buffer, keys, contrib)
    reference = np.zeros((20, 3))
    np.add.at(reference, keys, contrib)
    assert np.allclose(buffer, reference)


# ---------------------------------------------------------------------------
# Engine selection and the exec cache stage
# ---------------------------------------------------------------------------


def test_run_engine_all_engines_agree():
    stmt, out, _ = build_small_kernel_stmt("SpMV")
    kernel = compile_stmt(stmt, "spmv")
    reference = np.atleast_1d(evaluate_dense(out.get_assignment()))
    for engine in ENGINES:
        result = np.atleast_1d(kernel.run_engine(engine))
        assert np.allclose(result.reshape(reference.shape), reference), engine


def test_default_engine_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_engine() == "numpy"
    monkeypatch.setenv("REPRO_ENGINE", "interp")
    assert default_engine() == "interp"
    monkeypatch.setenv("REPRO_ENGINE", "turbo")
    with pytest.raises(ValueError):
        default_engine()


def test_exec_stage_cache_key_separation(fresh_cache):
    """Engines never share exec-stage cache entries; reruns replay."""
    from repro.eval.harness import exec_check

    first = exec_check("SpMV", "bcsstk30", 0.02, engine="numpy")
    second = exec_check("SpMV", "bcsstk30", 0.02, engine="cpu")
    assert first["engine"] == "numpy"
    assert first["fell_back"] is False
    assert second["engine"] == "cpu"
    assert fresh_cache.stats.stage_misses["exec"] == 2
    replay = exec_check("SpMV", "bcsstk30", 0.02, engine="numpy")
    assert fresh_cache.stats.stage_hits["exec"] == 1
    assert replay == first


def test_exec_check_validates_against_oracle(fresh_cache):
    """exec_check returns a passing summary for every engine."""
    from repro.eval.harness import exec_check

    for engine in ENGINES:
        summary = exec_check("SpMV", "bcsstk30", 0.02, engine=engine)
        assert summary["kernel"] == "SpMV"
        assert summary["elements"] > 0
        assert summary["maxerr"] <= 1e-8
