"""Unit tests for the CPU/GPU/handwritten comparison backends."""

import pytest

from repro.backends import (
    CpuBackend,
    GpuBackend,
    HANDWRITTEN_CAPSTAN_SPMV,
    HandwrittenCapstanSpMV,
    HandwrittenPlasticineSpMV,
    handwritten_capstan_loc,
    lower_cpu,
)
from repro.capstan import HBM2E, CapstanSimulator, compute_stats
from repro.core import compile_stmt
from repro.kernels import KERNEL_ORDER, KERNELS
from tests.helpers_kernels import build_small_kernel_stmt


def kernel_and_stats(name: str):
    stmt, _, _ = build_small_kernel_stmt(name)
    kernel = compile_stmt(stmt, name)
    return kernel, compute_stats(kernel)


class TestCpuCodegen:
    @pytest.mark.parametrize("name", KERNEL_ORDER)
    def test_generates_for_all_kernels(self, name):
        stmt, _, _ = build_small_kernel_stmt(name)
        src = lower_cpu(stmt, name.lower())
        assert f"compute_{name.lower()}" in src
        assert "for (" in src or "while (" in src

    def test_spmv_imperative_shape(self):
        """Figure 4a: for-loops, element accesses, innermost accumulate."""
        stmt, _, _ = build_small_kernel_stmt("SpMV")
        src = lower_cpu(stmt, "spmv")
        assert "for (int i = 0; i <" in src
        assert "for (int pA2 = A2_pos[i]; pA2 < A2_pos[i + 1]; pA2++)" in src
        assert "int j = A2_crd[pA2];" in src
        assert "ws +=" in src
        assert "y_vals[i] = ws;" in src

    def test_mapcall_lowered_as_plain_loop(self):
        """The CPU has no Reduce pattern: accelerate() falls back."""
        stmt, _, _ = build_small_kernel_stmt("SDDMM")
        src = lower_cpu(stmt, "sddmm")
        assert "Reduce" not in src
        assert "for (int k" in src

    def test_union_emits_two_way_merge(self):
        """TACO lowers co-iteration to while-loop merges, not scanners."""
        stmt, _, _ = build_small_kernel_stmt("Plus2")
        src = lower_cpu(stmt, "plus2")
        assert "while (" in src
        assert "genBitvector" not in src
        # Union tails drain each operand.
        assert src.count("while (") >= 3

    def test_intersection_single_merge_loop(self):
        stmt, _, _ = build_small_kernel_stmt("InnerProd")
        src = lower_cpu(stmt, "innerprod")
        assert "while (" in src
        # Intersections need no tail loops at the innermost level.


class TestCpuModel:
    @pytest.mark.parametrize("name", KERNEL_ORDER)
    def test_positive_predictions(self, name):
        kernel, stats = kernel_and_stats(name)
        assert CpuBackend().predict_seconds(kernel, stats) > 0

    def test_cpu_slower_than_capstan_on_typical_kernels(self):
        kernel, stats = kernel_and_stats("SpMV")
        cpu = CpuBackend().predict_seconds(kernel, stats)
        cap = CapstanSimulator().simulate(kernel, dram=HBM2E, stats=stats).seconds
        assert cpu > cap

    def test_more_work_costs_more(self):
        k_small, s_small = kernel_and_stats("SpMV")
        stmt, _, _ = build_small_kernel_stmt("SpMV", density=1.0)
        k_big = compile_stmt(stmt, "spmv")
        s_big = compute_stats(k_big)
        assert (CpuBackend().predict_seconds(k_big, s_big)
                >= CpuBackend().predict_seconds(k_small, s_small))


class TestGpuModel:
    @pytest.mark.parametrize("name", KERNEL_ORDER)
    def test_positive_predictions(self, name):
        kernel, stats = kernel_and_stats(name)
        assert GpuBackend().predict_seconds(kernel, stats) > 0

    def test_densify_detection(self):
        sddmm, _ = kernel_and_stats("SDDMM")
        spmv, _ = kernel_and_stats("SpMV")
        backend = GpuBackend()
        assert backend.output_needs_densify(sddmm)  # CSR output
        assert not backend.output_needs_densify(spmv)  # dense vector

    def test_dense_output_bytes(self):
        sddmm, _ = kernel_and_stats("SDDMM")
        assert GpuBackend().dense_output_bytes(sddmm) == 6 * 8 * 4

    def test_sparse_output_penalty_dominates(self):
        """Sparse-output kernels pay the dense zero-init (Section 8.4)."""
        backend = GpuBackend()
        sddmm, s_stats = kernel_and_stats("SDDMM")
        t = backend.predict_seconds(sddmm, s_stats)
        init = backend.dense_output_bytes(sddmm) / (
            backend.model.dense_init_gb_s * 1e9
        )
        assert t >= init


class TestHandwritten:
    def test_loc_near_paper_52(self):
        loc = handwritten_capstan_loc()
        assert 40 <= loc <= 60  # paper reports 52

    def test_source_is_spatial(self):
        assert "Accel {" in HANDWRITTEN_CAPSTAN_SPMV
        assert "Reduce(" in HANDWRITTEN_CAPSTAN_SPMV

    def test_handwritten_capstan_faster_than_compiled(self):
        kernel, stats = kernel_and_stats("SpMV")
        compiled = CapstanSimulator().simulate(kernel, dram=HBM2E, stats=stats)
        hand = HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
        assert hand <= compiled.seconds

    @staticmethod
    def _sized_spmv():
        """A moderately sized SpMV where asymptotics dominate fill costs."""
        dims = {"A": (300, 300), "x": (300,), "y": (300,)}
        from tests.helpers_kernels import make_small_tensors
        from repro.kernels import KERNELS

        tensors = make_small_tensors("SpMV", seed=3, density=0.1, dims=dims)
        stmt, _ = KERNELS["SpMV"].build(tensors)
        kernel = compile_stmt(stmt, "SpMV")
        return kernel, compute_stats(kernel)

    def test_plasticine_slower_than_compiled(self):
        kernel, stats = self._sized_spmv()
        compiled = CapstanSimulator().simulate(kernel, dram=HBM2E, stats=stats)
        plast = HandwrittenPlasticineSpMV().predict_seconds(stats, HBM2E)
        assert plast > compiled.seconds

    def test_ordering_capstan_hand_lt_compiled_lt_plasticine(self):
        kernel, stats = self._sized_spmv()
        compiled = CapstanSimulator().simulate(kernel, dram=HBM2E, stats=stats)
        hand = HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
        plast = HandwrittenPlasticineSpMV().predict_seconds(stats, HBM2E)
        assert hand <= compiled.seconds < plast
